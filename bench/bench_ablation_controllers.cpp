#include <algorithm>
// Controller ablation vs the paper's related work (ref. [5]): run the
// threshold and hysteresis on/off TEC controllers in closed loop against
// OFTEC's static optimum on the same workload, and compare
//   * time spent above T_max,
//   * average cooling power,
//   * number of TEC ON/OFF transitions (ref. [5]'s reliability metric).
#include <cstdio>

#include "common.h"
#include "core/reactive_controllers.h"
#include "util/units.h"

namespace {

using namespace oftec;
using namespace oftec::bench;

struct LoopMetrics {
  double time_above_tmax = 0.0;
  double avg_power = 0.0;
  double peak_temp = 0.0;
};

LoopMetrics measure(const thermal::TransientResult& r, double t_max,
                    double dt_per_sample) {
  LoopMetrics m;
  double power_acc = 0.0;
  for (const thermal::TransientSample& s : r.samples) {
    if (s.max_chip_temperature > t_max) m.time_above_tmax += dt_per_sample;
    power_acc += s.leakage_power + s.tec_power + s.fan_power;
    m.peak_temp = std::max(m.peak_temp, s.max_chip_temperature);
  }
  m.avg_power = power_acc / static_cast<double>(r.samples.size());
  return m;
}

}  // namespace

int main() {
  print_header("Reactive controllers vs OFTEC (ref. [5] comparison)",
               "constant-current on/off control either overshoots Tmax or "
               "overspends; hysteresis only reduces switching — OFTEC's "
               "(w, I) co-optimization does both");

  const floorplan::Floorplan& fp = paper_floorplan();
  const power::PowerMap peak = workload::peak_power_map(
      workload::profile_for(workload::Benchmark::kQuicksort), fp);
  const core::CoolingSystem sys(fp, peak, paper_leakage(), {});
  const double t_max = sys.t_max();

  const core::OftecResult star = core::run_oftec(sys);
  if (!star.success) {
    std::printf("unexpected: OFTEC infeasible\n");
    return 1;
  }

  thermal::TransientOptions topt;
  topt.time_step = 20e-3;
  topt.duration = 60.0;
  topt.record_stride = 5;
  const double dt_per_sample =
      topt.time_step * static_cast<double>(topt.record_stride);
  const thermal::TransientSolver transient(
      sys.thermal_model(), sys.cell_dynamic_power(), sys.cell_leakage(), topt);

  // Start everyone from the hot fan-only steady state at the reactive
  // controllers' fixed fan speed.
  const double fan_fixed = units::rpm_to_rad_s(3000.0);
  const thermal::SteadyResult hot = sys.solver().solve(fan_fixed, 0.0);

  // Ref. [5]-style controllers: constant 2 A when ON, fixed fan.
  core::HysteresisController threshold =
      core::make_threshold_controller(fan_fixed, 2.0, t_max - 2.0);
  core::HysteresisController::Params hp;
  hp.omega = fan_fixed;
  hp.on_current = 2.0;
  hp.on_temperature = t_max - 2.0;
  hp.off_temperature = t_max - 6.0;
  core::HysteresisController hysteresis(hp);

  const thermal::TransientResult r_threshold =
      transient.run_closed_loop(threshold.as_feedback(), hot.temperatures);
  const thermal::TransientResult r_hysteresis =
      transient.run_closed_loop(hysteresis.as_feedback(), hot.temperatures);
  // OFTEC: static (ω*, I*) — no switching at all.
  const thermal::TransientResult r_oftec = transient.run(
      [&](double) {
        return thermal::ControlSetting{star.omega, star.current};
      },
      sys.solver().solve(star.omega, star.current).temperatures);

  const LoopMetrics m_t = measure(r_threshold, t_max, dt_per_sample);
  const LoopMetrics m_h = measure(r_hysteresis, t_max, dt_per_sample);
  const LoopMetrics m_o = measure(r_oftec, t_max, dt_per_sample);

  std::printf("\nWorkload Quicksort, %.0f s closed loop, Tmax = 90 C:\n\n",
              topt.duration);
  std::printf("  controller        peak T [C]  time>Tmax [s]  avg P [W]  "
              "switches\n");
  std::printf("  ----------------------------------------------------------"
              "--\n");
  auto row = [&](const char* name, const LoopMetrics& m,
                 std::size_t switches) {
    std::printf("  %-16s %11.2f %14.2f %10.2f  %8zu\n", name,
                units::kelvin_to_celsius(m.peak_temp), m.time_above_tmax,
                m.avg_power, switches);
  };
  row("threshold [5]", m_t, threshold.switch_count());
  row("hysteresis [5]", m_h, hysteresis.switch_count());
  row("OFTEC static", m_o, static_cast<std::size_t>(0));

  std::printf("\nHysteresis cuts switching vs the bare threshold controller "
              "(%zu vs %zu transitions — ref. [5]'s motivation); OFTEC holds "
              "the chip below Tmax continuously with zero switching and the "
              "lowest average power.\n",
              hysteresis.switch_count(), threshold.switch_count());
  return 0;
}
