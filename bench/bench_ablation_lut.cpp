// Section 6.2 extension: the look-up-table controller. Build the LUT from
// the eight benchmark power vectors, then query it with perturbed loads
// (±5 % scaling — a new input the exact optimizer has never seen) and
// compare the LUT's instant answer against a fresh OFTEC run.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/lut_controller.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace oftec;
  using namespace oftec::bench;

  print_header("LUT controller ablation (Sec. 6.2 extension)",
               "pre-computed OFTEC solutions can be served from a look-up "
               "table immediately, trading a little optimality for ~1e4x "
               "lower control latency");

  const floorplan::Floorplan& fp = paper_floorplan();
  std::vector<power::PowerMap> training;
  for (const workload::Benchmark b : workload::all_benchmarks()) {
    training.push_back(
        workload::peak_power_map(workload::profile_for(b), fp));
  }

  util::Stopwatch build_watch;
  const core::LutController lut =
      core::LutController::build(training, fp, paper_leakage());
  const double build_ms = build_watch.elapsed_ms();

  util::Table table;
  table.set_header({"query", "LUT (w,I)", "LUT T [C]", "exact (w,I)",
                    "exact P [W]", "LUT P [W]", "LUT us", "exact ms"});

  double worst_excess = 0.0;
  std::size_t lut_safe = 0, total = 0;
  for (const workload::Benchmark b : workload::all_benchmarks()) {
    for (const double scale : {0.95, 1.05}) {
      power::PowerMap query =
          workload::peak_power_map(workload::profile_for(b), fp);
      query.scale(scale);

      util::Stopwatch lut_watch;
      const auto hit = lut.lookup(query);
      const double lut_us = lut_watch.elapsed_ms() * 1e3;

      const core::CoolingSystem sys(fp, query, paper_leakage(), {});
      util::Stopwatch exact_watch;
      const core::OftecResult exact = core::run_oftec(sys);
      const double exact_ms = exact_watch.elapsed_ms();

      // Evaluate the LUT's control on the true load.
      const core::Evaluation& lut_ev = sys.evaluate(hit.omega, hit.current);
      const bool safe = !lut_ev.runaway &&
                        lut_ev.max_chip_temperature <= sys.t_max() + 0.5;
      ++total;
      if (safe) ++lut_safe;
      const double lut_p = lut_ev.runaway ? -1.0 : lut_ev.cooling_power();
      if (safe && exact.success) {
        worst_excess =
            std::max(worst_excess, lut_p / exact.power.total() - 1.0);
      }

      table.add_row(
          {workload::benchmark_name(b) + (scale < 1.0 ? " x0.95" : " x1.05"),
           format_rpm(hit.omega) + "," + util::format_double(hit.current, 2),
           lut_ev.runaway ? "RUNAWAY"
                          : format_celsius(lut_ev.max_chip_temperature),
           exact.success
               ? format_rpm(exact.omega) + "," +
                     util::format_double(exact.current, 2)
               : std::string("-"),
           exact.success ? format_watts(exact.power.total()) : std::string("-"),
           lut_p < 0.0 ? std::string("-") : format_watts(lut_p),
           util::format_double(lut_us, 1),
           util::format_double(exact_ms, 0)});
    }
  }
  table.print(std::cout);

  std::printf("\nLUT build time: %.0f ms for 8 entries.\n", build_ms);
  std::printf("LUT control kept the chip within Tmax+0.5C on %zu of %zu "
              "perturbed queries; worst power excess vs exact OFTEC: "
              "%.1f%%.\n", lut_safe, total, 100.0 * worst_excess);
  return 0;
}
