// Figure 6(c): maximum chip temperature after Optimization 2 (minimize the
// maximum die temperature) for OFTEC vs. the variable-ω and fixed-ω fan-only
// baselines, across the eight MiBench benchmarks.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace oftec;
  using namespace oftec::bench;

  print_header("Figure 6(c): max chip temperature after Optimization 2",
               "OFTEC meets Tmax = 90C on all benchmarks; both fan-only "
               "baselines exceed it on five of eight (red dashed box)");

  const std::vector<SweepRow> rows = run_paper_sweep();
  const double t_max = units::celsius_to_kelvin(90.0);

  util::Table table;
  table.set_header({"Benchmark", "OFTEC [C]", "Var-w [C]", "Fixed-w [C]",
                    "baselines meet Tmax?"});
  double oftec_sum = 0.0, base_sum = 0.0;
  std::size_t base_fail = 0;
  for (const SweepRow& r : rows) {
    const bool both_meet =
        r.variable_min_temp.max_chip_temperature < t_max &&
        r.fixed_fan.max_chip_temperature < t_max;
    if (!both_meet) ++base_fail;
    table.add_row({r.name,
                   format_celsius(r.oftec_min_temp.max_chip_temperature),
                   format_temperature_outcome(
                       r.variable_min_temp.max_chip_temperature, t_max),
                   format_temperature_outcome(r.fixed_fan.max_chip_temperature,
                                              t_max),
                   both_meet ? "yes" : "NO"});
    oftec_sum += r.oftec_min_temp.max_chip_temperature;
    base_sum += r.variable_min_temp.max_chip_temperature;
  }
  table.print(std::cout);

  const double avg_gap = (base_sum - oftec_sum) / static_cast<double>(rows.size());
  std::printf("\nBaselines fail on %zu of %zu benchmarks "
              "(paper: 5 of 8).\n", base_fail, rows.size());
  std::printf("OFTEC average temperature advantage over variable-w: %.1f C "
              "(paper: >13 C).\n", avg_gap);
  return 0;
}
