// Figure 6(e): maximum chip temperature after Optimization 1 (minimize
// cooling power subject to T < Tmax). Baselines are omitted on the five
// benchmarks they cannot cool, exactly as the paper omits their bars.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace oftec;
  using namespace oftec::bench;

  print_header("Figure 6(e): max chip temperature after Optimization 1",
               "OFTEC meets Tmax everywhere and, on the three comparable "
               "benchmarks, runs ~3.7C / ~3.0C cooler than the variable-/"
               "fixed-w baselines");

  const std::vector<SweepRow> rows = run_paper_sweep();

  util::Table table;
  table.set_header(
      {"Benchmark", "OFTEC [C]", "Var-w [C]", "Fixed-w [C]"});
  double var_gap = 0.0, fixed_gap = 0.0;
  std::size_t comparable = 0;
  for (const SweepRow& r : rows) {
    table.add_row(
        {r.name, format_celsius(r.oftec.max_chip_temperature),
         r.variable_fan.success ? format_celsius(r.variable_fan.max_chip_temperature)
                                : std::string("-"),
         r.fixed_fan.success ? format_celsius(r.fixed_fan.max_chip_temperature)
                             : std::string("-")});
    if (r.variable_fan.success && r.fixed_fan.success) {
      ++comparable;
      var_gap += r.variable_fan.max_chip_temperature -
                 r.oftec.max_chip_temperature;
      fixed_gap += r.fixed_fan.max_chip_temperature -
                   r.oftec.max_chip_temperature;
    }
  }
  table.print(std::cout);
  if (comparable > 0) {
    std::printf("\nComparable benchmarks: %zu (paper: 3).\n", comparable);
    std::printf("OFTEC cooler than variable-w by %.1f C on average "
                "(paper: 3.7 C).\n",
                var_gap / static_cast<double>(comparable));
    std::printf("OFTEC cooler than fixed-w by %.1f C on average "
                "(paper: 3.0 C).\n",
                fixed_gap / static_cast<double>(comparable));
  }
  return 0;
}
