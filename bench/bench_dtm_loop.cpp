// Online DTM loop (Sec. 6.2 deployment story): replay a phase-structured
// Susan trace through the transient model under three control policies —
//   static  : one OFTEC run on the whole-trace max vector, held forever;
//   exact   : re-run OFTEC every control period on the upcoming window;
//   LUT     : nearest-neighbor lookup every period (pre-trained on the
//             eight benchmark vectors).
// Compares thermal safety, average cooling power, and control latency —
// the trade space the paper's LUT proposal targets.
//
// `--smoke` runs a shrunk configuration (short trace, fewer policies, small
// LUT) intended for CI: fast, but still touching every instrumented layer so
// the emitted OFTEC_OBS report/trace artifacts are representative (see
// tools/run_obs_smoke.cmake).
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "common.h"
#include "core/dtm_loop.h"
#include "la/backend.h"
#include "thermal/transient_engine.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"
#include "util/units.h"
#include "workload/trace.h"

namespace {

/// Field-for-field equality of two transient results (== on doubles — exact
/// bit agreement for the finite values these runs produce).
bool results_identical(const oftec::thermal::TransientResult& a,
                       const oftec::thermal::TransientResult& b) {
  if (a.runaway != b.runaway || a.steps != b.steps ||
      a.samples.size() != b.samples.size() ||
      a.final_temperatures.size() != b.final_temperatures.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    const auto& s = a.samples[i];
    const auto& t = b.samples[i];
    if (s.time != t.time ||
        s.max_chip_temperature != t.max_chip_temperature ||
        s.tec_power != t.tec_power || s.fan_power != t.fan_power ||
        s.leakage_power != t.leakage_power) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.final_temperatures.size(); ++i) {
    if (a.final_temperatures[i] != b.final_temperatures[i]) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oftec;
  using namespace oftec::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  print_header("Online DTM loop: static vs exact-OFTEC vs LUT control",
               "OFTEC is fast enough for online control; the LUT serves the "
               "same decisions in microseconds at a small optimality loss");

  const floorplan::Floorplan& fp = paper_floorplan();

  // 10 s of Susan: the deepest phase structure in the suite (2 s in smoke
  // mode).
  workload::TraceOptions topt;
  topt.sample_count = smoke ? 40 : 200;
  topt.sample_interval = 0.05;
  const workload::PowerTrace trace = workload::generate_trace(
      workload::profile_for(workload::Benchmark::kSusan), fp, topt);

  std::vector<power::PowerMap> training;
  std::size_t n_training = 0;
  for (const workload::Benchmark b : workload::all_benchmarks()) {
    training.push_back(
        workload::peak_power_map(workload::profile_for(b), fp));
    // Smoke: 3 training maps keep the build under a second while still
    // fanning the per-entry OFTEC runs across the pool.
    if (smoke && ++n_training == 3) break;
  }
  const core::LutController lut = core::LutController::build(
      training, fp, paper_leakage(), {}, {},
      smoke ? util::ThreadPool::default_thread_count() : 1);

  struct PolicyRow {
    const char* name;
    core::DtmPolicy policy;
  };
  std::vector<PolicyRow> policies = {
      {"static (whole-trace max)", core::DtmPolicy::kStatic},
      {"exact OFTEC / 1 s", core::DtmPolicy::kExactOftec},
      {"LUT lookup / 1 s", core::DtmPolicy::kLut},
  };
  if (smoke) {
    policies = {{"exact OFTEC", core::DtmPolicy::kExactOftec},
                {"LUT lookup", core::DtmPolicy::kLut}};
  }
  const double control_period = smoke ? 0.5 : 1.0;

  std::printf("\nTrace: Susan, %.0f s, %zu samples; control period %.1f s; "
              "Tmax = 90 C.\n\n", trace.duration(), trace.size(),
              control_period);
  std::printf("  %-26s %-9s %-12s %-10s %-12s %-8s\n", "policy", "peak [C]",
              "t>Tmax [s]", "avg P [W]", "ctrl [ms]", "re-opts");
  std::printf("  ------------------------------------------------------------"
              "-------\n");

  for (const PolicyRow& p : policies) {
    core::DtmOptions opts;
    opts.policy = p.policy;
    opts.control_period = control_period;
    opts.time_step = smoke ? 20e-3 : 10e-3;
    if (p.policy == core::DtmPolicy::kLut) opts.lut = &lut;
    const core::DtmResult r =
        core::run_dtm_loop(fp, trace, paper_leakage(), opts);
    if (r.runaway) {
      std::printf("  %-26s RUNAWAY\n", p.name);
      continue;
    }
    std::printf("  %-26s %9.2f %12.2f %10.2f %12.0f %8zu\n", p.name,
                units::kelvin_to_celsius(r.peak_temperature),
                r.violation_time, r.average_cooling_power, r.control_time_ms,
                r.reoptimizations);
  }

  // --- Fast transient engine vs reference solver -------------------------
  // The DTM loop's dominant cost is the per-step banded factorization. Hold
  // the static policy's constant setting over the whole trace horizon and
  // integrate it twice — reference TransientSolver (assemble + factor every
  // step) vs TransientEngine (factor reused across the linearization hold
  // window). Both run the same hold policy, so results are bit-identical and
  // the comparison is honest.
  {
    power::PowerMap peak(fp);
    for (const power::PowerMap& s : trace.samples) peak.max_with(s);
    const core::CoolingSystem sys(fp, peak, paper_leakage(), {});
    const core::OftecResult star = core::run_oftec(sys);
    const thermal::ControlSetting setting =
        star.success ? thermal::ControlSetting{star.omega, star.current}
                     : thermal::ControlSetting{sys.omega_max(), 0.0};

    thermal::TransientOptions topt;
    topt.time_step = smoke ? 20e-3 : 10e-3;
    topt.duration = trace.duration();
    topt.record_stride = 8;
    topt.relinearization_threshold = 0.1;

    const thermal::TransientSolver reference(
        sys.thermal_model(), sys.cell_dynamic_power(), sys.cell_leakage(),
        topt);
    const thermal::TransientEngine engine(
        sys.thermal_model(), sys.cell_dynamic_power(), sys.cell_leakage(),
        topt);
    const la::Vector init = reference.ambient_state();
    const auto constant = [setting](double, double) { return setting; };

    const util::Stopwatch ref_watch;
    const thermal::TransientResult ref = reference.run_closed_loop(
        constant, init);
    const double ref_ms = ref_watch.elapsed_ms();
    const util::Stopwatch eng_watch;
    const thermal::TransientResult eng = engine.run_closed_loop(
        constant, init);
    const double eng_ms = eng_watch.elapsed_ms();

    const bool identical = results_identical(ref, eng);
    const thermal::TransientEngineStats stats = engine.stats();
    const double ref_sps = ref_ms > 0.0
        ? static_cast<double>(ref.steps) / (ref_ms / 1e3) : 0.0;
    const double eng_sps = eng_ms > 0.0
        ? static_cast<double>(eng.steps) / (eng_ms / 1e3) : 0.0;
    const double speedup = eng_ms > 0.0 ? ref_ms / eng_ms : 0.0;

    std::printf("\nTransient engine (constant control, %zu steps, "
                "hold window %.2f K):\n", ref.steps,
                topt.relinearization_threshold);
    std::printf("  reference: %8.1f ms  (%10.0f steps/s)\n", ref_ms, ref_sps);
    std::printf("  engine:    %8.1f ms  (%10.0f steps/s)  "
                "%zu factorizations, %zu cache hits\n", eng_ms, eng_sps,
                stats.factorizations, stats.factor_hits);
    std::printf("  speedup: %.1fx, bit-identical: %s\n", speedup,
                identical ? "yes" : "NO (BUG)");

    util::json::Value j = util::json::Value::object();
    j["steps"] = ref.steps;
    j["time_step_s"] = topt.time_step;
    j["relinearization_threshold_k"] = topt.relinearization_threshold;
    j["reference_ms"] = ref_ms;
    j["engine_ms"] = eng_ms;
    j["reference_steps_per_s"] = ref_sps;
    j["engine_steps_per_s"] = eng_sps;
    j["speedup"] = speedup;
    j["engine_factorizations"] = stats.factorizations;
    j["engine_factor_hits"] = stats.factor_hits;
    j["bit_identical"] = identical;
    update_bench_artifact("dtm_constant_control", j);

    // run_batch: the same trace fanned as independent jobs across the pool.
    const std::size_t n_jobs = smoke ? 2 : 4;
    std::vector<thermal::TransientJob> jobs(n_jobs);
    for (thermal::TransientJob& job : jobs) {
      job.control = constant;
      job.initial_temperatures = init;
      job.options = topt;
    }
    const util::Stopwatch serial_watch;
    std::vector<thermal::TransientResult> serial;
    serial.reserve(n_jobs);
    for (const thermal::TransientJob& job : jobs) {
      serial.push_back(engine.run_closed_loop(job.control,
                                              job.initial_temperatures,
                                              job.options));
    }
    const double serial_ms = serial_watch.elapsed_ms();
    const util::Stopwatch batch_watch;
    const std::vector<thermal::TransientResult> batched =
        engine.run_batch(jobs);
    const double batch_ms = batch_watch.elapsed_ms();
    bool batch_identical = true;
    for (std::size_t i = 0; i < n_jobs; ++i) {
      batch_identical =
          batch_identical && results_identical(serial[i], batched[i]);
    }
    std::printf("  run_batch (%zu jobs): serial %.1f ms, batched %.1f ms, "
                "bit-identical: %s\n", n_jobs, serial_ms, batch_ms,
                batch_identical ? "yes" : "NO (BUG)");

    util::json::Value jb = util::json::Value::object();
    jb["jobs"] = n_jobs;
    jb["serial_ms"] = serial_ms;
    jb["batch_ms"] = batch_ms;
    jb["speedup"] = batch_ms > 0.0 ? serial_ms / batch_ms : 0.0;
    jb["bit_identical"] = batch_identical;
    // Scaling context: a 1.07x "speedup" on hardware_concurrency=1 is the
    // physical ceiling, not a regression — interpret the number against the
    // machine it was measured on (the tier-2 scaling test asserts >= 2.5x
    // only where >= 4 hardware threads exist).
    const auto hw =
        static_cast<std::size_t>(std::thread::hardware_concurrency());
    jb["hardware_concurrency"] = hw;
    jb["pool_threads"] = util::ThreadPool::default_thread_count();
    jb["backend"] = std::string(la::backend().name);
    if (hw < 4) {
      // Make the artifact self-describing so a 1.0x number measured on a
      // starved runner is never read as a parallel-scaling regression.
      const std::string stale =
          "STALE: measured at hardware_concurrency=" + std::to_string(hw) +
          " — run_batch speedup is capped at ~1x here; refresh this section "
          "on a >=4-hardware-thread runner (the tier-2 scaling test asserts "
          ">=2.5x there)";
      jb["context"] = stale;
      std::printf("  WARNING %s\n", stale.c_str());
    }
    update_bench_artifact("run_batch", jb);
  }

  std::printf("\nReading: per-window re-optimization rides the trace's "
              "phases below the static setting's power; the LUT serves the "
              "same decisions with ~1000x less control latency, paying a "
              "small safety/optimality margin — exactly the paper's "
              "proposed deployment.\n");
  return 0;
}
