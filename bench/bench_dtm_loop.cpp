// Online DTM loop (Sec. 6.2 deployment story): replay a phase-structured
// Susan trace through the transient model under three control policies —
//   static  : one OFTEC run on the whole-trace max vector, held forever;
//   exact   : re-run OFTEC every control period on the upcoming window;
//   LUT     : nearest-neighbor lookup every period (pre-trained on the
//             eight benchmark vectors).
// Compares thermal safety, average cooling power, and control latency —
// the trade space the paper's LUT proposal targets.
//
// `--smoke` runs a shrunk configuration (short trace, fewer policies, small
// LUT) intended for CI: fast, but still touching every instrumented layer so
// the emitted OFTEC_OBS report/trace artifacts are representative (see
// tools/run_obs_smoke.cmake).
#include <cstdio>
#include <cstring>

#include "common.h"
#include "core/dtm_loop.h"
#include "util/thread_pool.h"
#include "util/units.h"
#include "workload/trace.h"

int main(int argc, char** argv) {
  using namespace oftec;
  using namespace oftec::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  print_header("Online DTM loop: static vs exact-OFTEC vs LUT control",
               "OFTEC is fast enough for online control; the LUT serves the "
               "same decisions in microseconds at a small optimality loss");

  const floorplan::Floorplan& fp = paper_floorplan();

  // 10 s of Susan: the deepest phase structure in the suite (2 s in smoke
  // mode).
  workload::TraceOptions topt;
  topt.sample_count = smoke ? 40 : 200;
  topt.sample_interval = 0.05;
  const workload::PowerTrace trace = workload::generate_trace(
      workload::profile_for(workload::Benchmark::kSusan), fp, topt);

  std::vector<power::PowerMap> training;
  std::size_t n_training = 0;
  for (const workload::Benchmark b : workload::all_benchmarks()) {
    training.push_back(
        workload::peak_power_map(workload::profile_for(b), fp));
    // Smoke: 3 training maps keep the build under a second while still
    // fanning the per-entry OFTEC runs across the pool.
    if (smoke && ++n_training == 3) break;
  }
  const core::LutController lut = core::LutController::build(
      training, fp, paper_leakage(), {}, {},
      smoke ? util::ThreadPool::default_thread_count() : 1);

  struct PolicyRow {
    const char* name;
    core::DtmPolicy policy;
  };
  std::vector<PolicyRow> policies = {
      {"static (whole-trace max)", core::DtmPolicy::kStatic},
      {"exact OFTEC / 1 s", core::DtmPolicy::kExactOftec},
      {"LUT lookup / 1 s", core::DtmPolicy::kLut},
  };
  if (smoke) {
    policies = {{"exact OFTEC", core::DtmPolicy::kExactOftec},
                {"LUT lookup", core::DtmPolicy::kLut}};
  }
  const double control_period = smoke ? 0.5 : 1.0;

  std::printf("\nTrace: Susan, %.0f s, %zu samples; control period %.1f s; "
              "Tmax = 90 C.\n\n", trace.duration(), trace.size(),
              control_period);
  std::printf("  %-26s %-9s %-12s %-10s %-12s %-8s\n", "policy", "peak [C]",
              "t>Tmax [s]", "avg P [W]", "ctrl [ms]", "re-opts");
  std::printf("  ------------------------------------------------------------"
              "-------\n");

  for (const PolicyRow& p : policies) {
    core::DtmOptions opts;
    opts.policy = p.policy;
    opts.control_period = control_period;
    opts.time_step = smoke ? 20e-3 : 10e-3;
    if (p.policy == core::DtmPolicy::kLut) opts.lut = &lut;
    const core::DtmResult r =
        core::run_dtm_loop(fp, trace, paper_leakage(), opts);
    if (r.runaway) {
      std::printf("  %-26s RUNAWAY\n", p.name);
      continue;
    }
    std::printf("  %-26s %9.2f %12.2f %10.2f %12.0f %8zu\n", p.name,
                units::kelvin_to_celsius(r.peak_temperature),
                r.violation_time, r.average_cooling_power, r.control_time_ms,
                r.reoptimizations);
  }

  std::printf("\nReading: per-window re-optimization rides the trace's "
              "phases below the static setting's power; the LUT serves the "
              "same decisions with ~1000x less control latency, paying a "
              "small safety/optimality margin — exactly the paper's "
              "proposed deployment.\n");
  return 0;
}
