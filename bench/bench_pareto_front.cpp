// Power–temperature Pareto front: what Fig. 6(e)'s observation ("OFTEC
// slightly increases the temperature in order to reduce the cooling power")
// looks like when the thermal threshold itself is swept. For Quicksort,
// each relaxed degree of allowed die temperature buys a measurable amount
// of cooling power — until the constraint stops binding.
//
// Also times the sweep three ways: the reference path (fresh CoolingSystem
// per threshold, the seed structure), the shared-system path (evaluations
// are threshold-independent, so one memoized system serves all thresholds),
// and the shared path fanned across the OFTEC_THREADS pool. All three must
// produce the same frontier.
#include <cmath>
#include <cstdio>

#include "common.h"
#include "core/pareto.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace {

bool fronts_equal(const std::vector<oftec::core::ParetoPoint>& a,
                  const std::vector<oftec::core::ParetoPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].feasible != b[i].feasible || a[i].omega != b[i].omega ||
        a[i].current != b[i].current ||
        a[i].cooling_power != b[i].cooling_power) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using namespace oftec;
  using namespace oftec::bench;

  print_header("Cooling-power vs temperature Pareto front (Quicksort)",
               "the Optimization-1 trade-off as a curve: each allowed "
               "degree buys cooling power until the constraint stops "
               "binding");

  const floorplan::Floorplan& fp = paper_floorplan();
  const power::PowerMap peak = workload::peak_power_map(
      workload::profile_for(workload::Benchmark::kQuicksort), fp);

  core::ParetoOptions opts;
  opts.t_limit_lo_c = 84.0;
  opts.t_limit_hi_c = 104.0;
  opts.points = 11;

  opts.share_system = false;
  const util::Stopwatch ref_watch;
  const auto reference =
      core::sweep_pareto_front(fp, peak, paper_leakage(), opts);
  const double ref_ms = ref_watch.elapsed_ms();

  opts.share_system = true;
  const util::Stopwatch shared_watch;
  const auto front =
      core::sweep_pareto_front(fp, peak, paper_leakage(), opts);
  const double shared_ms = shared_watch.elapsed_ms();

  opts.threads = 0;  // OFTEC_THREADS / hardware concurrency
  const util::Stopwatch pool_watch;
  const auto threaded =
      core::sweep_pareto_front(fp, peak, paper_leakage(), opts);
  const double pool_ms = pool_watch.elapsed_ms();

  std::printf("\nSweep timing (%zu thresholds):\n", opts.points);
  std::printf("  per-threshold systems   %7.1f ms\n", ref_ms);
  std::printf("  shared system, serial   %7.1f ms  (%.2fx)\n", shared_ms,
              ref_ms / shared_ms);
  std::printf("  shared system, %zu thr    %7.1f ms  (%.2fx, fronts %s)\n",
              util::ThreadPool::default_thread_count(), pool_ms,
              ref_ms / pool_ms,
              fronts_equal(front, reference) && fronts_equal(front, threaded)
                  ? "identical"
                  : "MISMATCH");

  std::printf("\n  T limit [C]   feasible   P* [W]   T achieved [C]   "
              "I* [A]   w* [RPM]\n");
  std::printf("  -----------------------------------------------------------"
              "-------\n");
  double last_power = -1.0;
  double knee_c = 0.0;
  for (const core::ParetoPoint& pt : front) {
    if (pt.feasible) {
      std::printf("  %11.1f   %8s %8.2f %16.2f %8.2f %10.0f\n",
                  units::kelvin_to_celsius(pt.t_limit), "yes",
                  pt.cooling_power,
                  units::kelvin_to_celsius(pt.max_chip_temperature),
                  pt.current, units::rad_s_to_rpm(pt.omega));
      if (last_power > 0.0 && last_power - pt.cooling_power < 0.05 &&
          knee_c == 0.0) {
        knee_c = units::kelvin_to_celsius(pt.t_limit);
      }
      last_power = pt.cooling_power;
    } else {
      std::printf("  %11.1f   %8s %8s %16.2f %8s %10s\n",
                  units::kelvin_to_celsius(pt.t_limit), "NO", "-",
                  units::kelvin_to_celsius(pt.max_chip_temperature), "-",
                  "-");
    }
  }
  if (knee_c > 0.0) {
    std::printf("\nThe frontier flattens near %.0f C — beyond that the "
                "thermal constraint no longer binds and OFTEC's optimum "
                "stops moving.\n", knee_c);
  }
  return 0;
}
