// Google-benchmark microbenchmarks of the numerical kernels behind OFTEC:
// network assembly, the banded direct solve, one full nonlinear steady
// evaluation, and a complete Algorithm 1 run. These are the per-call costs
// that Table 2's runtime column decomposes into.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "common.h"
#include "core/problems.h"
#include "la/banded_lu.h"
#include "la/banded_matrix.h"
#include "la/vector_ops.h"
#include "thermal/steady.h"
#include "util/units.h"

namespace {

using namespace oftec;
using namespace oftec::bench;

const power::PowerMap& quicksort_peak() {
  static const power::PowerMap map = workload::peak_power_map(
      workload::profile_for(workload::Benchmark::kQuicksort),
      paper_floorplan());
  return map;
}

const thermal::ThermalModel& model_for_grid(std::size_t n) {
  static std::map<std::size_t, std::unique_ptr<thermal::ThermalModel>> cache;
  auto& slot = cache[n];
  if (!slot) {
    slot = std::make_unique<thermal::ThermalModel>(
        package::PackageConfig::paper_default(), paper_floorplan(), n, n);
  }
  return *slot;
}

void BM_NetworkAssembly(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const thermal::ThermalModel& model = model_for_grid(n);
  const la::Vector dyn = model.distribute(quicksort_peak());
  std::vector<power::TaylorCoefficients> taylor(dyn.size());
  for (auto& tc : taylor) tc = {0.01, 0.1, 330.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.assemble(300.0, 1.0, dyn, taylor));
  }
  state.SetLabel(std::to_string(model.layout().node_count()) + " nodes");
}
BENCHMARK(BM_NetworkAssembly)->Arg(6)->Arg(10)->Arg(16);

void BM_BandedSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const thermal::ThermalModel& model = model_for_grid(n);
  const la::Vector dyn = model.distribute(quicksort_peak());
  std::vector<power::TaylorCoefficients> taylor(dyn.size());
  for (auto& tc : taylor) tc = {0.01, 0.1, 330.0};
  const thermal::AssembledSystem sys =
      model.assemble(300.0, 1.0, dyn, taylor);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::BandedLu(sys.matrix).solve(sys.rhs));
  }
  state.SetLabel(std::to_string(model.layout().node_count()) + " nodes");
}
BENCHMARK(BM_BandedSolve)->Arg(6)->Arg(10)->Arg(16);

void BM_BandedRefactorizeSwap(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const thermal::ThermalModel& model = model_for_grid(n);
  const la::Vector dyn = model.distribute(quicksort_peak());
  std::vector<power::TaylorCoefficients> taylor(dyn.size());
  for (auto& tc : taylor) tc = {0.01, 0.1, 330.0};
  const thermal::AssembledSystem sys =
      model.assemble(300.0, 1.0, dyn, taylor);
  la::BandedLu lu(sys.matrix);
  la::BandedMatrix scratch;
  for (auto _ : state) {
    scratch = sys.matrix;  // storage circulates with the factor
    lu.refactorize_swap(scratch);
    benchmark::DoNotOptimize(lu.min_abs_pivot());
  }
  state.SetLabel(std::to_string(model.layout().node_count()) + " nodes");
}
BENCHMARK(BM_BandedRefactorizeSwap)->Arg(6)->Arg(10)->Arg(16);

la::Vector kernel_vector(std::size_t n, double seed) {
  la::Vector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = seed + 1e-3 * static_cast<double>(i % 97);
  }
  return v;
}

void BM_VectorDot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const la::Vector x = kernel_vector(n, 1.0);
  const la::Vector y = kernel_vector(n, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::dot(x, y));
  }
}
BENCHMARK(BM_VectorDot)->Arg(903)->Arg(8192);

void BM_VectorAxpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const la::Vector x = kernel_vector(n, 1.0);
  la::Vector y = kernel_vector(n, 2.0);
  for (auto _ : state) {
    la::axpy(1e-6, x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_VectorAxpy)->Arg(903)->Arg(8192);

// The fused CG update: y += alpha·x and ||y||² in one pass (vs axpy + dot).
void BM_VectorAxpyDot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const la::Vector x = kernel_vector(n, 1.0);
  la::Vector y = kernel_vector(n, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::axpy_dot(1e-6, x, y));
  }
}
BENCHMARK(BM_VectorAxpyDot)->Arg(903)->Arg(8192);

void BM_SteadyEvaluation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const thermal::ThermalModel& model = model_for_grid(n);
  const thermal::SteadySolver solver(model, model.distribute(quicksort_peak()),
                                     model.cell_leakage(paper_leakage()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(units::rpm_to_rad_s(3000.0), 1.0));
  }
}
BENCHMARK(BM_SteadyEvaluation)->Arg(6)->Arg(10);

void BM_FullOftecRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    core::CoolingSystem::Config cfg;
    cfg.grid_nx = cfg.grid_ny = n;
    const core::CoolingSystem sys(paper_floorplan(), quicksort_peak(),
                                  paper_leakage(), cfg);
    benchmark::DoNotOptimize(core::run_oftec(sys));
  }
}
BENCHMARK(BM_FullOftecRun)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
