// Google-benchmark microbenchmarks of the numerical kernels behind OFTEC:
// network assembly, the banded direct solve, one full nonlinear steady
// evaluation, and a complete Algorithm 1 run. These are the per-call costs
// that Table 2's runtime column decomposes into.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "common.h"
#include "core/problems.h"
#include "la/banded_lu.h"
#include "thermal/steady.h"
#include "util/units.h"

namespace {

using namespace oftec;
using namespace oftec::bench;

const power::PowerMap& quicksort_peak() {
  static const power::PowerMap map = workload::peak_power_map(
      workload::profile_for(workload::Benchmark::kQuicksort),
      paper_floorplan());
  return map;
}

const thermal::ThermalModel& model_for_grid(std::size_t n) {
  static std::map<std::size_t, std::unique_ptr<thermal::ThermalModel>> cache;
  auto& slot = cache[n];
  if (!slot) {
    slot = std::make_unique<thermal::ThermalModel>(
        package::PackageConfig::paper_default(), paper_floorplan(), n, n);
  }
  return *slot;
}

void BM_NetworkAssembly(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const thermal::ThermalModel& model = model_for_grid(n);
  const la::Vector dyn = model.distribute(quicksort_peak());
  std::vector<power::TaylorCoefficients> taylor(dyn.size());
  for (auto& tc : taylor) tc = {0.01, 0.1, 330.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.assemble(300.0, 1.0, dyn, taylor));
  }
  state.SetLabel(std::to_string(model.layout().node_count()) + " nodes");
}
BENCHMARK(BM_NetworkAssembly)->Arg(6)->Arg(10)->Arg(16);

void BM_BandedSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const thermal::ThermalModel& model = model_for_grid(n);
  const la::Vector dyn = model.distribute(quicksort_peak());
  std::vector<power::TaylorCoefficients> taylor(dyn.size());
  for (auto& tc : taylor) tc = {0.01, 0.1, 330.0};
  const thermal::AssembledSystem sys =
      model.assemble(300.0, 1.0, dyn, taylor);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::BandedLu(sys.matrix).solve(sys.rhs));
  }
  state.SetLabel(std::to_string(model.layout().node_count()) + " nodes");
}
BENCHMARK(BM_BandedSolve)->Arg(6)->Arg(10)->Arg(16);

void BM_SteadyEvaluation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const thermal::ThermalModel& model = model_for_grid(n);
  const thermal::SteadySolver solver(model, model.distribute(quicksort_peak()),
                                     model.cell_leakage(paper_leakage()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(units::rpm_to_rad_s(3000.0), 1.0));
  }
}
BENCHMARK(BM_SteadyEvaluation)->Arg(6)->Arg(10);

void BM_FullOftecRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    core::CoolingSystem::Config cfg;
    cfg.grid_nx = cfg.grid_ny = n;
    const core::CoolingSystem sys(paper_floorplan(), quicksort_peak(),
                                  paper_leakage(), cfg);
    benchmark::DoNotOptimize(core::run_oftec(sys));
  }
}
BENCHMARK(BM_FullOftecRun)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
