// Google-benchmark microbenchmarks of the numerical kernels behind OFTEC:
// network assembly, the banded direct solve, one full nonlinear steady
// evaluation, and a complete Algorithm 1 run. These are the per-call costs
// that Table 2's runtime column decomposes into.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "common.h"
#include "core/problems.h"
#include "la/backend.h"
#include "la/banded_lu.h"
#include "la/banded_matrix.h"
#include "la/sparse.h"
#include "la/split_cholesky.h"
#include "la/vector_ops.h"
#include "thermal/solve_engine.h"
#include "thermal/steady.h"
#include "util/stopwatch.h"
#include "util/units.h"

namespace {

using namespace oftec;
using namespace oftec::bench;

const power::PowerMap& quicksort_peak() {
  static const power::PowerMap map = workload::peak_power_map(
      workload::profile_for(workload::Benchmark::kQuicksort),
      paper_floorplan());
  return map;
}

const thermal::ThermalModel& model_for_grid(std::size_t n) {
  static std::map<std::size_t, std::unique_ptr<thermal::ThermalModel>> cache;
  auto& slot = cache[n];
  if (!slot) {
    slot = std::make_unique<thermal::ThermalModel>(
        package::PackageConfig::paper_default(), paper_floorplan(), n, n);
  }
  return *slot;
}

void BM_NetworkAssembly(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const thermal::ThermalModel& model = model_for_grid(n);
  const la::Vector dyn = model.distribute(quicksort_peak());
  std::vector<power::TaylorCoefficients> taylor(dyn.size());
  for (auto& tc : taylor) tc = {0.01, 0.1, 330.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.assemble(300.0, 1.0, dyn, taylor));
  }
  state.SetLabel(std::to_string(model.layout().node_count()) + " nodes");
}
BENCHMARK(BM_NetworkAssembly)->Arg(6)->Arg(10)->Arg(16);

void BM_BandedSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const thermal::ThermalModel& model = model_for_grid(n);
  const la::Vector dyn = model.distribute(quicksort_peak());
  std::vector<power::TaylorCoefficients> taylor(dyn.size());
  for (auto& tc : taylor) tc = {0.01, 0.1, 330.0};
  const thermal::AssembledSystem sys =
      model.assemble(300.0, 1.0, dyn, taylor);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::BandedLu(sys.matrix).solve(sys.rhs));
  }
  state.SetLabel(std::to_string(model.layout().node_count()) + " nodes");
}
BENCHMARK(BM_BandedSolve)->Arg(6)->Arg(10)->Arg(16);

void BM_BandedRefactorizeSwap(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const thermal::ThermalModel& model = model_for_grid(n);
  const la::Vector dyn = model.distribute(quicksort_peak());
  std::vector<power::TaylorCoefficients> taylor(dyn.size());
  for (auto& tc : taylor) tc = {0.01, 0.1, 330.0};
  const thermal::AssembledSystem sys =
      model.assemble(300.0, 1.0, dyn, taylor);
  la::BandedLu lu(sys.matrix);
  la::BandedMatrix scratch;
  for (auto _ : state) {
    scratch = sys.matrix;  // storage circulates with the factor
    lu.refactorize_swap(scratch);
    benchmark::DoNotOptimize(lu.min_abs_pivot());
  }
  state.SetLabel(std::to_string(model.layout().node_count()) + " nodes");
}
BENCHMARK(BM_BandedRefactorizeSwap)->Arg(6)->Arg(10)->Arg(16);

la::Vector kernel_vector(std::size_t n, double seed) {
  la::Vector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = seed + 1e-3 * static_cast<double>(i % 97);
  }
  return v;
}

void BM_VectorDot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const la::Vector x = kernel_vector(n, 1.0);
  const la::Vector y = kernel_vector(n, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::dot(x, y));
  }
}
BENCHMARK(BM_VectorDot)->Arg(903)->Arg(8192);

void BM_VectorAxpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const la::Vector x = kernel_vector(n, 1.0);
  la::Vector y = kernel_vector(n, 2.0);
  for (auto _ : state) {
    la::axpy(1e-6, x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_VectorAxpy)->Arg(903)->Arg(8192);

// The fused CG update: y += alpha·x and ||y||² in one pass (vs axpy + dot).
void BM_VectorAxpyDot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const la::Vector x = kernel_vector(n, 1.0);
  la::Vector y = kernel_vector(n, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::axpy_dot(1e-6, x, y));
  }
}
BENCHMARK(BM_VectorAxpyDot)->Arg(903)->Arg(8192);

void BM_SteadyEvaluation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const thermal::ThermalModel& model = model_for_grid(n);
  const thermal::SteadySolver solver(model, model.distribute(quicksort_peak()),
                                     model.cell_leakage(paper_leakage()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(units::rpm_to_rad_s(3000.0), 1.0));
  }
}
BENCHMARK(BM_SteadyEvaluation)->Arg(6)->Arg(10);

void BM_FullOftecRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    core::CoolingSystem::Config cfg;
    cfg.grid_nx = cfg.grid_ny = n;
    const core::CoolingSystem sys(paper_floorplan(), quicksort_peak(),
                                  paper_leakage(), cfg);
    benchmark::DoNotOptimize(core::run_oftec(sys));
  }
}
BENCHMARK(BM_FullOftecRun)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Panel / fused-CG kernels across the explicit backend tables
// ---------------------------------------------------------------------------

/// Second benchmark argument: which dispatch table to exercise. Unavailable
/// flavors (machine without AVX2/AVX-512) skip with an explanatory error.
const la::BackendOps* backend_table(int idx) {
  switch (idx) {
    case 0: return &la::scalar_backend();
    case 1: return la::avx2_backend();
    case 2: return la::avx512_backend();
    default: return nullptr;
  }
}

const char* backend_arg_label(int idx) {
  return idx == 0 ? "scalar" : idx == 1 ? "avx2" : "avx512";
}

constexpr std::size_t kBenchFolds = 8;

// The trsv_bwd inner shape: kBenchFolds simultaneous contiguous folds with
// stride-offset source columns and ascending capped lengths.
void BM_PanelFold(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const la::BackendOps* ops = backend_table(static_cast<int>(state.range(1)));
  if (ops == nullptr) {
    state.SkipWithError("backend flavor unavailable on this machine");
    return;
  }
  const la::Vector a = kernel_vector(n, 1.0);
  const la::Vector x = kernel_vector(n, 2.0);
  const la::Vector init = kernel_vector(kBenchFolds, 3.0);
  const std::size_t sa = std::max<std::size_t>(1, n / (2 * kBenchFolds));
  const std::size_t len_cap = n - (kBenchFolds - 1) * sa;
  const std::size_t len0 = std::max<std::size_t>(1, len_cap / 2);
  double out[kBenchFolds];
  for (auto _ : state) {
    ops->panel_fold(kBenchFolds, init.data(), a.data(), sa, len0, len_cap,
                    x.data(), out);
    benchmark::DoNotOptimize(out[0]);
  }
  state.SetLabel(backend_arg_label(static_cast<int>(state.range(1))));
}
BENCHMARK(BM_PanelFold)->Args({8192, 0})->Args({8192, 1})->Args({8192, 2});

/// Jacobi-preconditioned SPD five-diagonal system (a 96-wide grid stencil)
/// at the 32×32-floorplan node count.
const la::CsrMatrix& cg_matrix(std::size_t n) {
  static std::map<std::size_t, std::unique_ptr<la::CsrMatrix>> cache;
  auto& slot = cache[n];
  if (!slot) {
    la::TripletBuilder b(n);
    for (std::size_t i = 0; i < n; ++i) {
      b.add(i, i, 4.5);
      if (i + 1 < n) {
        b.add(i, i + 1, -1.0);
        b.add(i + 1, i, -1.0);
      }
      if (i + 96 < n) {
        b.add(i, i + 96, -1.0);
        b.add(i + 96, i, -1.0);
      }
    }
    slot = std::make_unique<la::CsrMatrix>(b.build());
  }
  return *slot;
}

/// Fixed count of fully fused CG iterations (the exact solve_cg loop body:
/// multiply_dot, cg_update, precond_dot, search_dir_update — zero unfused
/// vector passes). Returns an arithmetic sink so nothing is optimized away.
double fused_cg_iterations(const la::CsrMatrix& a, const la::BackendOps& ops,
                           std::size_t iters) {
  const std::size_t n = a.size();
  const la::Vector b(n, 1.0);
  const la::Vector inv_d(n, 1.0 / 4.5);
  la::Vector x(n, 0.0);
  la::Vector r = b;
  la::Vector z(n), p, ap;
  double rz = ops.precond_dot(n, inv_d.data(), r.data(), z.data());
  p = z;
  double sink = 0.0;
  for (std::size_t it = 0; it < iters; ++it) {
    const double p_ap = a.multiply_dot(p, ap);
    if (p_ap <= 0.0) break;
    const double alpha = rz / p_ap;
    sink += std::sqrt(
        ops.cg_update(n, alpha, p.data(), ap.data(), x.data(), r.data()));
    const double rz_new = ops.precond_dot(n, inv_d.data(), r.data(), z.data());
    ops.search_dir_update(n, rz_new / rz, z.data(), p.data());
    rz = rz_new;
  }
  return sink;
}

void BM_FusedCgIter(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const la::BackendOps* ops = backend_table(static_cast<int>(state.range(1)));
  if (ops == nullptr) {
    state.SkipWithError("backend flavor unavailable on this machine");
    return;
  }
  const la::CsrMatrix& a = cg_matrix(n);
  constexpr std::size_t kIters = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fused_cg_iterations(a, *ops, kIters));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kIters));
  state.SetLabel(backend_arg_label(static_cast<int>(state.range(1))));
}
BENCHMARK(BM_FusedCgIter)->Args({9219, 0})->Args({9219, 1})->Args({9219, 2});

// ---------------------------------------------------------------------------
// 32×32 acceptance section: refactorize and end-to-end steady solve,
// scalar vs each simd flavor, recorded in the bench JSON ("micro_kernels").
// ---------------------------------------------------------------------------

struct BackendTiming {
  std::string name;             // resolved table name, e.g. "simd-avx512"
  double chol_refactorize_ms = 0.0;
  double lu_refactorize_ms = 0.0;
  double steady_solve_ms = 0.0;
  double panel_fold_ms = 0.0;   // per kBenchFolds-fold call, n = 8192
  double fused_cg_iter_ms = 0.0;  // per fused iteration, n = 9219
};

/// Measures the hot path at the 32×32 grid (n = 9219, bandwidth 1025) under
/// one installed backend. The factorizations run once per call — at this
/// size a single factorization is seconds-scale, well above timer noise.
BackendTiming measure_backend(const char* spec,
                              const thermal::AssembledSystem& spd,
                              const thermal::AssembledSystem& gen,
                              const thermal::SteadySolver& solver32) {
  const la::BackendOps& ops = la::install_backend(spec);
  BackendTiming t;
  t.name = ops.name;

  {
    auto symbolic = std::make_shared<const la::BandedCholeskySymbolic>(
        spd.matrix.size(), spd.matrix.lower_bandwidth());
    la::BandedCholeskyNumeric numeric(symbolic);
    numeric.refactorize(spd.matrix);  // warm the factor storage
    const util::Stopwatch watch;
    numeric.refactorize(spd.matrix);
    t.chol_refactorize_ms = watch.elapsed_ms();
  }
  {
    la::BandedLu lu(gen.matrix);
    la::BandedMatrix scratch = gen.matrix;
    const util::Stopwatch watch;
    lu.refactorize_swap(scratch);
    t.lu_refactorize_ms = watch.elapsed_ms();
  }
  {
    thermal::EngineOptions direct;
    direct.use_iterative = false;
    const thermal::SolveEngine engine(solver32, direct);
    const thermal::OperatingPoint pt{
        0.7 * solver32.model().config().fan.max_speed, 0.0};
    const util::Stopwatch watch;
    const thermal::SteadyResult r = engine.solve(pt);
    t.steady_solve_ms = watch.elapsed_ms();
    if (r.status != SolveStatus::kOk) {
      std::fprintf(stderr, "micro_kernels: 32x32 steady solve under %s did "
                           "not converge\n", ops.name);
    }
  }
  {
    const std::size_t n = 8192;
    const la::Vector a = kernel_vector(n, 1.0);
    const la::Vector x = kernel_vector(n, 2.0);
    const la::Vector init = kernel_vector(kBenchFolds, 3.0);
    const std::size_t sa = std::max<std::size_t>(1, n / (2 * kBenchFolds));
    const std::size_t len_cap = n - (kBenchFolds - 1) * sa;
    const std::size_t len0 = std::max<std::size_t>(1, len_cap / 2);
    double out[kBenchFolds];
    const std::size_t reps = 4000;
    const util::Stopwatch watch;
    for (std::size_t i = 0; i < reps; ++i) {
      ops.panel_fold(kBenchFolds, init.data(), a.data(), sa, len0, len_cap,
                     x.data(), out);
      benchmark::DoNotOptimize(out[0]);
    }
    t.panel_fold_ms = watch.elapsed_ms() / static_cast<double>(reps);
  }
  {
    const la::CsrMatrix& a = cg_matrix(9219);
    const std::size_t iters = 512;
    const util::Stopwatch watch;
    benchmark::DoNotOptimize(fused_cg_iterations(a, ops, iters));
    t.fused_cg_iter_ms = watch.elapsed_ms() / static_cast<double>(iters);
  }
  return t;
}

/// Runs the acceptance measurements and merges a "micro_kernels" section
/// into $OFTEC_BENCH_JSON / ./BENCH_transient.json. The acceptance targets
/// (refactorize >= 2.0x, steady solve >= 1.5x, simd vs scalar at 32×32) are
/// recorded alongside the measurements; the verdict prints loudly but does
/// not gate — shared-runner timings are informational (see ci.yml).
void run_speedup_section() {
  std::printf("32x32-grid backend speedups (n = 9219, bandwidth = 1025):\n");
  const thermal::ThermalModel& model = model_for_grid(32);
  const la::Vector dyn = model.distribute(quicksort_peak());
  // Linearize the real per-cell leakage (chord fit, as the steady solver
  // does): a synthetic uniform slope overwhelms the fine-grid cell
  // conductances and breaks positive definiteness at 32×32.
  const std::vector<power::ExponentialTerm> leak =
      model.cell_leakage(paper_leakage());
  std::vector<power::TaylorCoefficients> taylor(dyn.size());
  for (std::size_t i = 0; i < taylor.size(); ++i) {
    taylor[i] = power::chord_linearize(leak[i], 330.0);
  }
  // I = 0 keeps the system symmetric positive definite (Cholesky path);
  // I = 1 A folds the TEC terms in and forces the pivoted-LU path.
  const thermal::AssembledSystem spd = model.assemble(300.0, 0.0, dyn, taylor);
  const thermal::AssembledSystem gen = model.assemble(300.0, 1.0, dyn, taylor);
  const thermal::SteadySolver solver32(model, model.distribute(quicksort_peak()),
                                       model.cell_leakage(paper_leakage()));

  std::vector<BackendTiming> timings;
  timings.push_back(measure_backend("scalar", spd, gen, solver32));
  if (la::avx2_backend() != nullptr) {
    timings.push_back(measure_backend("avx2", spd, gen, solver32));
  }
  if (la::avx512_backend() != nullptr) {
    timings.push_back(measure_backend("avx512", spd, gen, solver32));
  }
  la::install_backend(std::getenv("OFTEC_LA_BACKEND"));  // restore selection

  util::json::Value chol = util::json::Value::object();
  util::json::Value lu = util::json::Value::object();
  util::json::Value steady = util::json::Value::object();
  util::json::Value pfold = util::json::Value::object();
  util::json::Value cgiter = util::json::Value::object();
  for (const BackendTiming& t : timings) {
    std::printf("  %-12s chol_refactorize %8.1f ms | lu_refactorize %8.1f ms "
                "| steady %8.1f ms | panel_fold %.4f ms | cg_iter %.4f ms\n",
                t.name.c_str(), t.chol_refactorize_ms, t.lu_refactorize_ms,
                t.steady_solve_ms, t.panel_fold_ms, t.fused_cg_iter_ms);
    chol[t.name] = t.chol_refactorize_ms;
    lu[t.name] = t.lu_refactorize_ms;
    steady[t.name] = t.steady_solve_ms;
    pfold[t.name] = t.panel_fold_ms;
    cgiter[t.name] = t.fused_cg_iter_ms;
  }

  util::json::Value j = util::json::Value::object();
  j["grid_nx"] = std::size_t{32};
  j["nodes"] = model.layout().node_count();
  j["bandwidth"] = spd.matrix.lower_bandwidth();
  j["cholesky_refactorize_ms"] = chol;
  j["lu_refactorize_swap_ms"] = lu;
  j["steady_solve_direct_ms"] = steady;
  j["panel_fold_ms_per_call_n8192"] = pfold;
  j["fused_cg_iter_ms_per_iter_n9219"] = cgiter;

  if (timings.size() > 1) {
    // Speedup of the auto-resolved simd flavor (last entry: the widest one
    // available) over scalar — the acceptance numbers.
    const BackendTiming& s = timings.front();
    const BackendTiming& v = timings.back();
    const double refac = s.chol_refactorize_ms / v.chol_refactorize_ms;
    const double refac_lu = s.lu_refactorize_ms / v.lu_refactorize_ms;
    const double steady_sp = s.steady_solve_ms / v.steady_solve_ms;
    j["refactorize_speedup_simd_vs_scalar"] = refac;
    j["lu_refactorize_speedup_simd_vs_scalar"] = refac_lu;
    j["steady_solve_speedup_simd_vs_scalar"] = steady_sp;
    j["panel_fold_speedup_simd_vs_scalar"] =
        s.panel_fold_ms / v.panel_fold_ms;
    j["fused_cg_iter_speedup_simd_vs_scalar"] =
        s.fused_cg_iter_ms / v.fused_cg_iter_ms;
    const bool ok = refac >= 2.0 && refac_lu >= 2.0 && steady_sp >= 1.5;
    j["acceptance_refactorize_ge_2x_steady_ge_1p5x"] = ok;
    std::printf("  speedups (%s vs scalar): refactorize %.2fx (chol) / "
                "%.2fx (lu), steady solve %.2fx -> %s\n", v.name.c_str(),
                refac, refac_lu, steady_sp,
                ok ? "PASS (>=2.0x / >=1.5x)" : "BELOW TARGET");
  } else {
    std::printf("  no simd flavor available; scalar-only measurements "
                "recorded\n");
  }
  update_bench_artifact("micro_kernels", j);
}

}  // namespace

int main(int argc, char** argv) {
  bool speedups_only = false;
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--speedups-only") == 0) {
      speedups_only = true;
      continue;
    }
    argv[out_argc++] = argv[i];
  }
  argc = out_argc;

  // The acceptance section factorizes n = 9219 repeatedly (about a minute);
  // it only runs when asked for, so filtered microbenchmark runs stay fast.
  if (speedups_only) {
    run_speedup_section();
    return 0;
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
