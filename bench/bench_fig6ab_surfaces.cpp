// Figure 6(a) and 6(b): the objective surfaces of Optimizations 2 and 1 for
// the Basicmath benchmark — maximum die temperature 𝒯(ω, I) and cooling
// power 𝒫(ω, I) over the (ω, I_TEC) plane.
//
// The paper's observations to reproduce:
//   * both surfaces blow up (→ ∞, "dark red") at small ω: thermal runaway;
//   * raising I alone cannot escape runaway — ω must rise too (~150 RPM);
//   * the 𝒯 minimum sits away from the origin; the 𝒫 minimum sits near it;
//   * both surfaces are smooth with only minor non-convexities.
//
// The sweep runs on the batched SolveEngine and doubles as its shop-floor
// benchmark: the per-point serial reference (SteadySolver, the seed path) is
// timed on a subsample, the engine is timed serially and batched across the
// OFTEC_THREADS pool, and the batch is checked bit-identical to the engine's
// serial pass.
//
// Output: a coarse ASCII heat map per surface plus CSVs
// (fig6a_temperature.csv / fig6b_power.csv) for re-plotting.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "common.h"
#include "thermal/solve_engine.h"
#include "util/csv.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/units.h"

namespace {

using namespace oftec;
using namespace oftec::bench;

constexpr std::size_t kOmegaPoints = 25;
constexpr std::size_t kCurrentPoints = 21;
constexpr std::size_t kReferenceStride = 5;  // seed-path timing subsample

char shade(double value, double lo, double hi) {
  if (!std::isfinite(value)) return '#';  // runaway ("dark red")
  static const char ramp[] = " .:-=+*%@";
  const double t = std::clamp((value - lo) / (hi - lo), 0.0, 1.0);
  return ramp[static_cast<std::size_t>(t * 8.0)];
}

}  // namespace

int main() {
  print_header("Figure 6(a,b): objective surfaces over (w, I) — Basicmath",
               "runaway at low w regardless of I; T-minimum away from the "
               "origin, P-minimum near it; only minor non-convexity");

  const floorplan::Floorplan& fp = paper_floorplan();
  const power::PowerMap peak = workload::peak_power_map(
      workload::profile_for(workload::Benchmark::kBasicmath), fp);
  const core::CoolingSystem sys(fp, peak, paper_leakage(), {});
  const thermal::SolveEngine& engine = sys.engine();

  // Grid in (I-major, ω-minor) order — the order the CSVs are written in.
  std::vector<thermal::OperatingPoint> pts;
  pts.reserve(kCurrentPoints * kOmegaPoints);
  for (std::size_t ci = 0; ci < kCurrentPoints; ++ci) {
    const double current = sys.current_max() * static_cast<double>(ci) /
                           (kCurrentPoints - 1);
    for (std::size_t wi = 0; wi < kOmegaPoints; ++wi) {
      const double omega =
          sys.omega_max() * static_cast<double>(wi) / (kOmegaPoints - 1);
      pts.push_back({omega, current});
    }
  }

  // --- Timing: seed serial path (subsampled) vs engine serial vs batched.
  const util::Stopwatch ref_watch;
  std::size_t ref_count = 0;
  for (std::size_t i = 0; i < pts.size(); i += kReferenceStride) {
    (void)sys.solver().solve(pts[i].omega, pts[i].current);
    ++ref_count;
  }
  const double ref_ms_per_pt = ref_watch.elapsed_ms() /
                               static_cast<double>(ref_count);

  const util::Stopwatch serial_watch;
  const std::vector<thermal::SteadyResult> serial =
      engine.solve_serial(pts);
  const double serial_ms = serial_watch.elapsed_ms();

  const util::Stopwatch batch_watch;
  const std::vector<thermal::SteadyResult> batch = engine.solve_batch(pts);
  const double batch_ms = batch_watch.elapsed_ms();

  bool batch_identical = true;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (batch[i].runaway != serial[i].runaway ||
        batch[i].max_chip_temperature != serial[i].max_chip_temperature ||
        batch[i].tec_power != serial[i].tec_power ||
        batch[i].leakage_power != serial[i].leakage_power) {
      batch_identical = false;
      break;
    }
  }

  const double serial_ms_per_pt = serial_ms / static_cast<double>(pts.size());
  const double batch_ms_per_pt = batch_ms / static_cast<double>(pts.size());
  std::printf("\nSolve engine timing over %zu operating points:\n",
              pts.size());
  std::printf("  seed serial path   %7.2f ms/pt (sampled every %zu)\n",
              ref_ms_per_pt, kReferenceStride);
  std::printf("  engine, serial     %7.2f ms/pt  (%.2fx)\n", serial_ms_per_pt,
              ref_ms_per_pt / serial_ms_per_pt);
  std::printf("  engine, batched    %7.2f ms/pt  (%.2fx, %zu threads, "
              "results %s)\n",
              batch_ms_per_pt, ref_ms_per_pt / batch_ms_per_pt,
              util::ThreadPool::default_thread_count(),
              batch_identical ? "bit-identical to serial" : "MISMATCH");

  // --- Surfaces from the batched results.
  util::CsvWriter temp_csv, power_csv;
  temp_csv.set_header({"omega_rpm", "current_a", "max_temp_c"});
  power_csv.set_header({"omega_rpm", "current_a", "cooling_power_w"});

  std::vector<std::vector<double>> temp(kCurrentPoints),
      power(kCurrentPoints);
  double t_lo = 1e300, t_hi = 0.0, p_lo = 1e300, p_hi = 0.0;
  double t_best = 1e300, p_best = 1e300;
  double t_best_w = 0, t_best_i = 0, p_best_w = 0, p_best_i = 0;
  double runaway_boundary_rpm = 0.0;

  for (std::size_t ci = 0; ci < kCurrentPoints; ++ci) {
    for (std::size_t wi = 0; wi < kOmegaPoints; ++wi) {
      const thermal::SteadyResult& sr = batch[ci * kOmegaPoints + wi];
      const double omega = pts[ci * kOmegaPoints + wi].omega;
      const double current = pts[ci * kOmegaPoints + wi].current;
      const bool runaway = sr.runaway || !sr.converged;
      const double rpm = units::rad_s_to_rpm(omega);
      const double t_k = runaway ? std::numeric_limits<double>::infinity()
                                 : sr.max_chip_temperature;
      const double t_c = units::kelvin_to_celsius(t_k);
      const double p_w =
          runaway ? std::numeric_limits<double>::infinity()
                  : sr.leakage_power + sr.tec_power +
                        sys.thermal_model().config().fan.power(omega);
      temp[ci].push_back(t_k);
      power[ci].push_back(p_w);
      temp_csv.add_row({util::format_double(rpm, 1),
                        util::format_double(current, 3),
                        runaway ? "inf" : util::format_double(t_c, 3)});
      power_csv.add_row({util::format_double(rpm, 1),
                         util::format_double(current, 3),
                         runaway ? "inf" : util::format_double(p_w, 3)});
      if (runaway) {
        runaway_boundary_rpm = std::max(runaway_boundary_rpm, rpm);
      } else {
        t_lo = std::min(t_lo, t_k);
        t_hi = std::max(t_hi, t_k);
        p_lo = std::min(p_lo, p_w);
        p_hi = std::max(p_hi, p_w);
        if (t_k < t_best) {
          t_best = t_k;
          t_best_w = rpm;
          t_best_i = current;
        }
        if (p_w < p_best) {
          p_best = p_w;
          p_best_w = rpm;
          p_best_i = current;
        }
      }
    }
  }

  auto print_surface = [&](const char* title,
                           const std::vector<std::vector<double>>& grid,
                           double lo, double hi) {
    std::printf("\n%s  ('#' = thermal runaway; darker = higher)\n", title);
    std::printf("I[A]\\w[RPM] 0%*s%.0f\n", static_cast<int>(kOmegaPoints) - 6,
                "", units::rad_s_to_rpm(524.0));
    for (std::size_t ci = kCurrentPoints; ci-- > 0;) {
      std::printf("%5.2f ", 5.0 * static_cast<double>(ci) /
                                (kCurrentPoints - 1));
      for (const double v : grid[ci]) std::putchar(shade(v, lo, hi));
      std::putchar('\n');
    }
  };

  print_surface("Fig 6(a): max die temperature T(w, I)", temp, t_lo, t_hi);
  print_surface("Fig 6(b): cooling power P(w, I)", power, p_lo, p_hi);

  std::printf("\nRunaway region extends to w = %.0f RPM "
              "(paper: ~150 RPM needed to escape).\n", runaway_boundary_rpm);
  std::printf("T minimum: %.2f C at (%.0f RPM, %.2f A) — away from origin.\n",
              units::kelvin_to_celsius(t_best), t_best_w, t_best_i);
  std::printf("P minimum: %.2f W at (%.0f RPM, %.2f A) — near the origin.\n",
              p_best, p_best_w, p_best_i);

  if (temp_csv.write_file("fig6a_temperature.csv") &&
      power_csv.write_file("fig6b_power.csv")) {
    std::printf("Wrote fig6a_temperature.csv / fig6b_power.csv.\n");
  }
  return batch_identical ? 0 : 1;
}
