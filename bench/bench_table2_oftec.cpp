// Table 2: OFTEC's optimum TEC current I*, fan speed ω*, and runtime for the
// eight MiBench benchmarks. The paper reports a 437 ms average on an
// i7-3770 (MATLAB SQP + MEX'd C thermal simulator); we report the measured
// wall clock of this all-C++ implementation at the default 10×10 grid.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace oftec;
  using namespace oftec::bench;

  print_header("Table 2: OFTEC results for MiBench benchmarks",
               "I* and w* increase with the input dynamic power; average "
               "runtime 437 ms, slowest 693 ms");

  const std::vector<SweepRow> rows = run_paper_sweep();

  util::Table table;
  table.set_header({"Benchmark", "Pdyn [W]", "I* [A]", "w* [RPM]", "T [C]",
                    "P [W]", "Runtime [ms]", "solves"});
  double total_ms = 0.0, worst_ms = 0.0;
  for (const SweepRow& r : rows) {
    table.add_row({r.name, format_watts(r.dynamic_power, 1),
                   util::format_double(r.oftec.current, 2),
                   format_rpm(r.oftec.omega),
                   format_celsius(r.oftec.max_chip_temperature),
                   format_watts(r.oftec.power.total()),
                   util::format_double(r.oftec.runtime_ms, 0),
                   std::to_string(r.oftec.thermal_solves)});
    total_ms += r.oftec.runtime_ms;
    worst_ms = std::max(worst_ms, r.oftec.runtime_ms);
  }
  table.print(std::cout);
  std::printf("\nAverage runtime: %.0f ms (paper: 437 ms on i7-3770)\n",
              total_ms / static_cast<double>(rows.size()));
  std::printf("Slowest runtime: %.0f ms (paper: 693 ms)\n", worst_ms);
  return 0;
}
