// Shared machinery for the paper-reproduction bench binaries.
//
// Every Figure-6 panel compares the same three systems over the same eight
// benchmarks; run_paper_sweep() executes that sweep once (OFTEC + variable-ω
// + fixed-ω + TEC-only per benchmark) and the per-figure binaries print
// their slice of it.
#pragma once

#include <string>
#include <vector>

#include "core/baselines.h"
#include "util/json.h"
#include "core/cooling_system.h"
#include "core/oftec.h"
#include "floorplan/ev6.h"
#include "power/mcpat_like.h"
#include "workload/benchmarks.h"

namespace oftec::bench {

/// Everything measured for one benchmark.
struct SweepRow {
  workload::Benchmark benchmark;
  std::string name;
  double dynamic_power = 0.0;  ///< peak total [W]
  core::OftecResult oftec;
  core::BaselineResult variable_fan;
  core::BaselineResult fixed_fan;
  core::BaselineResult tec_only;
  /// Standalone Optimization 2 runs (Fig. 6(c,d)) for the hybrid system and
  /// the fan-only baseline.
  core::MinTemperatureResult oftec_min_temp;
  core::MinTemperatureResult variable_min_temp;
};

struct SweepOptions {
  std::size_t grid_nx = 10;
  std::size_t grid_ny = 10;
  double fixed_fan_rpm = 2000.0;  ///< paper's baseline #2
  core::OftecOptions oftec;
  bool run_tec_only = true;
};

/// Shared floorplan / leakage singletons (paper defaults).
[[nodiscard]] const floorplan::Floorplan& paper_floorplan();
[[nodiscard]] const power::LeakageModel& paper_leakage();

/// Run the full three-system sweep over all eight benchmarks.
[[nodiscard]] std::vector<SweepRow> run_paper_sweep(
    const SweepOptions& options = {});

/// Format helpers shared by the binaries.
[[nodiscard]] std::string format_celsius(double kelvin, int decimals = 2);
[[nodiscard]] std::string format_watts(double watts, int decimals = 2);
[[nodiscard]] std::string format_rpm(double rad_s, int decimals = 0);
/// "RUNAWAY" / "> Tmax" / plain value — the way Fig. 6 marks failures.
[[nodiscard]] std::string format_temperature_outcome(double kelvin,
                                                     double t_max_kelvin);

/// Standard bench preamble: figure id + what the paper shows. Also arms the
/// exit-time observability hook (see emit_obs_artifacts), so every bench
/// binary run with OFTEC_OBS=1 produces a machine-readable metrics artifact.
void print_header(const std::string& figure, const std::string& claim);

/// When obs is enabled: write the env-configured report/trace files (or a
/// default ./obs_report.json when OFTEC_OBS=1 but no report path is set) and
/// print the span self-time profile to stderr. No-op when obs is off.
/// print_header() registers this via atexit; callable directly for binaries
/// that want the artifacts mid-run.
void emit_obs_artifacts();

/// Path of the machine-readable transient-performance artifact:
/// $OFTEC_BENCH_JSON when set, else ./BENCH_transient.json (the CI perf-smoke
/// job uploads it; a baseline is checked in at the repo root).
[[nodiscard]] std::string bench_artifact_path();

/// Read-merge-write one section of the artifact: parses the existing file (a
/// missing or corrupt file starts fresh), replaces `section` with `payload`,
/// and rewrites the whole document — the transient benches share one file.
void update_bench_artifact(const std::string& section,
                           const util::json::Value& payload);

}  // namespace oftec::bench
