// Figure 6(d): cooling power consumption after Optimization 2. OFTEC spends
// the most power here — the objective is temperature, and the extra watts go
// into the TECs.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "util/table.h"

int main() {
  using namespace oftec;
  using namespace oftec::bench;

  print_header("Figure 6(d): cooling power after Optimization 2",
               "OFTEC has the highest power when minimizing temperature; "
               "the extra power is consumed mostly by TECs");

  const std::vector<SweepRow> rows = run_paper_sweep();

  util::Table table;
  table.set_header({"Benchmark", "OFTEC [W]", "(leak/TEC/fan)", "Var-w [W]",
                    "Fixed-w [W]"});
  std::size_t oftec_highest = 0;
  for (const SweepRow& r : rows) {
    const auto& p = r.oftec_min_temp.power;
    const double var_p = r.variable_min_temp.power.total();
    const double fix_p = r.fixed_fan.power.total();
    if (p.total() >= var_p && p.total() >= fix_p) ++oftec_highest;
    table.add_row({r.name, format_watts(p.total()),
                   format_watts(p.leakage, 1) + "/" + format_watts(p.tec, 1) +
                       "/" + format_watts(p.fan, 1),
                   format_watts(var_p), format_watts(fix_p)});
  }
  table.print(std::cout);
  std::printf("\nOFTEC spends the most cooling power on %zu of %zu "
              "benchmarks (paper shape: all).\n",
              oftec_highest, rows.size());
  return 0;
}
