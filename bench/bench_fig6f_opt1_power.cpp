// Figure 6(f): cooling power after Optimization 1 — the paper's headline
// power-saving comparison. OFTEC must be the cheapest of the three methods
// on the benchmarks where all three are feasible.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "util/table.h"

int main() {
  using namespace oftec;
  using namespace oftec::bench;

  print_header("Figure 6(f): cooling power after Optimization 1",
               "OFTEC consumes the least power; on the comparable "
               "benchmarks it saves ~2.6% vs variable-w and ~8.1% vs "
               "fixed-w (~5.4% on average)");

  const std::vector<SweepRow> rows = run_paper_sweep();

  util::Table table;
  table.set_header({"Benchmark", "OFTEC [W]", "Var-w [W]", "Fixed-w [W]"});
  double var_saving = 0.0, fixed_saving = 0.0, var_abs = 0.0, fixed_abs = 0.0;
  std::size_t comparable = 0;
  for (const SweepRow& r : rows) {
    table.add_row({r.name, format_watts(r.oftec.power.total()),
                   r.variable_fan.success
                       ? format_watts(r.variable_fan.power.total())
                       : std::string("-"),
                   r.fixed_fan.success ? format_watts(r.fixed_fan.power.total())
                                       : std::string("-")});
    if (r.variable_fan.success && r.fixed_fan.success && r.oftec.success) {
      ++comparable;
      var_saving +=
          1.0 - r.oftec.power.total() / r.variable_fan.power.total();
      fixed_saving +=
          1.0 - r.oftec.power.total() / r.fixed_fan.power.total();
      var_abs += r.variable_fan.power.total() - r.oftec.power.total();
      fixed_abs += r.fixed_fan.power.total() - r.oftec.power.total();
    }
  }
  table.print(std::cout);
  if (comparable > 0) {
    const auto n = static_cast<double>(comparable);
    std::printf("\nComparable benchmarks: %zu (paper: 3).\n", comparable);
    std::printf("Average saving vs variable-w: %.2f W (%.1f%%)  "
                "[paper: 0.35 W / 2.6%%]\n", var_abs / n,
                100.0 * var_saving / n);
    std::printf("Average saving vs fixed-w:    %.2f W (%.1f%%)  "
                "[paper: 1.04 W / 8.1%%]\n", fixed_abs / n,
                100.0 * fixed_saving / n);
    std::printf("Combined average saving: %.1f%%  [paper abstract: 5.4%%]\n",
                50.0 * (var_saving + fixed_saving) / n);
  }
  return 0;
}
