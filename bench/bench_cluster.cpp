// bench_cluster — the sharded serve cluster at scale, gated on bit-identity.
//
// A loopback cluster carries thousands of concurrent sessions (default
// 8192 — well past what one worker's session registry would hold) while
// plain protocol-v1 clients bind, solve, and unbind through the router
// exactly as they would against a single oftec-serve. Mid-run the cluster
// scales UP by one worker under full traffic: the router rehomes the ring
// delta (bounded movement, <2/N gated below) while in-flight pipelined
// solves finish wherever they were admitted. The acceptance gate is hard:
// every solve that completes must be bit-identical to the same (spec, ω, I)
// solved on a standalone single-node server — the cluster adds routing,
// supervision, and rebalancing, never arithmetic. Any mismatch, lost
// request, or movement-bound violation makes the binary exit non-zero.
//
// Flags:
//   --smoke           CI-sized run (1024 sessions) with the same hard gates
//   --process         fork/exec process-mode workers instead of in-process
//   --worker-bin P    oftec_client binary for --process (or $OFTEC_WORKER_BIN)
//   --sessions N      total concurrent sessions (default 8192; smoke 1024)
//
// Sessions cycle through a few distinct chip specs at small grids, so the
// run measures routing/sharding overhead rather than thermal-model build
// time, and per-worker factor caches stay warm the way a long-running
// service's would.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "common.h"
#include "serve/client.h"
#include "serve/server.h"

namespace {

using namespace oftec;

constexpr std::size_t kThreads = 16;
constexpr std::size_t kSolvesPerSession = 3;
constexpr std::size_t kFinalWorkers = 4;  // starts at 3, +1 mid-traffic

struct Config {
  std::size_t sessions = 8192;
  bool smoke = false;
  bool process = false;
  std::string worker_bin;
};

/// The distinct chip specs sessions cycle through (small grids: the bench
/// measures the cluster, not the thermal-model builder).
std::vector<serve::BindParams> spec_set() {
  std::vector<serve::BindParams> specs;
  for (const std::size_t grid : {4u, 5u, 6u}) {
    serve::BindParams p;
    p.benchmark = "susan";
    p.grid_nx = grid;
    p.grid_ny = grid;
    p.direct_solve = true;
    specs.push_back(p);
  }
  return specs;
}

struct Expected {
  double omega_max = 0.0;
  std::vector<serve::SolveReply> replies;  // one per solve point
};

double point_omega(const Expected& e, std::size_t i) {
  return (0.35 + 0.15 * static_cast<double>(i)) * e.omega_max;
}

bool same_bits(const serve::SolveReply& a, const serve::SolveReply& b) {
  return a.runaway == b.runaway &&
         a.max_chip_temperature_k == b.max_chip_temperature_k &&
         a.leakage_w == b.leakage_w && a.tec_w == b.tec_w &&
         a.fan_w == b.fan_w;
}

Config parse_args(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      cfg.smoke = true;
      cfg.sessions = 1024;
    } else if (arg == "--process") {
      cfg.process = true;
    } else if (arg == "--worker-bin" && i + 1 < argc) {
      cfg.worker_bin = argv[++i];
    } else if (arg == "--sessions" && i + 1 < argc) {
      cfg.sessions = static_cast<std::size_t>(std::strtoull(
          argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: bench_cluster [--smoke] [--process] "
                   "[--worker-bin PATH] [--sessions N]\n");
      std::exit(2);
    }
  }
  // Keep the per-thread pipelining structure exact.
  cfg.sessions -= cfg.sessions % kThreads;
  if (cfg.sessions == 0) cfg.sessions = kThreads;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = parse_args(argc, argv);
  const std::size_t sessions_per_thread = cfg.sessions / kThreads;
  bench::print_header(
      "cluster",
      "a cluster carries thousands of concurrent sessions bit-identically "
      "to a single oftec-serve node while scaling up under load");

  const std::vector<serve::BindParams> specs = spec_set();

  // Single-node reference: one session per distinct spec, solved directly.
  std::vector<Expected> expected(specs.size());
  {
    serve::Server reference;
    reference.start();
    serve::Client client = serve::Client::connect(reference.port());
    for (std::size_t s = 0; s < specs.size(); ++s) {
      const serve::BindReply chip = client.bind(specs[s]);
      expected[s].omega_max = chip.omega_max;
      for (std::size_t i = 0; i < kSolvesPerSession; ++i) {
        expected[s].replies.push_back(
            client.solve(chip.session, point_omega(expected[s], i), 0.2));
      }
    }
    reference.stop();
  }

  cluster::ClusterOptions opts;
  opts.supervisor.workers = kFinalWorkers - 1;  // one more arrives mid-run
  // Every session could land on one worker in the worst imbalance, and the
  // clients pipeline a full thread's solves at once — size the registries
  // and queues so admission control never sheds a well-behaved run.
  opts.supervisor.worker_server.max_sessions = cfg.sessions;
  opts.supervisor.worker_server.max_queue_depth = cfg.sessions;
  if (cfg.process) {
    opts.worker_mode = cluster::WorkerMode::kProcess;
    opts.process.binary = cfg.worker_bin;  // "" = $OFTEC_WORKER_BIN fallback
    opts.process.extra_args = {"--sessions", std::to_string(cfg.sessions),
                               "--queue", std::to_string(cfg.sessions)};
  }
  cluster::Cluster cluster(opts);
  cluster.start();

  std::atomic<std::uint64_t> solves_ok{0};
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<bool> done{false};
  const std::uint64_t want = cfg.sessions * kSolvesPerSession;

  // Scale-up-mid-traffic scenario: once a quarter of the solves have
  // landed, grow the cluster by one worker under full load. The router
  // rehomes the ring delta; clients must notice nothing.
  std::atomic<std::uint64_t> rehomed_after_add{0};
  std::thread scaler([&] {
    while (!done.load(std::memory_order_relaxed) &&
           solves_ok.load(std::memory_order_relaxed) < want / 4) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (done.load(std::memory_order_relaxed)) return;
    const std::uint32_t slot = cluster.add_worker();
    rehomed_after_add.store(cluster.router().counters().rehomed,
                            std::memory_order_relaxed);
    std::printf("scaled up: worker %u joined mid-traffic (%llu sessions "
                "rehomed)\n",
                slot,
                static_cast<unsigned long long>(
                    rehomed_after_add.load(std::memory_order_relaxed)));
  });

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      try {
        serve::Client client = serve::Client::connect(cluster.port());
        // Bind this thread's sessions pipelined: all of them are live on
        // the cluster at once.
        std::vector<std::uint64_t> bind_ids;
        std::vector<std::size_t> session_spec;
        bind_ids.reserve(sessions_per_thread);
        for (std::size_t s = 0; s < sessions_per_thread; ++s) {
          const std::size_t which =
              (t * sessions_per_thread + s) % specs.size();
          serve::Request bind;
          bind.type = serve::RequestType::kBind;
          bind.params = specs[which];
          bind_ids.push_back(client.send(std::move(bind)));
          session_spec.push_back(which);
        }
        std::vector<std::uint64_t> sessions(sessions_per_thread, 0);
        for (std::size_t s = 0; s < sessions_per_thread; ++s) {
          const serve::Response r = client.recv_for(bind_ids[s]);
          if (!r.ok) {
            errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          sessions[s] = serve::parse_bind_reply(r.result).session;
        }

        // Solve every session at the reference points, pipelined per
        // round, and compare bits on collection.
        for (std::size_t i = 0; i < kSolvesPerSession; ++i) {
          std::vector<std::uint64_t> ids(sessions_per_thread, 0);
          for (std::size_t s = 0; s < sessions_per_thread; ++s) {
            if (sessions[s] == 0) continue;
            const Expected& e = expected[session_spec[s]];
            ids[s] = client.send_solve(sessions[s], point_omega(e, i), 0.2);
          }
          for (std::size_t s = 0; s < sessions_per_thread; ++s) {
            if (ids[s] == 0) continue;
            const serve::Response r = client.recv_for(ids[s]);
            if (!r.ok) {
              errors.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            const serve::SolveReply got = serve::parse_solve_reply(r.result);
            const Expected& e = expected[session_spec[s]];
            if (same_bits(got, e.replies[i])) {
              solves_ok.fetch_add(1, std::memory_order_relaxed);
            } else {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }

        for (std::size_t s = 0; s < sessions_per_thread; ++s) {
          if (sessions[s] != 0) (void)client.unbind(sessions[s]);
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "client thread failed: %s\n", e.what());
        errors.fetch_add(1000000, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  done.store(true, std::memory_order_relaxed);
  scaler.join();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();

  const cluster::Router::Counters rc = cluster.router().counters();
  std::printf("%zu sessions over %zu->%zu %s workers (%zu client threads), "
              "%zu solves/session\n",
              cfg.sessions, kFinalWorkers - 1, kFinalWorkers,
              cfg.process ? "process" : "in-process", kThreads,
              kSolvesPerSession);
  std::printf("wall %.1f ms  (%.0f solves/s)\n", wall_ms,
              1000.0 * static_cast<double>(solves_ok.load()) / wall_ms);
  std::printf("router: forwarded=%llu shed=%llu migrations=%llu "
              "rehomed=%llu transport_errors=%llu\n",
              static_cast<unsigned long long>(rc.forwarded),
              static_cast<unsigned long long>(rc.shed),
              static_cast<unsigned long long>(rc.migrations),
              static_cast<unsigned long long>(rc.rehomed),
              static_cast<unsigned long long>(rc.transport_errors));
  for (const auto& w : cluster.supervisor().snapshot()) {
    std::printf("  worker %u: port %u  state=%s  sessions(peak probe)=%llu\n",
                w.slot, w.port, cluster::worker_state_name(w.state),
                static_cast<unsigned long long>(w.load.sessions));
  }

  std::printf("\nbit-identical solves: %llu/%llu  mismatches=%llu  "
              "errors=%llu\n",
              static_cast<unsigned long long>(solves_ok.load()),
              static_cast<unsigned long long>(want),
              static_cast<unsigned long long>(mismatches.load()),
              static_cast<unsigned long long>(errors.load()));
  cluster.stop();

  if (mismatches.load() != 0 || errors.load() != 0 ||
      solves_ok.load() != want) {
    std::printf("FAIL: cluster results are not bit-identical to "
                "single-node\n");
    return 1;
  }
  // Consistent hashing's whole point: adding one worker to an N-node ring
  // moves ~1/N of the sessions, never more than twice that.
  const std::uint64_t movement_bound = 2 * cfg.sessions / kFinalWorkers;
  if (rehomed_after_add.load() > movement_bound) {
    std::printf("FAIL: scale-up moved %llu sessions (> 2/N bound %llu)\n",
                static_cast<unsigned long long>(rehomed_after_add.load()),
                static_cast<unsigned long long>(movement_bound));
    return 1;
  }
  std::printf("OK: every solve bit-identical to the single-node reference "
              "(scale-up moved %llu/%llu sessions, bound %llu)\n",
              static_cast<unsigned long long>(rehomed_after_add.load()),
              static_cast<unsigned long long>(cfg.sessions),
              static_cast<unsigned long long>(movement_bound));
  return 0;
}
