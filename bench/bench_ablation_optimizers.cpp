// Section 5.2 ablation: the paper "experimented with three state-of-the-art
// nonlinear optimization techniques ... interior-point, trust-region, and
// active-set SQP" and found active-set SQP best in quality × speed. This
// bench runs OFTEC (Algorithm 1) under each engine plus an exhaustive
// grid-search oracle, per benchmark, and compares solution power and runtime.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/problems.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace oftec;
  using namespace oftec::bench;

  print_header("Solver ablation (Sec. 5.2)",
               "active-set SQP gives the best solution-quality/speed "
               "trade-off; grid search confirms near-global optima despite "
               "minor non-convexity");

  const core::Solver solvers[] = {
      core::Solver::kActiveSetSqp, core::Solver::kInteriorPoint,
      core::Solver::kTrustRegion, core::Solver::kGridSearch};

  util::Table table;
  table.set_header({"Benchmark", "solver", "ok", "P* [W]", "T [C]",
                    "runtime [ms]", "thermal solves"});

  struct Tally {
    double power = 0.0;
    double ms = 0.0;
    std::size_t wins = 0;
    std::size_t feasible = 0;
  };
  Tally tally[4];

  for (const workload::Benchmark b : workload::all_benchmarks()) {
    const auto& prof = workload::profile_for(b);
    const power::PowerMap peak =
        workload::peak_power_map(prof, paper_floorplan());

    double best_power = 1e300;
    double powers[4];
    for (std::size_t s = 0; s < 4; ++s) {
      const core::CoolingSystem sys(paper_floorplan(), peak, paper_leakage(),
                                    {});
      core::OftecOptions opts;
      opts.solver = solvers[s];
      opts.grid_points = 21;
      const core::OftecResult r = core::run_oftec(sys, opts);
      powers[s] = r.success ? r.power.total() : 1e300;
      if (r.success) {
        best_power = std::min(best_power, powers[s]);
        tally[s].power += powers[s];
        tally[s].ms += r.runtime_ms;
        ++tally[s].feasible;
      }
      table.add_row({prof.name, core::solver_name(solvers[s]),
                     r.success ? "yes" : "NO",
                     r.success ? format_watts(r.power.total()) : std::string("-"),
                     r.success ? format_celsius(r.max_chip_temperature) : std::string("-"),
                     util::format_double(r.runtime_ms, 0),
                     std::to_string(r.thermal_solves)});
    }
    for (std::size_t s = 0; s < 4; ++s) {
      if (powers[s] <= best_power * 1.02) ++tally[s].wins;
    }
  }
  table.print(std::cout);

  std::printf("\nSummary over 8 benchmarks "
              "(win = within 2%% of the best feasible power):\n");
  for (std::size_t s = 0; s < 4; ++s) {
    std::printf("  %-16s feasible %zu/8, wins %zu/8, avg P %.2f W, "
                "avg runtime %.0f ms\n",
                core::solver_name(solvers[s]).c_str(), tally[s].feasible,
                tally[s].wins,
                tally[s].feasible ? tally[s].power / tally[s].feasible : 0.0,
                tally[s].feasible ? tally[s].ms / tally[s].feasible : 0.0);
  }
  return 0;
}
