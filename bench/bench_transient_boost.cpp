// Section 6.2 / Ref. [8] extension: transient TEC over-drive. "TECs can
// improve the heat removal capacity ... for a short period of time (i.e.,
// order of a second) ... increase I* by about 1 A for 1 s to reap the
// benefit of transient cooling."
//
// From the Quicksort steady state at OFTEC's (ω*, I*), step the current to
// I* + 1 A for 1 s and record the chip-temperature trajectory against the
// constant-I* control run.
#include <algorithm>
#include <cstdio>

#include "common.h"
#include "core/transient_boost.h"
#include "util/units.h"

int main() {
  using namespace oftec;
  using namespace oftec::bench;

  print_header("Transient TEC boost (+1 A for 1 s, Ref. [8])",
               "the Peltier effect responds immediately while Joule heating "
               "arrives with the package RC delay — a 1 s overdrive buys "
               "transient cooling headroom");

  const floorplan::Floorplan& fp = paper_floorplan();
  const power::PowerMap peak = workload::peak_power_map(
      workload::profile_for(workload::Benchmark::kQuicksort), fp);
  const core::CoolingSystem sys(fp, peak, paper_leakage(), {});

  const core::OftecResult star = core::run_oftec(sys);
  if (!star.success) {
    std::printf("unexpected: OFTEC infeasible on Quicksort\n");
    return 1;
  }
  std::printf("\nOperating point: w* = %s RPM, I* = %.2f A, steady Tmax = %s C\n",
              format_rpm(star.omega).c_str(), star.current,
              format_celsius(star.max_chip_temperature).c_str());

  core::BoostOptions opts;  // +1 A for 1 s, 2 s settle
  const core::BoostExperiment exp =
      core::run_transient_boost(sys, star.omega, star.current, opts);

  std::printf("\n  time [s]   boosted Tmax [C]   control Tmax [C]\n");
  std::printf("  ------------------------------------------------\n");
  for (std::size_t i = 0; i < exp.trace.samples.size(); i += 8) {
    const auto& b = exp.trace.samples[i];
    const auto& c = exp.control.samples[std::min(i, exp.control.samples.size() - 1)];
    std::printf("  %8.2f   %16.2f   %16.2f%s\n", b.time,
                units::kelvin_to_celsius(b.max_chip_temperature),
                units::kelvin_to_celsius(c.max_chip_temperature),
                b.time <= opts.boost_duration ? "   <- boost on" : "");
  }

  std::printf("\nTransient benefit: %.2f C below steady state "
              "(minimum at t = %.2f s)\n",
              exp.transient_benefit, exp.time_of_minimum);
  std::printf("Post-boost peak: %s C (steady: %s C) — Joule heat stored "
              "during the boost washes out.\n",
              format_celsius(exp.post_boost_peak).c_str(),
              format_celsius(exp.steady_temperature).c_str());
  return 0;
}
