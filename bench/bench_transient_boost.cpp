// Section 6.2 / Ref. [8] extension: transient TEC over-drive. "TECs can
// improve the heat removal capacity ... for a short period of time (i.e.,
// order of a second) ... increase I* by about 1 A for 1 s to reap the
// benefit of transient cooling."
//
// From the Quicksort steady state at OFTEC's (ω*, I*), step the current to
// I* + 1 A for 1 s and record the chip-temperature trajectory against the
// constant-I* control run.
#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>

#include "common.h"
#include "core/transient_boost.h"
#include "la/backend.h"
#include "thermal/transient_engine.h"
#include "util/stopwatch.h"
#include "util/units.h"

int main() {
  using namespace oftec;
  using namespace oftec::bench;

  print_header("Transient TEC boost (+1 A for 1 s, Ref. [8])",
               "the Peltier effect responds immediately while Joule heating "
               "arrives with the package RC delay — a 1 s overdrive buys "
               "transient cooling headroom");

  const floorplan::Floorplan& fp = paper_floorplan();
  const power::PowerMap peak = workload::peak_power_map(
      workload::profile_for(workload::Benchmark::kQuicksort), fp);
  const core::CoolingSystem sys(fp, peak, paper_leakage(), {});

  const core::OftecResult star = core::run_oftec(sys);
  if (!star.success) {
    std::printf("unexpected: OFTEC infeasible on Quicksort\n");
    return 1;
  }
  std::printf("\nOperating point: w* = %s RPM, I* = %.2f A, steady Tmax = %s C\n",
              format_rpm(star.omega).c_str(), star.current,
              format_celsius(star.max_chip_temperature).c_str());

  core::BoostOptions opts;  // +1 A for 1 s, 2 s settle
  const core::BoostExperiment exp =
      core::run_transient_boost(sys, star.omega, star.current, opts);

  std::printf("\n  time [s]   boosted Tmax [C]   control Tmax [C]\n");
  std::printf("  ------------------------------------------------\n");
  for (std::size_t i = 0; i < exp.trace.samples.size(); i += 8) {
    const auto& b = exp.trace.samples[i];
    const auto& c = exp.control.samples[std::min(i, exp.control.samples.size() - 1)];
    std::printf("  %8.2f   %16.2f   %16.2f%s\n", b.time,
                units::kelvin_to_celsius(b.max_chip_temperature),
                units::kelvin_to_celsius(c.max_chip_temperature),
                b.time <= opts.boost_duration ? "   <- boost on" : "");
  }

  std::printf("\nTransient benefit: %.2f C below steady state "
              "(minimum at t = %.2f s)\n",
              exp.transient_benefit, exp.time_of_minimum);
  std::printf("Post-boost peak: %s C (steady: %s C) — Joule heat stored "
              "during the boost washes out.\n",
              format_celsius(exp.post_boost_peak).c_str(),
              format_celsius(exp.steady_temperature).c_str());

  // --- Engine-vs-reference timing on the control trajectory --------------
  // Exact mode (threshold 0) relinearizes — and therefore refactors — every
  // step on both paths; a 0.05 K hold window lets the engine reuse one
  // factorization across quiet stretches. Both modes are bit-identical
  // between the two implementations.
  //
  // Timing discipline: one untimed warmup run per implementation, then
  // alternating timed repeats scored by minimum. A virgin process hands the
  // first large-allocation path a one-time advantage (glibc's mmap threshold
  // adapts after the first multi-MB free), which used to flatter whichever
  // implementation ran first; warmup + best-of-N measures steady state.
  int exit_code = 0;
  {
    thermal::TransientOptions topt = opts.transient;
    topt.duration = opts.boost_duration + opts.settle_duration;
    const thermal::ControlSetting setting{star.omega, star.current};
    const auto constant = [setting](double, double) { return setting; };
    const thermal::SteadyResult steady =
        sys.solver().solve(star.omega, star.current);
    constexpr int kRepeats = 2;

    util::json::Value j = util::json::Value::object();
    j["time_step_s"] = topt.time_step;
    j["backend"] = std::string(la::backend().name);
    j["timed_repeats"] = static_cast<std::size_t>(kRepeats);
    const struct {
      const char* key;
      double threshold;
    } modes[] = {{"exact", 0.0}, {"hold", 0.05}};
    for (const auto& mode : modes) {
      topt.relinearization_threshold = mode.threshold;
      const thermal::TransientSolver reference(
          sys.thermal_model(), sys.cell_dynamic_power(), sys.cell_leakage(),
          topt);
      const thermal::TransientEngine engine(
          sys.thermal_model(), sys.cell_dynamic_power(), sys.cell_leakage(),
          topt);
      thermal::TransientResult ref =
          reference.run_closed_loop(constant, steady.temperatures);
      thermal::TransientResult eng =
          engine.run_closed_loop(constant, steady.temperatures);
      double ref_ms = std::numeric_limits<double>::infinity();
      double eng_ms = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < kRepeats; ++rep) {
        const util::Stopwatch ref_watch;
        ref = reference.run_closed_loop(constant, steady.temperatures);
        ref_ms = std::min(ref_ms, ref_watch.elapsed_ms());
        const util::Stopwatch eng_watch;
        eng = engine.run_closed_loop(constant, steady.temperatures);
        eng_ms = std::min(eng_ms, eng_watch.elapsed_ms());
      }

      bool identical = ref.steps == eng.steps &&
                       ref.samples.size() == eng.samples.size();
      for (std::size_t i = 0; identical && i < ref.samples.size(); ++i) {
        identical = ref.samples[i].max_chip_temperature ==
                    eng.samples[i].max_chip_temperature;
      }
      const thermal::TransientEngineStats stats = engine.stats();
      const double speedup = eng_ms > 0.0 ? ref_ms / eng_ms : 0.0;
      std::printf("\n%s (hold %.2f K): reference %.1f ms, engine %.1f ms "
                  "(%.1fx, %zu factorizations / %zu steps, bit-identical: "
                  "%s)\n", mode.key, mode.threshold, ref_ms, eng_ms, speedup,
                  stats.factorizations, eng.steps,
                  identical ? "yes" : "NO (BUG)");
      util::json::Value m = util::json::Value::object();
      m["steps"] = eng.steps;
      m["reference_ms"] = ref_ms;
      m["engine_ms"] = eng_ms;
      m["speedup"] = speedup;
      m["engine_factorizations"] = stats.factorizations;
      m["bit_identical"] = identical;
      j[mode.key] = m;

      // Regression gate: the engine does a strict subset of the reference's
      // per-step work, so even at relinearize-every-step it must not lose
      // (0.95 leaves room for timer noise on loaded machines).
      if (!identical) {
        std::printf("FAIL: %s mode is not bit-identical\n", mode.key);
        exit_code = 1;
      }
      if (speedup < 0.95) {
        std::printf("FAIL: %s mode engine speedup %.3fx < 0.95x — the engine "
                    "must never be slower than the reference\n",
                    mode.key, speedup);
        exit_code = 1;
      }
    }
    update_bench_artifact("transient_boost", j);
  }
  return exit_code;
}
