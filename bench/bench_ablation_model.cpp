// Model-fidelity ablation (DESIGN.md): why the paper's leakage
// linearization (Eq. 4) matters, and what the direct banded solver buys over
// a Jacobi-preconditioned BiCGSTAB on the same system.
//
//   (1) Leakage treatment: constant-at-ambient vs 10-point chord (paper)
//       vs exact Newton — compare predicted max temperature for Basicmath.
//   (2) Linear solver: banded LU vs BiCGSTAB on the assembled matrix.
#include <cstdio>

#include "common.h"
#include "la/banded_lu.h"
#include "la/iterative.h"
#include "thermal/steady.h"
#include "util/stopwatch.h"
#include "util/units.h"

int main() {
  using namespace oftec;
  using namespace oftec::bench;

  print_header("Model ablation: leakage linearization & solver choice",
               "constant leakage underestimates the die temperature; the "
               "Eq. 4 chord tracks the exact exponential closely at ~zero "
               "extra cost");

  const floorplan::Floorplan& fp = paper_floorplan();
  const power::PowerMap peak = workload::peak_power_map(
      workload::profile_for(workload::Benchmark::kBasicmath), fp);

  const thermal::ThermalModel model(package::PackageConfig::paper_default(),
                                    fp, 10, 10);
  const la::Vector dyn = model.distribute(peak);
  const auto leak_terms = model.cell_leakage(paper_leakage());

  std::printf("\n(1) Leakage treatment at (2000 RPM, I = 0.5 A), Basicmath:\n");
  const double omega = units::rpm_to_rad_s(2000.0);
  struct ModeRow {
    const char* name;
    thermal::LeakageMode mode;
  };
  const ModeRow modes[] = {
      {"constant at ambient (no feedback)", thermal::LeakageMode::kConstant},
      {"10-pt chord regression (paper Eq. 4)",
       thermal::LeakageMode::kChordLinear},
      {"exact exponential (Newton)", thermal::LeakageMode::kNewtonExact},
  };
  double exact_temp = 0.0;
  for (const ModeRow& m : modes) {
    thermal::SteadyOptions opts;
    opts.mode = m.mode;
    const thermal::SteadySolver solver(model, dyn, leak_terms, opts);
    util::Stopwatch watch;
    const thermal::SteadyResult r = solver.solve(omega, 0.5);
    const double ms = watch.elapsed_ms();
    if (m.mode == thermal::LeakageMode::kNewtonExact) {
      exact_temp = r.max_chip_temperature;
    }
    std::printf("  %-38s Tmax = %6.2f C, leak = %5.2f W, "
                "%zu solve(s), %.1f ms\n",
                m.name, units::kelvin_to_celsius(r.max_chip_temperature),
                r.leakage_power, r.iterations, ms);
  }
  {
    thermal::SteadyOptions opts;
    opts.mode = thermal::LeakageMode::kConstant;
    const thermal::SteadySolver solver(model, dyn, leak_terms, opts);
    const thermal::SteadyResult r = solver.solve(omega, 0.5);
    std::printf("  -> constant-leakage model under-predicts by %.2f C\n",
                units::kelvin_to_celsius(exact_temp) -
                    units::kelvin_to_celsius(r.max_chip_temperature));
  }

  std::printf("\n(2) Linear solver on the assembled system "
              "(n = %zu, bandwidth = %zu):\n",
              model.layout().node_count(), model.layout().bandwidth());
  std::vector<power::TaylorCoefficients> taylor(dyn.size());
  for (std::size_t i = 0; i < dyn.size(); ++i) {
    taylor[i] = power::tangent_linearize(leak_terms[i],
                                         model.config().ambient + 30.0);
  }
  const thermal::AssembledSystem sys =
      model.assemble(omega, 0.5, dyn, taylor);

  util::Stopwatch direct_watch;
  const la::Vector x_direct = la::BandedLu(sys.matrix).solve(sys.rhs);
  const double direct_ms = direct_watch.elapsed_ms();

  // Rebuild as CSR for the iterative solver.
  la::TripletBuilder builder(sys.rhs.size());
  for (std::size_t r = 0; r < sys.rhs.size(); ++r) {
    const std::size_t bw = model.layout().bandwidth();
    const std::size_t lo = r > bw ? r - bw : 0;
    const std::size_t hi = std::min(sys.rhs.size() - 1, r + bw);
    for (std::size_t c = lo; c <= hi; ++c) {
      const double v = sys.matrix.get(r, c);
      if (v != 0.0) builder.add(r, c, v);
    }
  }
  const la::CsrMatrix csr = builder.build();
  util::Stopwatch iter_watch;
  const la::IterativeResult it = la::solve_bicgstab(csr, sys.rhs);
  const double iter_ms = iter_watch.elapsed_ms();

  std::printf("  banded LU : %.2f ms\n", direct_ms);
  std::printf("  BiCGSTAB  : %.2f ms, %zu iterations, converged=%s, "
              "max |dx| vs direct = %.2e K\n",
              iter_ms, it.iterations, it.converged ? "yes" : "NO",
              la::max_abs_diff(it.x, x_direct));
  return 0;
}
