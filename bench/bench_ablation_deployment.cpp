// Deployment ablation (refs. [6][7], paper Sec. 3 / 6.1): trace the
// max-temperature U-curve as TEC cells are added hotspot-first, for a heavy
// benchmark. Reproduces the rationale for leaving the caches uncovered:
// past the hot region, every extra TEC only adds Joule and lateral heat.
#include <cstdio>

#include "common.h"
#include "core/deployment.h"
#include "floorplan/grid_map.h"
#include "util/units.h"

int main() {
  using namespace oftec;
  using namespace oftec::bench;

  print_header("TEC deployment U-curve (refs. [6][7])",
               "covering the hot region helps; excessive deployment heats "
               "the chip through Joule and lateral coupling");

  core::DeploymentOptions opts;
  opts.system.grid_nx = opts.system.grid_ny = 8;
  opts.omega = 524.0;
  opts.current = 1.5;
  opts.patience = 8;   // walk well past the optimum to show the U-curve
  opts.max_cells = 24;
  opts.system.package.filler_conductivity =
      opts.system.package.tec.layer_conductivity();

  const power::PowerMap peak = workload::peak_power_map(
      workload::profile_for(workload::Benchmark::kQuicksort),
      paper_floorplan());

  const core::DeploymentResult r = core::optimize_deployment(
      paper_floorplan(), peak, paper_leakage(), opts);

  const floorplan::GridMap grid(paper_floorplan(), opts.system.grid_nx,
                                opts.system.grid_ny);
  std::printf("\nWorkload: Quicksort (%.1f W), evaluated at %.0f RPM / %.1f A"
              "\nBaseline (no TECs, high-k filler): %.2f C\n\n",
              peak.total(), units::rad_s_to_rpm(opts.omega), opts.current,
              units::kelvin_to_celsius(r.baseline_temperature));
  std::printf("  cells covered   hottest unit     Tmax [C]\n");
  std::printf("  -----------------------------------------\n");
  for (std::size_t i = 0; i < r.steps.size(); ++i) {
    const auto& s = r.steps[i];
    std::printf("  %13zu   %-14s %9.2f%s\n", i + 1,
                paper_floorplan()
                    .blocks()[grid.dominant_block(s.cell)]
                    .name.c_str(),
                units::kelvin_to_celsius(s.max_chip_temperature),
                i + 1 == r.covered_cells ? "   <- best placement" : "");
  }
  std::printf("\nBest placement: %zu cells, Tmax = %.2f C "
              "(%.2f C below baseline); trajectory explored %zu cells "
              "before the patience rule fired.\n",
              r.covered_cells,
              units::kelvin_to_celsius(r.max_chip_temperature),
              r.baseline_temperature - r.max_chip_temperature,
              r.steps.size());
  std::printf("Thermal solves: %zu\n", r.evaluations);
  return 0;
}
