// bench_serve — what the serving layer's micro-batcher buys.
//
// Eight concurrent clients sweep the SAME operating-point grid against one
// chip session (the replicated-controller deployment: many control agents
// asking one thermal oracle the same questions). Two server configurations
// are timed over identical request streams:
//
//   serial dispatch  max_batch_size = 1  — every request is its own engine
//                                          call, in arrival order;
//   micro-batched    max_batch_size = 64 — concurrent requests coalesce,
//                                          identical (ω, I) points are
//                                          answered by one solve, and warm
//                                          factorizations are reused.
//
// Sessions are bound with direct_solve=true, so every solve runs the cached
// banded-Cholesky path and the engine's factor-cache hit rate is visible in
// the stats. A warm-up sweep by one client pre-populates the factor cache —
// the steady state of a long-running service.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/json.h"

namespace {

using namespace oftec;

constexpr std::size_t kClients = 8;
constexpr std::size_t kGridSide = 5;  // 25 points per client per pass

struct RunResult {
  double wall_ms = 0.0;
  serve::Server::Counters counters;
  std::uint64_t engine_points = 0;
  std::uint64_t factor_hits = 0;
  std::uint64_t factorizations = 0;
};

/// One client: pipeline the full grid, then collect every response.
void run_client(std::uint16_t port, std::uint64_t session, double omega_max,
                double current_max) {
  serve::Client client = serve::Client::connect(port);
  std::size_t sent = 0;
  for (std::size_t i = 0; i < kGridSide; ++i) {
    for (std::size_t j = 0; j < kGridSide; ++j) {
      const double omega =
          omega_max * (0.2 + 0.8 * static_cast<double>(i) /
                                 static_cast<double>(kGridSide - 1));
      const double current =
          current_max * (0.1 + 0.6 * static_cast<double>(j) /
                                   static_cast<double>(kGridSide - 1));
      (void)client.send_solve(session, omega, current);
      ++sent;
    }
  }
  for (std::size_t i = 0; i < sent; ++i) (void)client.recv();
}

RunResult run_scenario(std::size_t max_batch_size) {
  serve::ServerOptions opts;
  opts.max_batch_size = max_batch_size;
  opts.max_delay_us = 2000;
  serve::Server server(opts);
  server.start();

  serve::Client admin = serve::Client::connect(server.port());
  serve::BindParams bind;
  bind.benchmark = "susan";
  bind.grid_nx = 8;
  bind.grid_ny = 8;
  bind.direct_solve = true;  // every solve through the cached factor path
  const serve::BindReply chip = admin.bind(bind);

  // Warm-up: one pass over the grid primes the factor cache, as in a
  // long-running deployment.
  run_client(server.port(), chip.session, chip.omega_max, chip.current_max);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back(run_client, server.port(), chip.session,
                         chip.omega_max, chip.current_max);
  }
  for (std::thread& t : clients) t.join();
  const auto end = std::chrono::steady_clock::now();

  RunResult r;
  r.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  r.counters = server.counters();
  const util::json::Value stats = admin.stats(chip.session);
  const util::json::Value& engine = *stats.find("session")->find("engine");
  r.engine_points =
      static_cast<std::uint64_t>(engine.find("points")->as_number());
  r.factor_hits =
      static_cast<std::uint64_t>(engine.find("factor_hits")->as_number());
  r.factorizations =
      static_cast<std::uint64_t>(engine.find("factorizations")->as_number());
  server.stop();
  return r;
}

void print_row(const char* label, const RunResult& r) {
  const std::uint64_t total = kClients * kGridSide * kGridSide;
  std::printf("%-14s %9.1f ms  %5llu reqs -> %5llu solves  "
              "dedup=%llu  factor hits/factorizations=%llu/%llu\n",
              label, r.wall_ms, static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(r.engine_points),
              static_cast<unsigned long long>(r.counters.dedup_hits),
              static_cast<unsigned long long>(r.factor_hits),
              static_cast<unsigned long long>(r.factorizations));
}

}  // namespace

int main() {
  bench::print_header(
      "serve",
      "oftec-serve micro-batching: concurrent clients sweeping the same "
      "operating points share solves and warm factorizations");

  std::printf("%zu clients x %zu points each, one shared session "
              "(8x8 grid, direct solves)\n\n",
              kClients, kGridSide * kGridSide);

  const RunResult serial = run_scenario(/*max_batch_size=*/1);
  const RunResult batched = run_scenario(/*max_batch_size=*/64);

  print_row("serial", serial);
  print_row("batched", batched);

  const double speedup =
      batched.wall_ms > 0.0 ? serial.wall_ms / batched.wall_ms : 0.0;
  std::printf("\nbatched/serial speedup: %.2fx  (batch dedup removed %llu of "
              "%llu queued solves)\n",
              speedup,
              static_cast<unsigned long long>(batched.counters.dedup_hits),
              static_cast<unsigned long long>(
                  batched.counters.batched_points));
  if (batched.factor_hits == 0) {
    std::printf("WARNING: factor cache never hit — check "
                "EngineOptions::use_iterative plumbing\n");
    return 1;
  }
  return 0;
}
