// Section 6.2 claim: "a system which adopts TECs as the only cooling method
// cannot avoid the thermal runaway situation in these benchmarks."
// Sweep I_TEC over [0, I_max] at ω = 0 for every benchmark and report
// whether any operating point survives.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace oftec;
  using namespace oftec::bench;

  print_header("TEC-only configuration (w = 0)",
               "TECs alone cannot avoid thermal runaway on any benchmark — "
               "the pumped heat has nowhere to go");

  SweepOptions opts;  // tec-only sweep included by default
  const std::vector<SweepRow> rows = run_paper_sweep(opts);

  util::Table table;
  table.set_header({"Benchmark", "best I [A]", "outcome"});
  std::size_t runaway_count = 0;
  for (const SweepRow& r : rows) {
    if (r.tec_only.runaway) ++runaway_count;
    table.add_row({r.name,
                   r.tec_only.runaway
                       ? std::string("-")
                       : util::format_double(r.tec_only.current, 2),
                   r.tec_only.runaway
                       ? "RUNAWAY at every current"
                       : format_celsius(r.tec_only.max_chip_temperature) +
                             " C"});
  }
  table.print(std::cout);
  std::printf("\nThermal runaway on %zu of %zu benchmarks (paper: all).\n",
              runaway_count, rows.size());
  return 0;
}
