#include "common.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/obs.h"
#include "util/strings.h"
#include "util/units.h"

namespace oftec::bench {

const floorplan::Floorplan& paper_floorplan() {
  static const floorplan::Floorplan fp = floorplan::make_ev6_floorplan();
  return fp;
}

const power::LeakageModel& paper_leakage() {
  static const power::LeakageModel model =
      power::characterize_leakage(paper_floorplan(), power::ProcessConfig{});
  return model;
}

std::vector<SweepRow> run_paper_sweep(const SweepOptions& options) {
  OBS_SPAN("bench.paper_sweep");
  const floorplan::Floorplan& fp = paper_floorplan();
  const power::LeakageModel& leak = paper_leakage();
  const double fixed_omega = units::rpm_to_rad_s(options.fixed_fan_rpm);

  std::vector<SweepRow> rows;
  for (const workload::Benchmark b : workload::all_benchmarks()) {
    const workload::BenchmarkProfile& prof = workload::profile_for(b);
    const power::PowerMap peak = workload::peak_power_map(prof, fp);

    core::CoolingSystem::Config hybrid_cfg;
    hybrid_cfg.grid_nx = options.grid_nx;
    hybrid_cfg.grid_ny = options.grid_ny;
    core::CoolingSystem::Config fan_cfg = hybrid_cfg;
    fan_cfg.package = hybrid_cfg.package.without_tecs();

    const core::CoolingSystem hybrid(fp, peak, leak, hybrid_cfg);
    const core::CoolingSystem fan_only(fp, peak, leak, fan_cfg);

    SweepRow row;
    row.benchmark = b;
    row.name = prof.name;
    row.dynamic_power = peak.total();
    row.oftec = core::run_oftec(hybrid, options.oftec);
    row.variable_fan = core::run_variable_fan_baseline(fan_only, options.oftec);
    row.fixed_fan = core::run_fixed_fan_baseline(fan_only, fixed_omega);
    row.oftec_min_temp = core::run_min_temperature(hybrid, options.oftec);
    row.variable_min_temp =
        core::run_min_temperature(fan_only, options.oftec);
    if (options.run_tec_only) {
      row.tec_only = core::run_tec_only(hybrid, 11);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string format_celsius(double kelvin, int decimals) {
  return util::format_double(units::kelvin_to_celsius(kelvin), decimals);
}

std::string format_watts(double watts, int decimals) {
  return util::format_double(watts, decimals);
}

std::string format_rpm(double rad_s, int decimals) {
  return util::format_double(units::rad_s_to_rpm(rad_s), decimals);
}

std::string format_temperature_outcome(double kelvin, double t_max_kelvin) {
  if (!std::isfinite(kelvin)) return "RUNAWAY";
  std::string out = format_celsius(kelvin);
  if (kelvin > t_max_kelvin) out += " (>Tmax)";
  return out;
}

void emit_obs_artifacts() {
  if (!obs::enabled()) return;
  obs::flush();  // rewrites the OFTEC_OBS_REPORT / OFTEC_TRACE_FILE artifacts
  if (obs::report_path_from_env().empty()) {
    const char* path = "obs_report.json";
    if (obs::write_report_file(path)) {
      std::fprintf(stderr, "[obs] metrics report written to %s\n", path);
    }
  }
  const std::string table = obs::profile_table();
  if (!table.empty()) std::fprintf(stderr, "%s", table.c_str());
}

std::string bench_artifact_path() {
  const char* env = std::getenv("OFTEC_BENCH_JSON");
  if (env != nullptr && env[0] != '\0') return env;
  return "BENCH_transient.json";
}

void update_bench_artifact(const std::string& section,
                           const util::json::Value& payload) {
  const std::string path = bench_artifact_path();
  util::json::Value doc = util::json::Value::object();
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      try {
        util::json::Value existing = util::json::parse(buf.str());
        if (existing.is_object()) doc = std::move(existing);
      } catch (const std::exception&) {
        // Corrupt artifact: start fresh rather than fail the bench.
      }
    }
  }
  doc[section] = payload;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
    return;
  }
  out << doc.dump(2) << "\n";
  std::fprintf(stderr, "[bench] %s section written to %s\n", section.c_str(),
               path.c_str());
}

void print_header(const std::string& figure, const std::string& claim) {
  static const bool obs_hook_armed = [] {
    std::atexit(emit_obs_artifacts);
    return true;
  }();
  (void)obs_hook_armed;
  std::printf("==============================================================\n");
  std::printf("OFTEC reproduction — %s\n", figure.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("==============================================================\n");
}

}  // namespace oftec::bench
