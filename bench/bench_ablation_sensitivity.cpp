// TEC device-parameter sensitivity (calibration transparency): sweep the
// Seebeck coefficient, electrical resistance, and thermal conductance of the
// TEC unit around the library defaults and report how OFTEC's optimum moves.
// This is the knob-set DESIGN.md §6 calibrates; the sweep shows the
// reproduction's conclusions are not an artifact of one lucky parameter
// point.
#include <cstdio>

#include "common.h"
#include "util/units.h"

namespace {

using namespace oftec;
using namespace oftec::bench;

struct SweepPoint {
  const char* label;
  double seebeck_scale = 1.0;
  double resistance_scale = 1.0;
  double conductance_scale = 1.0;
};

}  // namespace

int main() {
  print_header("TEC parameter sensitivity (calibration ablation)",
               "the qualitative result — OFTEC feasible where fan-only "
               "fails, I* in the low-ampere range — holds across a 2x "
               "device-parameter window");

  const floorplan::Floorplan& fp = paper_floorplan();
  const power::PowerMap peak = workload::peak_power_map(
      workload::profile_for(workload::Benchmark::kQuicksort), fp);

  const SweepPoint points[] = {
      {"defaults", 1.0, 1.0, 1.0},
      {"alpha x0.7", 0.7, 1.0, 1.0},
      {"alpha x1.3", 1.3, 1.0, 1.0},
      {"R x0.5", 1.0, 0.5, 1.0},
      {"R x2.0", 1.0, 2.0, 1.0},
      {"K x0.5", 1.0, 1.0, 0.5},
      {"K x2.0", 1.0, 1.0, 2.0},
      {"weak device", 0.7, 2.0, 2.0},
      {"strong device", 1.3, 0.5, 0.5},
  };

  std::printf("\nWorkload: Quicksort (%.1f W). Each row re-runs OFTEC with "
              "scaled TEC unit parameters.\n\n", peak.total());
  std::printf("  %-14s %-9s %-7s %-9s %-9s %-8s\n", "variant", "feasible",
              "I* [A]", "w* [RPM]", "P* [W]", "T [C]");
  std::printf("  ------------------------------------------------------------\n");

  for (const SweepPoint& pt : points) {
    core::CoolingSystem::Config cfg;
    cfg.package.tec.seebeck *= pt.seebeck_scale;
    cfg.package.tec.resistance *= pt.resistance_scale;
    cfg.package.tec.conductance *= pt.conductance_scale;
    // Keep the TEC-layer bulk conductivity consistent with the device.
    for (auto& layer : cfg.package.layers) {
      if (layer.role == package::LayerRole::kTec) {
        layer.material.conductivity = cfg.package.tec.layer_conductivity();
      }
    }

    const core::CoolingSystem sys(fp, peak, paper_leakage(), cfg);
    const core::OftecResult r = core::run_oftec(sys);
    if (r.success) {
      std::printf("  %-14s %-9s %7.2f %9.0f %9.2f %8.2f\n", pt.label, "yes",
                  r.current, units::rad_s_to_rpm(r.omega), r.power.total(),
                  units::kelvin_to_celsius(r.max_chip_temperature));
    } else {
      std::printf("  %-14s %-9s %7s %9s %9s %8.2f\n", pt.label, "NO", "-",
                  "-", "-", units::kelvin_to_celsius(r.opt2_temperature));
    }
  }

  std::printf("\nReading: weaker Peltier pumping (lower alpha, higher R) "
              "demands more current, fan speed, and power to hold Tmax; "
              "stronger devices relax all three. The feasibility verdict "
              "is stable across the whole 2x window.\n");
  return 0;
}
