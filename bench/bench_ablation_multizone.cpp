// Multi-zone control ablation (extension beyond the paper): the paper wires
// every deployed TEC in series and drives them with one shared current
// (Sec. 6.1). Splitting the array into independently driven zones (integer
// cluster / FP cluster / remaining core) lets the optimizer starve cool
// zones while feeding the hot one — this bench quantifies the extra power
// saving per benchmark.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/multizone.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace oftec;
  using namespace oftec::bench;

  print_header("Multi-zone TEC control (extension)",
               "independent per-cluster currents generalize the paper's "
               "single shared I_TEC; the optimizer feeds the hot cluster "
               "and starves the rest");

  const floorplan::Floorplan& fp = paper_floorplan();
  constexpr std::size_t kGrid = 10;

  util::Table table;
  table.set_header({"Benchmark", "1-zone P [W]", "I*",
                    "3-zone P [W]", "I_int/I_fp/I_misc", "saving"});

  double total_saving = 0.0;
  std::size_t comparable = 0;
  for (const workload::Benchmark b : workload::all_benchmarks()) {
    const auto& prof = workload::profile_for(b);
    const power::PowerMap peak = workload::peak_power_map(prof, fp);

    core::CoolingSystem::Config cfg;
    cfg.grid_nx = cfg.grid_ny = kGrid;
    const core::CoolingSystem scalar(fp, peak, paper_leakage(), cfg);
    const core::OftecResult r1 = core::run_oftec(scalar);

    const core::MultiZoneSystem multi(
        fp, peak, paper_leakage(),
        core::ZonePartition::by_unit_cluster(fp, kGrid, kGrid), cfg);
    const core::MultiZoneResult r3 = core::run_multizone_oftec(multi);

    if (r1.success && r3.success) {
      ++comparable;
      const double saving = 1.0 - r3.power.total() / r1.power.total();
      total_saving += saving;
      table.add_row(
          {prof.name, format_watts(r1.power.total()),
           util::format_double(r1.current, 2), format_watts(r3.power.total()),
           util::format_double(r3.zone_currents[0], 2) + "/" +
               util::format_double(r3.zone_currents[1], 2) + "/" +
               util::format_double(r3.zone_currents[2], 2),
           util::format_double(100.0 * saving, 1) + "%"});
    } else {
      table.add_row({prof.name, r1.success ? format_watts(r1.power.total())
                                           : std::string("FAIL"),
                     std::string("-"),
                     r3.success ? format_watts(r3.power.total())
                                : std::string("FAIL"),
                     std::string("-"), std::string("-")});
    }
  }
  table.print(std::cout);
  if (comparable > 0) {
    std::printf("\nAverage additional saving from 3-zone control: %.1f%% of "
                "the single-current cooling power (over %zu benchmarks).\n",
                100.0 * total_saving / static_cast<double>(comparable),
                comparable);
  }
  return 0;
}
