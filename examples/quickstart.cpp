// Quickstart: cool one workload with OFTEC in ~30 lines of user code.
//
//   1. Build the Alpha-21264-style floorplan and the paper's cooling package.
//   2. Characterize leakage for the process (McPAT-substitute).
//   3. Describe the workload as per-unit peak dynamic power.
//   4. Run OFTEC → optimal fan speed ω* and TEC current I*.
#include <cstdio>

#include "core/oftec.h"
#include "floorplan/ev6.h"
#include "power/mcpat_like.h"
#include "util/units.h"

int main() {
  using namespace oftec;

  // 1. Floorplan (15.9 mm × 15.9 mm die) — the cooling package defaults to
  //    the paper's Table 1 stack inside CoolingSystem::Config.
  const floorplan::Floorplan fp = floorplan::make_ev6_floorplan();

  // 2. Leakage model for a 22 nm process, 6 W at the 45 °C ambient.
  power::ProcessConfig process;
  process.node_nm = 22.0;
  process.total_leakage_at_t0 = 6.0;
  const power::LeakageModel leakage = power::characterize_leakage(fp, process);

  // 3. Workload: a hot integer kernel, ~40 W peak, concentrated on the
  //    execution units. (Real flows extract this from a power trace — see
  //    the online_controller example.)
  power::PowerMap workload(fp);
  workload.set("L2", 5.0);
  workload.set("L2_left", 0.8);
  workload.set("L2_right", 0.8);
  workload.set("Icache", 3.4);
  workload.set("Dcache", 3.8);
  workload.set("Bpred", 1.9);
  workload.set("ITB", 0.8);
  workload.set("DTB", 1.0);
  workload.set("LdStQ", 2.9);
  workload.set("IntMap", 1.6);
  workload.set("IntQ", 1.8);
  workload.set("IntReg", 4.6);
  workload.set("IntExec", 6.6);
  workload.set("FPMap", 0.4);
  workload.set("FPQ", 0.6);
  workload.set("FPReg", 1.2);
  workload.set("FPAdd", 1.4);
  workload.set("FPMul", 1.8);
  std::printf("Workload: %.1f W peak dynamic power\n", workload.total());

  // 4. Bind everything into a CoolingSystem and run Algorithm 1.
  const core::CoolingSystem system(fp, workload, leakage);
  const core::OftecResult result = core::run_oftec(system);

  if (!result.success) {
    std::printf("OFTEC: infeasible — even maximum cooling leaves the die at "
                "%.1f C\n", units::kelvin_to_celsius(result.opt2_temperature));
    return 1;
  }

  std::printf("OFTEC solution (found in %.0f ms, %zu thermal solves):\n",
              result.runtime_ms, result.thermal_solves);
  std::printf("  fan speed   w* = %.0f RPM\n",
              units::rad_s_to_rpm(result.omega));
  std::printf("  TEC current I* = %.2f A\n", result.current);
  std::printf("  max die temperature = %.2f C (limit 90 C)\n",
              units::kelvin_to_celsius(result.max_chip_temperature));
  std::printf("  cooling power = %.2f W  (leakage %.2f + TEC %.2f + fan "
              "%.2f)\n",
              result.power.total(), result.power.leakage, result.power.tec,
              result.power.fan);
  return 0;
}
