// Multicore example: OFTEC on a quad-core CMP die with asymmetric load.
//
// Builds a 22 mm quad-core floorplan (shared L2 + four simplified core
// tiles), derives per-unit power from an activity-based dynamic model
// (two cores busy, two idle), resizes the paper's package to the bigger
// die, and runs OFTEC. The thermal map shows the two busy tiles glowing —
// and the TEC current serving exactly them.
#include <cstdio>
#include <vector>

#include "core/oftec.h"
#include "floorplan/cmp.h"
#include "power/dynamic.h"
#include "power/mcpat_like.h"
#include "thermal/steady.h"
#include "thermal/thermal_map.h"
#include "util/units.h"

int main() {
  using namespace oftec;

  // Quad-core, 22 mm die, 30 % shared L2.
  const floorplan::Floorplan fp = floorplan::make_cmp_floorplan();
  std::printf("floorplan: %zu units on a %.0f mm quad-core die\n",
              fp.block_count(), units::m_to_mm(fp.die_width()));

  // Activity-based dynamic power: 70 W at full tilt on every unit.
  const power::DynamicPowerModel dyn_model =
      power::DynamicPowerModel::calibrate(fp, 70.0);

  // Cores 0 and 3 run hot (int-heavy), cores 1 and 2 are parked.
  std::vector<double> activity(fp.block_count(), 0.0);
  auto set_core = [&](int core, double base, double int_boost) {
    const std::string prefix = "c" + std::to_string(core) + "_";
    for (const char* unit : {"Icache", "Dcache", "IntExec", "IntReg", "LdStQ",
                             "FPAdd", "FPMul", "Bpred"}) {
      double a = base;
      if (std::string(unit).rfind("Int", 0) == 0) a += int_boost;
      activity[*fp.find(prefix + unit)] = std::min(1.0, a);
    }
  };
  activity[*fp.find("L2_shared")] = 0.35;
  set_core(0, 0.55, 0.35);
  set_core(1, 0.06, 0.0);
  set_core(2, 0.06, 0.0);
  set_core(3, 0.55, 0.35);

  const power::PowerMap workload = dyn_model.power(activity);
  std::printf("workload: %.1f W dynamic (cores 0 & 3 busy, 1 & 2 parked)\n",
              workload.total());

  // Leakage for the bigger die.
  power::ProcessConfig process;
  process.total_leakage_at_t0 = 9.0;  // more silicon, more leakage
  const power::LeakageModel leakage = power::characterize_leakage(fp, process);

  // Resize the paper's package to the 22 mm die, keeping overhang ratios.
  core::CoolingSystem::Config config;
  config.grid_nx = config.grid_ny = 12;
  config.package = config.package.scaled_to_die(fp.die_width(),
                                                fp.die_height());

  const core::CoolingSystem system(fp, workload, leakage, config);
  const core::OftecResult r = core::run_oftec(system);
  if (!r.success) {
    std::printf("OFTEC: infeasible — best %.2f C\n",
                units::kelvin_to_celsius(r.opt2_temperature));
    return 1;
  }
  std::printf("\nOFTEC: w* = %.0f RPM, I* = %.2f A, Tmax = %.2f C, "
              "P = %.2f W (leak %.2f + TEC %.2f + fan %.2f)\n",
              units::rad_s_to_rpm(r.omega), r.current,
              units::kelvin_to_celsius(r.max_chip_temperature),
              r.power.total(), r.power.leakage, r.power.tec, r.power.fan);

  const thermal::SteadyResult field =
      system.solver().solve(r.omega, r.current);
  std::printf("\n%s", thermal::render_slab_ascii(system.thermal_model(),
                                                 field.temperatures,
                                                 thermal::Slab::kChip)
                          .c_str());
  std::printf("\n(the hot corners are the two busy core tiles; the parked "
              "tiles stay near the L2 temperature)\n");
  return 0;
}
