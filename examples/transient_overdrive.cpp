#include <algorithm>
// Transient overdrive: absorb a sudden load burst with a TEC current boost
// (Sec. 6.2 / Ref. [8]) while a new OFTEC solution is being computed.
//
// Scenario: the chip cruises on the Basicmath workload at its OFTEC optimum.
// At t = 0 the workload jumps to Quicksort. Re-optimizing takes a control
// interval; during that window the firmware applies the paper's recipe —
// "increase I* by about 1 A for 1 s" — and we watch how much overshoot the
// boost absorbs compared to doing nothing.
#include <cstdio>

#include "core/oftec.h"
#include "floorplan/ev6.h"
#include "power/mcpat_like.h"
#include "thermal/transient.h"
#include "util/units.h"
#include "workload/benchmarks.h"

int main() {
  using namespace oftec;

  const floorplan::Floorplan fp = floorplan::make_ev6_floorplan();
  const power::LeakageModel leakage =
      power::characterize_leakage(fp, power::ProcessConfig{});

  const power::PowerMap cruise = workload::peak_power_map(
      workload::profile_for(workload::Benchmark::kBasicmath), fp);
  const power::PowerMap burst = workload::peak_power_map(
      workload::profile_for(workload::Benchmark::kQuicksort), fp);

  // Old control: OFTEC optimum for the cruise load.
  const core::CoolingSystem cruise_sys(fp, cruise, leakage);
  const core::OftecResult cruise_star = core::run_oftec(cruise_sys);
  std::printf("Cruise optimum (Basicmath): w=%.0f RPM, I=%.2f A, T=%.1f C\n",
              units::rad_s_to_rpm(cruise_star.omega), cruise_star.current,
              units::kelvin_to_celsius(cruise_star.max_chip_temperature));

  // Steady state under the cruise control = state at the moment of the jump.
  const thermal::SteadyResult initial =
      cruise_sys.solver().solve(cruise_star.omega, cruise_star.current);

  // Transient model driven by the burst's power from t = 0.
  const core::CoolingSystem burst_sys(fp, burst, leakage);
  thermal::TransientOptions topt;
  topt.time_step = 5e-3;
  topt.duration = 3.0;
  topt.record_stride = 10;
  const thermal::TransientSolver transient(burst_sys.thermal_model(),
                                           burst_sys.cell_dynamic_power(),
                                           burst_sys.cell_leakage(), topt);

  const double boost_current =
      std::min(cruise_star.current + 1.0, burst_sys.current_max());
  const double boost_window = 1.0;  // s

  const thermal::ControlSchedule lazy =
      [&](double) -> thermal::ControlSetting {
    return {cruise_star.omega, cruise_star.current};
  };
  const thermal::ControlSchedule boosted =
      [&](double t) -> thermal::ControlSetting {
    return {cruise_star.omega,
            t < boost_window ? boost_current : cruise_star.current};
  };

  const thermal::TransientResult r_lazy =
      transient.run(lazy, initial.temperatures);
  const thermal::TransientResult r_boost =
      transient.run(boosted, initial.temperatures);

  std::printf("\nLoad steps Basicmath -> Quicksort at t=0; old fan speed "
              "kept, boost = +1 A for 1 s.\n\n");
  std::printf("  t [s]   no-boost Tmax [C]   boosted Tmax [C]   boost gain\n");
  std::printf("  ---------------------------------------------------------\n");
  double worst_gain = 0.0;
  for (std::size_t i = 0; i < r_lazy.samples.size(); i += 6) {
    const auto& a = r_lazy.samples[i];
    const auto& b = r_boost.samples[std::min(i, r_boost.samples.size() - 1)];
    const double gain = units::kelvin_to_celsius(a.max_chip_temperature) -
                        units::kelvin_to_celsius(b.max_chip_temperature);
    worst_gain = std::max(worst_gain, gain);
    std::printf("  %5.2f   %17.2f   %16.2f   %+9.2f C\n", a.time,
                units::kelvin_to_celsius(a.max_chip_temperature),
                units::kelvin_to_celsius(b.max_chip_temperature), gain);
  }
  std::printf("\nPeak transient relief from the boost: %.2f C — headroom "
              "for the controller to compute the new (w*, I*).\n",
              worst_gain);
  return 0;
}
