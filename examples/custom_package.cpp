// Custom package exploration: a thermal engineer sizing a cheaper cooling
// assembly. Starting from the paper's package, shrink the heat sink and the
// fan, re-run OFTEC for a mid-weight workload, and map which (sink, fan)
// combinations stay feasible — the kind of what-if sweep the library's
// PackageConfig API is designed for.
#include <cstdio>

#include "core/oftec.h"
#include "floorplan/ev6.h"
#include "power/mcpat_like.h"
#include "util/units.h"
#include "workload/benchmarks.h"

int main() {
  using namespace oftec;

  const floorplan::Floorplan fp = floorplan::make_ev6_floorplan();
  const power::LeakageModel leakage =
      power::characterize_leakage(fp, power::ProcessConfig{});
  const power::PowerMap workload = workload::peak_power_map(
      workload::profile_for(workload::Benchmark::kFft), fp);
  std::printf("Workload: FFT, %.1f W peak dynamic power\n\n", workload.total());

  // Derate the heat-sink/fan conductance law to emulate smaller sinks, and
  // cap the fan to emulate cheaper fans.
  struct SinkVariant {
    const char* name;
    double conductance_scale;  // scales p and g_natural of Eq. (9)
  };
  struct FanVariant {
    const char* name;
    double max_rpm;
  };
  const SinkVariant sinks[] = {
      {"paper 60mm sink", 1.00}, {"derated -15%", 0.85}, {"derated -30%", 0.70}};
  const FanVariant fans[] = {
      {"5000 RPM", 5000.0}, {"3500 RPM", 3500.0}, {"2500 RPM", 2500.0}};

  std::printf("%-18s", "sink \\ fan");
  for (const FanVariant& f : fans) std::printf("  %-26s", f.name);
  std::printf("\n");

  for (const SinkVariant& s : sinks) {
    std::printf("%-18s", s.name);
    for (const FanVariant& f : fans) {
      core::CoolingSystem::Config cfg;
      cfg.package.sink_fan.p *= s.conductance_scale;
      cfg.package.sink_fan.g_natural *= s.conductance_scale;
      cfg.package.fan.max_speed = units::rpm_to_rad_s(f.max_rpm);

      const core::CoolingSystem system(fp, workload, leakage, cfg);
      const core::OftecResult r = core::run_oftec(system);
      if (r.success) {
        char cell[64];
        std::snprintf(cell, sizeof(cell), "P=%5.1fW I=%.1fA w=%4.0f",
                      r.power.total(), r.current,
                      units::rad_s_to_rpm(r.omega));
        std::printf("  %-26s", cell);
      } else {
        std::printf("  %-26s", "INFEASIBLE");
      }
    }
    std::printf("\n");
  }

  std::printf("\nReading: moving right/down cheapens the assembly; OFTEC "
              "compensates with more TEC current until even I_max cannot "
              "hold 90 C.\n");
  return 0;
}
