// oftec_tool — command-line front end tying the library together.
//
// Usage:
//   oftec_tool [--flp FILE] [--config FILE]
//              [--benchmark NAME | --power UNIT=W,UNIT=W,...]
//              [--grid N] [--tmax C] [--ambient C] [--leakage W] [--map]
//
// Reads a HotSpot-format floorplan (or uses the built-in EV6), builds the
// paper's cooling package, runs OFTEC, and reports (ω*, I*) with the power
// breakdown; --map additionally renders the chip-layer temperature field.
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "core/oftec.h"
#include "floorplan/ev6.h"
#include "floorplan/flp_io.h"
#include "package/config_io.h"
#include "power/mcpat_like.h"
#include "thermal/steady.h"
#include "thermal/thermal_map.h"
#include "util/strings.h"
#include "util/units.h"
#include "workload/benchmarks.h"

namespace {

using namespace oftec;

struct Args {
  std::string flp_path;
  std::string config_path;
  std::string benchmark;
  std::string power_spec;
  std::size_t grid = 10;
  double t_max_c = 90.0;
  double ambient_c = 45.0;
  double leakage_w = 6.0;
  bool t_max_set = false;
  bool ambient_set = false;
  bool leakage_set = false;
  bool map = false;
  bool help = false;
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--flp") {
      args.flp_path = value();
    } else if (arg == "--config") {
      args.config_path = value();
    } else if (arg == "--benchmark") {
      args.benchmark = value();
    } else if (arg == "--power") {
      args.power_spec = value();
    } else if (arg == "--grid") {
      args.grid = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg == "--tmax") {
      args.t_max_c = std::stod(value());
      args.t_max_set = true;
    } else if (arg == "--ambient") {
      args.ambient_c = std::stod(value());
      args.ambient_set = true;
    } else if (arg == "--leakage") {
      args.leakage_w = std::stod(value());
      args.leakage_set = true;
    } else if (arg == "--map") {
      args.map = true;
    } else if (arg == "--help" || arg == "-h") {
      args.help = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.help) {
    std::printf(
        "oftec_tool [--flp FILE] [--benchmark NAME | --power U=W,...]\n"
        "           [--grid N] [--tmax C] [--ambient C] [--leakage W] "
        "[--map]\n");
    return 0;
  }

  // Floorplan.
  const floorplan::Floorplan fp =
      args.flp_path.empty() ? floorplan::make_ev6_floorplan()
                            : floorplan::read_flp_file(args.flp_path);
  std::printf("floorplan: %zu units, %.1f x %.1f mm die%s\n",
              fp.block_count(), units::m_to_mm(fp.die_width()),
              units::m_to_mm(fp.die_height()),
              args.flp_path.empty() ? " (built-in EV6)" : "");

  // Workload.
  power::PowerMap workload_map(fp);
  if (!args.power_spec.empty()) {
    for (const std::string& pair : util::split(args.power_spec, ',')) {
      const auto kv = util::split(pair, '=');
      if (kv.size() != 2) {
        std::fprintf(stderr, "bad --power entry: %s\n", pair.c_str());
        return 2;
      }
      workload_map.set(std::string(util::trim(kv[0])), std::stod(kv[1]));
    }
  } else {
    const std::string bench_name =
        args.benchmark.empty() ? "Quicksort" : args.benchmark;
    const auto bench = workload::benchmark_by_name(bench_name);
    if (!bench) {
      std::fprintf(stderr, "unknown benchmark '%s'\n", bench_name.c_str());
      return 2;
    }
    if (args.flp_path.empty()) {
      workload_map = workload::peak_power_map(workload::profile_for(*bench), fp);
    } else {
      std::fprintf(stderr,
                   "--benchmark profiles target the EV6 floorplan; use "
                   "--power with a custom --flp\n");
      return 2;
    }
    std::printf("workload: %s\n", bench_name.c_str());
  }
  std::printf("peak dynamic power: %.1f W\n", workload_map.total());

  // Process / package: start from --config (or paper defaults), then apply
  // explicit flags on top.
  package::ConfigBundle bundle;
  if (!args.config_path.empty()) {
    bundle = package::read_config_file(args.config_path);
    std::printf("config: %s\n", args.config_path.c_str());
  } else {
    bundle.package = package::PackageConfig::paper_default();
    bundle.process.t0 = bundle.package.ambient;
  }
  if (args.ambient_set) {
    bundle.package.ambient = units::celsius_to_kelvin(args.ambient_c);
    bundle.process.t0 = bundle.package.ambient;
  }
  if (args.t_max_set) {
    bundle.package.t_max = units::celsius_to_kelvin(args.t_max_c);
  }
  if (args.leakage_set) {
    bundle.process.total_leakage_at_t0 = args.leakage_w;
  }
  const power::LeakageModel leakage =
      power::characterize_leakage(fp, bundle.process);

  core::CoolingSystem::Config config;
  config.grid_nx = config.grid_ny = args.grid;
  // A custom floorplan may differ from the paper's 15.9 mm die: resize the
  // package to match (die-sized layers exactly, overhangs proportionally).
  config.package = bundle.package.scaled_to_die(fp.die_width(),
                                                fp.die_height());

  const core::CoolingSystem system(fp, workload_map, leakage, config);
  const core::OftecResult result = core::run_oftec(system);

  if (!result.success) {
    std::printf("\nOFTEC: INFEASIBLE — best achievable max temperature "
                "%.2f C exceeds the %.1f C limit.\n",
                units::kelvin_to_celsius(result.opt2_temperature),
                units::kelvin_to_celsius(config.package.t_max));
    std::printf("Consider a larger sink, higher fan ceiling, or throttling "
                "(see core/throttle.h).\n");
    return 1;
  }

  std::printf("\nOFTEC solution (%.0f ms, %zu thermal solves):\n",
              result.runtime_ms, result.thermal_solves);
  std::printf("  w*    = %.0f RPM (%.1f rad/s)\n",
              units::rad_s_to_rpm(result.omega), result.omega);
  std::printf("  I*    = %.2f A\n", result.current);
  std::printf("  Tmax  = %.2f C (limit %.1f C)\n",
              units::kelvin_to_celsius(result.max_chip_temperature),
              units::kelvin_to_celsius(config.package.t_max));
  std::printf("  power = %.2f W (leakage %.2f + TEC %.2f + fan %.2f)\n",
              result.power.total(), result.power.leakage, result.power.tec,
              result.power.fan);

  if (args.map) {
    const thermal::SteadyResult field =
        system.solver().solve(result.omega, result.current);
    std::printf("\n%s", thermal::render_slab_ascii(
                            system.thermal_model(), field.temperatures,
                            thermal::Slab::kChip)
                            .c_str());
  }
  return 0;
}
