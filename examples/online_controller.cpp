// Online controller: replaying a synthesized power trace (the PTscalar
// substitute) through the LUT controller from Sec. 6.2's extension —
// deployed as a *service*.
//
// Earlier revisions of this example linked the library and called
// LutController directly; it now drives the same loop through oftec-serve:
// an in-process server owns the chip session (thermal model + LUT trained
// on all eight benchmarks at bind time), and the controller is a plain
// network client. Offline phase = one `bind`; online phase per window =
// one `lut` lookup plus one `solve` verification, both over the wire.
// Because the protocol prints doubles with %.17g, the served temperatures
// are bit-identical to the direct library calls the old example made.
#include <cstdio>
#include <string>

#include "floorplan/ev6.h"
#include "power/mcpat_like.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/strings.h"
#include "util/units.h"
#include "workload/benchmarks.h"
#include "workload/trace.h"

int main() {
  using namespace oftec;

  // The service. In a real deployment this runs in its own process
  // (`oftec_client serve`); in-process keeps the example self-contained.
  serve::Server server;
  server.start();
  std::printf("oftec-serve up on 127.0.0.1:%u\n", server.port());

  serve::Client client = serve::Client::connect(server.port());

  // Offline phase, now a single bind request: the chip's workload envelope
  // (the trace's max-power vector) plus LUT training over all eight
  // benchmark power vectors — one OFTEC run each, server-side.
  const floorplan::Floorplan fp = floorplan::make_ev6_floorplan();
  const auto& prof = workload::profile_for(workload::Benchmark::kSusan);
  workload::TraceOptions trace_opts;
  trace_opts.sample_count = 200;
  trace_opts.sample_interval = 0.01;  // 2 s total
  const workload::PowerTrace trace =
      workload::generate_trace(prof, fp, trace_opts);
  const power::PowerMap envelope = workload::max_power_map(trace, fp);

  serve::BindParams bind;
  bind.power_w.assign(envelope.values().begin(), envelope.values().end());
  for (const workload::Benchmark b : workload::all_benchmarks()) {
    bind.lut_training.emplace_back(workload::benchmark_name(b));
  }
  std::printf("Binding chip session (LUT: one OFTEC run per benchmark)...\n");
  const serve::BindReply chip = client.bind(bind);
  std::printf("session %llu ready: T_max=%.1f C, %zu floorplan blocks.\n\n",
              static_cast<unsigned long long>(chip.session),
              units::kelvin_to_celsius(chip.t_max_k), chip.blocks.size());

  // Online phase: the chip runs Susan (phase-heavy trace); control every
  // 500 ms window via a LUT lookup, then verify with one served solve.
  const std::size_t window = 50;  // 500 ms of samples
  std::printf("window   window-max P   LUT control (w, I)      verified "
              "Tmax\n");
  std::printf("---------------------------------------------------------------\n");
  for (std::size_t start = 0; start + window <= trace.size();
       start += window) {
    // Reduce the window to its per-unit max-power vector (Fig. 5 hand-off).
    power::PowerMap window_max(fp);
    for (std::size_t s = start; s < start + window; ++s) {
      window_max.max_with(trace.samples[s]);
    }
    const std::vector<double> query(window_max.values().begin(),
                                    window_max.values().end());
    const serve::LutReply control = client.lut(chip.session, query);
    const serve::SolveReply check =
        client.solve(chip.session, control.omega, control.current);
    const std::string verdict =
        check.runaway ? "RUNAWAY"
                      : util::format_double(
                            units::kelvin_to_celsius(
                                check.max_chip_temperature_k),
                            2) +
                            " C";
    std::printf("%2zu-%3zu   %8.1f W     w=%4.0f RPM, I=%.2f A     %s\n",
                start, start + window, window_max.total(),
                units::rad_s_to_rpm(control.omega), control.current,
                verdict.c_str());
  }

  std::printf("\nEach control decision cost one LUT lookup and one verify "
              "solve over the wire — the controller itself never links the "
              "thermal stack. (Sec. 6.2's trade, as a service.)\n");
  server.stop();
  return 0;
}
