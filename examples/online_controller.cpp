// Online controller: replaying a synthesized power trace (the PTscalar
// substitute) through the LUT controller from Sec. 6.2's extension.
//
// Offline: run OFTEC once per benchmark and store (power-vector → ω*, I*)
// in the look-up table. Online: every trace window, reduce the window to its
// max-power vector, look up the nearest pre-computed control, and verify the
// resulting die temperature with one thermal solve.
#include <cstdio>
#include <string>

#include "core/lut_controller.h"
#include "util/strings.h"
#include "floorplan/ev6.h"
#include "power/mcpat_like.h"
#include "util/units.h"
#include "workload/trace.h"

int main() {
  using namespace oftec;

  const floorplan::Floorplan fp = floorplan::make_ev6_floorplan();
  const power::LeakageModel leakage =
      power::characterize_leakage(fp, power::ProcessConfig{});

  // Offline phase: pre-compute the table over all eight benchmarks.
  std::printf("Building LUT from the 8 MiBench power vectors (one OFTEC run "
              "each)...\n");
  std::vector<power::PowerMap> training;
  for (const workload::Benchmark b : workload::all_benchmarks()) {
    training.push_back(
        workload::peak_power_map(workload::profile_for(b), fp));
  }
  const core::LutController lut =
      core::LutController::build(training, fp, leakage);
  std::printf("LUT ready: %zu entries.\n\n", lut.entries().size());

  // Online phase: the chip runs Susan (phase-heavy trace); control every
  // 500 ms window from the LUT.
  const auto& prof = workload::profile_for(workload::Benchmark::kSusan);
  workload::TraceOptions trace_opts;
  trace_opts.sample_count = 200;
  trace_opts.sample_interval = 0.01;  // 2 s total
  const workload::PowerTrace trace =
      workload::generate_trace(prof, fp, trace_opts);

  const core::CoolingSystem verifier(
      fp, workload::max_power_map(trace, fp), leakage);

  const std::size_t window = 50;  // 500 ms of samples
  std::printf("window   window-max P   LUT control (w, I)      verified "
              "Tmax\n");
  std::printf("---------------------------------------------------------------\n");
  for (std::size_t start = 0; start + window <= trace.size();
       start += window) {
    // Reduce the window to its per-unit max-power vector (Fig. 5 hand-off).
    power::PowerMap window_max(fp);
    for (std::size_t s = start; s < start + window; ++s) {
      window_max.max_with(trace.samples[s]);
    }
    const core::LutController::LookupResult control =
        lut.lookup(window_max);
    const core::Evaluation& check =
        verifier.evaluate(control.omega, control.current);
    const std::string verdict =
        check.runaway ? "RUNAWAY"
                      : util::format_double(units::kelvin_to_celsius(
                                                check.max_chip_temperature),
                                            2) +
                            " C";
    std::printf("%2zu-%3zu   %8.1f W     w=%4.0f RPM, I=%.2f A     %s\n",
                start, start + window, window_max.total(),
                units::rad_s_to_rpm(control.omega), control.current,
                verdict.c_str());
  }

  std::printf("\nEach control decision cost a nearest-neighbor lookup "
              "(microseconds) instead of a full OFTEC run (sub-second) — the "
              "trade the paper's Sec. 6.2 extension proposes.\n");
  return 0;
}
