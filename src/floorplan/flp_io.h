// HotSpot-compatible floorplan file I/O.
//
// Reads and writes the classic `.flp` format used by HotSpot (paper ref.
// [12]) and the tools around it:
//
//     # comment
//     <unit-name> <width-m> <height-m> <left-x-m> <bottom-y-m>
//
// so users can drop in their own floorplans instead of the built-in EV6
// factory. Units whose name contains "cache"/"L2"/"L3" (case-insensitive)
// are classified as UnitKind::kCache for the TEC deployment policy; an
// explicit override list can replace that heuristic.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "floorplan/floorplan.h"

namespace oftec::floorplan {

struct FlpReadOptions {
  /// Names to force-classify as caches (bypasses the name heuristic).
  std::vector<std::string> cache_units;
  /// Require the blocks to tile the die exactly (within tolerance).
  bool require_full_coverage = true;
  double coverage_tolerance = 1e-6;
};

/// Parse a .flp stream. The die size is the bounding box of all blocks.
/// Throws std::runtime_error with a line number on malformed input.
[[nodiscard]] Floorplan read_flp(std::istream& in,
                                 const FlpReadOptions& options = {});

/// Parse a .flp file from disk.
[[nodiscard]] Floorplan read_flp_file(const std::string& path,
                                      const FlpReadOptions& options = {});

/// Serialize a floorplan to .flp (5 significant columns, '#' header).
void write_flp(const Floorplan& fp, std::ostream& out);

/// Serialize to a file; throws std::runtime_error on I/O failure.
void write_flp_file(const Floorplan& fp, const std::string& path);

/// The name heuristic used when FlpReadOptions::cache_units is empty.
[[nodiscard]] bool looks_like_cache(std::string_view unit_name);

}  // namespace oftec::floorplan
