// EV6-style (Alpha 21264) floorplan factory.
//
// The paper targets the Alpha 21264 with a 15.9 mm × 15.9 mm die (Table 1) —
// the same die size as HotSpot's classic ev6 floorplan. The original ev6.flp
// coordinates are not redistributable here, so this factory re-derives a
// floorplan with the same 18 functional units and the same overall
// organization (L2 banks along the bottom and flanks, I/D caches in the core
// belt, integer/floating-point clusters at the top), with block fractions
// chosen to tile the die exactly.
#pragma once

#include "floorplan/floorplan.h"

namespace oftec::floorplan {

/// Build the EV6-style floorplan scaled to a square die of side
/// `die_side` meters (defaults to the paper's 15.9 mm).
[[nodiscard]] Floorplan make_ev6_floorplan(double die_side = 15.9e-3);

/// The functional units of the EV6 floorplan, in the order the factory adds
/// them (stable order — power vectors index by this).
[[nodiscard]] const std::vector<std::string>& ev6_unit_names();

}  // namespace oftec::floorplan
