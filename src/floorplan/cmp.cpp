#include "floorplan/cmp.h"

#include <stdexcept>
#include <string>

namespace oftec::floorplan {

namespace {

/// Simplified core tile on the unit square (8 units, exact tiling):
///   y 0.00–0.35 : Icache (left half), Dcache (right half)
///   y 0.35–0.70 : IntExec (0.40), IntReg (0.30), LdStQ (0.30)
///   y 0.70–1.00 : FPAdd (0.35), FPMul (0.35), Bpred (0.30)
struct FracBlock {
  const char* name;
  double x, y, w, h;
  UnitKind kind;
};

constexpr FracBlock kCoreTile[] = {
    {"Icache", 0.00, 0.00, 0.50, 0.35, UnitKind::kCache},
    {"Dcache", 0.50, 0.00, 0.50, 0.35, UnitKind::kCache},
    {"IntExec", 0.00, 0.35, 0.40, 0.35, UnitKind::kCore},
    {"IntReg", 0.40, 0.35, 0.30, 0.35, UnitKind::kCore},
    {"LdStQ", 0.70, 0.35, 0.30, 0.35, UnitKind::kCore},
    {"FPAdd", 0.00, 0.70, 0.35, 0.30, UnitKind::kCore},
    {"FPMul", 0.35, 0.70, 0.35, 0.30, UnitKind::kCore},
    {"Bpred", 0.70, 0.70, 0.30, 0.30, UnitKind::kCore},
};

}  // namespace

Floorplan make_cmp_floorplan(const CmpOptions& options) {
  if (options.cores_x == 0 || options.cores_y == 0) {
    throw std::invalid_argument("make_cmp_floorplan: need >= 1 core");
  }
  if (options.die_side <= 0.0) {
    throw std::invalid_argument("make_cmp_floorplan: die_side must be > 0");
  }
  if (options.shared_l2_fraction <= 0.0 || options.shared_l2_fraction >= 1.0) {
    throw std::invalid_argument(
        "make_cmp_floorplan: shared_l2_fraction must be in (0, 1)");
  }

  const double side = options.die_side;
  Floorplan fp(side, side);

  // Shared L2 slab across the bottom.
  Block l2;
  l2.name = "L2_shared";
  l2.x = 0.0;
  l2.y = 0.0;
  l2.width = side;
  l2.height = options.shared_l2_fraction * side;
  l2.kind = UnitKind::kCache;
  fp.add_block(std::move(l2));

  // Core tiles fill the rest.
  const double tiles_y0 = options.shared_l2_fraction * side;
  const double tile_w = side / static_cast<double>(options.cores_x);
  const double tile_h =
      (side - tiles_y0) / static_cast<double>(options.cores_y);

  std::size_t core_id = 0;
  for (std::size_t cy = 0; cy < options.cores_y; ++cy) {
    for (std::size_t cx = 0; cx < options.cores_x; ++cx, ++core_id) {
      const double x0 = static_cast<double>(cx) * tile_w;
      const double y0 = tiles_y0 + static_cast<double>(cy) * tile_h;
      for (const FracBlock& fb : kCoreTile) {
        Block b;
        b.name = "c" + std::to_string(core_id) + "_" + fb.name;
        b.x = x0 + fb.x * tile_w;
        b.y = y0 + fb.y * tile_h;
        b.width = fb.w * tile_w;
        b.height = fb.h * tile_h;
        b.kind = fb.kind;
        fp.add_block(std::move(b));
      }
    }
  }
  fp.require_full_coverage(1e-9);
  return fp;
}

}  // namespace oftec::floorplan
