// Chip-multiprocessor (CMP) floorplan factory.
//
// The paper motivates TECs for "cooling high-end multi-core processor
// chips"; this factory builds an N-core floorplan — a grid of scaled-down
// EV6-style core tiles over a shared L2 slab — so the library's generality
// beyond the single-core Alpha die is exercised end-to-end (OFTEC, TEC
// coverage, deployment, multi-zone control all operate on any floorplan).
#pragma once

#include <cstddef>

#include "floorplan/floorplan.h"

namespace oftec::floorplan {

struct CmpOptions {
  std::size_t cores_x = 2;      ///< core tiles per row
  std::size_t cores_y = 2;      ///< core tiles per column
  double die_side = 22.0e-3;    ///< square die edge [m]
  /// Fraction of the die height given to the shared L2 slab at the bottom.
  double shared_l2_fraction = 0.30;
};

/// Build the CMP floorplan. Core-tile units are named "c<k>_<unit>"
/// (e.g. "c0_IntExec"); the shared cache is "L2_shared". Tiles replicate a
/// simplified 8-unit core (caches + int/fp clusters) that tiles exactly.
[[nodiscard]] Floorplan make_cmp_floorplan(const CmpOptions& options = {});

}  // namespace oftec::floorplan
