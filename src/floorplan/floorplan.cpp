#include "floorplan/floorplan.h"

#include <cmath>
#include <stdexcept>

namespace oftec::floorplan {

namespace {

constexpr double kGeomTol = 1e-12;

[[nodiscard]] bool overlaps(const Block& a, const Block& b) noexcept {
  const double overlap_w =
      std::min(a.right(), b.right()) - std::max(a.x, b.x);
  const double overlap_h = std::min(a.top(), b.top()) - std::max(a.y, b.y);
  return overlap_w > kGeomTol && overlap_h > kGeomTol;
}

}  // namespace

Floorplan::Floorplan(double die_width, double die_height)
    : die_width_(die_width), die_height_(die_height) {
  if (die_width <= 0.0 || die_height <= 0.0) {
    throw std::invalid_argument("Floorplan: die dimensions must be positive");
  }
}

void Floorplan::add_block(Block block) {
  if (block.name.empty()) {
    throw std::invalid_argument("Floorplan: block needs a name");
  }
  if (block.width <= 0.0 || block.height <= 0.0) {
    throw std::invalid_argument("Floorplan: degenerate block " + block.name);
  }
  if (block.x < -kGeomTol || block.y < -kGeomTol ||
      block.right() > die_width_ + kGeomTol ||
      block.top() > die_height_ + kGeomTol) {
    throw std::invalid_argument("Floorplan: block outside die: " + block.name);
  }
  if (find(block.name).has_value()) {
    throw std::invalid_argument("Floorplan: duplicate block " + block.name);
  }
  for (const Block& existing : blocks_) {
    if (overlaps(existing, block)) {
      throw std::invalid_argument("Floorplan: block " + block.name +
                                  " overlaps " + existing.name);
    }
  }
  blocks_.push_back(std::move(block));
}

std::optional<std::size_t> Floorplan::find(std::string_view name) const {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].name == name) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> Floorplan::block_at(double x, double y) const {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    const Block& b = blocks_[i];
    if (x >= b.x - kGeomTol && x < b.right() - kGeomTol &&
        y >= b.y - kGeomTol && y < b.top() - kGeomTol) {
      return i;
    }
  }
  return std::nullopt;
}

double Floorplan::coverage() const noexcept {
  double area = 0.0;
  for (const Block& b : blocks_) area += b.area();
  return area / die_area();
}

void Floorplan::require_full_coverage(double tol) const {
  const double c = coverage();
  if (std::abs(c - 1.0) > tol) {
    throw std::runtime_error("Floorplan: blocks cover " + std::to_string(c) +
                             " of the die, expected full tiling");
  }
}

}  // namespace oftec::floorplan
