#include "floorplan/flp_io.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace oftec::floorplan {

bool looks_like_cache(std::string_view unit_name) {
  const std::string lower = util::to_lower(unit_name);
  return lower.find("cache") != std::string::npos ||
         lower.find("l2") != std::string::npos ||
         lower.find("l3") != std::string::npos;
}

Floorplan read_flp(std::istream& in, const FlpReadOptions& options) {
  struct RawBlock {
    std::string name;
    double width, height, x, y;
  };
  std::vector<RawBlock> raw;

  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;

    std::istringstream fields{std::string(trimmed)};
    RawBlock block;
    if (!(fields >> block.name >> block.width >> block.height >> block.x >>
          block.y)) {
      throw std::runtime_error("read_flp: malformed line " +
                               std::to_string(line_number) + ": '" +
                               std::string(trimmed) + "'");
    }
    raw.push_back(std::move(block));
  }
  if (raw.empty()) {
    throw std::runtime_error("read_flp: no blocks found");
  }

  double die_w = 0.0, die_h = 0.0;
  for (const RawBlock& b : raw) {
    die_w = std::max(die_w, b.x + b.width);
    die_h = std::max(die_h, b.y + b.height);
  }

  auto is_cache = [&](const std::string& name) {
    if (!options.cache_units.empty()) {
      return std::find(options.cache_units.begin(), options.cache_units.end(),
                       name) != options.cache_units.end();
    }
    return looks_like_cache(name);
  };

  Floorplan fp(die_w, die_h);
  for (const RawBlock& b : raw) {
    Block block;
    block.name = b.name;
    block.x = b.x;
    block.y = b.y;
    block.width = b.width;
    block.height = b.height;
    block.kind = is_cache(b.name) ? UnitKind::kCache : UnitKind::kCore;
    fp.add_block(std::move(block));
  }
  if (options.require_full_coverage) {
    fp.require_full_coverage(options.coverage_tolerance);
  }
  return fp;
}

Floorplan read_flp_file(const std::string& path,
                        const FlpReadOptions& options) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_flp_file: cannot open " + path);
  }
  return read_flp(in, options);
}

void write_flp(const Floorplan& fp, std::ostream& out) {
  out << "# Floorplan (HotSpot .flp format)\n";
  out << "# Line format: <unit-name> <width> <height> <left-x> <bottom-y>\n";
  out << "# all dimensions are in meters\n";
  char buf[256];
  for (const Block& b : fp.blocks()) {
    std::snprintf(buf, sizeof(buf), "%s\t%.9f\t%.9f\t%.9f\t%.9f\n",
                  b.name.c_str(), b.width, b.height, b.x, b.y);
    out << buf;
  }
}

void write_flp_file(const Floorplan& fp, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_flp_file: cannot open " + path);
  }
  write_flp(fp, out);
  if (!out) {
    throw std::runtime_error("write_flp_file: write failed for " + path);
  }
}

}  // namespace oftec::floorplan
