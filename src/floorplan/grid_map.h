// Floorplan → thermal-grid mapping.
//
// The thermal model discretizes each package layer into an nx×ny grid over
// the die area. GridMap precomputes, for every cell, the fraction of its area
// covered by each floorplan block, which is then used to (1) distribute
// per-unit power onto cells and (2) decide TEC coverage per cell.
#pragma once

#include <cstddef>
#include <vector>

#include "floorplan/floorplan.h"

namespace oftec::floorplan {

/// A (block, area-fraction) contribution to one grid cell.
struct CellContribution {
  std::size_t block_index = 0;
  double fraction = 0.0;  ///< fraction of the *cell* area covered by the block
};

class GridMap {
 public:
  /// Overlay an nx×ny grid on the floorplan's die and compute overlaps.
  GridMap(const Floorplan& fp, std::size_t nx, std::size_t ny);

  [[nodiscard]] std::size_t nx() const noexcept { return nx_; }
  [[nodiscard]] std::size_t ny() const noexcept { return ny_; }
  [[nodiscard]] std::size_t cell_count() const noexcept { return nx_ * ny_; }
  [[nodiscard]] double cell_width() const noexcept { return cell_w_; }
  [[nodiscard]] double cell_height() const noexcept { return cell_h_; }
  [[nodiscard]] double cell_area() const noexcept { return cell_w_ * cell_h_; }

  /// Row-major cell index for (ix, iy).
  [[nodiscard]] std::size_t cell_index(std::size_t ix,
                                       std::size_t iy) const noexcept {
    return iy * nx_ + ix;
  }

  /// Block contributions for a cell (fractions sum to 1 for fully tiled
  /// floorplans).
  [[nodiscard]] const std::vector<CellContribution>& contributions(
      std::size_t cell) const;

  /// Distribute per-block powers [W] (indexed like Floorplan::blocks()) onto
  /// cells proportionally to overlap area. Conserves total power for fully
  /// tiled floorplans.
  [[nodiscard]] std::vector<double> distribute_power(
      const std::vector<double>& block_power) const;

  /// Index of the block owning the majority of the cell's area.
  [[nodiscard]] std::size_t dominant_block(std::size_t cell) const;

  /// Fraction of the cell covered by blocks of the given kind.
  [[nodiscard]] double kind_fraction(std::size_t cell, UnitKind kind) const;

  /// Per-cell TEC coverage under the paper's deployment policy: a cell is
  /// TEC-covered iff at least half of its area belongs to non-cache units.
  [[nodiscard]] std::vector<bool> tec_coverage() const;

 private:
  const Floorplan* fp_;
  std::size_t nx_;
  std::size_t ny_;
  double cell_w_;
  double cell_h_;
  std::vector<std::vector<CellContribution>> cells_;
};

}  // namespace oftec::floorplan
