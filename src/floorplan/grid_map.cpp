#include "floorplan/grid_map.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace oftec::floorplan {

GridMap::GridMap(const Floorplan& fp, std::size_t nx, std::size_t ny)
    : fp_(&fp), nx_(nx), ny_(ny) {
  if (nx == 0 || ny == 0) {
    throw std::invalid_argument("GridMap: grid dimensions must be positive");
  }
  cell_w_ = fp.die_width() / static_cast<double>(nx);
  cell_h_ = fp.die_height() / static_cast<double>(ny);
  cells_.resize(nx * ny);

  const double cell_area = cell_w_ * cell_h_;
  for (std::size_t b = 0; b < fp.block_count(); ++b) {
    const Block& blk = fp.blocks()[b];
    // Cells potentially intersecting this block.
    const auto ix_lo = static_cast<std::size_t>(
        std::max(0.0, std::floor(blk.x / cell_w_)));
    const auto iy_lo = static_cast<std::size_t>(
        std::max(0.0, std::floor(blk.y / cell_h_)));
    const std::size_t ix_hi = std::min(
        nx_ - 1,
        static_cast<std::size_t>(std::max(0.0, std::ceil(blk.right() / cell_w_) - 1.0)));
    const std::size_t iy_hi = std::min(
        ny_ - 1,
        static_cast<std::size_t>(std::max(0.0, std::ceil(blk.top() / cell_h_) - 1.0)));

    for (std::size_t iy = iy_lo; iy <= iy_hi; ++iy) {
      for (std::size_t ix = ix_lo; ix <= ix_hi; ++ix) {
        const double cx0 = static_cast<double>(ix) * cell_w_;
        const double cy0 = static_cast<double>(iy) * cell_h_;
        const double ow =
            std::min(cx0 + cell_w_, blk.right()) - std::max(cx0, blk.x);
        const double oh =
            std::min(cy0 + cell_h_, blk.top()) - std::max(cy0, blk.y);
        if (ow <= 0.0 || oh <= 0.0) continue;
        const double frac = (ow * oh) / cell_area;
        if (frac <= 0.0) continue;
        cells_[cell_index(ix, iy)].push_back({b, frac});
      }
    }
  }
}

const std::vector<CellContribution>& GridMap::contributions(
    std::size_t cell) const {
  if (cell >= cells_.size()) {
    throw std::out_of_range("GridMap::contributions");
  }
  return cells_[cell];
}

std::vector<double> GridMap::distribute_power(
    const std::vector<double>& block_power) const {
  if (block_power.size() != fp_->block_count()) {
    throw std::invalid_argument("GridMap::distribute_power: arity mismatch");
  }
  const double cell_area = this->cell_area();
  std::vector<double> cell_power(cell_count(), 0.0);
  for (std::size_t cell = 0; cell < cells_.size(); ++cell) {
    double acc = 0.0;
    for (const CellContribution& contrib : cells_[cell]) {
      const Block& blk = fp_->blocks()[contrib.block_index];
      // Power density of the block times the overlap area.
      const double density = block_power[contrib.block_index] / blk.area();
      acc += density * contrib.fraction * cell_area;
    }
    cell_power[cell] = acc;
  }
  return cell_power;
}

std::size_t GridMap::dominant_block(std::size_t cell) const {
  const auto& contribs = contributions(cell);
  if (contribs.empty()) {
    throw std::runtime_error("GridMap::dominant_block: uncovered cell");
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < contribs.size(); ++i) {
    if (contribs[i].fraction > contribs[best].fraction) best = i;
  }
  return contribs[best].block_index;
}

double GridMap::kind_fraction(std::size_t cell, UnitKind kind) const {
  double frac = 0.0;
  for (const CellContribution& contrib : contributions(cell)) {
    if (fp_->blocks()[contrib.block_index].kind == kind) {
      frac += contrib.fraction;
    }
  }
  return frac;
}

std::vector<bool> GridMap::tec_coverage() const {
  std::vector<bool> covered(cell_count(), false);
  for (std::size_t cell = 0; cell < cell_count(); ++cell) {
    covered[cell] = kind_fraction(cell, UnitKind::kCore) >= 0.5;
  }
  return covered;
}

}  // namespace oftec::floorplan
