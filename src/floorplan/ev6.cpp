#include "floorplan/ev6.h"

#include <stdexcept>

namespace oftec::floorplan {

namespace {

/// Fractional layout rows (unit square), chosen to tile exactly:
///   y 0.00–0.45 : L2 (full width)
///   y 0.45–1.00 : L2_left (x 0–0.18) and L2_right (x 0.82–1.0) flanks,
///                 core region in between (x 0.18–0.82)
/// Core region rows:
///   y 0.45–0.62 : Icache (left half), Dcache (right half)
///   y 0.62–0.75 : Bpred, ITB, DTB, LdStQ     (each 0.16 wide)
///   y 0.75–0.88 : IntMap, IntQ, IntReg, IntExec (0.12/0.14/0.14/0.24)
///   y 0.88–1.00 : FPMap, FPQ, FPReg, FPAdd, FPMul (0.10/0.10/0.12/0.16/0.16)
struct FracBlock {
  const char* name;
  double x, y, w, h;
  UnitKind kind;
};

constexpr FracBlock kEv6Blocks[] = {
    {"L2", 0.00, 0.00, 1.00, 0.45, UnitKind::kCache},
    {"L2_left", 0.00, 0.45, 0.18, 0.55, UnitKind::kCache},
    {"L2_right", 0.82, 0.45, 0.18, 0.55, UnitKind::kCache},
    {"Icache", 0.18, 0.45, 0.32, 0.17, UnitKind::kCache},
    {"Dcache", 0.50, 0.45, 0.32, 0.17, UnitKind::kCache},
    {"Bpred", 0.18, 0.62, 0.16, 0.13, UnitKind::kCore},
    {"ITB", 0.34, 0.62, 0.16, 0.13, UnitKind::kCore},
    {"DTB", 0.50, 0.62, 0.16, 0.13, UnitKind::kCore},
    {"LdStQ", 0.66, 0.62, 0.16, 0.13, UnitKind::kCore},
    {"IntMap", 0.18, 0.75, 0.12, 0.13, UnitKind::kCore},
    {"IntQ", 0.30, 0.75, 0.14, 0.13, UnitKind::kCore},
    {"IntReg", 0.44, 0.75, 0.14, 0.13, UnitKind::kCore},
    {"IntExec", 0.58, 0.75, 0.24, 0.13, UnitKind::kCore},
    {"FPMap", 0.18, 0.88, 0.10, 0.12, UnitKind::kCore},
    {"FPQ", 0.28, 0.88, 0.10, 0.12, UnitKind::kCore},
    {"FPReg", 0.38, 0.88, 0.12, 0.12, UnitKind::kCore},
    {"FPAdd", 0.50, 0.88, 0.16, 0.12, UnitKind::kCore},
    {"FPMul", 0.66, 0.88, 0.16, 0.12, UnitKind::kCore},
};

}  // namespace

Floorplan make_ev6_floorplan(double die_side) {
  if (die_side <= 0.0) {
    throw std::invalid_argument("make_ev6_floorplan: die_side must be > 0");
  }
  Floorplan fp(die_side, die_side);
  for (const FracBlock& fb : kEv6Blocks) {
    Block b;
    b.name = fb.name;
    b.x = fb.x * die_side;
    b.y = fb.y * die_side;
    b.width = fb.w * die_side;
    b.height = fb.h * die_side;
    b.kind = fb.kind;
    fp.add_block(std::move(b));
  }
  fp.require_full_coverage(1e-9);
  return fp;
}

const std::vector<std::string>& ev6_unit_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const FracBlock& fb : kEv6Blocks) out.emplace_back(fb.name);
    return out;
  }();
  return names;
}

}  // namespace oftec::floorplan
