// Chip floorplan: a set of rectangular functional-unit blocks tiling the die.
//
// The floorplan drives two things in the OFTEC flow (paper Fig. 5): mapping
// per-unit dynamic/leakage power onto thermal grid cells, and deciding which
// cells are covered by TECs ("the entire surface of the processor is tiled
// with TECs except the instruction and data caches", Sec. 6.1).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace oftec::floorplan {

/// Functional-unit category; used by the TEC deployment policy.
enum class UnitKind {
  kCore,   ///< datapath / control logic (TEC-covered by default)
  kCache,  ///< I/D/L2 cache arrays (left uncovered by default)
};

/// One rectangular block. Coordinates in meters, origin at the die's
/// bottom-left corner.
struct Block {
  std::string name;
  double x = 0.0;       ///< left edge [m]
  double y = 0.0;       ///< bottom edge [m]
  double width = 0.0;   ///< extent in x [m]
  double height = 0.0;  ///< extent in y [m]
  UnitKind kind = UnitKind::kCore;

  [[nodiscard]] double area() const noexcept { return width * height; }
  [[nodiscard]] double right() const noexcept { return x + width; }
  [[nodiscard]] double top() const noexcept { return y + height; }
};

/// A validated floorplan: blocks within the die, pairwise non-overlapping.
class Floorplan {
 public:
  /// Die of the given dimensions with no blocks yet.
  Floorplan(double die_width, double die_height);

  /// Add a block. Throws std::invalid_argument if the block is degenerate,
  /// sticks out of the die, or overlaps an existing block (beyond a 1e-12 m
  /// tolerance).
  void add_block(Block block);

  [[nodiscard]] double die_width() const noexcept { return die_width_; }
  [[nodiscard]] double die_height() const noexcept { return die_height_; }
  [[nodiscard]] double die_area() const noexcept {
    return die_width_ * die_height_;
  }

  [[nodiscard]] const std::vector<Block>& blocks() const noexcept {
    return blocks_;
  }
  [[nodiscard]] std::size_t block_count() const noexcept {
    return blocks_.size();
  }

  /// Index of the named block, if present.
  [[nodiscard]] std::optional<std::size_t> find(std::string_view name) const;

  /// Block containing point (x, y); blocks own their left/bottom edges.
  [[nodiscard]] std::optional<std::size_t> block_at(double x, double y) const;

  /// Sum of block areas / die area. 1.0 (within tolerance) means the
  /// floorplan tiles the die exactly.
  [[nodiscard]] double coverage() const noexcept;

  /// Throws std::runtime_error unless the blocks tile the die exactly
  /// (coverage within `tol` of 1).
  void require_full_coverage(double tol = 1e-9) const;

 private:
  double die_width_;
  double die_height_;
  std::vector<Block> blocks_;
};

}  // namespace oftec::floorplan
