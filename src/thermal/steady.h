// Steady-state thermal solve for one (ω, I_TEC) operating point.
//
// With the Taylor-linearized leakage and the Peltier terms on the LHS, the
// system is linear for a fixed linearization point; the exact exponential
// leakage is recovered by an outer Newton loop that re-linearizes at the
// current chip temperatures (the "iterative method" of Sec. 4, accelerated
// by the linear term exactly as reference [13] prescribes).
//
// Thermal runaway — the paper's "𝒯 → ∞" dark-red region of Fig. 6(a,b) —
// appears here as the outer loop diverging (or the modified matrix going
// singular): the leakage slope exceeds what the cooling path can sink. The
// result then reports runaway=true and max_chip_temperature = +inf.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "la/vector_ops.h"
#include "power/leakage.h"
#include "thermal/model.h"
#include "util/status.h"

namespace oftec::thermal {

/// How chip leakage enters the solve.
enum class LeakageMode {
  /// Paper default: chord linearization over [300 K, 390 K] (10-sample
  /// regression, Sec. 6.1). The chord line does not depend on the operating
  /// point, so one linear solve is exact for this model.
  kChordLinear,
  /// Outer Newton loop with tangent re-linearization — converges to the true
  /// exponential-leakage solution. Library default.
  kNewtonExact,
  /// Leakage frozen at its ambient-temperature value (ablation only).
  kConstant,
};

struct SteadyOptions {
  LeakageMode mode = LeakageMode::kNewtonExact;
  double tolerance = 1e-3;            ///< outer-loop ΔT convergence [K]
  std::size_t max_iterations = 50;
  /// Temperatures beyond this are declared runaway [K].
  double runaway_temperature = 500.0;
  /// Chord-fit sampling window and count (paper: 10 pts over [300, 390] K).
  double chord_t_lo = 300.0;
  double chord_t_hi = 390.0;
  std::size_t chord_samples = 10;
  /// Try Jacobi-preconditioned BiCGSTAB before the banded LU (≈5–10× faster
  /// on well-conditioned systems; the direct solver remains the fallback
  /// near runaway where the Krylov iteration stalls).
  bool prefer_iterative = true;
  double iterative_tolerance = 1e-9;
};

struct SteadyResult {
  la::Vector temperatures;  ///< all nodes [K]; empty on runaway
  bool converged = false;
  bool runaway = false;
  /// Structured outcome. kOk ⇔ converged && !runaway; the runaway/converged
  /// flags are kept for existing callers, but layered fallback logic should
  /// branch on this (it distinguishes "physically infeasible" from "the
  /// numerics failed" — only the former is a definitive answer).
  SolveStatus status = SolveStatus::kNotConverged;
  std::size_t iterations = 0;
  double max_chip_temperature = std::numeric_limits<double>::infinity();
  la::Vector chip_temperatures;       ///< per chip cell [K]
  la::Vector cold_side_temperatures;  ///< TEC absorb interface [K]
  la::Vector hot_side_temperatures;   ///< TEC reject interface [K]
  double leakage_power = std::numeric_limits<double>::infinity();  ///< exact [W]
  double tec_power = std::numeric_limits<double>::infinity();      ///< Eq. 3 [W]
};

/// Populate a SteadyResult from a converged node-temperature vector: slab
/// extraction, exact leakage, and TEC electrical power. Shared by the serial
/// SteadySolver and the batched SolveEngine so both report identically.
[[nodiscard]] SteadyResult make_steady_result(
    const ThermalModel& model, la::Vector temperatures, bool converged,
    std::size_t iterations, const la::Vector& cell_current,
    const std::vector<power::ExponentialTerm>& cell_leakage);

/// The runaway outcome (𝒯 → ∞) as a SteadyResult. `status` refines the
/// cause (kSingular for a dead linear system, kNumericalError for NaN/Inf
/// contamination); the default is the plain physical-runaway verdict.
[[nodiscard]] SteadyResult make_runaway_result(
    std::size_t iterations, SolveStatus status = SolveStatus::kRunaway);

/// Binds a thermal model to one workload (dynamic power + leakage terms) and
/// solves repeatedly for different (ω, I) — the "thermal simulator" box of
/// the paper's Fig. 5 evaluation flow.
class SteadySolver {
 public:
  SteadySolver(const ThermalModel& model, la::Vector cell_dynamic_power,
               std::vector<power::ExponentialTerm> cell_leakage,
               SteadyOptions options = {});

  [[nodiscard]] const ThermalModel& model() const noexcept { return *model_; }
  [[nodiscard]] const SteadyOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const la::Vector& cell_dynamic_power() const noexcept {
    return dynamic_;
  }
  [[nodiscard]] const std::vector<power::ExponentialTerm>& cell_leakage()
      const noexcept {
    return leakage_;
  }

  /// Solve at (ω [rad/s], I [A]).
  [[nodiscard]] SteadyResult solve(double omega, double current) const;

  /// Solve with a warm-start chip-temperature guess (speeds up the Newton
  /// loop during optimizer sweeps).
  [[nodiscard]] SteadyResult solve(double omega, double current,
                                   const la::Vector& chip_guess) const;

  /// Multi-zone variant: an independent driving current per cell (entries
  /// for uncovered cells are ignored).
  [[nodiscard]] SteadyResult solve_cells(double omega,
                                         const la::Vector& cell_current) const;
  [[nodiscard]] SteadyResult solve_cells(double omega,
                                         const la::Vector& cell_current,
                                         const la::Vector& chip_guess) const;

 private:
  [[nodiscard]] SteadyResult finalize(la::Vector temperatures, bool converged,
                                      std::size_t iterations,
                                      const la::Vector& cell_current) const;
  [[nodiscard]] static SteadyResult runaway_result(std::size_t iterations);

  const ThermalModel* model_;
  la::Vector dynamic_;
  std::vector<power::ExponentialTerm> leakage_;
  SteadyOptions options_;
};

}  // namespace oftec::thermal
