// Transient thermal simulation (backward Euler on the RC network).
//
// Used for the paper's Sec. 6.2 extension experiments: the Peltier effect
// responds instantly to a current step while Joule heat accumulates with the
// package RC delay, so briefly over-driving I_TEC above its steady-state
// optimum buys extra transient cooling (Ref. [8] suggests ≈ +1 A for ≈ 1 s).
// The solver integrates C·dT/dt = −M(ω,I)·T + rhs(ω,I) with the leakage
// tangent re-linearized every step (semi-implicit in the exponential).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "la/vector_ops.h"
#include "power/leakage.h"
#include "thermal/model.h"

namespace oftec::thermal {

/// Fan speed / TEC current applied at a time instant.
struct ControlSetting {
  double omega = 0.0;    ///< [rad/s]
  double current = 0.0;  ///< [A]
};

/// Control schedule: maps simulation time [s] to a setting.
using ControlSchedule = std::function<ControlSetting(double time)>;

/// Closed-loop controller: sees the current maximum chip temperature (the
/// on-die sensor reading) in addition to time. Used by the reactive
/// threshold/hysteresis controllers of Alexandrov et al. (paper ref. [5]).
using FeedbackControl =
    std::function<ControlSetting(double time, double max_chip_temperature)>;

struct TransientOptions {
  double time_step = 1e-3;   ///< [s]
  double duration = 1.0;     ///< [s]
  /// Record a sample every `record_stride` steps (1 = every step).
  std::size_t record_stride = 1;
  double runaway_temperature = 500.0;  ///< [K]
  /// Re-linearize the leakage tangent only once some chip cell has drifted
  /// more than this many kelvin from the temperatures of the previous
  /// linearization. 0 (the default) re-linearizes every step — the
  /// historical semantics. A small hold window (~0.1 K) keeps the step
  /// matrix bit-constant across quiet stretches, which is what lets
  /// TransientEngine reuse one factorization for thousands of steps; the
  /// linearization error it admits is O(β²·δ²) per cell, far below the
  /// O(dt) backward-Euler truncation error. TransientSolver and
  /// TransientEngine honor the policy identically, so their results stay
  /// bit-equal at any setting.
  double relinearization_threshold = 0.0;  ///< [K]
};

/// Backward-Euler step plan for one horizon: `steps` steps of `time_step`
/// each, except the final step which runs `last_step` so the integration
/// lands exactly on `duration` instead of overshooting by up to one dt
/// (`ceil`-style step counts simulate past short horizons). A remainder
/// below time_step·1e-9 is treated as rounding noise and absorbed.
struct StepPlan {
  std::size_t steps = 0;
  double last_step = 0.0;  ///< dt of the final step; 0 when steps == 0
};

/// Plan a horizon. Throws std::invalid_argument unless time_step > 0 and
/// duration >= 0.
[[nodiscard]] StepPlan plan_steps(double duration, double time_step);

struct TransientSample {
  double time = 0.0;
  double max_chip_temperature = 0.0;
  double tec_power = 0.0;
  double fan_power = 0.0;
  double leakage_power = 0.0;
};

struct TransientResult {
  std::vector<TransientSample> samples;
  la::Vector final_temperatures;  ///< empty if runaway
  bool runaway = false;
  std::size_t steps = 0;
};

class TransientSolver {
 public:
  TransientSolver(const ThermalModel& model, la::Vector cell_dynamic_power,
                  std::vector<power::ExponentialTerm> cell_leakage,
                  TransientOptions options = {});

  /// Integrate from `initial_temperatures` (all nodes; pass the ambient
  /// vector or a steady solution) under the given control schedule.
  [[nodiscard]] TransientResult run(const ControlSchedule& control,
                                    const la::Vector& initial_temperatures) const;

  /// Closed-loop variant: the controller is consulted every step with the
  /// current max chip temperature.
  [[nodiscard]] TransientResult run_closed_loop(
      const FeedbackControl& control,
      const la::Vector& initial_temperatures) const;

  /// All-nodes-at-ambient initial condition.
  [[nodiscard]] la::Vector ambient_state() const;

 private:
  const ThermalModel* model_;
  la::Vector dynamic_;
  std::vector<power::ExponentialTerm> leakage_;
  TransientOptions options_;
};

}  // namespace oftec::thermal
