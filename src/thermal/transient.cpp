#include "thermal/transient.h"

#include <cmath>
#include <stdexcept>

#include "la/banded_lu.h"

namespace oftec::thermal {

TransientSolver::TransientSolver(const ThermalModel& model,
                                 la::Vector cell_dynamic_power,
                                 std::vector<power::ExponentialTerm> cell_leakage,
                                 TransientOptions options)
    : model_(&model),
      dynamic_(std::move(cell_dynamic_power)),
      leakage_(std::move(cell_leakage)),
      options_(options) {
  const std::size_t cells = model.layout().cells_per_layer();
  if (dynamic_.size() != cells || leakage_.size() != cells) {
    throw std::invalid_argument("TransientSolver: per-cell arity mismatch");
  }
  // duration == 0 is a valid no-op horizon: zero steps, state unchanged.
  if (options_.time_step <= 0.0 || options_.duration < 0.0) {
    throw std::invalid_argument("TransientSolver: bad time parameters");
  }
  if (options_.record_stride == 0) {
    throw std::invalid_argument("TransientSolver: record_stride must be >= 1");
  }
  if (!(options_.relinearization_threshold >= 0.0)) {
    throw std::invalid_argument(
        "TransientSolver: relinearization_threshold must be >= 0");
  }
}

StepPlan plan_steps(double duration, double time_step) {
  if (!(time_step > 0.0) || duration < 0.0) {
    throw std::invalid_argument("plan_steps: bad time parameters");
  }
  StepPlan plan;
  const double full = std::floor(duration / time_step);
  plan.steps = static_cast<std::size_t>(full);
  double remainder = duration - full * time_step;
  if (remainder < 0.0) remainder = 0.0;
  if (remainder > time_step * 1e-9) {
    ++plan.steps;
    plan.last_step = remainder;
  } else if (plan.steps > 0) {
    plan.last_step = time_step;
  }
  return plan;
}

la::Vector TransientSolver::ambient_state() const {
  return la::Vector(model_->layout().node_count(), model_->config().ambient);
}

TransientResult TransientSolver::run(
    const ControlSchedule& control,
    const la::Vector& initial_temperatures) const {
  return run_closed_loop(
      [&control](double time, double) { return control(time); },
      initial_temperatures);
}

TransientResult TransientSolver::run_closed_loop(
    const FeedbackControl& control,
    const la::Vector& initial_temperatures) const {
  const std::size_t n = model_->layout().node_count();
  const std::size_t cells = model_->layout().cells_per_layer();
  if (initial_temperatures.size() != n) {
    throw std::invalid_argument("TransientSolver::run: state arity mismatch");
  }

  const la::Vector& cap = model_->capacitances();
  const double dt = options_.time_step;
  const StepPlan plan = plan_steps(options_.duration, dt);
  const std::size_t steps = plan.steps;

  TransientResult result;
  la::Vector temps = initial_temperatures;
  std::vector<power::TaylorCoefficients> taylor(cells);
  la::Vector lin_chip;  // chip temperatures at the last linearization

  auto record = [&](double time, double omega, double current) {
    TransientSample s;
    s.time = time;
    s.max_chip_temperature =
        model_->max_slab_temperature(temps, Slab::kChip);
    s.tec_power = model_->tec_power(temps, current);
    s.fan_power = model_->config().fan.power(omega);
    s.leakage_power = model_->leakage_power(temps, leakage_);
    result.samples.push_back(s);
  };

  {
    const ControlSetting initial = control(
        0.0, model_->max_slab_temperature(temps, Slab::kChip));
    record(0.0, initial.omega, initial.current);
  }

  for (std::size_t step = 0; step < steps; ++step) {
    const double time = static_cast<double>(step) * dt;
    const double step_dt = step + 1 == steps ? plan.last_step : dt;
    // Tangent-linearize leakage at the current chip temperatures — held
    // across steps while the drift stays within the relinearization
    // threshold (with the default threshold of 0, every step).
    const la::Vector chip = model_->slab_temperatures(temps, Slab::kChip);
    const ControlSetting setting =
        control(time, la::max_element_value(chip));
    if (lin_chip.empty() || la::max_abs_diff(chip, lin_chip) >
                                options_.relinearization_threshold) {
      for (std::size_t i = 0; i < cells; ++i) {
        taylor[i] = power::tangent_linearize(leakage_[i], chip[i]);
      }
      lin_chip = chip;
    }

    AssembledSystem sys =
        model_->assemble(setting.omega, setting.current, dynamic_, taylor);
    // Backward Euler: (C/dt + M)·T_next = C/dt·T_now + rhs.
    for (std::size_t i = 0; i < n; ++i) {
      const double c_dt = cap[i] / step_dt;
      sys.matrix.add(i, i, c_dt);
      sys.rhs[i] += c_dt * temps[i];
    }

    try {
      temps = la::BandedLu(sys.matrix).solve(sys.rhs);
    } catch (const std::runtime_error&) {
      result.runaway = true;
      result.steps = step;
      return result;
    }
    for (const double t : temps) {
      if (!std::isfinite(t) || t > options_.runaway_temperature) {
        result.runaway = true;
        result.steps = step;
        return result;
      }
    }

    if ((step + 1) % options_.record_stride == 0 || step + 1 == steps) {
      // The final sample carries the true horizon endpoint (the last step
      // may be clamped shorter than dt).
      record(step + 1 == steps ? options_.duration : time + dt,
             setting.omega, setting.current);
    }
  }

  result.final_temperatures = std::move(temps);
  result.steps = steps;
  return result;
}

}  // namespace oftec::thermal
