#include "thermal/transient.h"

#include <cmath>
#include <stdexcept>

#include "la/banded_lu.h"

namespace oftec::thermal {

TransientSolver::TransientSolver(const ThermalModel& model,
                                 la::Vector cell_dynamic_power,
                                 std::vector<power::ExponentialTerm> cell_leakage,
                                 TransientOptions options)
    : model_(&model),
      dynamic_(std::move(cell_dynamic_power)),
      leakage_(std::move(cell_leakage)),
      options_(options) {
  const std::size_t cells = model.layout().cells_per_layer();
  if (dynamic_.size() != cells || leakage_.size() != cells) {
    throw std::invalid_argument("TransientSolver: per-cell arity mismatch");
  }
  // duration == 0 is a valid no-op horizon: zero steps, state unchanged.
  if (options_.time_step <= 0.0 || options_.duration < 0.0) {
    throw std::invalid_argument("TransientSolver: bad time parameters");
  }
  if (options_.record_stride == 0) {
    throw std::invalid_argument("TransientSolver: record_stride must be >= 1");
  }
}

la::Vector TransientSolver::ambient_state() const {
  return la::Vector(model_->layout().node_count(), model_->config().ambient);
}

TransientResult TransientSolver::run(
    const ControlSchedule& control,
    const la::Vector& initial_temperatures) const {
  return run_closed_loop(
      [&control](double time, double) { return control(time); },
      initial_temperatures);
}

TransientResult TransientSolver::run_closed_loop(
    const FeedbackControl& control,
    const la::Vector& initial_temperatures) const {
  const std::size_t n = model_->layout().node_count();
  const std::size_t cells = model_->layout().cells_per_layer();
  if (initial_temperatures.size() != n) {
    throw std::invalid_argument("TransientSolver::run: state arity mismatch");
  }

  const la::Vector& cap = model_->capacitances();
  const double dt = options_.time_step;
  const auto steps =
      static_cast<std::size_t>(std::ceil(options_.duration / dt));

  TransientResult result;
  la::Vector temps = initial_temperatures;
  std::vector<power::TaylorCoefficients> taylor(cells);

  auto record = [&](double time, double omega, double current) {
    TransientSample s;
    s.time = time;
    s.max_chip_temperature =
        model_->max_slab_temperature(temps, Slab::kChip);
    s.tec_power = model_->tec_power(temps, current);
    s.fan_power = model_->config().fan.power(omega);
    s.leakage_power = model_->leakage_power(temps, leakage_);
    result.samples.push_back(s);
  };

  {
    const ControlSetting initial = control(
        0.0, model_->max_slab_temperature(temps, Slab::kChip));
    record(0.0, initial.omega, initial.current);
  }

  for (std::size_t step = 0; step < steps; ++step) {
    const double time = static_cast<double>(step) * dt;
    // Tangent-linearize leakage at the current chip temperatures.
    const la::Vector chip = model_->slab_temperatures(temps, Slab::kChip);
    const ControlSetting setting =
        control(time, la::max_element_value(chip));
    for (std::size_t i = 0; i < cells; ++i) {
      taylor[i] = power::tangent_linearize(leakage_[i], chip[i]);
    }

    AssembledSystem sys =
        model_->assemble(setting.omega, setting.current, dynamic_, taylor);
    // Backward Euler: (C/dt + M)·T_next = C/dt·T_now + rhs.
    for (std::size_t i = 0; i < n; ++i) {
      const double c_dt = cap[i] / dt;
      sys.matrix.add(i, i, c_dt);
      sys.rhs[i] += c_dt * temps[i];
    }

    try {
      temps = la::BandedLu(sys.matrix).solve(sys.rhs);
    } catch (const std::runtime_error&) {
      result.runaway = true;
      result.steps = step;
      return result;
    }
    for (const double t : temps) {
      if (!std::isfinite(t) || t > options_.runaway_temperature) {
        result.runaway = true;
        result.steps = step;
        return result;
      }
    }

    if ((step + 1) % options_.record_stride == 0 || step + 1 == steps) {
      record(time + dt, setting.omega, setting.current);
    }
  }

  result.final_temperatures = std::move(temps);
  result.steps = steps;
  return result;
}

}  // namespace oftec::thermal
