// Node numbering for the layered thermal grid.
//
// Every package layer is discretized into the same nx×ny grid over the die
// area. The TEC layer contributes three thermal sub-layers (absorb /
// generate / reject, paper Fig. 4). Layers larger than the die (spreader,
// TIM2, heat sink) get one additional lumped "ring" node modeling the
// overhang.
//
// Node order is chosen to keep the matrix bandwidth at one grid slab:
//   [pcb][chip][tim1][tec_abs][tec_gen][tec_rej][spreader] (cells each)
//   [spreader_ring]
//   [tim2 cells][tim2_ring]
//   [sink cells][sink_ring]
// so every edge in the network spans at most cells_per_layer + 1 indices.
#pragma once

#include <cstddef>

namespace oftec::thermal {

/// Thermal sub-layer identifiers, bottom to top.
enum class Slab : std::size_t {
  kPcb = 0,
  kChip = 1,
  kTim1 = 2,
  kTecAbs = 3,  ///< TEC cold-side interface (heat absorption, Eq. 5)
  kTecGen = 4,  ///< TEC body mid-plane (Joule generation)
  kTecRej = 5,  ///< TEC hot-side interface (heat rejection, Eq. 6)
  kSpreader = 6,
  kTim2 = 7,
  kSink = 8,
};

inline constexpr std::size_t kSlabCount = 9;

/// Maps (slab, cell) and ring identifiers to flat node indices.
class NodeLayout {
 public:
  NodeLayout(std::size_t nx, std::size_t ny);

  [[nodiscard]] std::size_t nx() const noexcept { return nx_; }
  [[nodiscard]] std::size_t ny() const noexcept { return ny_; }
  [[nodiscard]] std::size_t cells_per_layer() const noexcept { return cells_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return kSlabCount * cells_ + 3;
  }

  /// Flat node index of `cell` (row-major over the grid) in `slab`.
  [[nodiscard]] std::size_t node(Slab slab, std::size_t cell) const;

  [[nodiscard]] std::size_t spreader_ring() const noexcept {
    return 7 * cells_;
  }
  [[nodiscard]] std::size_t tim2_ring() const noexcept {
    return 8 * cells_ + 1;
  }
  [[nodiscard]] std::size_t sink_ring() const noexcept {
    return 9 * cells_ + 2;
  }

  /// Row-major cell index for grid coordinates.
  [[nodiscard]] std::size_t cell_index(std::size_t ix, std::size_t iy) const;

  /// Maximum |i − j| over all edges the assembler creates — the band width
  /// the matrix needs (cells_per_layer + 1).
  [[nodiscard]] std::size_t bandwidth() const noexcept { return cells_ + 1; }

 private:
  std::size_t nx_;
  std::size_t ny_;
  std::size_t cells_;
};

}  // namespace oftec::thermal
