#include "thermal/steady.h"

#include <cmath>
#include <stdexcept>

#include "la/banded_lu.h"
#include "la/iterative.h"
#include "la/sparse.h"

namespace oftec::thermal {

SteadySolver::SteadySolver(const ThermalModel& model,
                           la::Vector cell_dynamic_power,
                           std::vector<power::ExponentialTerm> cell_leakage,
                           SteadyOptions options)
    : model_(&model),
      dynamic_(std::move(cell_dynamic_power)),
      leakage_(std::move(cell_leakage)),
      options_(options) {
  const std::size_t cells = model.layout().cells_per_layer();
  if (dynamic_.size() != cells || leakage_.size() != cells) {
    throw std::invalid_argument("SteadySolver: per-cell arity mismatch");
  }
  for (const double p : dynamic_) {
    if (p < 0.0 || !std::isfinite(p)) {
      throw std::invalid_argument("SteadySolver: bad dynamic power");
    }
  }
}

SteadyResult make_runaway_result(std::size_t iterations, SolveStatus status) {
  SteadyResult res;
  res.runaway = true;
  res.status = status;
  res.iterations = iterations;
  return res;
}

SteadyResult make_steady_result(
    const ThermalModel& model, la::Vector temperatures, bool converged,
    std::size_t iterations, const la::Vector& cell_current,
    const std::vector<power::ExponentialTerm>& cell_leakage) {
  SteadyResult res;
  res.temperatures = std::move(temperatures);
  res.converged = converged;
  res.status = converged ? SolveStatus::kOk : SolveStatus::kNotConverged;
  res.iterations = iterations;
  res.chip_temperatures =
      model.slab_temperatures(res.temperatures, Slab::kChip);
  res.cold_side_temperatures =
      model.slab_temperatures(res.temperatures, Slab::kTecAbs);
  res.hot_side_temperatures =
      model.slab_temperatures(res.temperatures, Slab::kTecRej);
  res.max_chip_temperature = la::max_element_value(res.chip_temperatures);
  res.leakage_power = model.leakage_power(res.temperatures, cell_leakage);
  res.tec_power = model.tec_power(res.temperatures, cell_current);
  return res;
}

SteadyResult SteadySolver::runaway_result(std::size_t iterations) {
  return make_runaway_result(iterations);
}

SteadyResult SteadySolver::finalize(la::Vector temperatures, bool converged,
                                    std::size_t iterations,
                                    const la::Vector& cell_current) const {
  return make_steady_result(*model_, std::move(temperatures), converged,
                            iterations, cell_current, leakage_);
}

SteadyResult SteadySolver::solve(double omega, double current) const {
  return solve_cells(
      omega, la::Vector(model_->layout().cells_per_layer(), current));
}

SteadyResult SteadySolver::solve(double omega, double current,
                                 const la::Vector& chip_guess) const {
  return solve_cells(
      omega, la::Vector(model_->layout().cells_per_layer(), current),
      chip_guess);
}

SteadyResult SteadySolver::solve_cells(double omega,
                                       const la::Vector& cell_current) const {
  const la::Vector guess(model_->layout().cells_per_layer(),
                         model_->config().ambient + 10.0);
  return solve_cells(omega, cell_current, guess);
}

SteadyResult SteadySolver::solve_cells(double omega,
                                       const la::Vector& cell_current,
                                       const la::Vector& chip_guess) const {
  const std::size_t cells = model_->layout().cells_per_layer();
  if (chip_guess.size() != cells) {
    throw std::invalid_argument("SteadySolver::solve: guess arity mismatch");
  }

  std::vector<power::TaylorCoefficients> taylor(cells);

  auto physical = [&](const la::Vector& out) {
    for (const double t : out) {
      if (!std::isfinite(t) || t <= 0.0 || t > options_.runaway_temperature) {
        return false;
      }
    }
    return true;
  };

  // An outer tolerance near the iterative solver's own noise floor needs a
  // deterministic inner solve: successive BiCGStab iterates wobble by about
  // the relative-residual tolerance, so a sub-microkelvin outer loop can
  // limit-cycle on that noise instead of converging (the solution is
  // correct; the ΔT test never settles). The pivoted direct solver is an
  // exact function of the linearization, so the fixed point is stationary.
  const bool iterative_usable =
      options_.prefer_iterative &&
      options_.tolerance > 1e3 * options_.iterative_tolerance;

  auto solve_linear = [&](la::Vector& out) -> bool {
    const AssembledSystem sys =
        model_->assemble(omega, cell_current, dynamic_, taylor);
    if (iterative_usable) {
      la::IterativeOptions iopts;
      iopts.tolerance = options_.iterative_tolerance;
      iopts.max_iterations = 4 * sys.rhs.size();
      const la::IterativeResult it =
          la::solve_bicgstab(la::banded_to_csr(sys.matrix), sys.rhs, iopts);
      if (it.converged && physical(it.x)) {
        out = it.x;
        return true;
      }
      // Stalled or unphysical — let the pivoted direct solver decide
      // whether the system is genuinely runaway or just ill-conditioned.
    }
    try {
      out = la::BandedLu(sys.matrix).solve(sys.rhs);
    } catch (const std::runtime_error&) {
      return false;  // singular: leakage slope swallowed the conduction path
    }
    return physical(out);
  };

  switch (options_.mode) {
    case LeakageMode::kConstant: {
      for (std::size_t i = 0; i < cells; ++i) {
        taylor[i] = {0.0, leakage_[i].evaluate(model_->config().ambient),
                     model_->config().ambient};
      }
      la::Vector temps;
      if (!solve_linear(temps)) return runaway_result(1);
      return finalize(std::move(temps), true, 1, cell_current);
    }

    case LeakageMode::kChordLinear: {
      // The chord line p(T) = a·T + const is independent of the expansion
      // point, so a single solve is exact for the chord model (this is why
      // the paper's Eq. 4 "adds no computational complexity" to Eq. 14).
      for (std::size_t i = 0; i < cells; ++i) {
        taylor[i] = power::chord_linearize(
            leakage_[i], model_->config().ambient, options_.chord_t_lo,
            options_.chord_t_hi, options_.chord_samples);
      }
      la::Vector temps;
      if (!solve_linear(temps)) return runaway_result(1);
      return finalize(std::move(temps), true, 1, cell_current);
    }

    case LeakageMode::kNewtonExact: {
      la::Vector t_ref = chip_guess;
      la::Vector temps;
      for (std::size_t it = 1; it <= options_.max_iterations; ++it) {
        for (std::size_t i = 0; i < cells; ++i) {
          taylor[i] = power::tangent_linearize(leakage_[i], t_ref[i]);
        }
        if (!solve_linear(temps)) return runaway_result(it);
        const la::Vector chip = model_->slab_temperatures(temps, Slab::kChip);
        const double diff = la::max_abs_diff(chip, t_ref);
        t_ref = chip;
        if (diff < options_.tolerance) {
          return finalize(std::move(temps), true, it, cell_current);
        }
      }
      // No convergence within budget: either slow drift (report best
      // effort) or a divergent runaway climb — distinguish by magnitude.
      const double max_chip =
          model_->max_slab_temperature(temps, Slab::kChip);
      if (max_chip > options_.runaway_temperature - 50.0) {
        return runaway_result(options_.max_iterations);
      }
      return finalize(std::move(temps), false, options_.max_iterations,
                      cell_current);
    }
  }
  throw std::logic_error("SteadySolver::solve: unknown leakage mode");
}

}  // namespace oftec::thermal
