#include "thermal/transient_engine.h"

#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

#include "util/fault.h"
#include "util/obs.h"
#include "util/stopwatch.h"

namespace oftec::thermal {

namespace {

const obs::Counter g_obs_runs = obs::counter("transient_engine.runs");
const obs::Counter g_obs_steps = obs::counter("transient_engine.steps");
const obs::Counter g_obs_factorizations =
    obs::counter("transient_engine.factorizations");
const obs::Counter g_obs_factor_hits =
    obs::counter("transient_engine.factor_hits");
const obs::Counter g_obs_self_heals =
    obs::counter("transient_engine.self_heals");
const obs::Counter g_obs_slot_invalidations =
    obs::counter("transient_engine.slot_invalidations");
const obs::Counter g_obs_batches = obs::counter("transient_engine.batches");
const obs::Gauge g_obs_steps_per_s =
    obs::gauge("transient_engine.steps_per_s");

// Injects a corrupt solution on the cached-factor path (a stale or
// bit-rotted factor slot); the stepper's self-heal must rebuild the factor
// and recover bit-identically.
const fault::Site g_fault_factor_corrupt =
    fault::site("transient_engine.factor_corrupt");

[[nodiscard]] std::uint64_t bits_of(double v) noexcept {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

void validate_options(const TransientOptions& options) {
  // duration == 0 is a valid no-op horizon: zero steps, state unchanged.
  if (options.time_step <= 0.0 || options.duration < 0.0) {
    throw std::invalid_argument("TransientEngine: bad time parameters");
  }
  if (options.record_stride == 0) {
    throw std::invalid_argument("TransientEngine: record_stride must be >= 1");
  }
  if (!(options.relinearization_threshold >= 0.0)) {
    throw std::invalid_argument(
        "TransientEngine: relinearization_threshold must be >= 0");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// TransientStepper
// ---------------------------------------------------------------------------

TransientStepper::TransientStepper(
    const ThermalModel& model, std::vector<power::ExponentialTerm> cell_leakage)
    : TransientStepper(model, std::move(cell_leakage), Config()) {}

TransientStepper::TransientStepper(
    const ThermalModel& model,
    std::vector<power::ExponentialTerm> cell_leakage, Config config)
    : model_(&model),
      leakage_(std::move(cell_leakage)),
      config_(config),
      n_(model.layout().node_count()),
      cells_(model.layout().cells_per_layer()) {
  if (leakage_.size() != cells_) {
    throw std::invalid_argument("TransientStepper: per-cell arity mismatch");
  }
  if (config_.factor_slots == 0) {
    throw std::invalid_argument("TransientStepper: factor_slots must be >= 1");
  }

  // Static base, stamped exactly like the head of ThermalModel::assemble —
  // the per-step stamps replay the remaining groups in the same order, so
  // every entry accumulates the reference's additions in the reference's
  // order (bit-equality depends on this).
  const std::size_t bw = model.layout().bandwidth();
  base_matrix_ = la::BandedMatrix(n_, bw, bw);
  base_rhs_.assign(n_, 0.0);
  for (const ThermalModel::Edge& e : model.edges_) {
    base_matrix_.add(e.i, e.i, e.g);
    base_matrix_.add(e.j, e.j, e.g);
    base_matrix_.add(e.i, e.j, -e.g);
    base_matrix_.add(e.j, e.i, -e.g);
  }
  for (const auto& [node, g] : model.static_ambient_) {
    base_matrix_.add(node, node, g);
    base_rhs_[node] += g * model.config().ambient;
  }

  scratch_ = base_matrix_;
  rhs_.assign(n_, 0.0);
  next_.assign(n_, 0.0);
  chip_next_.assign(cells_, 0.0);
  cold_.assign(cells_, 0.0);
  hot_.assign(cells_, 0.0);
  taylor_.resize(cells_);
  lin_chip_.assign(cells_, 0.0);
  key_slopes_.assign(cells_, 0);
  slots_.resize(config_.factor_slots);
  for (FactorSlot& slot : slots_) slot.key_slopes.assign(cells_, 0);

  reset(la::Vector(n_, model.config().ambient));
}

void TransientStepper::configure(double runaway_temperature,
                                 double relinearization_threshold,
                                 RunawayCheck check) {
  config_.runaway_temperature = runaway_temperature;
  config_.relinearization_threshold = relinearization_threshold;
  config_.runaway_check = check;
}

void TransientStepper::reset(const la::Vector& initial_temperatures) {
  if (initial_temperatures.size() != n_) {
    throw std::invalid_argument("TransientStepper::reset: state arity");
  }
  temps_ = initial_temperatures;
  const NodeLayout& layout = model_->layout();
  chip_.resize(cells_);
  for (std::size_t cell = 0; cell < cells_; ++cell) {
    chip_[cell] = temps_[layout.node(Slab::kChip, cell)];
  }
  // max_element_value's exact semantics (front, then max over all).
  double m = chip_.front();
  for (const double v : chip_) m = std::max(m, v);
  max_chip_ = m;
  have_linearization_ = false;
}

void TransientStepper::relinearize_if_drifted() {
  if (have_linearization_ &&
      la::max_abs_diff(chip_, lin_chip_) <=
          config_.relinearization_threshold) {
    return;
  }
  bool slopes_changed = false;
  for (std::size_t i = 0; i < cells_; ++i) {
    taylor_[i] = power::tangent_linearize(leakage_[i], chip_[i]);
    const std::uint64_t bits = bits_of(taylor_[i].a);
    slopes_changed |= bits != key_slopes_[i];
    key_slopes_[i] = bits;
  }
  lin_chip_ = chip_;
  have_linearization_ = true;
  if (!slopes_changed) return;
  // New slopes make every factor keyed on the old slopes unreachable for
  // this trace, yet "used" slots survive LRU preference — so at
  // relinearization threshold 0 (every step re-linearizes) eviction used to
  // cycle round-robin through all slots, streaming the full multi-slot
  // factor working set each step and running *slower* than the reference's
  // single recycled buffer. Invalidating the stale slots steers lru_slot()
  // back to one cache-warm buffer. Pure cache policy: factors are exact
  // functions of their keys, so results are unchanged bit-for-bit.
  for (FactorSlot& slot : slots_) {
    if (slot.used && slot.key_slopes != key_slopes_) {
      slot.used = false;
      ++n_slot_invalidations_;
      g_obs_slot_invalidations.add();
    }
  }
}

void TransientStepper::assemble_matrix(double omega, double current,
                                       double dt) {
  const NodeLayout& layout = model_->layout();
  scratch_ = base_matrix_;

  const double g_sink_total = model_->config().sink_fan.conductance(omega);
  for (const auto& [node, share] : model_->sink_ambient_share_) {
    scratch_.add(node, node, g_sink_total * share);
  }
  for (std::size_t cell = 0; cell < cells_; ++cell) {
    scratch_.add(layout.node(Slab::kChip, cell), layout.node(Slab::kChip, cell),
                 -taylor_[cell].a);
  }
  if (const tec::TecArray* tec = model_->tec_array()) {
    for (std::size_t cell = 0; cell < cells_; ++cell) {
      const tec::CellTec& ct = tec->cell(cell);
      if (!ct.covered || current <= 0.0) continue;
      const double peltier = ct.seebeck * current;
      const std::size_t abs_node = layout.node(Slab::kTecAbs, cell);
      const std::size_t rej_node = layout.node(Slab::kTecRej, cell);
      scratch_.add(abs_node, abs_node, peltier);
      scratch_.add(rej_node, rej_node, -peltier);
    }
  }
  const la::Vector& cap = model_->capacitances();
  for (std::size_t i = 0; i < n_; ++i) {
    scratch_.add(i, i, cap[i] / dt);
  }
}

void TransientStepper::assemble_rhs(double omega, double current,
                                    const la::Vector& cell_dynamic_power,
                                    double dt) {
  const NodeLayout& layout = model_->layout();
  rhs_ = base_rhs_;

  const double ambient = model_->config().ambient;
  const double g_sink_total = model_->config().sink_fan.conductance(omega);
  for (const auto& [node, share] : model_->sink_ambient_share_) {
    const double g = g_sink_total * share;
    rhs_[node] += g * ambient;
  }
  for (std::size_t cell = 0; cell < cells_; ++cell) {
    const power::TaylorCoefficients& tc = taylor_[cell];
    rhs_[layout.node(Slab::kChip, cell)] +=
        cell_dynamic_power[cell] + tc.b - tc.a * tc.t_ref;
  }
  if (const tec::TecArray* tec = model_->tec_array()) {
    for (std::size_t cell = 0; cell < cells_; ++cell) {
      const tec::CellTec& ct = tec->cell(cell);
      if (!ct.covered || current <= 0.0) continue;
      rhs_[layout.node(Slab::kTecGen, cell)] +=
          ct.resistance * current * current;
    }
  }
  const la::Vector& cap = model_->capacitances();
  for (std::size_t i = 0; i < n_; ++i) {
    const double c_dt = cap[i] / dt;
    rhs_[i] += c_dt * temps_[i];
  }
}

TransientStepper::FactorSlot* TransientStepper::find_slot(double omega,
                                                          double current,
                                                          double dt) {
  const std::uint64_t kd = bits_of(dt);
  const std::uint64_t ko = bits_of(omega);
  const std::uint64_t kc = bits_of(current);
  for (FactorSlot& slot : slots_) {
    if (slot.used && slot.key_dt == kd && slot.key_omega == ko &&
        slot.key_current == kc && slot.key_slopes == key_slopes_) {
      return &slot;
    }
  }
  return nullptr;
}

TransientStepper::FactorSlot& TransientStepper::lru_slot() {
  FactorSlot* victim = &slots_.front();
  for (FactorSlot& slot : slots_) {
    if (!slot.used) return slot;
    if (slot.stamp < victim->stamp) victim = &slot;
  }
  return *victim;
}

bool TransientStepper::verdict(double& max_chip_out) {
  const NodeLayout& layout = model_->layout();
  for (std::size_t cell = 0; cell < cells_; ++cell) {
    chip_next_[cell] = next_[layout.node(Slab::kChip, cell)];
  }
  double m = chip_next_.front();
  for (const double v : chip_next_) m = std::max(m, v);
  max_chip_out = m;
  if (config_.runaway_check == RunawayCheck::kChipOnly) {
    return std::isfinite(m) && m <= config_.runaway_temperature;
  }
  for (const double t : next_) {
    if (!std::isfinite(t) || t > config_.runaway_temperature) return false;
  }
  return true;
}

void TransientStepper::commit(double verdict_max_chip) {
  std::swap(temps_, next_);
  std::swap(chip_, chip_next_);
  max_chip_ = verdict_max_chip;
  ++n_steps_;
}

bool TransientStepper::step(const ControlSetting& setting,
                            const la::Vector& cell_dynamic_power, double dt) {
  if (cell_dynamic_power.size() != cells_) {
    throw std::invalid_argument("TransientStepper::step: per-cell arity");
  }
  // The reference path re-validates the operating point at every assemble;
  // mirror it so out-of-range controller outputs fail identically whether
  // or not the factor is cached.
  if (setting.current < 0.0 ||
      setting.current > model_->config().tec.max_current * (1.0 + 1e-9)) {
    throw std::invalid_argument("TransientStepper::step: current out of range");
  }
  if (!(dt > 0.0)) {
    throw std::invalid_argument("TransientStepper::step: dt must be > 0");
  }

  relinearize_if_drifted();

  FactorSlot* slot = find_slot(setting.omega, setting.current, dt);
  const bool hit = slot != nullptr;
  if (hit) {
    ++n_factor_hits_;
    slot->stamp = ++lru_stamp_;
  } else {
    slot = &lru_slot();
    slot->used = false;
    assemble_matrix(setting.omega, setting.current, dt);
    try {
      slot->lu.refactorize_swap(scratch_);
    } catch (const std::runtime_error&) {
      return false;  // singular step matrix — the reference's runaway verdict
    }
    slot->key_dt = bits_of(dt);
    slot->key_omega = bits_of(setting.omega);
    slot->key_current = bits_of(setting.current);
    slot->key_slopes = key_slopes_;
    slot->used = true;
    slot->stamp = ++lru_stamp_;
    ++n_factorizations_;
  }

  assemble_rhs(setting.omega, setting.current, cell_dynamic_power, dt);
  next_ = rhs_;
  slot->lu.solve_in_place(next_);
  if (hit && g_fault_factor_corrupt.should_fail()) {
    next_[0] = std::numeric_limits<double>::quiet_NaN();
  }

  double m = 0.0;
  bool ok = verdict(m);
  if (!ok && hit) {
    // Self-heal: a cached factor that yields a non-physical state gets one
    // fresh rebuild before the verdict stands (the SolveEngine discipline).
    // A genuine runaway re-fails identically — a fresh factor of the same
    // matrix is bit-identical — so exactness is preserved.
    ++n_self_heals_;
    slot->used = false;
    assemble_matrix(setting.omega, setting.current, dt);
    try {
      slot->lu.refactorize_swap(scratch_);
    } catch (const std::runtime_error&) {
      return false;
    }
    slot->used = true;
    slot->stamp = ++lru_stamp_;
    ++n_factorizations_;
    next_ = rhs_;
    slot->lu.solve_in_place(next_);
    ok = verdict(m);
  }
  if (!ok) return false;

  commit(m);
  return true;
}

double TransientStepper::leakage_power() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < cells_; ++i) {
    acc += leakage_[i].evaluate(chip_[i]);
  }
  return acc;
}

double TransientStepper::tec_power(double current) const {
  const tec::TecArray* tec = model_->tec_array();
  if (tec == nullptr || current == 0.0) return 0.0;
  const NodeLayout& layout = model_->layout();
  for (std::size_t cell = 0; cell < cells_; ++cell) {
    cold_[cell] = temps_[layout.node(Slab::kTecAbs, cell)];
    hot_[cell] = temps_[layout.node(Slab::kTecRej, cell)];
  }
  return tec->electrical_power(cold_, hot_, current);
}

TransientSample TransientStepper::sample(double time,
                                         const ControlSetting& setting) const {
  TransientSample s;
  s.time = time;
  s.max_chip_temperature = max_chip_;
  s.tec_power = tec_power(setting.current);
  s.fan_power = model_->config().fan.power(setting.omega);
  s.leakage_power = leakage_power();
  return s;
}

// ---------------------------------------------------------------------------
// TransientEngine
// ---------------------------------------------------------------------------

/// Checkout pool of steppers plus the engine-level stat accumulators. Warm
/// factor caches persist across runs; since every factor is a pure function
/// of its exact-bits key, which stepper serves which run never affects
/// results.
class TransientEngine::StepperPool {
 public:
  StepperPool(const ThermalModel& model,
              std::vector<power::ExponentialTerm> leakage,
              std::size_t factor_slots)
      : model_(&model),
        leakage_(std::move(leakage)),
        factor_slots_(factor_slots) {}

  [[nodiscard]] std::unique_ptr<TransientStepper> checkout() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!idle_.empty()) {
        std::unique_ptr<TransientStepper> s = std::move(idle_.back());
        idle_.pop_back();
        return s;
      }
    }
    TransientStepper::Config cfg;
    cfg.factor_slots = factor_slots_;
    return std::make_unique<TransientStepper>(*model_, leakage_, cfg);
  }

  void checkin(std::unique_ptr<TransientStepper> stepper) {
    const std::lock_guard<std::mutex> lock(mutex_);
    idle_.push_back(std::move(stepper));
  }

  std::atomic<std::size_t> runs{0};
  std::atomic<std::size_t> steps{0};
  std::atomic<std::size_t> factorizations{0};
  std::atomic<std::size_t> factor_hits{0};
  std::atomic<std::size_t> self_heals{0};
  std::atomic<std::size_t> slot_invalidations{0};

 private:
  const ThermalModel* model_;
  std::vector<power::ExponentialTerm> leakage_;
  std::size_t factor_slots_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<TransientStepper>> idle_;
};

namespace {

/// The reference run_closed_loop body, executed on a stepper. Control-call
/// sequence, record times, and runaway accounting mirror TransientSolver
/// statement for statement.
[[nodiscard]] TransientResult run_on(TransientStepper& stepper,
                                     const FeedbackControl& control,
                                     const la::Vector& initial_temperatures,
                                     const la::Vector& dynamic,
                                     const TransientOptions& options) {
  const double dt = options.time_step;
  const StepPlan plan = plan_steps(options.duration, dt);

  stepper.configure(options.runaway_temperature,
                    options.relinearization_threshold,
                    RunawayCheck::kAllNodes);
  stepper.reset(initial_temperatures);

  TransientResult result;
  result.samples.reserve(plan.steps / options.record_stride + 2);
  {
    const ControlSetting initial =
        control(0.0, stepper.max_chip_temperature());
    result.samples.push_back(stepper.sample(0.0, initial));
  }

  for (std::size_t step = 0; step < plan.steps; ++step) {
    const double time = static_cast<double>(step) * dt;
    const double step_dt = step + 1 == plan.steps ? plan.last_step : dt;
    const ControlSetting setting =
        control(time, stepper.max_chip_temperature());
    if (!stepper.step(setting, dynamic, step_dt)) {
      result.runaway = true;
      result.steps = step;
      return result;
    }
    if ((step + 1) % options.record_stride == 0 || step + 1 == plan.steps) {
      result.samples.push_back(stepper.sample(
          step + 1 == plan.steps ? options.duration : time + dt, setting));
    }
  }

  result.final_temperatures = stepper.temperatures();
  result.steps = plan.steps;
  return result;
}

}  // namespace

TransientEngine::TransientEngine(const ThermalModel& model,
                                 la::Vector cell_dynamic_power,
                                 std::vector<power::ExponentialTerm>
                                     cell_leakage,
                                 TransientOptions options)
    : TransientEngine(model, std::move(cell_dynamic_power),
                      std::move(cell_leakage), options, Config()) {}

TransientEngine::TransientEngine(const ThermalModel& model,
                                 la::Vector cell_dynamic_power,
                                 std::vector<power::ExponentialTerm>
                                     cell_leakage,
                                 TransientOptions options, Config config)
    : model_(&model),
      dynamic_(std::move(cell_dynamic_power)),
      leakage_(std::move(cell_leakage)),
      options_(options),
      config_(config) {
  const std::size_t cells = model.layout().cells_per_layer();
  if (dynamic_.size() != cells || leakage_.size() != cells) {
    throw std::invalid_argument("TransientEngine: per-cell arity mismatch");
  }
  if (config_.factor_slots == 0) {
    throw std::invalid_argument("TransientEngine: factor_slots must be >= 1");
  }
  validate_options(options_);
  steppers_ = std::make_unique<StepperPool>(model, leakage_,
                                            config_.factor_slots);
}

TransientEngine::~TransientEngine() = default;

la::Vector TransientEngine::ambient_state() const {
  return la::Vector(model_->layout().node_count(), model_->config().ambient);
}

TransientResult TransientEngine::run(
    const ControlSchedule& control,
    const la::Vector& initial_temperatures) const {
  return run(control, initial_temperatures, options_);
}

TransientResult TransientEngine::run(const ControlSchedule& control,
                                     const la::Vector& initial_temperatures,
                                     const TransientOptions& options) const {
  return run_closed_loop(
      [&control](double time, double) { return control(time); },
      initial_temperatures, options);
}

TransientResult TransientEngine::run_closed_loop(
    const FeedbackControl& control,
    const la::Vector& initial_temperatures) const {
  return run_impl(control, initial_temperatures, options_);
}

TransientResult TransientEngine::run_closed_loop(
    const FeedbackControl& control, const la::Vector& initial_temperatures,
    const TransientOptions& options) const {
  return run_impl(control, initial_temperatures, options);
}

TransientResult TransientEngine::run_impl(
    const FeedbackControl& control, const la::Vector& initial_temperatures,
    const TransientOptions& options) const {
  OBS_SPAN("transient_engine.run");
  validate_options(options);
  if (initial_temperatures.size() != model_->layout().node_count()) {
    throw std::invalid_argument("TransientEngine::run: state arity mismatch");
  }

  std::unique_ptr<TransientStepper> stepper = steppers_->checkout();
  const std::size_t steps0 = stepper->steps();
  const std::size_t fact0 = stepper->factorizations();
  const std::size_t hits0 = stepper->factor_hits();
  const std::size_t heals0 = stepper->self_heals();
  const std::size_t invals0 = stepper->slot_invalidations();
  const util::Stopwatch watch;

  const auto finish = [&]() {
    const std::size_t steps = stepper->steps() - steps0;
    const std::size_t facts = stepper->factorizations() - fact0;
    const std::size_t hits = stepper->factor_hits() - hits0;
    const std::size_t heals = stepper->self_heals() - heals0;
    const std::size_t invals = stepper->slot_invalidations() - invals0;
    steppers_->runs.fetch_add(1, std::memory_order_relaxed);
    steppers_->steps.fetch_add(steps, std::memory_order_relaxed);
    steppers_->factorizations.fetch_add(facts, std::memory_order_relaxed);
    steppers_->factor_hits.fetch_add(hits, std::memory_order_relaxed);
    steppers_->self_heals.fetch_add(heals, std::memory_order_relaxed);
    steppers_->slot_invalidations.fetch_add(invals, std::memory_order_relaxed);
    g_obs_runs.add();
    g_obs_steps.add(steps);
    g_obs_factorizations.add(facts);
    g_obs_factor_hits.add(hits);
    g_obs_self_heals.add(heals);
    if (obs::enabled() && steps > 0) {
      const double elapsed_s = watch.elapsed_ms() / 1e3;
      if (elapsed_s > 0.0) {
        g_obs_steps_per_s.set(static_cast<double>(steps) / elapsed_s);
      }
    }
    steppers_->checkin(std::move(stepper));
  };

  TransientResult result;
  try {
    result = run_on(*stepper, control, initial_temperatures, dynamic_,
                    options);
  } catch (...) {
    finish();
    throw;
  }
  finish();
  return result;
}

std::vector<TransientResult> TransientEngine::run_batch(
    const std::vector<TransientJob>& jobs) const {
  OBS_SPAN("transient_engine.batch");
  g_obs_batches.add();
  std::vector<TransientResult> results(jobs.size());
  if (jobs.empty()) return results;
  if (jobs.size() == 1) {
    results[0] = run_impl(jobs[0].control, jobs[0].initial_temperatures,
                          jobs[0].options);
    return results;
  }

  util::ThreadPool* pool = nullptr;
  {
    const std::lock_guard<std::mutex> lock(pool_mutex_);
    if (!pool_) {
      pool_ = std::make_unique<util::ThreadPool>(config_.threads);
    }
    pool = pool_.get();
  }
  pool->parallel_for(jobs.size(), [&](std::size_t i) {
    results[i] = run_impl(jobs[i].control, jobs[i].initial_temperatures,
                          jobs[i].options);
  });
  return results;
}

TransientEngineStats TransientEngine::stats() const {
  TransientEngineStats s;
  s.runs = steppers_->runs.load(std::memory_order_relaxed);
  s.steps = steppers_->steps.load(std::memory_order_relaxed);
  s.factorizations =
      steppers_->factorizations.load(std::memory_order_relaxed);
  s.factor_hits = steppers_->factor_hits.load(std::memory_order_relaxed);
  s.self_heals = steppers_->self_heals.load(std::memory_order_relaxed);
  s.slot_invalidations =
      steppers_->slot_invalidations.load(std::memory_order_relaxed);
  return s;
}

void TransientEngine::reset_stats() const {
  steppers_->runs.store(0, std::memory_order_relaxed);
  steppers_->steps.store(0, std::memory_order_relaxed);
  steppers_->factorizations.store(0, std::memory_order_relaxed);
  steppers_->factor_hits.store(0, std::memory_order_relaxed);
  steppers_->self_heals.store(0, std::memory_order_relaxed);
  steppers_->slot_invalidations.store(0, std::memory_order_relaxed);
}

}  // namespace oftec::thermal
