// Per-layer thermal stack report.
//
// For a solved temperature field, summarize each slab (min / mean / max cell
// temperature) and the vertical drop between adjacent slabs at the hottest
// chip column — the quickest way to see where the thermal budget goes
// (TIM1? the TEC layer? the sink-to-ambient interface?).
#pragma once

#include <array>
#include <string>

#include "la/vector_ops.h"
#include "thermal/layout.h"
#include "thermal/model.h"

namespace oftec::thermal {

struct SlabSummary {
  Slab slab = Slab::kChip;
  double min = 0.0;   ///< [K]
  double mean = 0.0;  ///< [K]
  double max = 0.0;   ///< [K]
};

struct StackReport {
  std::array<SlabSummary, kSlabCount> slabs;
  /// Cell index of the hottest chip cell.
  std::size_t hottest_cell = 0;
  /// Temperature at the hottest chip column, per slab [K].
  std::array<double, kSlabCount> hottest_column;
  double ambient = 0.0;  ///< [K]
};

/// Build the report from a full node-temperature vector.
[[nodiscard]] StackReport make_stack_report(const ThermalModel& model,
                                            const la::Vector& temperatures);

/// Render the report as a fixed-width text table (temperatures in °C).
[[nodiscard]] std::string format_stack_report(const StackReport& report);

}  // namespace oftec::thermal
