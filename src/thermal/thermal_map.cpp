#include "thermal/thermal_map.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"
#include "util/units.h"

namespace oftec::thermal {

std::string slab_name(Slab slab) {
  switch (slab) {
    case Slab::kPcb: return "pcb";
    case Slab::kChip: return "chip";
    case Slab::kTim1: return "tim1";
    case Slab::kTecAbs: return "tec-abs";
    case Slab::kTecGen: return "tec-gen";
    case Slab::kTecRej: return "tec-rej";
    case Slab::kSpreader: return "spreader";
    case Slab::kTim2: return "tim2";
    case Slab::kSink: return "sink";
  }
  throw std::invalid_argument("slab_name: unknown slab");
}

void write_slab_csv(const ThermalModel& model, const la::Vector& temperatures,
                    Slab slab, std::ostream& out) {
  const la::Vector cells = model.slab_temperatures(temperatures, slab);
  const std::size_t nx = model.layout().nx();
  const std::size_t ny = model.layout().ny();
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      if (ix != 0) out << ',';
      out << util::format_double(cells[model.layout().cell_index(ix, iy)], 4);
    }
    out << '\n';
  }
}

std::string render_slab_ascii(const ThermalModel& model,
                              const la::Vector& temperatures, Slab slab) {
  const la::Vector cells = model.slab_temperatures(temperatures, slab);
  const std::size_t nx = model.layout().nx();
  const std::size_t ny = model.layout().ny();

  double lo = cells.front(), hi = cells.front();
  for (const double t : cells) {
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }

  static const char ramp[] = " .:-=+*%@#";
  const double span = hi - lo;

  std::ostringstream os;
  os << slab_name(slab) << " temperature ["
     << util::format_double(units::kelvin_to_celsius(lo), 2) << " C = ' ', "
     << util::format_double(units::kelvin_to_celsius(hi), 2) << " C = '#']\n";
  // Top row of the die first (matches how floorplans are usually drawn).
  for (std::size_t iy = ny; iy-- > 0;) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const double t = cells[model.layout().cell_index(ix, iy)];
      const double norm = span > 0.0 ? (t - lo) / span : 0.0;
      const auto idx = static_cast<std::size_t>(norm * 9.0);
      os << ramp[std::min<std::size_t>(idx, 9)];
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace oftec::thermal
