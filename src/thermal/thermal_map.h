// Temperature-field rendering: CSV and ASCII heat maps of a slab.
//
// Debugging a thermal controller without seeing the field is miserable;
// these helpers dump any slab of a solved temperature vector as a grid CSV
// (for external plotting) or a quick ASCII shade map (for terminals and
// logs). Used by the examples and handy in tests.
#pragma once

#include <iosfwd>
#include <string>

#include "la/vector_ops.h"
#include "thermal/layout.h"
#include "thermal/model.h"

namespace oftec::thermal {

/// Write one slab's cell temperatures as an ny-row × nx-column CSV grid
/// (row 0 = bottom of the die, values in kelvin).
void write_slab_csv(const ThermalModel& model, const la::Vector& temperatures,
                    Slab slab, std::ostream& out);

/// Render one slab as an ASCII shade map, one character per cell, darker =
/// hotter, scaled between the slab's min and max. Includes a legend line
/// with the extremes in °C.
[[nodiscard]] std::string render_slab_ascii(const ThermalModel& model,
                                            const la::Vector& temperatures,
                                            Slab slab);

/// Human-readable slab name ("chip", "tec-abs", ...).
[[nodiscard]] std::string slab_name(Slab slab);

}  // namespace oftec::thermal
