#include "thermal/solve_engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <list>
#include <map>
#include <mutex>
#include <new>
#include <stdexcept>
#include <utility>

#include "la/banded_lu.h"
#include "la/iterative.h"
#include "util/fault.h"
#include "util/obs.h"

namespace oftec::thermal {

namespace {

std::uint64_t bits_of(double x) noexcept {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

// Registry mirrors of the per-engine counters (names: docs/observability.md).
const obs::Counter g_obs_points = obs::counter("solve_engine.points");
const obs::Counter g_obs_linear_solves =
    obs::counter("solve_engine.linear_solves");
const obs::Counter g_obs_cg_iterations_total =
    obs::counter("solve_engine.cg_iterations_total");
const obs::Counter g_obs_factorizations =
    obs::counter("solve_engine.factorizations");
const obs::Counter g_obs_factor_hits = obs::counter("solve_engine.factor_hits");
const obs::Counter g_obs_direct_fallbacks =
    obs::counter("solve_engine.direct_fallbacks");
const obs::Gauge g_obs_factor_hit_rate =
    obs::gauge("solve_engine.factor_hit_rate");
const obs::Gauge g_obs_factor_shard_entries =
    obs::gauge("solve_engine.factor_shard_entries");
const obs::Histogram g_obs_cg_iterations = obs::histogram(
    "solve_engine.cg_iterations",
    {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0});
const obs::Histogram g_obs_newton_iterations =
    obs::histogram("solve_engine.newton_iterations",
                   {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});

}  // namespace

// ---------------------------------------------------------------------------
// Factor cache
// ---------------------------------------------------------------------------

/// The matrix M(ω, I, linearization) is fully determined by ω, the per-cell
/// currents, and the per-cell leakage slopes (intercepts only move the rhs).
/// Keys compare the raw IEEE-754 bits of exactly those inputs, so a hit
/// always returns the factor of a bit-identical matrix — correctness and
/// determinism never depend on quantization or hit order.
struct FactorKey {
  std::uint64_t omega = 0;
  std::vector<std::uint64_t> current;
  std::vector<std::uint64_t> slope;

  friend bool operator<(const FactorKey& a, const FactorKey& b) noexcept {
    if (a.omega != b.omega) return a.omega < b.omega;
    if (a.current != b.current) return a.current < b.current;
    return a.slope < b.slope;
  }
};

/// A cached direct factorization: Cholesky when the system is SPD, pivoted
/// LU otherwise (near runaway the TEC/leakage terms can push the matrix
/// indefinite). Both solvers are const-thread-safe once built.
struct FactorEntry {
  std::shared_ptr<const la::BandedCholeskyNumeric> cholesky;
  std::shared_ptr<const la::BandedLu> lu;
};

/// Sharded LRU. Every direct solve in a batch takes the cache lock at least
/// once; a single mutex serializes run_batch workers exactly where the
/// engine is supposed to scale. Keys spread across independent shards by a
/// hash of their bits, so concurrent lookups of different operating points
/// contend only 1/kShards of the time. Correctness is unaffected: keys are
/// exact, so whichever shard holds a key returns the factor of a
/// bit-identical matrix, and eviction order never influences results.
struct SolveEngine::FactorCache {
  static constexpr std::size_t kShards = 8;

  using LruList = std::list<std::pair<FactorKey, FactorEntry>>;

  struct Shard {
    std::mutex mutex;
    LruList lru;  // front = most recently used
    std::map<FactorKey, LruList::iterator> index;
    std::size_t capacity = 0;
  };

  explicit FactorCache(std::size_t cap) {
    // Distribute the budget; every shard gets at least one slot when the
    // cache is enabled at all so small capacities still cache something.
    for (Shard& s : shards) {
      s.capacity = cap == 0 ? 0 : std::max<std::size_t>(1, cap / kShards);
    }
  }

  Shard shards[kShards];

  std::atomic<std::size_t> points{0};
  std::atomic<std::size_t> linear_solves{0};
  std::atomic<std::size_t> cg_iterations{0};
  std::atomic<std::size_t> factorizations{0};
  std::atomic<std::size_t> hits{0};
  std::atomic<std::size_t> direct_fallbacks{0};

  [[nodiscard]] static std::size_t shard_of(const FactorKey& key) noexcept {
    // FNV-1a over the key's IEEE bit words; the same key always lands in
    // the same shard, neighbouring ω values land in different ones.
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t w) {
      h ^= w;
      h *= 1099511628211ull;
    };
    mix(key.omega);
    for (const std::uint64_t w : key.current) mix(w);
    for (const std::uint64_t w : key.slope) mix(w);
    return static_cast<std::size_t>(h % kShards);
  }

  [[nodiscard]] bool find(const FactorKey& key, FactorEntry& out) {
    Shard& s = shards[shard_of(key)];
    const std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.index.find(key);
    if (it == s.index.end()) return false;
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    out = s.lru.front().second;
    hits.fetch_add(1, std::memory_order_relaxed);
    g_obs_factor_hits.add();
    return true;
  }

  void reset_counters() {
    points.store(0, std::memory_order_relaxed);
    linear_solves.store(0, std::memory_order_relaxed);
    cg_iterations.store(0, std::memory_order_relaxed);
    factorizations.store(0, std::memory_order_relaxed);
    hits.store(0, std::memory_order_relaxed);
    direct_fallbacks.store(0, std::memory_order_relaxed);
  }

  void erase(const FactorKey& key) {
    Shard& s = shards[shard_of(key)];
    const std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.index.find(key);
    if (it == s.index.end()) return;
    s.lru.erase(it->second);
    s.index.erase(it);
  }

  void insert(FactorKey key, FactorEntry entry) {
    Shard& s = shards[shard_of(key)];
    std::size_t entries = 0;
    {
      const std::lock_guard<std::mutex> lock(s.mutex);
      if (s.capacity == 0) return;
      if (const auto it = s.index.find(key); it != s.index.end()) {
        // Another thread factored the same point concurrently; keep the
        // incumbent (identical by construction) and refresh its recency.
        s.lru.splice(s.lru.begin(), s.lru, it->second);
        return;
      }
      s.lru.emplace_front(std::move(key), std::move(entry));
      s.index.emplace(s.lru.front().first, s.lru.begin());
      if (s.lru.size() > s.capacity) {
        s.index.erase(s.lru.back().first);
        s.lru.pop_back();
      }
      entries = s.lru.size();
    }
    if (obs::enabled()) {
      g_obs_factor_shard_entries.set(static_cast<double>(entries));
    }
  }
};

// ---------------------------------------------------------------------------
// Per-solve workspace (one per thread of execution; never shared)
// ---------------------------------------------------------------------------

struct SolveEngine::Workspace {
  CsrSystem csr;
  std::vector<power::TaylorCoefficients> taylor;
  la::Vector cell_current;
  la::Vector warm;         // previous iterate for Krylov warm starts
  bool have_warm = false;  // reset at the start of every operating point
  la::CgWorkspace cg;      // CG iteration vectors, reused across solves
};

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

SolveEngine::SolveEngine(const SteadySolver& solver, EngineOptions options)
    : solver_(&solver),
      options_(options),
      assembler_(solver.model(), solver.cell_dynamic_power()) {
  // Probe the banded structure once; all operating points share it.
  const std::size_t cells = solver.model().layout().cells_per_layer();
  const AssembledSystem probe = assembler_.assemble_banded(
      0.0, la::Vector(cells, 0.0),
      std::vector<power::TaylorCoefficients>(cells));
  symbolic_ = std::make_shared<const la::BandedCholeskySymbolic>(
      la::BandedCholeskySymbolic::analyze(probe.matrix));
  cache_ = std::make_unique<FactorCache>(options_.factor_cache_capacity);
}

SolveEngine::~SolveEngine() = default;

EngineStats SolveEngine::stats() const {
  EngineStats s;
  s.points = cache_->points.load(std::memory_order_relaxed);
  s.linear_solves = cache_->linear_solves.load(std::memory_order_relaxed);
  s.cg_iterations = cache_->cg_iterations.load(std::memory_order_relaxed);
  s.factorizations = cache_->factorizations.load(std::memory_order_relaxed);
  s.factor_hits = cache_->hits.load(std::memory_order_relaxed);
  s.direct_fallbacks = cache_->direct_fallbacks.load(std::memory_order_relaxed);
  return s;
}

void SolveEngine::reset_stats() const { cache_->reset_counters(); }

bool SolveEngine::physical(const la::Vector& temperatures) const {
  const double runaway = solver_->options().runaway_temperature;
  for (const double t : temperatures) {
    if (!std::isfinite(t) || t <= 0.0 || t > runaway) return false;
  }
  return true;
}

bool SolveEngine::solve_direct(
    double omega, const la::Vector& cell_current,
    const std::vector<power::TaylorCoefficients>& taylor, Workspace& ws,
    la::Vector& out) const {
  static const fault::Site factor_corrupt =
      fault::site("solve_engine.factor_corrupt");
  cache_->direct_fallbacks.fetch_add(1, std::memory_order_relaxed);
  g_obs_direct_fallbacks.add();

  FactorKey key;
  key.omega = bits_of(omega);
  key.current.reserve(cell_current.size());
  for (const double c : cell_current) key.current.push_back(bits_of(c));
  key.slope.reserve(taylor.size());
  for (const power::TaylorCoefficients& tc : taylor) {
    key.slope.push_back(bits_of(tc.a));
  }

  const AssembledSystem sys =
      assembler_.assemble_banded(omega, cell_current, taylor);
  const auto factorize = [&](FactorEntry& e) -> bool {
    cache_->factorizations.fetch_add(1, std::memory_order_relaxed);
    g_obs_factorizations.add();
    auto numeric = std::make_shared<la::BandedCholeskyNumeric>(symbolic_);
    try {
      numeric->refactorize(sys.matrix);
      e.cholesky = std::move(numeric);
      return true;
    } catch (const std::runtime_error&) {
      // Not positive definite — fall back to pivoted LU.
      try {
        e.lu = std::make_shared<const la::BandedLu>(sys.matrix);
        return true;
      } catch (const std::runtime_error&) {
        return false;  // genuinely singular: runaway
      }
    }
  };

  FactorEntry entry;
  const bool hit = cache_->find(key, entry);
  if (!hit) {
    if (!factorize(entry)) return false;
    cache_->insert(key, entry);
  }

  if (obs::enabled()) {
    const auto hits =
        static_cast<double>(cache_->hits.load(std::memory_order_relaxed));
    const auto misses = static_cast<double>(
        cache_->factorizations.load(std::memory_order_relaxed));
    if (hits + misses > 0.0) {
      g_obs_factor_hit_rate.set(hits / (hits + misses));
    }
  }

  out = entry.cholesky ? entry.cholesky->solve(sys.rhs)
                       : entry.lu->solve(sys.rhs);
  if (hit && factor_corrupt.should_fail()) {
    // Simulate a rotted cached factor: the numbers come back garbage.
    for (double& t : out) t = std::numeric_limits<double>::quiet_NaN();
  }
  if (!physical(out)) {
    if (!hit) return false;  // fresh factor: the point is genuinely runaway
    // Self-healing: a cached factor produced a non-physical solution where a
    // fresh factorization might not (corruption, or a stale borderline
    // factor). Evict it, refactorize from the assembled matrix, retry once.
    cache_->erase(key);
    FactorEntry fresh;
    if (!factorize(fresh)) return false;
    out = fresh.cholesky ? fresh.cholesky->solve(sys.rhs)
                         : fresh.lu->solve(sys.rhs);
    cache_->insert(std::move(key), std::move(fresh));
    if (!physical(out)) return false;
  }
  ws.warm = out;
  ws.have_warm = true;
  return true;
}

bool SolveEngine::solve_linear(
    double omega, const la::Vector& cell_current,
    const std::vector<power::TaylorCoefficients>& taylor, double tolerance,
    Workspace& ws, la::Vector& out) const {
  cache_->linear_solves.fetch_add(1, std::memory_order_relaxed);
  g_obs_linear_solves.add();
  if (options_.use_iterative) {
    assembler_.assemble_csr(omega, cell_current, taylor, ws.csr);
    la::IterativeOptions iopts;
    iopts.tolerance = tolerance;
    iopts.max_iterations = 4 * ws.csr.rhs.size();
    if (ws.have_warm) iopts.initial_guess = &ws.warm;
    iopts.workspace = &ws.cg;  // allocation-free across the Newton loop
    // All operating-point terms are diagonal, so M stays symmetric and CG
    // applies; indefinite systems (near runaway) fail to converge and drop
    // to the pivoted direct path below.
    const la::IterativeResult it =
        la::solve_cg(ws.csr.matrix, ws.csr.rhs, iopts);
    cache_->cg_iterations.fetch_add(it.iterations, std::memory_order_relaxed);
    g_obs_cg_iterations_total.add(it.iterations);
    if (obs::enabled()) {
      g_obs_cg_iterations.observe(static_cast<double>(it.iterations));
    }
    if (it.converged && physical(it.x)) {
      out = it.x;
      ws.warm = out;
      ws.have_warm = true;
      return true;
    }
  }
  return solve_direct(omega, cell_current, taylor, ws, out);
}

SteadyResult SolveEngine::solve_point(double omega, Workspace& ws) const {
  static const fault::Site alloc_fail = fault::site("solve_engine.alloc_fail");
  static const fault::Site nonconverge =
      fault::site("solve_engine.nonconverge");
  static const fault::Site nan_escape = fault::site("solve_engine.nan");
  OBS_SPAN("solve_engine.solve_point");
  cache_->points.fetch_add(1, std::memory_order_relaxed);
  g_obs_points.add();
  if (alloc_fail.should_fail()) {
    throw std::bad_alloc();  // what a failed Workspace/factor alloc raises
  }
  SteadyResult result = solve_point_impl(omega, ws);
  if (nonconverge.should_fail() && result.converged) {
    result.converged = false;
    result.status = SolveStatus::kNotConverged;
  }
  if (nan_escape.should_fail() && !result.temperatures.empty()) {
    result.temperatures.front() = std::numeric_limits<double>::quiet_NaN();
    result.max_chip_temperature = std::numeric_limits<double>::quiet_NaN();
  }
  // Sanitize barrier: a non-runaway result must be entirely finite. Anything
  // non-finite that slipped through (injected or real) is demoted to a
  // structured numerical-error verdict; NaN can never masquerade as success.
  if (!result.runaway) {
    bool finite = std::isfinite(result.max_chip_temperature) &&
                  std::isfinite(result.leakage_power) &&
                  std::isfinite(result.tec_power);
    for (std::size_t i = 0; finite && i < result.temperatures.size(); ++i) {
      finite = std::isfinite(result.temperatures[i]);
    }
    if (!finite) {
      result =
          make_runaway_result(result.iterations, SolveStatus::kNumericalError);
    }
  }
  if (obs::enabled()) {
    g_obs_newton_iterations.observe(static_cast<double>(result.iterations));
  }
  return result;
}

SteadyResult SolveEngine::solve_point_impl(double omega, Workspace& ws) const {
  const ThermalModel& model = solver_->model();
  const SteadyOptions& sopts = solver_->options();
  const std::vector<power::ExponentialTerm>& leakage = solver_->cell_leakage();
  const std::size_t cells = model.layout().cells_per_layer();

  ws.have_warm = false;  // determinism: no state leaks between points
  ws.taylor.resize(cells);
  const double polish_tol = sopts.iterative_tolerance;

  switch (sopts.mode) {
    case LeakageMode::kConstant: {
      for (std::size_t i = 0; i < cells; ++i) {
        ws.taylor[i] = {0.0, leakage[i].evaluate(model.config().ambient),
                        model.config().ambient};
      }
      la::Vector temps;
      if (!solve_linear(omega, ws.cell_current, ws.taylor, polish_tol, ws,
                        temps)) {
        return make_runaway_result(1);
      }
      return make_steady_result(model, std::move(temps), true, 1,
                                ws.cell_current, leakage);
    }

    case LeakageMode::kChordLinear: {
      for (std::size_t i = 0; i < cells; ++i) {
        ws.taylor[i] = power::chord_linearize(
            leakage[i], model.config().ambient, sopts.chord_t_lo,
            sopts.chord_t_hi, sopts.chord_samples);
      }
      la::Vector temps;
      if (!solve_linear(omega, ws.cell_current, ws.taylor, polish_tol, ws,
                        temps)) {
        return make_runaway_result(1);
      }
      return make_steady_result(model, std::move(temps), true, 1,
                                ws.cell_current, leakage);
    }

    case LeakageMode::kNewtonExact: {
      // Inexact Newton: intermediate linearizations only steer the outer
      // loop, so their solves run at the loose inner tolerance (warm-started
      // from the previous iterate); once the outer loop converges, one
      // polish solve at the reference tolerance produces the reported state.
      la::Vector t_ref(cells, model.config().ambient + 10.0);
      la::Vector temps;
      const double inner_tol =
          std::min(options_.inner_tolerance, polish_tol * 1e3);
      for (std::size_t it = 1; it <= sopts.max_iterations; ++it) {
        for (std::size_t i = 0; i < cells; ++i) {
          ws.taylor[i] = power::tangent_linearize(leakage[i], t_ref[i]);
        }
        if (!solve_linear(omega, ws.cell_current, ws.taylor, inner_tol, ws,
                          temps)) {
          return make_runaway_result(it);
        }
        const la::Vector chip = model.slab_temperatures(temps, Slab::kChip);
        const double diff = la::max_abs_diff(chip, t_ref);
        t_ref = chip;
        if (diff < sopts.tolerance) {
          if (inner_tol > polish_tol) {
            for (std::size_t i = 0; i < cells; ++i) {
              ws.taylor[i] = power::tangent_linearize(leakage[i], t_ref[i]);
            }
            if (!solve_linear(omega, ws.cell_current, ws.taylor, polish_tol,
                              ws, temps)) {
              return make_runaway_result(it);
            }
          }
          return make_steady_result(model, std::move(temps), true, it,
                                    ws.cell_current, leakage);
        }
      }
      const double max_chip = model.max_slab_temperature(temps, Slab::kChip);
      if (max_chip > sopts.runaway_temperature - 50.0) {
        return make_runaway_result(sopts.max_iterations);
      }
      return make_steady_result(model, std::move(temps), false,
                                sopts.max_iterations, ws.cell_current,
                                leakage);
    }
  }
  throw std::logic_error("SolveEngine: unknown leakage mode");
}

SteadyResult SolveEngine::solve(const OperatingPoint& point) const {
  Workspace ws;
  ws.cell_current.assign(solver_->model().layout().cells_per_layer(),
                         point.current);
  return solve_point(point.omega, ws);
}

SteadyResult SolveEngine::solve_cells(double omega,
                                      const la::Vector& cell_current) const {
  if (cell_current.size() != solver_->model().layout().cells_per_layer()) {
    throw std::invalid_argument("SolveEngine::solve_cells: arity mismatch");
  }
  Workspace ws;
  ws.cell_current = cell_current;
  return solve_point(omega, ws);
}

std::vector<SteadyResult> SolveEngine::solve_serial(
    const std::vector<OperatingPoint>& points) const {
  const std::size_t cells = solver_->model().layout().cells_per_layer();
  std::vector<SteadyResult> results(points.size());
  Workspace ws;
  for (std::size_t i = 0; i < points.size(); ++i) {
    ws.cell_current.assign(cells, points[i].current);
    results[i] = solve_point(points[i].omega, ws);
  }
  return results;
}

std::vector<SteadyResult> SolveEngine::solve_batch(
    const std::vector<OperatingPoint>& points, util::ThreadPool& pool) const {
  const std::size_t cells = solver_->model().layout().cells_per_layer();
  std::vector<SteadyResult> results(points.size());
  // Per-worker workspaces would need worker ids; a thread_local scratch
  // gives the same reuse without plumbing them through the pool API.
  pool.parallel_for(points.size(), [&](std::size_t i) {
    static thread_local Workspace ws;
    ws.cell_current.assign(cells, points[i].current);
    results[i] = solve_point(points[i].omega, ws);
  });
  return results;
}

std::vector<SteadyResult> SolveEngine::solve_batch(
    const std::vector<OperatingPoint>& points) const {
  {
    const std::lock_guard<std::mutex> lock(pool_mutex_);
    if (!pool_) {
      pool_ = std::make_unique<util::ThreadPool>(options_.threads);
    }
  }
  return solve_batch(points, *pool_);
}

}  // namespace oftec::thermal
