// Fast transient engine: the production path for backward-Euler transient
// simulation, bit-identical to the reference TransientSolver.
//
// TransientSolver rebuilds the full banded system and a fresh BandedLu at
// every step, which makes the factorization (O(n·bw²)) the dominant cost of
// every closed-loop run — the DTM loop, transient boost, serve sessions and
// the ablation benches all pay it. This engine removes that cost without
// changing a single output bit:
//
//   1. Static base, diagonal stamps. The conduction edges and PCB-ambient
//      couplings never change across steps; they are stamped once into a
//      base matrix/rhs at construction. Each step copies the base and
//      re-stamps only the diagonal groups (sink·g(ω), chip leakage slope,
//      TEC ±α·I, C/dt) in exactly the order ThermalModel::assemble uses, so
//      every matrix entry accumulates the same additions in the same order
//      as the reference — bit-equal by construction.
//
//   2. Factor reuse. The step matrix depends only on (dt, ω, I, leakage
//      slopes). Factors are cached in a small LRU keyed on the exact IEEE
//      bits of those inputs (the steady SolveEngine's keying discipline):
//      while a controller holds its setting and the leakage linearization
//      holds (see TransientOptions::relinearization_threshold), thousands
//      of steps share one factorization; controllers that toggle between a
//      few settings (LUT, fail-safe chains) hit warm slots.
//
//   3. Allocation-free stepping. All workspaces are preallocated;
//      BandedLu::refactorize_swap circulates matrix storage between the
//      assembly scratch and the factor slots, and solves run in place. Once
//      the slots are warm the step loop performs zero heap allocations.
//
//   4. run_batch fans independent traces across util::ThreadPool. Each
//      trace runs on its own stepper, results are written by job index, and
//      every factor is a pure function of its exact-bits key — so batched
//      results are bit-identical to serial at any thread count.
//
// Exactness contract: for identical inputs (model, workload, options,
// control), TransientEngine and TransientSolver produce bit-identical
// TransientResults — samples, final temperatures, step counts, runaway
// verdicts — at any thread count and any relinearization threshold.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "la/banded_lu.h"
#include "la/vector_ops.h"
#include "power/leakage.h"
#include "thermal/model.h"
#include "thermal/transient.h"
#include "util/thread_pool.h"

namespace oftec::thermal {

/// What the post-step runaway verdict inspects.
enum class RunawayCheck {
  kAllNodes,  ///< any node non-finite or above the limit (TransientSolver)
  kChipOnly,  ///< the max chip temperature only (the DTM loop's verdict)
};

/// Allocation-free backward-Euler stepper with factor reuse. One stepper =
/// one integration in flight; it is not thread-safe (TransientEngine keeps a
/// pool of them). The DTM loop drives one directly because its per-step
/// power varies with the trace — power only touches the right-hand side, so
/// factor reuse still applies.
class TransientStepper {
 public:
  struct Config {
    double runaway_temperature = 500.0;        ///< [K]
    double relinearization_threshold = 0.0;    ///< [K]; see TransientOptions
    RunawayCheck runaway_check = RunawayCheck::kAllNodes;
    std::size_t factor_slots = 8;  ///< LRU capacity (distinct warm settings)
  };

  TransientStepper(const ThermalModel& model,
                   std::vector<power::ExponentialTerm> cell_leakage);
  TransientStepper(const ThermalModel& model,
                   std::vector<power::ExponentialTerm> cell_leakage,
                   Config config);

  /// Re-apply per-run policy without touching the factor cache (factors are
  /// pure functions of their exact-bits key, so cross-run reuse is sound).
  void configure(double runaway_temperature, double relinearization_threshold,
                 RunawayCheck check);

  /// Set the integration state and drop the held linearization (a fresh run
  /// always re-linearizes at its first step, like the reference).
  /// Throws std::invalid_argument on arity mismatch.
  void reset(const la::Vector& initial_temperatures);

  /// Advance one backward-Euler step of length `dt` under `setting` with the
  /// given per-cell dynamic power. Returns false — leaving the state
  /// unchanged — when the step matrix is singular or the stepped state fails
  /// the runaway verdict; semantics match TransientSolver's step loop
  /// bit for bit. Throws std::invalid_argument on bad current or arity.
  [[nodiscard]] bool step(const ControlSetting& setting,
                          const la::Vector& cell_dynamic_power, double dt);

  [[nodiscard]] const la::Vector& temperatures() const noexcept {
    return temps_;
  }
  /// Chip-slab temperatures of the current state (kept in lockstep with
  /// temperatures() — the hoisted slab_temperatures of the reference loop).
  [[nodiscard]] const la::Vector& chip_temperatures() const noexcept {
    return chip_;
  }
  /// Max chip temperature of the current state (hoisted, computed once per
  /// step with max_element_value's exact semantics).
  [[nodiscard]] double max_chip_temperature() const noexcept {
    return max_chip_;
  }

  /// Exact exponential leakage power of the current state; bit-equal to
  /// ThermalModel::leakage_power.
  [[nodiscard]] double leakage_power() const;
  /// TEC electrical power of the current state; bit-equal to
  /// ThermalModel::tec_power.
  [[nodiscard]] double tec_power(double current) const;
  /// Sample of the current state at `time` under `setting`; field-for-field
  /// what TransientSolver records.
  [[nodiscard]] TransientSample sample(double time,
                                       const ControlSetting& setting) const;

  [[nodiscard]] std::size_t steps() const noexcept { return n_steps_; }
  [[nodiscard]] std::size_t factorizations() const noexcept {
    return n_factorizations_;
  }
  [[nodiscard]] std::size_t factor_hits() const noexcept {
    return n_factor_hits_;
  }
  [[nodiscard]] std::size_t self_heals() const noexcept {
    return n_self_heals_;
  }
  [[nodiscard]] std::size_t slot_invalidations() const noexcept {
    return n_slot_invalidations_;
  }

 private:
  struct FactorSlot {
    bool used = false;
    std::uint64_t stamp = 0;  ///< LRU recency
    std::uint64_t key_dt = 0;
    std::uint64_t key_omega = 0;
    std::uint64_t key_current = 0;
    std::vector<std::uint64_t> key_slopes;
    la::BandedLu lu;
  };

  void relinearize_if_drifted();
  void assemble_matrix(double omega, double current, double dt);
  void assemble_rhs(double omega, double current,
                    const la::Vector& cell_dynamic_power, double dt);
  [[nodiscard]] FactorSlot* find_slot(double omega, double current, double dt);
  [[nodiscard]] FactorSlot& lru_slot();
  void commit(double verdict_max_chip);
  [[nodiscard]] bool verdict(double& max_chip_out);

  const ThermalModel* model_;
  std::vector<power::ExponentialTerm> leakage_;
  Config config_;
  std::size_t n_ = 0;
  std::size_t cells_ = 0;

  // Static base (conduction edges + PCB-ambient), stamped once.
  la::BandedMatrix base_matrix_;
  la::Vector base_rhs_;

  // Step workspaces.
  la::BandedMatrix scratch_;  ///< assembly target; storage circulates with slots
  la::Vector rhs_;
  la::Vector next_;
  la::Vector temps_;
  la::Vector chip_;
  la::Vector chip_next_;
  mutable la::Vector cold_;  ///< TEC absorb-side temps (filled on demand)
  mutable la::Vector hot_;   ///< TEC reject-side temps
  double max_chip_ = 0.0;

  // Held linearization.
  std::vector<power::TaylorCoefficients> taylor_;
  la::Vector lin_chip_;
  std::vector<std::uint64_t> key_slopes_;
  bool have_linearization_ = false;

  std::vector<FactorSlot> slots_;
  std::uint64_t lru_stamp_ = 0;

  std::size_t n_steps_ = 0;
  std::size_t n_factorizations_ = 0;
  std::size_t n_factor_hits_ = 0;
  std::size_t n_self_heals_ = 0;
  std::size_t n_slot_invalidations_ = 0;
};

/// One independent trace for TransientEngine::run_batch. The control must be
/// self-contained (no shared mutable state with other jobs) — each job may
/// execute on a different pool thread.
struct TransientJob {
  FeedbackControl control;
  la::Vector initial_temperatures;
  TransientOptions options;
};

/// Engine-level counters (aggregated across steppers at run completion).
struct TransientEngineStats {
  std::size_t runs = 0;
  std::size_t steps = 0;
  std::size_t factorizations = 0;
  std::size_t factor_hits = 0;
  std::size_t self_heals = 0;
  std::size_t slot_invalidations = 0;
};

/// Drop-in fast path for TransientSolver: same construction signature, same
/// run()/run_closed_loop()/ambient_state() surface, bit-identical results,
/// plus run_batch for fanning independent traces. Thread-safe: concurrent
/// runs check steppers out of an internal pool (warm factor caches carry
/// across runs).
class TransientEngine {
 public:
  struct Config {
    std::size_t factor_slots = 8;  ///< per-stepper LRU capacity
    /// Worker threads for run_batch; 0 = ThreadPool::default_thread_count()
    /// (the OFTEC_THREADS environment variable, else hardware concurrency).
    std::size_t threads = 0;
  };

  TransientEngine(const ThermalModel& model, la::Vector cell_dynamic_power,
                  std::vector<power::ExponentialTerm> cell_leakage,
                  TransientOptions options = {});
  TransientEngine(const ThermalModel& model, la::Vector cell_dynamic_power,
                  std::vector<power::ExponentialTerm> cell_leakage,
                  TransientOptions options, Config config);
  ~TransientEngine();

  TransientEngine(const TransientEngine&) = delete;
  TransientEngine& operator=(const TransientEngine&) = delete;

  [[nodiscard]] const TransientOptions& options() const noexcept {
    return options_;
  }

  /// Integrate under an open-loop schedule (constructor options).
  [[nodiscard]] TransientResult run(
      const ControlSchedule& control,
      const la::Vector& initial_temperatures) const;
  /// Same, with per-run options.
  [[nodiscard]] TransientResult run(const ControlSchedule& control,
                                    const la::Vector& initial_temperatures,
                                    const TransientOptions& options) const;

  /// Closed-loop variant: the controller sees the max chip temperature.
  [[nodiscard]] TransientResult run_closed_loop(
      const FeedbackControl& control,
      const la::Vector& initial_temperatures) const;
  [[nodiscard]] TransientResult run_closed_loop(
      const FeedbackControl& control, const la::Vector& initial_temperatures,
      const TransientOptions& options) const;

  /// All-nodes-at-ambient initial condition.
  [[nodiscard]] la::Vector ambient_state() const;

  /// Run every job and return results in job order. Deterministic and
  /// bit-identical to calling run_closed_loop sequentially, at any thread
  /// count. A job that throws (bad options, out-of-range current) rethrows
  /// here after the batch drains.
  [[nodiscard]] std::vector<TransientResult> run_batch(
      const std::vector<TransientJob>& jobs) const;

  [[nodiscard]] TransientEngineStats stats() const;
  void reset_stats() const;

 private:
  class StepperPool;

  [[nodiscard]] TransientResult run_impl(const FeedbackControl& control,
                                         const la::Vector& initial_temperatures,
                                         const TransientOptions& options) const;

  const ThermalModel* model_;
  la::Vector dynamic_;
  std::vector<power::ExponentialTerm> leakage_;
  TransientOptions options_;
  Config config_;

  std::unique_ptr<StepperPool> steppers_;

  mutable std::mutex pool_mutex_;
  mutable std::unique_ptr<util::ThreadPool> pool_;  ///< lazy, for run_batch
};

}  // namespace oftec::thermal
