#include "thermal/model.h"

#include <cmath>
#include <stdexcept>

namespace oftec::thermal {

namespace {

using package::LayerRole;
using package::LayerSpec;

/// Half-thickness vertical resistance of a layer over one cell [K/W].
[[nodiscard]] double half_resistance(const LayerSpec& layer,
                                     double cell_area) noexcept {
  return (layer.thickness / 2.0) / (layer.material.conductivity * cell_area);
}

/// Series conductance of two half-cells with possibly different lateral
/// conductivities (used for covered↔uncovered TEC-layer neighbors).
[[nodiscard]] double lateral_conductance(double k_a, double k_b,
                                         double thickness, double face_len,
                                         double pitch) noexcept {
  const double r_a = (pitch / 2.0) / (k_a * thickness * face_len);
  const double r_b = (pitch / 2.0) / (k_b * thickness * face_len);
  return 1.0 / (r_a + r_b);
}

}  // namespace

ThermalModel::ThermalModel(package::PackageConfig cfg,
                           const floorplan::Floorplan& fp, std::size_t nx,
                           std::size_t ny,
                           std::optional<std::vector<bool>> coverage_override)
    : cfg_(std::move(cfg)), fp_(&fp), layout_(nx, ny) {
  cfg_.validate();
  const LayerSpec& chip = cfg_.layer(LayerRole::kChip);
  if (std::abs(chip.width - fp.die_width()) > 1e-9 ||
      std::abs(chip.height - fp.die_height()) > 1e-9) {
    throw std::invalid_argument(
        "ThermalModel: floorplan die does not match chip layer size");
  }
  grid_ = std::make_unique<floorplan::GridMap>(fp, nx, ny);

  if (cfg_.has_tec) {
    if (coverage_override) {
      if (coverage_override->size() != layout_.cells_per_layer()) {
        throw std::invalid_argument(
            "ThermalModel: coverage override arity mismatch");
      }
      coverage_ = std::move(*coverage_override);
    } else {
      coverage_ = grid_->tec_coverage();
    }
    tec_array_.emplace(cfg_.tec, coverage_, grid_->cell_area());
  } else {
    coverage_.assign(layout_.cells_per_layer(), false);
  }

  build_static_network();
}

void ThermalModel::add_edge(std::size_t i, std::size_t j, double conductance) {
  if (i == j || conductance <= 0.0) {
    throw std::logic_error("ThermalModel::add_edge: bad edge");
  }
  if (i > j) std::swap(i, j);
  if (j - i > layout_.bandwidth()) {
    throw std::logic_error("ThermalModel::add_edge: edge exceeds bandwidth");
  }
  edges_.push_back({i, j, conductance});
}

void ThermalModel::build_static_network() {
  const std::size_t nx = layout_.nx();
  const std::size_t ny = layout_.ny();
  const std::size_t cells = layout_.cells_per_layer();
  const double cell_w = grid_->cell_width();
  const double cell_h = grid_->cell_height();
  const double cell_area = grid_->cell_area();

  const LayerSpec& pcb = cfg_.layer(LayerRole::kPcb);
  const LayerSpec& chip = cfg_.layer(LayerRole::kChip);
  const LayerSpec& tim1 = cfg_.layer(LayerRole::kTim1);
  const LayerSpec& tec_layer = cfg_.layer(LayerRole::kTec);
  const LayerSpec& spreader = cfg_.layer(LayerRole::kSpreader);
  const LayerSpec& tim2 = cfg_.layer(LayerRole::kTim2);
  const LayerSpec& sink = cfg_.layer(LayerRole::kHeatSink);

  // ---- Vertical conduction, cell by cell --------------------------------
  const double g_pcb_chip =
      1.0 / (half_resistance(pcb, cell_area) + half_resistance(chip, cell_area));
  const double g_chip_tim1 =
      1.0 / (half_resistance(chip, cell_area) + half_resistance(tim1, cell_area));
  const double g_tim1_abs = 1.0 / half_resistance(tim1, cell_area);
  const double g_rej_spreader = 1.0 / half_resistance(spreader, cell_area);
  const double g_spreader_tim2 = 1.0 / (half_resistance(spreader, cell_area) +
                                        half_resistance(tim2, cell_area));
  const double g_tim2_sink =
      1.0 / (half_resistance(tim2, cell_area) + half_resistance(sink, cell_area));

  // Conductance of half the TEC-layer thickness over one cell: a TEC device
  // (K per unit × multiplier) on covered cells, filler paste elsewhere.
  const double k_filler = cfg_.filler_conductivity;
  const double g_filler_half =
      2.0 * k_filler * cell_area / tec_layer.thickness;

  for (std::size_t cell = 0; cell < cells; ++cell) {
    add_edge(layout_.node(Slab::kPcb, cell), layout_.node(Slab::kChip, cell),
             g_pcb_chip);
    add_edge(layout_.node(Slab::kChip, cell), layout_.node(Slab::kTim1, cell),
             g_chip_tim1);
    add_edge(layout_.node(Slab::kTim1, cell), layout_.node(Slab::kTecAbs, cell),
             g_tim1_abs);

    double g_half = g_filler_half;
    if (tec_array_ && tec_array_->cell(cell).covered) {
      g_half = 2.0 * tec_array_->cell(cell).conductance;
    }
    add_edge(layout_.node(Slab::kTecAbs, cell),
             layout_.node(Slab::kTecGen, cell), g_half);
    add_edge(layout_.node(Slab::kTecGen, cell),
             layout_.node(Slab::kTecRej, cell), g_half);

    add_edge(layout_.node(Slab::kTecRej, cell),
             layout_.node(Slab::kSpreader, cell), g_rej_spreader);
    add_edge(layout_.node(Slab::kSpreader, cell),
             layout_.node(Slab::kTim2, cell), g_spreader_tim2);
    add_edge(layout_.node(Slab::kTim2, cell), layout_.node(Slab::kSink, cell),
             g_tim2_sink);
  }

  // ---- Lateral conduction within slabs -----------------------------------
  // Interface slabs (abs/rej) have no thickness, hence no lateral path; the
  // TEC body (gen) conducts laterally through device material / filler.
  struct LateralSlab {
    Slab slab;
    const LayerSpec* layer;
    bool per_cell_k;  // true → TEC body: conductivity depends on coverage
  };
  const LateralSlab lateral_slabs[] = {
      {Slab::kPcb, &pcb, false},       {Slab::kChip, &chip, false},
      {Slab::kTim1, &tim1, false},     {Slab::kTecGen, &tec_layer, true},
      {Slab::kSpreader, &spreader, false}, {Slab::kTim2, &tim2, false},
      {Slab::kSink, &sink, false},
  };

  auto cell_k = [&](const LateralSlab& ls, std::size_t cell) {
    if (!ls.per_cell_k) return ls.layer->material.conductivity;
    const bool covered = tec_array_ && tec_array_->cell(cell).covered;
    return covered ? tec_layer.material.conductivity : k_filler;
  };

  for (const LateralSlab& ls : lateral_slabs) {
    const double t = ls.layer->thickness;
    for (std::size_t iy = 0; iy < ny; ++iy) {
      for (std::size_t ix = 0; ix < nx; ++ix) {
        const std::size_t cell = layout_.cell_index(ix, iy);
        if (ix + 1 < nx) {
          const std::size_t right = layout_.cell_index(ix + 1, iy);
          const double g = lateral_conductance(cell_k(ls, cell),
                                               cell_k(ls, right), t, cell_h,
                                               cell_w);
          add_edge(layout_.node(ls.slab, cell), layout_.node(ls.slab, right),
                   g);
        }
        if (iy + 1 < ny) {
          const std::size_t up = layout_.cell_index(ix, iy + 1);
          const double g = lateral_conductance(cell_k(ls, cell),
                                               cell_k(ls, up), t, cell_w,
                                               cell_h);
          add_edge(layout_.node(ls.slab, cell), layout_.node(ls.slab, up), g);
        }
      }
    }
  }

  // ---- Overhang ring nodes ------------------------------------------------
  const double die_w = fp_->die_width();
  const double die_h = fp_->die_height();
  const double spreader_ring_area = spreader.area() - die_w * die_h;
  const double tim2_ring_area = tim2.area() - die_w * die_h;
  const double sink_ring_area = sink.area() - die_w * die_h;
  if (spreader_ring_area <= 0.0 || tim2_ring_area <= 0.0 ||
      sink_ring_area <= 0.0) {
    throw std::invalid_argument(
        "ThermalModel: spreader/TIM2/sink must overhang the die");
  }

  // Edge cells ↔ ring, laterally through the slab material.
  auto connect_ring = [&](Slab slab, const LayerSpec& layer,
                          std::size_t ring_node) {
    const double ring_extent = (layer.width - die_w) / 2.0;
    const double k = layer.material.conductivity;
    const double t = layer.thickness;
    auto lateral_to_ring = [&](double face_len, double pitch) {
      return k * t * face_len / (pitch / 2.0 + ring_extent / 2.0);
    };
    for (std::size_t iy = 0; iy < ny; ++iy) {
      add_edge(layout_.node(slab, layout_.cell_index(0, iy)), ring_node,
               lateral_to_ring(cell_h, cell_w));
      add_edge(layout_.node(slab, layout_.cell_index(nx - 1, iy)), ring_node,
               lateral_to_ring(cell_h, cell_w));
    }
    for (std::size_t ix = 0; ix < nx; ++ix) {
      add_edge(layout_.node(slab, layout_.cell_index(ix, 0)), ring_node,
               lateral_to_ring(cell_w, cell_h));
      add_edge(layout_.node(slab, layout_.cell_index(ix, ny - 1)), ring_node,
               lateral_to_ring(cell_w, cell_h));
    }
  };
  connect_ring(Slab::kSpreader, spreader, layout_.spreader_ring());
  connect_ring(Slab::kSink, sink, layout_.sink_ring());

  // Vertical ring-to-ring path: spreader ring → TIM2 ring → sink ring.
  const double g_spring_t2ring =
      1.0 / ((spreader.thickness / 2.0) /
                 (spreader.material.conductivity * spreader_ring_area) +
             (tim2.thickness / 2.0) /
                 (tim2.material.conductivity * tim2_ring_area));
  add_edge(layout_.spreader_ring(), layout_.tim2_ring(), g_spring_t2ring);
  // TIM2 ring contacts the sink over the TIM2 overhang area only.
  const double g_t2ring_sinkring =
      1.0 / ((tim2.thickness / 2.0) /
                 (tim2.material.conductivity * tim2_ring_area) +
             (sink.thickness / 2.0) /
                 (sink.material.conductivity * tim2_ring_area));
  add_edge(layout_.tim2_ring(), layout_.sink_ring(), g_t2ring_sinkring);

  // ---- Ambient couplings --------------------------------------------------
  // Secondary path: PCB bottom to ambient (ω-independent).
  if (cfg_.pcb_to_ambient_conductance > 0.0) {
    const double g_per_cell =
        cfg_.pcb_to_ambient_conductance / static_cast<double>(cells);
    for (std::size_t cell = 0; cell < cells; ++cell) {
      static_ambient_.emplace_back(layout_.node(Slab::kPcb, cell), g_per_cell);
    }
  }
  // Primary path: heat-sink top to ambient; the total g_HS&fan(ω) is split
  // by top-surface area share at assembly time.
  const double sink_area = sink.area();
  for (std::size_t cell = 0; cell < cells; ++cell) {
    sink_ambient_share_.emplace_back(layout_.node(Slab::kSink, cell),
                                     cell_area / sink_area);
  }
  sink_ambient_share_.emplace_back(layout_.sink_ring(),
                                   sink_ring_area / sink_area);

  // ---- Capacitances -------------------------------------------------------
  capacitance_.assign(layout_.node_count(), 0.0);
  auto cap = [&](const LayerSpec& layer) {
    return layer.material.volumetric_heat_capacity * layer.thickness *
           cell_area;
  };
  for (std::size_t cell = 0; cell < cells; ++cell) {
    capacitance_[layout_.node(Slab::kPcb, cell)] = cap(pcb);
    capacitance_[layout_.node(Slab::kChip, cell)] = cap(chip);
    capacitance_[layout_.node(Slab::kTim1, cell)] = cap(tim1);
    // TEC layer heat capacity split 1/4 : 1/2 : 1/4 over abs/gen/rej.
    const double tec_cap = cap(tec_layer);
    capacitance_[layout_.node(Slab::kTecAbs, cell)] = 0.25 * tec_cap;
    capacitance_[layout_.node(Slab::kTecGen, cell)] = 0.50 * tec_cap;
    capacitance_[layout_.node(Slab::kTecRej, cell)] = 0.25 * tec_cap;
    capacitance_[layout_.node(Slab::kSpreader, cell)] = cap(spreader);
    capacitance_[layout_.node(Slab::kTim2, cell)] = cap(tim2);
    capacitance_[layout_.node(Slab::kSink, cell)] = cap(sink);
  }
  capacitance_[layout_.spreader_ring()] =
      spreader.material.volumetric_heat_capacity * spreader.thickness *
      spreader_ring_area;
  capacitance_[layout_.tim2_ring()] =
      tim2.material.volumetric_heat_capacity * tim2.thickness * tim2_ring_area;
  capacitance_[layout_.sink_ring()] =
      sink.material.volumetric_heat_capacity * sink.thickness * sink_ring_area;
}

la::Vector ThermalModel::distribute(const power::PowerMap& map) const {
  return grid_->distribute_power(map.values());
}

std::vector<power::ExponentialTerm> ThermalModel::cell_leakage(
    const power::LeakageModel& model) const {
  const la::Vector p0_cells = grid_->distribute_power(model.p0());
  std::vector<power::ExponentialTerm> terms(p0_cells.size());
  for (std::size_t i = 0; i < p0_cells.size(); ++i) {
    terms[i] = {p0_cells[i], model.beta(), model.t0()};
  }
  return terms;
}

AssembledSystem ThermalModel::assemble(
    double omega, double current, const la::Vector& cell_dynamic_power,
    const std::vector<power::TaylorCoefficients>& cell_taylor) const {
  return assemble(omega, la::Vector(layout_.cells_per_layer(), current),
                  cell_dynamic_power, cell_taylor);
}

AssembledSystem ThermalModel::assemble(
    double omega, const la::Vector& cell_current,
    const la::Vector& cell_dynamic_power,
    const std::vector<power::TaylorCoefficients>& cell_taylor) const {
  const std::size_t cells = layout_.cells_per_layer();
  if (cell_dynamic_power.size() != cells || cell_taylor.size() != cells ||
      cell_current.size() != cells) {
    throw std::invalid_argument("ThermalModel::assemble: per-cell arity");
  }
  for (const double current : cell_current) {
    if (current < 0.0 || current > cfg_.tec.max_current * (1.0 + 1e-9)) {
      throw std::invalid_argument(
          "ThermalModel::assemble: current out of range");
    }
  }

  const std::size_t n = layout_.node_count();
  const std::size_t bw = layout_.bandwidth();
  AssembledSystem sys{la::BandedMatrix(n, bw, bw), la::Vector(n, 0.0)};

  // Conduction network (Eq. 18 structure).
  for (const Edge& e : edges_) {
    sys.matrix.add(e.i, e.i, e.g);
    sys.matrix.add(e.j, e.j, e.g);
    sys.matrix.add(e.i, e.j, -e.g);
    sys.matrix.add(e.j, e.i, -e.g);
  }
  // Ambient couplings: diag += g, rhs += g·T_amb.
  for (const auto& [node, g] : static_ambient_) {
    sys.matrix.add(node, node, g);
    sys.rhs[node] += g * cfg_.ambient;
  }
  const double g_sink_total = cfg_.sink_fan.conductance(omega);
  for (const auto& [node, share] : sink_ambient_share_) {
    const double g = g_sink_total * share;
    sys.matrix.add(node, node, g);
    sys.rhs[node] += g * cfg_.ambient;
  }

  // Chip layer: dynamic power plus linearized leakage (Eq. 4). The slope a
  // moves to the diagonal — this is the term that can destroy diagonal
  // dominance and produce thermal runaway.
  for (std::size_t cell = 0; cell < cells; ++cell) {
    const std::size_t node = layout_.node(Slab::kChip, cell);
    const power::TaylorCoefficients& tc = cell_taylor[cell];
    sys.matrix.add(node, node, -tc.a);
    sys.rhs[node] += cell_dynamic_power[cell] + tc.b - tc.a * tc.t_ref;
  }

  // TEC sources (Eqs. 5–7): Peltier transport on the interface nodes
  // (temperature-proportional → LHS), Joule heat on the body node (→ rhs).
  if (tec_array_) {
    for (std::size_t cell = 0; cell < cells; ++cell) {
      const tec::CellTec& ct = tec_array_->cell(cell);
      const double current = cell_current[cell];
      if (!ct.covered || current <= 0.0) continue;
      const double peltier = ct.seebeck * current;
      const std::size_t abs_node = layout_.node(Slab::kTecAbs, cell);
      const std::size_t rej_node = layout_.node(Slab::kTecRej, cell);
      const std::size_t gen_node = layout_.node(Slab::kTecGen, cell);
      sys.matrix.add(abs_node, abs_node, peltier);   // p = −α·I·T_c
      sys.matrix.add(rej_node, rej_node, -peltier);  // p = +α·I·T_h
      sys.rhs[gen_node] += ct.resistance * current * current;
    }
  }

  return sys;
}

la::Vector ThermalModel::slab_temperatures(const la::Vector& temperatures,
                                           Slab slab) const {
  if (temperatures.size() != layout_.node_count()) {
    throw std::invalid_argument("ThermalModel::slab_temperatures: arity");
  }
  const std::size_t cells = layout_.cells_per_layer();
  la::Vector out(cells);
  for (std::size_t cell = 0; cell < cells; ++cell) {
    out[cell] = temperatures[layout_.node(slab, cell)];
  }
  return out;
}

double ThermalModel::max_slab_temperature(const la::Vector& temperatures,
                                          Slab slab) const {
  return la::max_element_value(slab_temperatures(temperatures, slab));
}

double ThermalModel::tec_power(const la::Vector& temperatures,
                               double current) const {
  if (!tec_array_ || current == 0.0) return 0.0;
  const la::Vector cold = slab_temperatures(temperatures, Slab::kTecAbs);
  const la::Vector hot = slab_temperatures(temperatures, Slab::kTecRej);
  return tec_array_->electrical_power(cold, hot, current);
}

double ThermalModel::tec_power(const la::Vector& temperatures,
                               const la::Vector& cell_current) const {
  if (!tec_array_) return 0.0;
  const std::size_t cells = layout_.cells_per_layer();
  if (cell_current.size() != cells) {
    throw std::invalid_argument("ThermalModel::tec_power: arity");
  }
  const la::Vector cold = slab_temperatures(temperatures, Slab::kTecAbs);
  const la::Vector hot = slab_temperatures(temperatures, Slab::kTecRej);
  double acc = 0.0;
  for (std::size_t cell = 0; cell < cells; ++cell) {
    const tec::CellTec& ct = tec_array_->cell(cell);
    const double current = cell_current[cell];
    if (!ct.covered || current <= 0.0) continue;
    const double delta_t = hot[cell] - cold[cell];
    acc += ct.seebeck * delta_t * current + ct.resistance * current * current;
  }
  return acc;
}

double ThermalModel::ambient_outflow(const la::Vector& temperatures,
                                     double omega) const {
  if (temperatures.size() != layout_.node_count()) {
    throw std::invalid_argument("ThermalModel::ambient_outflow: arity");
  }
  double acc = 0.0;
  for (const auto& [node, g] : static_ambient_) {
    acc += g * (temperatures[node] - cfg_.ambient);
  }
  const double g_sink_total = cfg_.sink_fan.conductance(omega);
  for (const auto& [node, share] : sink_ambient_share_) {
    acc += g_sink_total * share * (temperatures[node] - cfg_.ambient);
  }
  return acc;
}

IncrementalAssembler::IncrementalAssembler(const ThermalModel& model,
                                           la::Vector cell_dynamic_power)
    : model_(&model), dynamic_(std::move(cell_dynamic_power)) {
  const NodeLayout& layout = model.layout();
  const std::size_t n = layout.node_count();
  const std::size_t cells = layout.cells_per_layer();
  if (dynamic_.size() != cells) {
    throw std::invalid_argument("IncrementalAssembler: per-cell arity");
  }

  // Build the static base in CSR form: conduction edges plus the
  // ω-independent ambient couplings. All per-operating-point terms are
  // diagonal, so the pattern only needs edge off-diagonals + full diagonal.
  la::TripletBuilder builder(n);
  for (std::size_t i = 0; i < n; ++i) builder.add(i, i, 0.0);
  for (const ThermalModel::Edge& e : model.edges_) {
    builder.add(e.i, e.i, e.g);
    builder.add(e.j, e.j, e.g);
    builder.add(e.i, e.j, -e.g);
    builder.add(e.j, e.i, -e.g);
  }
  base_rhs_.assign(n, 0.0);
  for (const auto& [node, g] : model.static_ambient_) {
    builder.add(node, node, g);
    base_rhs_[node] += g * model.cfg_.ambient;
  }
  // Dynamic power is fixed for the lifetime of the assembler — fold it in.
  for (std::size_t cell = 0; cell < cells; ++cell) {
    base_rhs_[layout.node(Slab::kChip, cell)] += dynamic_[cell];
  }

  const la::CsrMatrix base = builder.build();
  row_ptr_ = base.row_ptr();
  col_idx_ = base.col_idx();
  base_values_ = base.values();

  diag_pos_.assign(n, 0);
  for (std::size_t r = 0; r < n; ++r) {
    bool found = false;
    for (std::size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      if (col_idx_[p] == r) {
        diag_pos_[r] = p;
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::logic_error("IncrementalAssembler: missing diagonal entry");
    }
  }
}

void IncrementalAssembler::assemble_csr(
    double omega, const la::Vector& cell_current,
    const std::vector<power::TaylorCoefficients>& cell_taylor,
    CsrSystem& out) const {
  const NodeLayout& layout = model_->layout();
  const std::size_t n = layout.node_count();
  const std::size_t cells = layout.cells_per_layer();
  if (cell_current.size() != cells || cell_taylor.size() != cells) {
    throw std::invalid_argument("IncrementalAssembler::assemble_csr: arity");
  }

  // Re-stamp values in place when the pattern matches; rebuild otherwise.
  if (out.matrix.size() == n && out.matrix.nnz() == base_values_.size()) {
    out.matrix.mutable_values() = base_values_;
  } else {
    out.matrix = la::CsrMatrix(n, row_ptr_, col_idx_, base_values_);
  }
  std::vector<double>& values = out.matrix.mutable_values();
  out.rhs = base_rhs_;

  const double ambient = model_->cfg_.ambient;
  const double g_sink_total = model_->cfg_.sink_fan.conductance(omega);
  for (const auto& [node, share] : model_->sink_ambient_share_) {
    const double g = g_sink_total * share;
    values[diag_pos_[node]] += g;
    out.rhs[node] += g * ambient;
  }
  for (std::size_t cell = 0; cell < cells; ++cell) {
    const std::size_t node = layout.node(Slab::kChip, cell);
    const power::TaylorCoefficients& tc = cell_taylor[cell];
    values[diag_pos_[node]] += -tc.a;
    out.rhs[node] += tc.b - tc.a * tc.t_ref;
  }
  if (const tec::TecArray* array = model_->tec_array()) {
    for (std::size_t cell = 0; cell < cells; ++cell) {
      const tec::CellTec& ct = array->cell(cell);
      const double current = cell_current[cell];
      if (!ct.covered || current <= 0.0) continue;
      const double peltier = ct.seebeck * current;
      values[diag_pos_[layout.node(Slab::kTecAbs, cell)]] += peltier;
      values[diag_pos_[layout.node(Slab::kTecRej, cell)]] -= peltier;
      out.rhs[layout.node(Slab::kTecGen, cell)] +=
          ct.resistance * current * current;
    }
  }
}

AssembledSystem IncrementalAssembler::assemble_banded(
    double omega, const la::Vector& cell_current,
    const std::vector<power::TaylorCoefficients>& cell_taylor) const {
  return model_->assemble(omega, cell_current, dynamic_, cell_taylor);
}

double ThermalModel::leakage_power(
    const la::Vector& temperatures,
    const std::vector<power::ExponentialTerm>& cell_terms) const {
  const la::Vector chip = slab_temperatures(temperatures, Slab::kChip);
  if (cell_terms.size() != chip.size()) {
    throw std::invalid_argument("ThermalModel::leakage_power: arity");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < chip.size(); ++i) {
    acc += cell_terms[i].evaluate(chip[i]);
  }
  return acc;
}

}  // namespace oftec::thermal
