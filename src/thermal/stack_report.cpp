#include "thermal/stack_report.h"

#include <sstream>
#include <stdexcept>

#include "thermal/thermal_map.h"
#include "util/strings.h"
#include "util/units.h"

namespace oftec::thermal {

StackReport make_stack_report(const ThermalModel& model,
                              const la::Vector& temperatures) {
  if (temperatures.size() != model.layout().node_count()) {
    throw std::invalid_argument("make_stack_report: arity mismatch");
  }
  StackReport report;
  report.ambient = model.config().ambient;

  const la::Vector chip = model.slab_temperatures(temperatures, Slab::kChip);
  report.hottest_cell = la::argmax(chip);

  for (std::size_t s = 0; s < kSlabCount; ++s) {
    const auto slab = static_cast<Slab>(s);
    const la::Vector cells = model.slab_temperatures(temperatures, slab);
    SlabSummary summary;
    summary.slab = slab;
    summary.min = cells.front();
    summary.max = cells.front();
    double acc = 0.0;
    for (const double t : cells) {
      summary.min = std::min(summary.min, t);
      summary.max = std::max(summary.max, t);
      acc += t;
    }
    summary.mean = acc / static_cast<double>(cells.size());
    report.slabs[s] = summary;
    report.hottest_column[s] = cells[report.hottest_cell];
  }
  return report;
}

std::string format_stack_report(const StackReport& report) {
  std::ostringstream os;
  os << "slab       min [C]   mean [C]   max [C]   @hotspot [C]   drop [K]\n";
  os << "-----------------------------------------------------------------\n";
  // Print top of the stack first (sink) down to the PCB; the vertical drop
  // column shows hotspot-column temperature steps between adjacent slabs.
  for (std::size_t s = kSlabCount; s-- > 0;) {
    const SlabSummary& sum = report.slabs[s];
    const double here = report.hottest_column[s];
    const double drop =
        s + 1 < kSlabCount ? here - report.hottest_column[s + 1] : 0.0;
    auto col = [](double kelvin) {
      return util::format_double(units::kelvin_to_celsius(kelvin), 2);
    };
    char line[160];
    std::snprintf(line, sizeof(line), "%-9s %8s %10s %9s %14s %10s\n",
                  slab_name(sum.slab).c_str(), col(sum.min).c_str(),
                  col(sum.mean).c_str(), col(sum.max).c_str(),
                  col(here).c_str(),
                  s + 1 < kSlabCount ? util::format_double(drop, 2).c_str()
                                     : "-");
    os << line;
  }
  os << "ambient: "
     << util::format_double(units::kelvin_to_celsius(report.ambient), 2)
     << " C\n";
  return os.str();
}

}  // namespace oftec::thermal
