// Batched steady-state solve engine.
//
// OFTEC's optimizer, every baseline controller, the Fig. 6 surface sweeps,
// the Pareto front, and LUT construction all reduce to evaluating the same
// nonlinear steady-state system at many independent operating points
// (ω, I_TEC). The serial SteadySolver rebuilds and re-solves everything from
// scratch per point; this engine gets its throughput from three levers:
//
//   1. Incremental assembly — the matrix's operating-point dependence is
//      diagonal-only, so the static network is assembled once and each
//      point's system is a value-copy plus ~4 diagonal stamp groups
//      (thermal::IncrementalAssembler).
//   2. Warm-started inexact Newton — Krylov solves inside the Newton loop
//      start from the previous iterate and run at a loose tolerance until
//      the outer loop converges, then a final polish solve tightens the
//      result to the solver's reference tolerance.
//   3. Factor reuse — direct-solve fallbacks (near thermal runaway, or when
//      use_iterative is off) go through a split symbolic/numeric banded
//      Cholesky whose symbolic analysis is done once per package stack,
//      with an LRU cache of numeric factors keyed bit-exactly on
//      (ω, I_TEC, leakage linearization) so re-visited operating points hit
//      warm factors. Keys are exact, so a cache hit returns the factor of
//      an *identical* matrix and results never depend on hit order.
//
// SolveBatch fans points across a work-stealing thread pool (util/): every
// point is computed independently from the same deterministic initial guess,
// so the batched result vector is identical — exact, bit-for-bit — to the
// serial reference path at any thread count (enforced by
// tests/thermal/test_batched_vs_serial.cpp).
//
// Thread-safety contract: solve()/solve_batch() are const and safe to call
// concurrently; the factor cache and statistics are internally synchronized.
// The underlying SteadySolver and ThermalModel must outlive the engine and
// are never mutated.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "la/split_cholesky.h"
#include "thermal/steady.h"
#include "util/thread_pool.h"

namespace oftec::thermal {

/// One independent evaluation request: shared TEC current at fan speed ω.
struct OperatingPoint {
  double omega = 0.0;    ///< fan speed [rad/s]
  double current = 0.0;  ///< TEC driving current [A]
};

struct EngineOptions {
  /// Worker threads for solve_batch(); 0 → OFTEC_THREADS env or hardware
  /// concurrency (util::ThreadPool::default_thread_count()).
  std::size_t threads = 0;
  /// Numeric factors kept warm (LRU). Each factor holds (bandwidth+1)·n
  /// doubles — ~0.7 MB at the default 10×10 grid. The cache is split into
  /// 8 hash-sharded LRUs (capacity/8 each, minimum 1) so batch workers
  /// looking up different operating points rarely contend on one mutex;
  /// 0 disables caching entirely.
  std::size_t factor_cache_capacity = 64;
  /// Try warm-started CG before the direct path (mirrors the serial
  /// solver's prefer_iterative). Off → every solve is a direct cached
  /// factorization, which exercises the factor cache exclusively.
  bool use_iterative = true;
  /// Krylov tolerance for intermediate Newton iterations; the final result
  /// is always polished to SteadyOptions::iterative_tolerance.
  double inner_tolerance = 1e-6;
};

/// Point-in-time snapshot of the engine's internally-atomic counters.
/// stats() may be called concurrently with solves; the snapshot is
/// per-counter consistent (each field is a single relaxed load, so totals
/// from an in-flight solve may be partially visible — never torn).
/// reset_stats() zeroes the accumulators: counters observed afterwards
/// belong to the new epoch, and in-flight solves split their increments
/// across the boundary. The same counters are mirrored into the process-wide
/// oftec::obs registry (when enabled) under the "solve_engine." prefix.
struct EngineStats {
  std::size_t points = 0;           ///< operating points evaluated
  std::size_t linear_solves = 0;    ///< linear systems solved (Newton iters)
  std::size_t cg_iterations = 0;    ///< total Krylov iterations
  std::size_t factorizations = 0;   ///< numeric (re)factorizations performed
  std::size_t factor_hits = 0;      ///< LRU factor cache hits
  std::size_t direct_fallbacks = 0; ///< solves that needed the direct path
};

class SolveEngine {
 public:
  /// Wraps a bound solver (model + workload + options). The solver's
  /// LeakageMode, tolerances, and runaway threshold all apply; its
  /// prefer_iterative flag is superseded by EngineOptions::use_iterative.
  explicit SolveEngine(const SteadySolver& solver, EngineOptions options = {});
  ~SolveEngine();

  SolveEngine(const SolveEngine&) = delete;
  SolveEngine& operator=(const SolveEngine&) = delete;

  [[nodiscard]] const SteadySolver& solver() const noexcept {
    return *solver_;
  }
  [[nodiscard]] const EngineOptions& options() const noexcept {
    return options_;
  }

  /// Evaluate one operating point (thread-safe, deterministic).
  [[nodiscard]] SteadyResult solve(const OperatingPoint& point) const;

  /// Multi-zone variant: an independent driving current per cell (mirrors
  /// SteadySolver::solve_cells). Same determinism guarantees as solve().
  [[nodiscard]] SteadyResult solve_cells(double omega,
                                         const la::Vector& cell_current) const;

  /// Reference serial path: solve() per point, in order, on the caller's
  /// thread. Batched execution must match this exactly.
  [[nodiscard]] std::vector<SteadyResult> solve_serial(
      const std::vector<OperatingPoint>& points) const;

  /// Fan the batch across the engine's pool (created lazily from
  /// options().threads). Results are ordered by input index.
  [[nodiscard]] std::vector<SteadyResult> solve_batch(
      const std::vector<OperatingPoint>& points) const;

  /// Same, on a caller-provided pool.
  [[nodiscard]] std::vector<SteadyResult> solve_batch(
      const std::vector<OperatingPoint>& points, util::ThreadPool& pool) const;

  [[nodiscard]] EngineStats stats() const;

  /// Zero the stats accumulators (see EngineStats for epoch semantics).
  /// The factor cache contents are untouched.
  void reset_stats() const;

 private:
  struct FactorCache;
  struct Workspace;

  /// Core path: ws.cell_current must already hold the per-cell currents.
  [[nodiscard]] SteadyResult solve_point(double omega, Workspace& ws) const;
  [[nodiscard]] SteadyResult solve_point_impl(double omega,
                                              Workspace& ws) const;
  /// Solve one linearized system; false → singular/runaway indication.
  [[nodiscard]] bool solve_linear(
      double omega, const la::Vector& cell_current,
      const std::vector<power::TaylorCoefficients>& taylor, double tolerance,
      Workspace& ws, la::Vector& out) const;
  [[nodiscard]] bool solve_direct(
      double omega, const la::Vector& cell_current,
      const std::vector<power::TaylorCoefficients>& taylor, Workspace& ws,
      la::Vector& out) const;
  [[nodiscard]] bool physical(const la::Vector& temperatures) const;

  const SteadySolver* solver_;
  EngineOptions options_;
  IncrementalAssembler assembler_;
  std::shared_ptr<const la::BandedCholeskySymbolic> symbolic_;
  std::unique_ptr<FactorCache> cache_;
  mutable std::unique_ptr<util::ThreadPool> pool_;  // lazy
  mutable std::mutex pool_mutex_;
};

}  // namespace oftec::thermal
