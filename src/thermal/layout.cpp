#include "thermal/layout.h"

#include <stdexcept>

namespace oftec::thermal {

NodeLayout::NodeLayout(std::size_t nx, std::size_t ny)
    : nx_(nx), ny_(ny), cells_(nx * ny) {
  if (nx == 0 || ny == 0) {
    throw std::invalid_argument("NodeLayout: grid dimensions must be positive");
  }
}

std::size_t NodeLayout::node(Slab slab, std::size_t cell) const {
  if (cell >= cells_) throw std::out_of_range("NodeLayout::node: bad cell");
  const auto s = static_cast<std::size_t>(slab);
  // Slabs 0..6 are contiguous; tim2 cells sit after the spreader ring and
  // sink cells after the tim2 ring.
  if (s <= 6) return s * cells_ + cell;
  if (slab == Slab::kTim2) return 7 * cells_ + 1 + cell;
  return 8 * cells_ + 2 + cell;  // kSink
}

std::size_t NodeLayout::cell_index(std::size_t ix, std::size_t iy) const {
  if (ix >= nx_ || iy >= ny_) {
    throw std::out_of_range("NodeLayout::cell_index");
  }
  return iy * nx_ + ix;
}

}  // namespace oftec::thermal
