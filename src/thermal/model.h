// Compact thermal model of the hybrid cooling assembly (paper Sec. 4).
//
// Builds the electrical-dual RC network for the 7-layer package over an
// nx×ny grid and assembles, for a given fan speed ω and TEC current I_TEC,
// the linear system
//
//     M(ω, I)·T = rhs(ω, I),        M = G − A,
//
// where G is the conductance matrix (Eq. 18; the sink-to-ambient entries
// depend on ω through Eq. 9) and A collects the temperature-proportional
// power terms folded onto the left-hand side: the Taylor-linearized leakage
// slope on chip cells (Eq. 4) and the Peltier sources ±α·I·T on the TEC
// absorb/reject interface nodes (Eqs. 5–6). The Joule term R·I² (Eq. 7 heat
// part) and all constant powers land in rhs.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "floorplan/floorplan.h"
#include "floorplan/grid_map.h"
#include "la/banded_matrix.h"
#include "la/sparse.h"
#include "la/vector_ops.h"
#include "package/package_config.h"
#include "power/leakage.h"
#include "power/power_map.h"
#include "tec/array.h"
#include "thermal/layout.h"

namespace oftec::thermal {

/// Assembled linear system for one (ω, I, linearization) operating point.
struct AssembledSystem {
  la::BandedMatrix matrix;
  la::Vector rhs;
};

/// Assembled system in CSR form (for the iterative solvers). The sparsity
/// pattern is fixed per model; only values change across operating points.
struct CsrSystem {
  la::CsrMatrix matrix;
  la::Vector rhs;
};

class ThermalModel {
 public:
  /// Build the network geometry for `cfg` over `fp` with an nx×ny grid.
  /// The floorplan must outlive the model. `coverage_override`, when given,
  /// replaces the default deployment policy (cover all core-majority cells)
  /// with an explicit per-cell TEC placement — the hook used by the
  /// selective-deployment optimizer (refs. [6][7]).
  ThermalModel(package::PackageConfig cfg, const floorplan::Floorplan& fp,
               std::size_t nx, std::size_t ny,
               std::optional<std::vector<bool>> coverage_override =
                   std::nullopt);

  [[nodiscard]] const NodeLayout& layout() const noexcept { return layout_; }
  [[nodiscard]] const package::PackageConfig& config() const noexcept {
    return cfg_;
  }
  [[nodiscard]] const floorplan::GridMap& grid() const noexcept {
    return *grid_;
  }
  /// TEC deployment, or nullptr when the package has no TECs.
  [[nodiscard]] const tec::TecArray* tec_array() const noexcept {
    return tec_array_ ? &*tec_array_ : nullptr;
  }

  /// Distribute a per-block power map onto chip grid cells [W].
  [[nodiscard]] la::Vector distribute(const power::PowerMap& map) const;

  /// Per-cell exponential leakage terms derived from a per-block model.
  [[nodiscard]] std::vector<power::ExponentialTerm> cell_leakage(
      const power::LeakageModel& model) const;

  /// Assemble M(ω,I)·T = rhs. `cell_dynamic_power` and `cell_taylor` are
  /// indexed by chip grid cell (size = cells_per_layer).
  [[nodiscard]] AssembledSystem assemble(
      double omega, double current, const la::Vector& cell_dynamic_power,
      const std::vector<power::TaylorCoefficients>& cell_taylor) const;

  /// Multi-zone generalization: an independent driving current per cell
  /// (cells in the same electrical zone share a value; uncovered cells'
  /// entries are ignored). The paper wires all TECs in series — one shared
  /// I_TEC — and names finer-grained control as the natural extension.
  [[nodiscard]] AssembledSystem assemble(
      double omega, const la::Vector& cell_current,
      const la::Vector& cell_dynamic_power,
      const std::vector<power::TaylorCoefficients>& cell_taylor) const;

  /// Per-node thermal capacitance [J/K] for the transient solver.
  [[nodiscard]] const la::Vector& capacitances() const noexcept {
    return capacitance_;
  }

  /// Extract one slab's cell temperatures from a full node vector.
  [[nodiscard]] la::Vector slab_temperatures(const la::Vector& temperatures,
                                             Slab slab) const;

  /// Max cell temperature within a slab.
  [[nodiscard]] double max_slab_temperature(const la::Vector& temperatures,
                                            Slab slab) const;

  /// Total TEC electrical power (Eq. 3 / Eq. 7 summed) at the given node
  /// temperatures and current. Zero for packages without TECs.
  [[nodiscard]] double tec_power(const la::Vector& temperatures,
                                 double current) const;

  /// Per-cell-current variant of tec_power.
  [[nodiscard]] double tec_power(const la::Vector& temperatures,
                                 const la::Vector& cell_current) const;

  /// Exact (exponential) total leakage power at the given node temperatures.
  [[nodiscard]] double leakage_power(
      const la::Vector& temperatures,
      const std::vector<power::ExponentialTerm>& cell_terms) const;

  /// Heat leaving the package to ambient [W] at the given temperatures and
  /// fan speed: Σ g_amb,i · (T_i − T_amb) over the PCB bottom and heat-sink
  /// top couplings. At a converged steady state this equals the total power
  /// injected (dynamic + leakage + TEC electrical) — first-law book-keeping
  /// exposed for diagnostics and tests.
  [[nodiscard]] double ambient_outflow(const la::Vector& temperatures,
                                       double omega) const;

 private:
  friend class IncrementalAssembler;
  friend class TransientStepper;

  void build_static_network();
  void add_edge(std::size_t i, std::size_t j, double conductance);

  package::PackageConfig cfg_;
  const floorplan::Floorplan* fp_;
  NodeLayout layout_;
  std::unique_ptr<floorplan::GridMap> grid_;
  std::optional<tec::TecArray> tec_array_;
  std::vector<bool> coverage_;

  /// ω- and I-independent conduction edges (i < j, conductance g).
  struct Edge {
    std::size_t i;
    std::size_t j;
    double g;
  };
  std::vector<Edge> edges_;
  /// ω-independent ambient couplings (node, g): PCB bottom.
  std::vector<std::pair<std::size_t, double>> static_ambient_;
  /// Sink-node share of the ω-dependent g_HS&fan (node, area fraction).
  std::vector<std::pair<std::size_t, double>> sink_ambient_share_;
  la::Vector capacitance_;
};

/// Incremental assembler for repeated solves of one model + workload.
///
/// Every operating-point dependence of M(ω, I, linearization) is diagonal:
/// ω scales the sink-to-ambient couplings, I_TEC adds ±α·I on the TEC
/// interface diagonals, and the leakage linearization moves the chip
/// diagonal. The off-diagonal conduction structure never changes. This
/// class therefore precomputes the static base of M and rhs (conduction
/// edges, PCB-ambient couplings, dynamic power) once, and produces each
/// operating point's system by copying the base values and re-stamping
/// ~4 diagonal groups — roughly 5× faster than ThermalModel::assemble()
/// followed by la::banded_to_csr().
///
/// assemble_csr() produces a matrix numerically identical entry-for-entry
/// to the base-plus-delta sums regardless of calling order, so results are
/// reproducible across serial and batched execution. The assembler itself
/// is immutable after construction and safe to share across threads when
/// each thread supplies its own CsrSystem scratch.
class IncrementalAssembler {
 public:
  /// Binds one model and one per-cell dynamic power vector (the workload).
  IncrementalAssembler(const ThermalModel& model, la::Vector cell_dynamic_power);

  [[nodiscard]] const ThermalModel& model() const noexcept { return *model_; }
  [[nodiscard]] const la::Vector& cell_dynamic_power() const noexcept {
    return dynamic_;
  }

  /// Assemble M(ω, cell_current, taylor)·T = rhs into `out`, reusing its
  /// storage when the pattern already matches (zero allocations then).
  void assemble_csr(double omega, const la::Vector& cell_current,
                    const std::vector<power::TaylorCoefficients>& cell_taylor,
                    CsrSystem& out) const;

  /// Band-storage form for the direct solvers (delegates to the model's
  /// reference assembler — only used on the direct fallback path).
  [[nodiscard]] AssembledSystem assemble_banded(
      double omega, const la::Vector& cell_current,
      const std::vector<power::TaylorCoefficients>& cell_taylor) const;

 private:
  const ThermalModel* model_;
  la::Vector dynamic_;
  // Fixed CSR pattern plus static base values (conduction + PCB ambient).
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> base_values_;
  la::Vector base_rhs_;                  // static ambient + dynamic power
  std::vector<std::size_t> diag_pos_;    // values index of (i, i) per node
};

}  // namespace oftec::thermal
