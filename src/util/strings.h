// Small string helpers shared by CSV/table formatting and config parsing.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace oftec::util {

/// Split `text` on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Strip leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// True if `text` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text,
                               std::string_view prefix) noexcept;

/// printf-style double formatting with a fixed number of decimals.
[[nodiscard]] std::string format_double(double value, int decimals);

/// Lower-case an ASCII string.
[[nodiscard]] std::string to_lower(std::string_view text);

}  // namespace oftec::util
