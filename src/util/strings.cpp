#include "util/strings.h"

#include <cctype>
#include <cstdio>

namespace oftec::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (true) {
    const std::size_t pos = text.find(sep, begin);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(begin));
      return out;
    }
    out.emplace_back(text.substr(begin, pos - begin));
    begin = pos + 1;
  }
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t first = 0;
  while (first < text.size() &&
         std::isspace(static_cast<unsigned char>(text[first]))) {
    ++first;
  }
  std::size_t last = text.size();
  while (last > first &&
         std::isspace(static_cast<unsigned char>(text[last - 1]))) {
    --last;
  }
  return text.substr(first, last - first);
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string format_double(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace oftec::util
