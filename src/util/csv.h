// CSV emission for benchmark harnesses.
//
// Every bench binary that regenerates a paper figure writes its series both to
// stdout (human table) and, optionally, to a CSV file so the figure can be
// re-plotted externally.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace oftec::util {

/// Accumulates rows and writes RFC-4180-ish CSV (fields containing commas or
/// quotes are quoted).
class CsvWriter {
 public:
  /// Set the header row. Must be called before any add_row.
  void set_header(std::vector<std::string> columns);

  /// Append a data row; must match the header arity.
  void add_row(std::vector<std::string> fields);

  /// Convenience: append a row of doubles formatted with `decimals` digits.
  void add_numeric_row(const std::vector<double>& values, int decimals = 6);

  /// Serialize everything to `os`.
  void write(std::ostream& os) const;

  /// Serialize to a file; returns false on I/O failure.
  [[nodiscard]] bool write_file(const std::string& path) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const noexcept {
    return header_.size();
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace oftec::util
