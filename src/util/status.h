// SolveStatus — one vocabulary for "did the numerics succeed, and if not,
// how exactly did they fail".
//
// Before this header, non-convergence was signalled three different ways
// (an exception from the direct solvers, a silent last-iterate return from
// the SQP, a bool pair on SteadyResult), which made layered fallback
// impossible: a caller cannot pick the right degradation rung without
// knowing *why* the rung above it failed. Every solver-shaped result in the
// codebase (thermal::SteadyResult, opt::OptResult, core::OftecResult) now
// carries one of these, and control layers branch on it instead of
// catching exceptions.
#pragma once

namespace oftec {

enum class SolveStatus {
  kOk,              ///< converged; the reported values are trustworthy
  kNotConverged,    ///< iteration budget exhausted without meeting tolerance
  kRunaway,         ///< thermal runaway: the physical system has no fixed point
  kSingular,        ///< linear system singular/indefinite beyond recovery
  kNumericalError,  ///< non-finite values escaped the solver core
};

[[nodiscard]] constexpr const char* to_string(SolveStatus s) noexcept {
  switch (s) {
    case SolveStatus::kOk: return "ok";
    case SolveStatus::kNotConverged: return "not_converged";
    case SolveStatus::kRunaway: return "runaway";
    case SolveStatus::kSingular: return "singular";
    case SolveStatus::kNumericalError: return "numerical_error";
  }
  return "unknown";
}

/// True when the result can be consumed as a valid answer (possibly an
/// honest "this operating point is physically infeasible" answer — runaway
/// is a *finding*, not a malfunction).
[[nodiscard]] constexpr bool is_definitive(SolveStatus s) noexcept {
  return s == SolveStatus::kOk || s == SolveStatus::kRunaway;
}

}  // namespace oftec
