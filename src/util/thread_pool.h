// Small work-stealing thread pool for fanning independent solves.
//
// Design constraints, in priority order:
//   1. Determinism — parallel_for(n, body) invokes body(i) exactly once per
//      index; callers write results[i], so output ordering never depends on
//      scheduling. The pool guarantees nothing about *execution* order.
//   2. Load balance — indices are dealt to per-worker deques in contiguous
//      blocks; an idle worker pops from the front of its own deque and
//      steals from the back of a victim's, so uneven work (e.g. thermal
//      runaway points whose Newton loops run long) migrates automatically.
//   3. Simplicity — one job in flight at a time, mutex-guarded deques. The
//      tasks this pool exists for (steady-state solves, OFTEC runs) cost
//      milliseconds to seconds each, so queue overhead is irrelevant.
//
// The calling thread participates as a worker, so ThreadPool(1) runs the
// loop inline with zero synchronization. Nested parallel_for calls on the
// same pool degrade to inline execution instead of deadlocking.
//
// Thread count resolution: explicit argument, else the OFTEC_THREADS
// environment variable, else std::thread::hardware_concurrency().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace oftec::util {

class ThreadPool {
 public:
  /// `threads` = total workers including the calling thread; 0 → resolve via
  /// default_thread_count(). A pool of 1 spawns no background threads.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size() + 1;
  }

  /// OFTEC_THREADS environment variable if set (clamped to ≥ 1), else
  /// hardware concurrency, else 1.
  [[nodiscard]] static std::size_t default_thread_count();

  /// Invoke body(i) once for each i in [0, count), distributed over all
  /// workers; blocks until every index has completed. The first exception
  /// thrown by any body is rethrown here (remaining indices are skipped on
  /// a best-effort basis). Reentrant calls from inside a body run inline.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::size_t> indices;
  };

  /// One parallel_for invocation.
  struct Job {
    const std::function<void(std::size_t)>* body = nullptr;
    std::vector<std::unique_ptr<WorkerQueue>> queues;
    std::atomic<std::size_t> remaining{0};
    std::atomic<bool> cancelled{false};
    std::mutex error_mutex;
    std::exception_ptr error;
  };

  void worker_loop(std::size_t worker_id);
  /// Drain the job as participant `self`: own deque first, then steal.
  static void participate(Job& job, std::size_t self);
  static bool pop_or_steal(Job& job, std::size_t self, std::size_t& index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_cv_;   // workers wait here for a new job
  std::condition_variable done_cv_;   // the submitter waits here
  std::shared_ptr<Job> job_;          // null when idle
  std::uint64_t job_seq_ = 0;
  bool stopping_ = false;
  std::mutex submit_mutex_;           // one parallel_for at a time
};

}  // namespace oftec::util
