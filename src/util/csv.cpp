#include "util/csv.h"

#include <fstream>
#include <stdexcept>

#include "util/strings.h"

namespace oftec::util {

namespace {

[[nodiscard]] std::string escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void CsvWriter::set_header(std::vector<std::string> columns) {
  if (!rows_.empty()) {
    throw std::logic_error("CsvWriter: header must be set before rows");
  }
  header_ = std::move(columns);
}

void CsvWriter::add_row(std::vector<std::string> fields) {
  if (!header_.empty() && fields.size() != header_.size()) {
    throw std::invalid_argument("CsvWriter: row arity mismatch");
  }
  rows_.push_back(std::move(fields));
}

void CsvWriter::add_numeric_row(const std::vector<double>& values,
                                int decimals) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (const double v : values) fields.push_back(format_double(v, decimals));
  add_row(std::move(fields));
}

void CsvWriter::write(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) os << ',';
      os << escape(row[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
}

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write(os);
  return static_cast<bool>(os);
}

}  // namespace oftec::util
