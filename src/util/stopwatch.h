// Wall-clock stopwatch used for the Table 2 runtime column.
#pragma once

#include <chrono>

namespace oftec::util {

/// Monotonic wall-clock stopwatch. Starts on construction.
class Stopwatch {
 public:
  Stopwatch() noexcept;

  /// Restart timing from now.
  void reset() noexcept;

  /// Elapsed time since construction/reset, in milliseconds.
  [[nodiscard]] double elapsed_ms() const noexcept;

  /// Elapsed time since construction/reset, in seconds.
  [[nodiscard]] double elapsed_s() const noexcept;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace oftec::util
