// Units and physical constants used across the OFTEC library.
//
// Convention: all internal computation is in SI units —
//   temperature  : kelvin (K)
//   power        : watt (W)
//   current      : ampere (A)
//   angular speed: radian per second (rad/s)
//   length       : meter (m)
// RPM and degrees Celsius appear only at I/O boundaries (configs, reports).
#pragma once

#include <numbers>

namespace oftec::units {

/// Absolute zero offset between Celsius and Kelvin scales.
inline constexpr double kCelsiusOffset = 273.15;

/// Convert a temperature in degrees Celsius to kelvin.
[[nodiscard]] constexpr double celsius_to_kelvin(double c) noexcept {
  return c + kCelsiusOffset;
}

/// Convert a temperature in kelvin to degrees Celsius.
[[nodiscard]] constexpr double kelvin_to_celsius(double k) noexcept {
  return k - kCelsiusOffset;
}

/// Convert a rotational speed in revolutions per minute to rad/s.
[[nodiscard]] constexpr double rpm_to_rad_s(double rpm) noexcept {
  return rpm * 2.0 * std::numbers::pi / 60.0;
}

/// Convert a rotational speed in rad/s to revolutions per minute.
[[nodiscard]] constexpr double rad_s_to_rpm(double rad_s) noexcept {
  return rad_s * 60.0 / (2.0 * std::numbers::pi);
}

/// Convert millimeters to meters.
[[nodiscard]] constexpr double mm(double v) noexcept { return v * 1e-3; }

/// Convert micrometers to meters.
[[nodiscard]] constexpr double um(double v) noexcept { return v * 1e-6; }

/// Convert a length in meters to millimeters.
[[nodiscard]] constexpr double m_to_mm(double v) noexcept { return v * 1e3; }

}  // namespace oftec::units
