// oftec::fault — deterministic, seedable fault injection.
//
// Robustness claims are only as good as the failures they were tested
// against. This framework lets tests (and operators reproducing incidents)
// inject failures at *named sites* compiled into the hot paths of the
// solver, linear algebra, thread pool, and serving stack:
//
//   solve_engine.nonconverge   Newton loop reports non-convergence
//   solve_engine.nan           non-finite temperatures escape the solver core
//   solve_engine.factor_corrupt  a cached numeric factor returns garbage
//   solve_engine.alloc_fail    allocation failure at solve entry (bad_alloc)
//   transient_engine.factor_corrupt  a cached transient factor returns
//                              garbage (stepper must self-heal bit-exactly)
//   la.cg_stall                CG declines to converge (forces direct path)
//   thread_pool.spawn_fail     a worker thread fails to start (degraded pool)
//   serve.accept_fail          accepted connection is torn down immediately
//   serve.read_error           inbound frame read reports a socket error
//   serve.write_error          outbound frame write fails
//   serve.queue_full           admission queue reports full (load shedding)
//   serve.exec_fault           executor throws mid-request (→ kErrInternal)
//   serve.slow_writer          writer stalls before each frame (slow client)
//   client.send_fail           client-side send fails (transport error)
//   client.recv_fail           client-side receive fails (transport error)
//   cluster.worker_spawn       spawning a cluster worker fails (retried on
//                              the supervisor's probe cadence)
//   cluster.probe_timeout      a worker health probe is treated as timed
//                              out without any I/O
//   cluster.proxy_write        the router's forward to a worker fails
//                              (surfaces as kErrOverloaded + retry_after_ms)
//   cluster.exec_spawn         process-mode fork/exec of a worker child
//                              fails (retried like cluster.worker_spawn)
//   cluster.journal_write      a bind-journal append fails (durability
//                              degrades; serving continues)
//   cluster.rehome_replay      a rebalance bind replay fails (the session
//                              falls back to lazy rebind on first use)
//
// Selection is environment-driven — `OFTEC_FAULT=spec[,spec...]` where each
// spec is `site:rate[:seed]` (rate in [0,1]; site may end in `*` to match a
// prefix, or be `*` for everything) — or programmatic via arm()/disarm_all()
// for tests. Example: OFTEC_FAULT="serve.*:0.1:7,la.cg_stall:0.05".
//
// Decisions are deterministic: site S with seed σ fires on its n-th call iff
// mix(σ, n) < rate·2⁶⁴, where mix is SplitMix64. For a fixed seed and a
// fixed per-thread call order the firing pattern is reproducible; under
// concurrency the *set* of calls that fire depends on interleaving, but the
// firing rate and the determinism of each (site, n) decision do not.
//
// Overhead contract: when nothing is armed, every should_fail() is a single
// relaxed atomic load plus a branch — no locks, no clock reads, no
// allocations (mirrors oftec::obs). Sites register once at static-init time
// through handles; hot paths never touch the registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace oftec::fault {

namespace detail {
extern std::atomic<bool> g_armed;  // any site has a nonzero rate

struct SiteState {
  std::string name;
  std::atomic<std::uint64_t> threshold{0};  ///< rate · 2⁶⁴ (0 = disarmed)
  std::atomic<std::uint64_t> seed{0};
  std::atomic<std::uint64_t> calls{0};  ///< should_fail() invocations while armed
  std::atomic<std::uint64_t> fires{0};

  [[nodiscard]] bool decide() noexcept;
};
}  // namespace detail

/// True when at least one site is armed. The inline fast path keeps the
/// disabled-mode cost of every injection point to one relaxed load.
[[nodiscard]] inline bool armed() noexcept {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// Handle to a named injection site. Value type; a default-constructed
/// handle never fires. Obtain via fault::site() once (static init) and keep.
class Site {
 public:
  Site() = default;

  /// Deterministic decision for this call. False whenever the framework is
  /// globally idle or this site is disarmed.
  [[nodiscard]] bool should_fail() const noexcept {
    if (!armed() || state_ == nullptr) return false;
    return state_->decide();
  }

 private:
  friend Site site(std::string_view name);
  explicit Site(detail::SiteState* state) noexcept : state_(state) {}
  detail::SiteState* state_ = nullptr;  // owned by the registry, never freed
};

/// Register (idempotently) and return a handle for `name`. Sites registered
/// after an arm() whose pattern matches them come up armed.
[[nodiscard]] Site site(std::string_view name);

/// Arm every site matching `pattern` (exact name, `prefix*`, or `*`) at
/// `rate` ∈ [0,1] with `seed`. Also remembered for sites registered later.
/// rate = 0 disarms matching sites. Returns the number of sites matched now.
std::size_t arm(std::string_view pattern, double rate, std::uint64_t seed = 1);

/// Disarm every site and forget remembered patterns. Counters are preserved
/// (use stats() before/after; reset_counters() zeroes them).
void disarm_all();

/// Zero every site's call/fire counters.
void reset_counters();

/// Parse and apply one OFTEC_FAULT-style spec list ("site:rate[:seed],...").
/// Returns false (and arms nothing from the offending spec) on a malformed
/// entry; earlier well-formed entries stay applied.
bool apply_spec(std::string_view spec_list);

struct SiteStats {
  std::string name;
  double rate = 0.0;
  std::uint64_t seed = 0;
  std::uint64_t calls = 0;
  std::uint64_t fires = 0;
};

/// Snapshot of every registered site (armed or not), name-ordered.
[[nodiscard]] std::vector<SiteStats> stats();

/// Fire count for one site (0 when unknown).
[[nodiscard]] std::uint64_t fires(std::string_view name);

}  // namespace oftec::fault
