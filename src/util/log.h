// Minimal leveled logger.
//
// The library is quiet by default (Level::kWarn). Benchmarks and examples
// raise the level to kInfo/kDebug to narrate what they are doing. Logging is
// process-global and not synchronized across threads beyond a per-call lock;
// the OFTEC pipeline itself is single-threaded.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace oftec::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set the global minimum severity that is emitted.
void set_level(Level level) noexcept;

/// Current global minimum severity.
[[nodiscard]] Level level() noexcept;

/// True if a message at `lvl` would be emitted.
[[nodiscard]] bool enabled(Level lvl) noexcept;

/// Emit one message (appends a newline). Thread-safe.
void write(Level lvl, std::string_view msg);

namespace detail {

template <typename... Args>
void emit(Level lvl, const Args&... args) {
  if (!enabled(lvl)) return;
  std::ostringstream os;
  (os << ... << args);
  write(lvl, os.str());
}

}  // namespace detail

template <typename... Args>
void debug(const Args&... args) {
  detail::emit(Level::kDebug, args...);
}

template <typename... Args>
void info(const Args&... args) {
  detail::emit(Level::kInfo, args...);
}

template <typename... Args>
void warn(const Args&... args) {
  detail::emit(Level::kWarn, args...);
}

template <typename... Args>
void error(const Args&... args) {
  detail::emit(Level::kError, args...);
}

}  // namespace oftec::log
