// Minimal leveled logger.
//
// The library is quiet by default (Level::kWarn). Benchmarks and examples
// raise the level to kInfo/kDebug to narrate what they are doing. Logging is
// process-global; concurrent callers (the OFTEC pipeline runs sweeps on the
// util::ThreadPool) are serialized by a per-call lock, so lines never
// interleave mid-message.
//
// Environment (read once, before main):
//   OFTEC_LOG_LEVEL   initial level — debug|info|warn|error|off or 0-4
//   OFTEC_LOG_PREFIX  extra line prefix fields — comma/space separated list
//                     of "time" (HH:MM:SS.mmm) and "tid" (sequential
//                     per-process thread id)
//   OFTEC_LOG_FILE    append every emitted line to this file as well as
//                     stderr (created if absent) — lets a daemonized server
//                     log without a TTY
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace oftec::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Optional per-line prefix fields (both default off; see OFTEC_LOG_PREFIX).
struct PrefixOptions {
  bool timestamp = false;  ///< wall-clock HH:MM:SS.mmm
  bool thread_id = false;  ///< sequential id of the emitting thread
};

/// Set the global minimum severity that is emitted.
void set_level(Level level) noexcept;

/// Current global minimum severity.
[[nodiscard]] Level level() noexcept;

/// True if a message at `lvl` would be emitted.
[[nodiscard]] bool enabled(Level lvl) noexcept;

/// Set/get the per-line prefix configuration.
void set_prefix(PrefixOptions options) noexcept;
[[nodiscard]] PrefixOptions prefix() noexcept;

/// Mirror every emitted line into `path` (append mode, line-buffered via an
/// explicit flush so a crash loses at most the in-flight line). Replaces any
/// previously configured sink; false if the file cannot be opened (the
/// previous sink, if any, is closed either way). Initialized from
/// OFTEC_LOG_FILE before main.
bool set_file(const std::string& path);

/// Stop mirroring to a file (stderr output is unaffected).
void close_file();

/// Path of the active file sink; empty when none.
[[nodiscard]] std::string file_path();

/// Emit one message (appends a newline). Thread-safe.
void write(Level lvl, std::string_view msg);

namespace detail {

/// Parse a level name ("debug", "WARN", …) or digit ("0".."4"); returns
/// `fallback` on anything unrecognized. Exposed for tests.
[[nodiscard]] Level parse_level(std::string_view text, Level fallback) noexcept;

/// Render the configured prefix (e.g. "12:03:55.120 t03 ") for the calling
/// thread; empty when both fields are off. Exposed for tests.
[[nodiscard]] std::string format_prefix(PrefixOptions options);

template <typename... Args>
void emit(Level lvl, const Args&... args) {
  if (!enabled(lvl)) return;
  std::ostringstream os;
  (os << ... << args);
  write(lvl, os.str());
}

}  // namespace detail

template <typename... Args>
void debug(const Args&... args) {
  detail::emit(Level::kDebug, args...);
}

template <typename... Args>
void info(const Args&... args) {
  detail::emit(Level::kInfo, args...);
}

template <typename... Args>
void warn(const Args&... args) {
  detail::emit(Level::kWarn, args...);
}

template <typename... Args>
void error(const Args&... args) {
  detail::emit(Level::kError, args...);
}

}  // namespace oftec::log
