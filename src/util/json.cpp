#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace oftec::util::json {

namespace {

[[noreturn]] void type_error(const char* wanted, Value::Type got) {
  static const char* kNames[] = {"null",   "bool",  "number",
                                 "string", "array", "object"};
  throw std::logic_error(std::string("json: expected ") + wanted + ", have " +
                         kNames[static_cast<int>(got)]);
}

void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp <= 0x7f) {
    out.push_back(static_cast<char>(cp));
  } else if (cp <= 0x7ff) {
    out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else if (cp <= 0xffff) {
    out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else {
    out.push_back(static_cast<char>(0xf0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  }
}

class Parser {
 public:
  Parser(std::string_view text, const ParseOptions& options)
      : text_(text), options_(options) {}

  Value run() {
    if (options_.max_input_bytes != 0 &&
        text_.size() > options_.max_input_bytes) {
      throw std::runtime_error(
          "json parse error: input of " + std::to_string(text_.size()) +
          " bytes exceeds limit of " +
          std::to_string(options_.max_input_bytes));
    }
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': {
        const DepthGuard guard(*this);
        return parse_object();
      }
      case '[': {
        const DepthGuard guard(*this);
        return parse_array();
      }
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      if (options_.duplicate_keys == DuplicateKeyPolicy::kError &&
          obj.count(key) != 0) {
        fail("duplicate object key \"" + key + "\"");
      }
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Value(std::move(obj));
      }
      fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Value(std::move(arr));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          // Decode a surrogate pair when the high half is followed by \u.
          if (cp >= 0xd800 && cp <= 0xdbff &&
              text_.substr(pos_, 2) == "\\u") {
            pos_ += 2;
            const std::uint32_t lo = parse_hex4();
            if (lo >= 0xdc00 && lo <= 0xdfff) {
              cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
            } else {
              fail("invalid low surrogate");
            }
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    return v;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      fail("malformed number");
    }
    return Value(v);
  }

  /// parse_value() recurses once per container level; this caps the depth.
  struct DepthGuard {
    explicit DepthGuard(Parser& p) : parser(p) {
      if (++parser.depth_ > parser.options_.max_depth) {
        parser.fail("nesting depth exceeds limit of " +
                    std::to_string(parser.options_.max_depth));
      }
    }
    ~DepthGuard() { --parser.depth_; }
    Parser& parser;
  };

  std::string_view text_;
  ParseOptions options_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

void write_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";  // JSON has no inf/nan
    return;
  }
  // Integral values within the exactly-representable range print as
  // integers — counters stay counters on the wire.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    os << buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

bool Value::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const Array& Value::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

Array& Value::as_array() {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const Object& Value::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

Object& Value::as_object() {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

Value& Value::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  return object_[key];
}

void Value::push_back(Value v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(v));
}

void Value::write_indented(std::ostream& os, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent < 0) return;
    os << '\n';
    for (int i = 0; i < indent * d; ++i) os << ' ';
  };
  switch (type_) {
    case Type::kNull: os << "null"; break;
    case Type::kBool: os << (bool_ ? "true" : "false"); break;
    case Type::kNumber: write_number(os, number_); break;
    case Type::kString: os << '"' << escape(string_) << '"'; break;
    case Type::kArray: {
      if (array_.empty()) {
        os << "[]";
        break;
      }
      os << '[';
      bool first = true;
      for (const Value& v : array_) {
        if (!first) os << ',';
        first = false;
        newline_pad(depth + 1);
        v.write_indented(os, indent, depth + 1);
      }
      newline_pad(depth);
      os << ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        os << "{}";
        break;
      }
      os << '{';
      bool first = true;
      for (const auto& [key, v] : object_) {
        if (!first) os << ',';
        first = false;
        newline_pad(depth + 1);
        os << '"' << escape(key) << "\":";
        if (indent >= 0) os << ' ';
        v.write_indented(os, indent, depth + 1);
      }
      newline_pad(depth);
      os << '}';
      break;
    }
  }
}

void Value::write(std::ostream& os, int indent) const {
  write_indented(os, indent, 0);
}

std::string Value::dump(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

Value parse(std::string_view text) { return Parser(text, {}).run(); }

Value parse(std::string_view text, const ParseOptions& options) {
  return Parser(text, options).run();
}

}  // namespace oftec::util::json
