// oftec::obs — process-wide observability: metrics, scoped spans, reports.
//
// The paper's deployment claim (Sec. 6.2) is that OFTEC is cheap enough to
// run online; validating (and improving) that requires knowing where every
// control period's cycles go. This subsystem provides:
//
//   1. A metrics registry — counters, gauges, and fixed-bucket histograms.
//      Counter/histogram storage is sharded per thread: the hot path is one
//      relaxed atomic increment on a thread-local slot, with aggregation
//      deferred to snapshot time. Registration is idempotent by name and
//      cheap enough to do at static-init time (the convention used across
//      the codebase, so every metric exists — at zero — in every report).
//
//   2. Scoped spans — `OBS_SPAN("solve_engine.point")` records a timed
//      RAII section into a per-thread buffer. Spans aggregate into a
//      self-time profile (total vs. self = total minus time in child
//      spans) and, when tracing is on, into Chrome `trace_event` JSON that
//      loads directly in chrome://tracing or https://ui.perfetto.dev.
//
//   3. Structured run reports — a JSON snapshot of every metric plus the
//      span aggregates, written on demand or automatically at process exit
//      when the environment asks for it.
//
// Environment variables (read once, before main):
//   OFTEC_OBS=1          enable collection (default off; "0"/"false"/"off"
//                        keep it disabled)
//   OFTEC_TRACE_FILE=p   record span events and write a Chrome trace to `p`
//                        at exit (implies OFTEC_OBS=1)
//   OFTEC_OBS_REPORT=p   write the JSON metrics report to `p` at exit
//                        (implies OFTEC_OBS=1)
//   OFTEC_SLOW_REQ_US=n  capture a request exemplar whenever a request's
//                        end-to-end time meets/exceeds n µs (0/unset = off)
//   OFTEC_TRACE_SAMPLE=n additionally capture every n-th candidate request
//                        (deterministic 1-in-N; 0/unset = off)
//   OFTEC_EXEMPLAR_CAP=n exemplar ring capacity (default 64)
//
// Overhead contract: when disabled, every instrumentation call is a single
// relaxed atomic load plus a branch — no locks, no clock reads, and no
// allocations (tests/util/test_obs.cpp enforces the last with a counting
// operator new). Metric *registration* may allocate; hot paths never
// register, they use handles created once.
//
// Thread-safety: everything here is safe to call from any thread. snapshot()
// and the writers may run concurrently with updates and see a slightly torn
// but per-metric-consistent view; reset() is intended for quiescent points
// (between runs, in tests).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"

namespace oftec::obs {

namespace detail {
// Defined in obs.cpp; initialized from the environment before main.
extern std::atomic<bool> g_enabled;
extern std::atomic<bool> g_tracing;
}  // namespace detail

/// True when metric/span collection is on (OFTEC_OBS, or either artifact
/// environment variable). The inline fast path keeps disabled-mode cost to
/// one relaxed load.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on) noexcept;

/// True when span *events* are recorded for Chrome-trace export (aggregated
/// span statistics only need enabled()).
[[nodiscard]] inline bool tracing() noexcept {
  return detail::g_tracing.load(std::memory_order_relaxed);
}
void set_tracing(bool on) noexcept;

// ---------------------------------------------------------------------------
// Metric handles
// ---------------------------------------------------------------------------

/// Monotonic counter. Handles are value types; copy freely. A
/// default-constructed handle is inert.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) const noexcept;

 private:
  friend Counter counter(std::string_view name);
  explicit Counter(std::uint32_t slot) noexcept : slot_(slot) {}
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t slot_ = kInvalid;
};

/// Last-write-wins instantaneous value (e.g. a hit rate, a queue depth).
class Gauge {
 public:
  Gauge() = default;
  void set(double v) const noexcept;

 private:
  friend Gauge gauge(std::string_view name);
  explicit Gauge(std::atomic<double>* cell) noexcept : cell_(cell) {}
  std::atomic<double>* cell_ = nullptr;  // owned by the registry
};

/// Fixed-bucket histogram: bucket i counts observations ≤ bounds[i], plus an
/// implicit overflow bucket; total count and sum ride along.
class Histogram {
 public:
  Histogram() = default;
  void observe(double v) const noexcept;

 private:
  friend Histogram histogram(std::string_view name,
                             std::vector<double> upper_bounds);
  Histogram(std::uint32_t slot, const std::vector<double>* bounds) noexcept
      : slot_(slot), bounds_(bounds) {}
  std::uint32_t slot_ = 0;
  const std::vector<double>* bounds_ = nullptr;  // owned by the registry
};

/// Register (or look up) a metric by name. Names are dotted lowercase
/// `<subsystem>.<what>[_<unit>]` (see docs/observability.md). Registration
/// is idempotent: the same name always returns a handle to the same metric;
/// for histograms the first registration's bounds win.
[[nodiscard]] Counter counter(std::string_view name);
[[nodiscard]] Gauge gauge(std::string_view name);
[[nodiscard]] Histogram histogram(std::string_view name,
                                  std::vector<double> upper_bounds);

/// `count` geometrically spaced bucket bounds starting at `start`
/// (start, start·factor, …) — the usual latency-histogram shape.
[[nodiscard]] std::vector<double> exponential_bounds(double start,
                                                     double factor,
                                                     std::size_t count);

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// RAII timed section. `name` must be a string literal (or otherwise outlive
/// the process) — it is stored by pointer. Spans nest per thread; closing
/// order must be LIFO, which scoped construction guarantees.
class Span {
 public:
  explicit Span(const char* name) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_ = false;
};

#define OFTEC_OBS_CONCAT_INNER(a, b) a##b
#define OFTEC_OBS_CONCAT(a, b) OFTEC_OBS_CONCAT_INNER(a, b)
/// Time the enclosing scope under `name` (a string literal).
#define OBS_SPAN(name) \
  const ::oftec::obs::Span OFTEC_OBS_CONCAT(obs_span_, __LINE__)(name)

// ---------------------------------------------------------------------------
// Snapshots & reports
// ---------------------------------------------------------------------------

struct HistogramSnapshot {
  std::vector<double> bounds;          ///< upper bounds, strictly increasing
  std::vector<std::uint64_t> counts;   ///< bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;             ///< total observations
  double sum = 0.0;

  /// Quantile estimate by linear interpolation within bucket bounds.
  /// p is clamped to [0, 1]. The first bucket interpolates down to
  /// min(0, bounds[0]); a quantile landing in the overflow bucket clamps to
  /// the highest bound (the histogram carries no upper edge there). Returns
  /// NaN when the histogram is empty.
  [[nodiscard]] double quantile(double p) const noexcept;
};

struct SpanStats {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;  ///< wall time inside the span
  double self_ms = 0.0;   ///< total minus time inside child spans
};

struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::vector<SpanStats> spans;  ///< sorted by self_ms, descending
  std::uint64_t dropped_events = 0;  ///< trace events lost to the ring cap
  /// Reset epoch the snapshot was taken in. reset() bumps the epoch under
  /// the registry lock, so two snapshots with equal epochs are guaranteed to
  /// observe the same (monotonically growing) counter stream and delta()
  /// between them is meaningful. Differing epochs mean a reset intervened.
  std::uint64_t epoch = 0;
  /// Monotonic snapshot counter (process lifetime, never reset). Gives
  /// scrapers a total order on snapshots even across reset() — the contract
  /// long-lived servers need for cursor-based delta scrapes.
  std::uint64_t sequence = 0;
};

/// Aggregate every shard (live and retired threads) into one view.
[[nodiscard]] Snapshot snapshot();

/// Zero all metrics and discard recorded span events/aggregates. Metric
/// registrations survive. Call at quiescent points; concurrent updates are
/// not lost crash-unsafely, merely attributed to the new epoch. Bumps the
/// snapshot epoch (see Snapshot::epoch).
void reset();

/// `to - from`, element-wise. Counter and histogram-bucket subtraction
/// saturates at zero, so a scrape racing concurrent updates can never report
/// a negative rate. When the epochs differ (a reset() intervened between the
/// two snapshots), the delta is `to` itself — everything in `to` accumulated
/// after the reset, so that IS the delta since `from`'s stream ended.
/// Gauges are last-write-wins and simply take `to`'s values.
[[nodiscard]] Snapshot delta(const Snapshot& from, const Snapshot& to);

/// JSON metrics report (see docs/observability.md for the schema).
void write_report(std::ostream& os);
[[nodiscard]] bool write_report_file(const std::string& path);

/// The metrics portion of a snapshot as a JSON object: {"epoch", "sequence",
/// "counters": {...}, "gauges": {...}, "histograms": {name: {bounds, counts,
/// count, sum}}}. This is the payload the serve stats RPC ships, and the
/// shape write_report embeds.
[[nodiscard]] util::json::Value snapshot_json(const Snapshot& snap);

/// Prometheus text exposition (text/plain; version=0.0.4) of a snapshot.
/// Dotted metric names map to underscored families (serve.queue_wait_us →
/// serve_queue_wait_us); counters gain the conventional `_total` suffix;
/// histograms render cumulative `_bucket{le=...}` series plus `_sum`/`_count`
/// and a companion `<name>_quantile{q=...}` gauge family with p50/p95/p99
/// estimated from the bucket bounds (HistogramSnapshot::quantile).
void write_prometheus(std::ostream& os, const Snapshot& snap);
[[nodiscard]] std::string prometheus_text(const Snapshot& snap);

/// Chrome trace_event JSON — load in chrome://tracing or Perfetto.
void write_chrome_trace(std::ostream& os);
[[nodiscard]] bool write_chrome_trace_file(const std::string& path);

/// Human-readable self-time profile of all spans (top of the report).
[[nodiscard]] std::string profile_table();

/// Write the env-configured artifacts (OFTEC_OBS_REPORT / OFTEC_TRACE_FILE),
/// if any. Runs automatically at exit when either variable is set; safe to
/// call earlier (files are simply rewritten at exit).
void flush();

/// Paths resolved from the environment at startup; empty when unset.
[[nodiscard]] std::string report_path_from_env();
[[nodiscard]] std::string trace_path_from_env();

// ---------------------------------------------------------------------------
// Slow-request exemplars
// ---------------------------------------------------------------------------
//
// A small process-global ring of "exemplars" — per-request stage breakdowns
// captured for requests that exceeded the slow threshold (OFTEC_SLOW_REQ_US)
// or hit the deterministic 1-in-N sample (OFTEC_TRACE_SAMPLE). The ring is
// lock-light: record() try-locks and drops the exemplar on contention or
// when the obs.exemplar_ring fault site fires, so the request hot path can
// never block on observability. At capacity the oldest exemplar is
// overwritten (drop-oldest), keeping the freshest evidence.

struct ExemplarStage {
  std::string name;
  double start_us = 0.0;  ///< offset from the exemplar's start
  double dur_us = 0.0;
};

struct Exemplar {
  std::uint64_t seq = 0;  ///< capture sequence, assigned by the ring
  std::string trace_id;   ///< wire trace id (may be empty)
  std::string name;       ///< e.g. the request type
  double start_us = 0.0;  ///< process-lifetime timestamp (traces align)
  double total_us = 0.0;
  std::vector<ExemplarStage> stages;
};

/// Append an exemplar (drop-oldest at capacity). Never blocks: contention or
/// an armed obs.exemplar_ring fault drops it instead. Returns the assigned
/// capture sequence, or 0 when dropped.
std::uint64_t record_exemplar(Exemplar exemplar) noexcept;

/// Ring contents, oldest first.
[[nodiscard]] std::vector<Exemplar> exemplars();

struct ExemplarRingStats {
  std::uint64_t captured = 0;   ///< exemplars accepted (incl. overwritten)
  std::uint64_t dropped = 0;    ///< lost to contention or fault injection
  std::uint64_t capacity = 0;
};
[[nodiscard]] ExemplarRingStats exemplar_ring_stats();

/// Resize (and clear) the ring. Capacity 0 is clamped to 1.
void set_exemplar_capacity(std::size_t capacity);
void clear_exemplars();

/// Capture policy. A request taking total_us qualifies when the slow
/// threshold is set and met, or — failing that — when the deterministic
/// sample counter (incremented only for requests not already slow-captured)
/// hits a multiple of the 1-in-N period. Both knobs default off, so the
/// steady-state cost with exemplars disabled is two relaxed loads.
[[nodiscard]] bool should_capture_exemplar(double total_us) noexcept;
[[nodiscard]] std::uint64_t slow_request_threshold_us() noexcept;
void set_slow_request_threshold_us(std::uint64_t us) noexcept;
[[nodiscard]] std::uint64_t trace_sample_every() noexcept;
void set_trace_sample_every(std::uint64_t n) noexcept;
/// True when either capture knob is on (cheap pre-check for callers that
/// would otherwise assemble stage breakdowns for nothing).
[[nodiscard]] bool exemplars_active() noexcept;

/// Chrome trace_event JSON for a set of exemplars — each exemplar becomes
/// its own named track (tid = seq) with one slice per stage. Loads directly
/// in chrome://tracing / Perfetto; this is what the serve kTrace RPC returns.
[[nodiscard]] util::json::Value exemplar_trace_json(
    const std::vector<Exemplar>& exemplars);

/// Timestamp on the same process-lifetime clock exemplars use [µs].
[[nodiscard]] double exemplar_now_us() noexcept;

}  // namespace oftec::obs
