// oftec::obs — process-wide observability: metrics, scoped spans, reports.
//
// The paper's deployment claim (Sec. 6.2) is that OFTEC is cheap enough to
// run online; validating (and improving) that requires knowing where every
// control period's cycles go. This subsystem provides:
//
//   1. A metrics registry — counters, gauges, and fixed-bucket histograms.
//      Counter/histogram storage is sharded per thread: the hot path is one
//      relaxed atomic increment on a thread-local slot, with aggregation
//      deferred to snapshot time. Registration is idempotent by name and
//      cheap enough to do at static-init time (the convention used across
//      the codebase, so every metric exists — at zero — in every report).
//
//   2. Scoped spans — `OBS_SPAN("solve_engine.point")` records a timed
//      RAII section into a per-thread buffer. Spans aggregate into a
//      self-time profile (total vs. self = total minus time in child
//      spans) and, when tracing is on, into Chrome `trace_event` JSON that
//      loads directly in chrome://tracing or https://ui.perfetto.dev.
//
//   3. Structured run reports — a JSON snapshot of every metric plus the
//      span aggregates, written on demand or automatically at process exit
//      when the environment asks for it.
//
// Environment variables (read once, before main):
//   OFTEC_OBS=1          enable collection (default off; "0"/"false"/"off"
//                        keep it disabled)
//   OFTEC_TRACE_FILE=p   record span events and write a Chrome trace to `p`
//                        at exit (implies OFTEC_OBS=1)
//   OFTEC_OBS_REPORT=p   write the JSON metrics report to `p` at exit
//                        (implies OFTEC_OBS=1)
//
// Overhead contract: when disabled, every instrumentation call is a single
// relaxed atomic load plus a branch — no locks, no clock reads, and no
// allocations (tests/util/test_obs.cpp enforces the last with a counting
// operator new). Metric *registration* may allocate; hot paths never
// register, they use handles created once.
//
// Thread-safety: everything here is safe to call from any thread. snapshot()
// and the writers may run concurrently with updates and see a slightly torn
// but per-metric-consistent view; reset() is intended for quiescent points
// (between runs, in tests).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace oftec::obs {

namespace detail {
// Defined in obs.cpp; initialized from the environment before main.
extern std::atomic<bool> g_enabled;
extern std::atomic<bool> g_tracing;
}  // namespace detail

/// True when metric/span collection is on (OFTEC_OBS, or either artifact
/// environment variable). The inline fast path keeps disabled-mode cost to
/// one relaxed load.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on) noexcept;

/// True when span *events* are recorded for Chrome-trace export (aggregated
/// span statistics only need enabled()).
[[nodiscard]] inline bool tracing() noexcept {
  return detail::g_tracing.load(std::memory_order_relaxed);
}
void set_tracing(bool on) noexcept;

// ---------------------------------------------------------------------------
// Metric handles
// ---------------------------------------------------------------------------

/// Monotonic counter. Handles are value types; copy freely. A
/// default-constructed handle is inert.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) const noexcept;

 private:
  friend Counter counter(std::string_view name);
  explicit Counter(std::uint32_t slot) noexcept : slot_(slot) {}
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t slot_ = kInvalid;
};

/// Last-write-wins instantaneous value (e.g. a hit rate, a queue depth).
class Gauge {
 public:
  Gauge() = default;
  void set(double v) const noexcept;

 private:
  friend Gauge gauge(std::string_view name);
  explicit Gauge(std::atomic<double>* cell) noexcept : cell_(cell) {}
  std::atomic<double>* cell_ = nullptr;  // owned by the registry
};

/// Fixed-bucket histogram: bucket i counts observations ≤ bounds[i], plus an
/// implicit overflow bucket; total count and sum ride along.
class Histogram {
 public:
  Histogram() = default;
  void observe(double v) const noexcept;

 private:
  friend Histogram histogram(std::string_view name,
                             std::vector<double> upper_bounds);
  Histogram(std::uint32_t slot, const std::vector<double>* bounds) noexcept
      : slot_(slot), bounds_(bounds) {}
  std::uint32_t slot_ = 0;
  const std::vector<double>* bounds_ = nullptr;  // owned by the registry
};

/// Register (or look up) a metric by name. Names are dotted lowercase
/// `<subsystem>.<what>[_<unit>]` (see docs/observability.md). Registration
/// is idempotent: the same name always returns a handle to the same metric;
/// for histograms the first registration's bounds win.
[[nodiscard]] Counter counter(std::string_view name);
[[nodiscard]] Gauge gauge(std::string_view name);
[[nodiscard]] Histogram histogram(std::string_view name,
                                  std::vector<double> upper_bounds);

/// `count` geometrically spaced bucket bounds starting at `start`
/// (start, start·factor, …) — the usual latency-histogram shape.
[[nodiscard]] std::vector<double> exponential_bounds(double start,
                                                     double factor,
                                                     std::size_t count);

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// RAII timed section. `name` must be a string literal (or otherwise outlive
/// the process) — it is stored by pointer. Spans nest per thread; closing
/// order must be LIFO, which scoped construction guarantees.
class Span {
 public:
  explicit Span(const char* name) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_ = false;
};

#define OFTEC_OBS_CONCAT_INNER(a, b) a##b
#define OFTEC_OBS_CONCAT(a, b) OFTEC_OBS_CONCAT_INNER(a, b)
/// Time the enclosing scope under `name` (a string literal).
#define OBS_SPAN(name) \
  const ::oftec::obs::Span OFTEC_OBS_CONCAT(obs_span_, __LINE__)(name)

// ---------------------------------------------------------------------------
// Snapshots & reports
// ---------------------------------------------------------------------------

struct HistogramSnapshot {
  std::vector<double> bounds;          ///< upper bounds, strictly increasing
  std::vector<std::uint64_t> counts;   ///< bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;             ///< total observations
  double sum = 0.0;
};

struct SpanStats {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;  ///< wall time inside the span
  double self_ms = 0.0;   ///< total minus time inside child spans
};

struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::vector<SpanStats> spans;  ///< sorted by self_ms, descending
  std::uint64_t dropped_events = 0;  ///< trace events lost to the ring cap
};

/// Aggregate every shard (live and retired threads) into one view.
[[nodiscard]] Snapshot snapshot();

/// Zero all metrics and discard recorded span events/aggregates. Metric
/// registrations survive. Call at quiescent points; concurrent updates are
/// not lost crash-unsafely, merely attributed to the new epoch.
void reset();

/// JSON metrics report (see docs/observability.md for the schema).
void write_report(std::ostream& os);
[[nodiscard]] bool write_report_file(const std::string& path);

/// Chrome trace_event JSON — load in chrome://tracing or Perfetto.
void write_chrome_trace(std::ostream& os);
[[nodiscard]] bool write_chrome_trace_file(const std::string& path);

/// Human-readable self-time profile of all spans (top of the report).
[[nodiscard]] std::string profile_table();

/// Write the env-configured artifacts (OFTEC_OBS_REPORT / OFTEC_TRACE_FILE),
/// if any. Runs automatically at exit when either variable is set; safe to
/// call earlier (files are simply rewritten at exit).
void flush();

/// Paths resolved from the environment at startup; empty when unset.
[[nodiscard]] std::string report_path_from_env();
[[nodiscard]] std::string trace_path_from_env();

}  // namespace oftec::obs
