// Minimal JSON document model: parse, navigate, serialize.
//
// Exists so the observability layer can emit (and the tooling/tests can
// re-read and validate) machine-readable artifacts without an external
// dependency. Deliberately small:
//   - objects preserve deterministic (sorted) key order via std::map;
//   - numbers are doubles (integral values within 2^53 round-trip exactly
//     and serialize without a decimal point);
//   - non-finite numbers serialize as null (JSON has no inf/nan);
//   - \uXXXX escapes are decoded to UTF-8 (surrogate pairs included).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace oftec::util::json {

class Value;

using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() noexcept : type_(Type::kNull) {}
  Value(bool b) noexcept : type_(Type::kBool), bool_(b) {}
  Value(double v) noexcept : type_(Type::kNumber), number_(v) {}
  Value(int v) noexcept : Value(static_cast<double>(v)) {}
  Value(unsigned v) noexcept : Value(static_cast<double>(v)) {}
  Value(long v) noexcept : Value(static_cast<double>(v)) {}
  Value(unsigned long v) noexcept : Value(static_cast<double>(v)) {}
  Value(long long v) noexcept : Value(static_cast<double>(v)) {}
  Value(unsigned long long v) noexcept : Value(static_cast<double>(v)) {}
  Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Value(std::string_view s) : Value(std::string(s)) {}
  Value(const char* s) : Value(std::string(s)) {}
  Value(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  Value(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  [[nodiscard]] static Value array() { return Value(Array{}); }
  [[nodiscard]] static Value object() { return Value(Object{}); }

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  /// Typed accessors; throw std::logic_error on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Object& as_object();

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Object member insert-or-access (converts a null value to an object).
  Value& operator[](const std::string& key);

  /// Array append (converts a null value to an array).
  void push_back(Value v);

  /// Serialize. indent < 0 → compact single line; otherwise pretty-printed
  /// with `indent` spaces per level.
  void write(std::ostream& os, int indent = -1) const;
  [[nodiscard]] std::string dump(int indent = -1) const;

 private:
  void write_indented(std::ostream& os, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// What to do when an object repeats a key. The default mirrors what the
/// parser has always done (and what most JSON libraries do): the last
/// occurrence wins. Network-facing codecs should reject instead — duplicate
/// keys are a classic smuggling vector when two layers disagree on which
/// copy is authoritative.
enum class DuplicateKeyPolicy {
  kKeepLast,  ///< later occurrences overwrite earlier ones (default)
  kError,     ///< duplicate key is a parse error
};

/// Limits for parsing untrusted input. The defaults are safe for trusted,
/// locally-generated documents (obs reports, test fixtures); anything read
/// off a socket should pass explicit tighter limits.
struct ParseOptions {
  /// Maximum container nesting depth (objects + arrays). Deeply nested
  /// documents otherwise recurse once per level and can exhaust the stack.
  std::size_t max_depth = 256;
  /// Maximum input size in bytes; 0 = unlimited.
  std::size_t max_input_bytes = 0;
  DuplicateKeyPolicy duplicate_keys = DuplicateKeyPolicy::kKeepLast;
};

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Throws std::runtime_error with an offset-annotated
/// message on malformed input or any violated ParseOptions limit.
[[nodiscard]] Value parse(std::string_view text);
[[nodiscard]] Value parse(std::string_view text, const ParseOptions& options);

/// Escape a string body per JSON rules (quotes not included).
[[nodiscard]] std::string escape(std::string_view s);

}  // namespace oftec::util::json
