#include "util/obs.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/fault.h"
#include "util/json.h"

namespace oftec::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_tracing{false};
}  // namespace detail

namespace {

using SteadyClock = std::chrono::steady_clock;

/// Nanoseconds since the first call (process-lifetime epoch for traces).
[[nodiscard]] std::uint64_t now_ns() noexcept {
  static const SteadyClock::time_point t0 = SteadyClock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(SteadyClock::now() -
                                                           t0)
          .count());
}

constexpr std::size_t kChunkSize = 256;         // slots per allocation block
constexpr std::size_t kMaxEventsPerThread = 1u << 16;

/// One allocation block of metric slots. Blocks are never freed or moved
/// once created, so owner threads increment without any lock while the
/// aggregator reads (relaxed) under the registry mutex.
struct Chunk {
  std::atomic<std::uint64_t> slots[kChunkSize];
  Chunk() {
    for (auto& s : slots) s.store(0, std::memory_order_relaxed);
  }
};

/// Per-thread metric storage. Structure (the chunk table) is guarded by the
/// registry mutex; slot contents are atomics.
struct Shard {
  std::uint32_t thread_id = 0;
  std::vector<std::unique_ptr<Chunk>> chunks;

  [[nodiscard]] std::atomic<std::uint64_t>* slot(std::uint32_t index) {
    const std::size_t chunk = index / kChunkSize;
    if (chunk >= chunks.size() || !chunks[chunk]) return nullptr;
    return &chunks[chunk]->slots[index % kChunkSize];
  }
};

struct Event {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

struct OpenSpan {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t child_ns = 0;
};

struct SpanAgg {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
};

/// Per-thread span state. `stack` is owner-only; `events`/`aggregates`/
/// `dropped` are shared with the exporter under `mutex`.
struct TraceBuffer {
  std::uint32_t thread_id = 0;
  std::mutex mutex;
  std::vector<Event> events;
  std::uint64_t dropped = 0;
  std::map<const char*, SpanAgg> aggregates;
  std::vector<OpenSpan> stack;  // owner thread only
};

enum class MetricKind { kCounter, kHistogram };

struct MetricDef {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint32_t slot = 0;   ///< first slot index in every shard
  std::uint32_t width = 1;  ///< slots consumed (histograms: buckets + sum)
  /// Histogram upper bounds; unique_ptr for a stable address handed to the
  /// Histogram handle.
  std::unique_ptr<const std::vector<double>> bounds;
};

struct GaugeDef {
  std::string name;
  std::unique_ptr<std::atomic<double>> cell;
};

struct TlsState;

class Registry {
 public:
  [[nodiscard]] static Registry& instance() {
    // Leaked intentionally: thread-local destructors and atexit hooks may
    // touch the registry after static destruction would have run.
    static Registry* const g = new Registry;
    return *g;
  }

  std::uint32_t register_counter(std::string_view name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return define(name, MetricKind::kCounter, 1, nullptr).slot;
  }

  const MetricDef& register_histogram(std::string_view name,
                                      std::vector<double> bounds) {
    if (bounds.empty()) {
      throw std::invalid_argument("obs::histogram: no bucket bounds");
    }
    for (std::size_t i = 1; i < bounds.size(); ++i) {
      if (!(bounds[i] > bounds[i - 1])) {
        throw std::invalid_argument(
            "obs::histogram: bounds must be strictly increasing");
      }
    }
    // Buckets (bounds + overflow) followed by one sum slot.
    const auto width = static_cast<std::uint32_t>(bounds.size() + 2);
    const std::lock_guard<std::mutex> lock(mutex_);
    return define(name, MetricKind::kHistogram, width,
                  std::make_unique<const std::vector<double>>(
                      std::move(bounds)));
  }

  std::atomic<double>* register_gauge(std::string_view name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = gauge_by_name_.find(name); it != gauge_by_name_.end()) {
      return gauges_[it->second].cell.get();
    }
    GaugeDef def;
    def.name = std::string(name);
    def.cell = std::make_unique<std::atomic<double>>(0.0);
    std::atomic<double>* cell = def.cell.get();
    gauge_by_name_.emplace(def.name, gauges_.size());
    gauges_.push_back(std::move(def));
    return cell;
  }

  /// Slow path of the TLS slot cache: materialize the chunk covering `slot`
  /// in this thread's shard and return the stable cell address.
  std::atomic<std::uint64_t>* materialize_slot(TlsState& tls,
                                               std::uint32_t slot);

  void attach_thread(TlsState& tls);
  void attach_buffer(TlsState& tls);

  [[nodiscard]] Snapshot build_snapshot();
  void reset_all();
  void export_trace(std::ostream& os);

 private:
  const MetricDef& define(std::string_view name, MetricKind kind,
                          std::uint32_t width,
                          std::unique_ptr<const std::vector<double>> bounds) {
    if (const auto it = metric_by_name_.find(name);
        it != metric_by_name_.end()) {
      return *metrics_[it->second];
    }
    auto def = std::make_unique<MetricDef>();
    def->name = std::string(name);
    def->kind = kind;
    def->slot = next_slot_;
    def->width = width;
    def->bounds = std::move(bounds);
    next_slot_ += width;
    metric_by_name_.emplace(def->name, metrics_.size());
    metrics_.push_back(std::move(def));
    return *metrics_.back();
  }

  [[nodiscard]] std::uint64_t sum_slot(std::uint32_t index) {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      if (std::atomic<std::uint64_t>* cell = shard->slot(index)) {
        total += cell->load(std::memory_order_relaxed);
      }
    }
    return total;
  }

  [[nodiscard]] double sum_slot_double(std::uint32_t index) {
    double total = 0.0;
    for (const auto& shard : shards_) {
      if (std::atomic<std::uint64_t>* cell = shard->slot(index)) {
        total += std::bit_cast<double>(cell->load(std::memory_order_relaxed));
      }
    }
    return total;
  }

  std::mutex mutex_;
  // unique_ptr elements: handles capture bounds pointers, which must survive
  // vector growth.
  std::vector<std::unique_ptr<MetricDef>> metrics_;
  std::map<std::string, std::size_t, std::less<>> metric_by_name_;
  std::vector<GaugeDef> gauges_;
  std::map<std::string, std::size_t, std::less<>> gauge_by_name_;
  std::uint32_t next_slot_ = 0;
  // Shards/buffers of every thread that ever reported, kept (shared_ptr)
  // past thread exit so late snapshots still see their contributions.
  std::vector<std::shared_ptr<Shard>> shards_;
  std::vector<std::shared_ptr<TraceBuffer>> buffers_;
  std::uint32_t next_thread_id_ = 0;
  // Snapshot ordering state (see Snapshot::epoch / Snapshot::sequence).
  // Both only move under mutex_, which build_snapshot and reset_all also
  // hold while touching slots — so a snapshot's epoch is exactly the epoch
  // its counter values belong to, even when reset() races a scrape.
  std::uint64_t epoch_ = 0;
  std::uint64_t sequence_ = 0;
};

/// Thread-local handle caching direct slot pointers (index → cell) so the
/// steady-state increment path is branch + load + fetch_add.
struct TlsState {
  std::shared_ptr<Shard> shard;
  std::shared_ptr<TraceBuffer> buffer;
  std::vector<std::atomic<std::uint64_t>*> slot_cache;
};

[[nodiscard]] TlsState& tls_state() {
  thread_local TlsState state;
  return state;
}

void Registry::attach_thread(TlsState& tls) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (tls.shard) return;
  auto shard = std::make_shared<Shard>();
  shard->thread_id = next_thread_id_++;
  shards_.push_back(shard);
  tls.shard = std::move(shard);
}

void Registry::attach_buffer(TlsState& tls) {
  if (!tls.shard) attach_thread(tls);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (tls.buffer) return;
  auto buffer = std::make_shared<TraceBuffer>();
  buffer->thread_id = tls.shard->thread_id;
  buffers_.push_back(buffer);
  tls.buffer = std::move(buffer);
}

std::atomic<std::uint64_t>* Registry::materialize_slot(TlsState& tls,
                                                       std::uint32_t slot) {
  if (!tls.shard) attach_thread(tls);
  const std::lock_guard<std::mutex> lock(mutex_);
  Shard& shard = *tls.shard;
  const std::size_t chunk = slot / kChunkSize;
  if (shard.chunks.size() <= chunk) shard.chunks.resize(chunk + 1);
  if (!shard.chunks[chunk]) shard.chunks[chunk] = std::make_unique<Chunk>();
  std::atomic<std::uint64_t>* cell = shard.slot(slot);
  if (tls.slot_cache.size() <= slot) tls.slot_cache.resize(slot + 1, nullptr);
  tls.slot_cache[slot] = cell;
  return cell;
}

[[nodiscard]] std::atomic<std::uint64_t>& slot_for(std::uint32_t slot) {
  TlsState& tls = tls_state();
  if (slot < tls.slot_cache.size() && tls.slot_cache[slot] != nullptr) {
    return *tls.slot_cache[slot];
  }
  return *Registry::instance().materialize_slot(tls, slot);
}

Snapshot Registry::build_snapshot() {
  Snapshot snap;
  std::map<std::string, SpanAgg> span_totals;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    snap.epoch = epoch_;
    snap.sequence = ++sequence_;
    for (const auto& def : metrics_) {
      if (def->kind == MetricKind::kCounter) {
        snap.counters[def->name] = sum_slot(def->slot);
      } else {
        HistogramSnapshot h;
        h.bounds = *def->bounds;
        const std::size_t buckets = h.bounds.size() + 1;
        h.counts.resize(buckets);
        for (std::size_t b = 0; b < buckets; ++b) {
          h.counts[b] = sum_slot(def->slot + static_cast<std::uint32_t>(b));
          h.count += h.counts[b];
        }
        h.sum =
            sum_slot_double(def->slot + static_cast<std::uint32_t>(buckets));
        snap.histograms.emplace(def->name, std::move(h));
      }
    }
    for (const GaugeDef& g : gauges_) {
      snap.gauges[g.name] = g.cell->load(std::memory_order_relaxed);
    }
    for (const auto& buffer : buffers_) {
      const std::lock_guard<std::mutex> buf_lock(buffer->mutex);
      snap.dropped_events += buffer->dropped;
      for (const auto& [name, agg] : buffer->aggregates) {
        SpanAgg& total = span_totals[name];
        total.count += agg.count;
        total.total_ns += agg.total_ns;
        total.self_ns += agg.self_ns;
      }
    }
  }
  snap.spans.reserve(span_totals.size());
  for (const auto& [name, agg] : span_totals) {
    SpanStats s;
    s.name = name;
    s.count = agg.count;
    s.total_ms = static_cast<double>(agg.total_ns) * 1e-6;
    s.self_ms = static_cast<double>(agg.self_ns) * 1e-6;
    snap.spans.push_back(std::move(s));
  }
  std::sort(snap.spans.begin(), snap.spans.end(),
            [](const SpanStats& a, const SpanStats& b) {
              if (a.self_ms != b.self_ms) return a.self_ms > b.self_ms;
              return a.name < b.name;
            });
  return snap;
}

void Registry::reset_all() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++epoch_;
  for (const auto& shard : shards_) {
    for (const auto& chunk : shard->chunks) {
      if (!chunk) continue;
      for (auto& cell : chunk->slots) cell.store(0, std::memory_order_relaxed);
    }
  }
  for (const GaugeDef& g : gauges_) {
    g.cell->store(0.0, std::memory_order_relaxed);
  }
  for (const auto& buffer : buffers_) {
    const std::lock_guard<std::mutex> buf_lock(buffer->mutex);
    buffer->events.clear();
    buffer->aggregates.clear();
    buffer->dropped = 0;
    // Open-span stacks are owner-private and deliberately untouched: a span
    // closing after reset() reports its full duration into the new epoch.
  }
}

void Registry::export_trace(std::ostream& os) {
  char line[256];
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"oftec\"}}";
  std::uint64_t dropped = 0;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buffer : buffers_) {
    const std::lock_guard<std::mutex> buf_lock(buffer->mutex);
    dropped += buffer->dropped;
    std::snprintf(line, sizeof(line),
                  ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                  "\"tid\":%u,\"args\":{\"name\":\"oftec-thread-%u\"}}",
                  buffer->thread_id, buffer->thread_id);
    os << line;
    for (const Event& e : buffer->events) {
      std::snprintf(line, sizeof(line),
                    ",{\"name\":\"%s\",\"cat\":\"oftec\",\"ph\":\"X\","
                    "\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%u}",
                    util::json::escape(e.name).c_str(),
                    static_cast<double>(e.start_ns) * 1e-3,
                    static_cast<double>(e.dur_ns) * 1e-3, buffer->thread_id);
      os << line;
    }
  }
  os << "],\"otherData\":{\"dropped_events\":" << dropped << "}}\n";
}

// --- span recording (owner-thread paths) -----------------------------------

void span_begin(const char* name) {
  TlsState& tls = tls_state();
  if (!tls.buffer) Registry::instance().attach_buffer(tls);
  tls.buffer->stack.push_back({name, now_ns(), 0});
}

void span_end() {
  const std::uint64_t end = now_ns();
  TraceBuffer& buffer = *tls_state().buffer;
  const OpenSpan top = buffer.stack.back();
  buffer.stack.pop_back();
  const std::uint64_t dur = end - top.start_ns;
  const std::uint64_t self = dur >= top.child_ns ? dur - top.child_ns : 0;
  if (!buffer.stack.empty()) buffer.stack.back().child_ns += dur;
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  SpanAgg& agg = buffer.aggregates[top.name];
  ++agg.count;
  agg.total_ns += dur;
  agg.self_ns += self;
  if (tracing()) {
    if (buffer.events.size() < kMaxEventsPerThread) {
      buffer.events.push_back({top.name, top.start_ns, dur});
    } else {
      ++buffer.dropped;
    }
  }
}

// --- exemplar ring ---------------------------------------------------------

constexpr std::size_t kDefaultExemplarCapacity = 64;

// Injectable failure of the exemplar path itself (OFTEC_FAULT=
// obs.exemplar_ring:rate). A firing site drops the exemplar — observability
// must degrade, never take the request path down with it.
const fault::Site g_fault_exemplar_ring = fault::site("obs.exemplar_ring");

std::atomic<std::uint64_t> g_slow_req_us{0};
std::atomic<std::uint64_t> g_trace_sample{0};
std::atomic<std::uint64_t> g_sample_counter{0};

/// Fixed-capacity drop-oldest ring. `ring` is pre-reserved so the record
/// path never allocates vector storage; `dropped` is atomic so the
/// contention/fault drop path needs no lock at all.
struct ExemplarRingState {
  std::mutex mutex;
  std::vector<Exemplar> ring;
  std::size_t capacity = kDefaultExemplarCapacity;
  std::size_t head = 0;  ///< oldest entry once the ring is full
  std::uint64_t next_seq = 1;
  std::uint64_t captured = 0;
  std::atomic<std::uint64_t> dropped{0};
};

[[nodiscard]] ExemplarRingState& ring_state() {
  // Leaked for the same reason as the Registry: exit-time flushes.
  static ExemplarRingState* const g = [] {
    auto* s = new ExemplarRingState;
    s->ring.reserve(s->capacity);
    return s;
  }();
  return *g;
}

// --- environment wiring ----------------------------------------------------

[[nodiscard]] bool truthy(const char* value) {
  if (value == nullptr) return false;
  std::string v(value);
  for (char& c : v) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return !(v.empty() || v == "0" || v == "false" || v == "off" || v == "no");
}

[[nodiscard]] std::uint64_t env_u64(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return 0;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v, &end, 10);
  return (end != nullptr && *end == '\0') ? static_cast<std::uint64_t>(n) : 0;
}

struct EnvConfig {
  bool enable = false;
  bool trace = false;
  std::string report_path;
  std::string trace_path;
  std::uint64_t slow_req_us = 0;
  std::uint64_t trace_sample = 0;
  std::uint64_t exemplar_cap = 0;  ///< 0 = keep the default
};

[[nodiscard]] const EnvConfig& env_config() {
  static const EnvConfig cfg = [] {
    EnvConfig c;
    c.enable = truthy(std::getenv("OFTEC_OBS"));
    if (const char* p = std::getenv("OFTEC_OBS_REPORT"); p != nullptr && *p) {
      c.report_path = p;
      c.enable = true;
    }
    if (const char* p = std::getenv("OFTEC_TRACE_FILE"); p != nullptr && *p) {
      c.trace_path = p;
      c.enable = true;
      c.trace = true;
    }
    c.slow_req_us = env_u64("OFTEC_SLOW_REQ_US");
    c.trace_sample = env_u64("OFTEC_TRACE_SAMPLE");
    c.exemplar_cap = env_u64("OFTEC_EXEMPLAR_CAP");
    return c;
  }();
  return cfg;
}

/// Applies the environment before main (this TU is always linked when any
/// obs symbol is used) and schedules the exit-time artifact flush.
struct EnvInit {
  EnvInit() {
    const EnvConfig& cfg = env_config();
    if (cfg.enable) detail::g_enabled.store(true, std::memory_order_relaxed);
    if (cfg.trace) detail::g_tracing.store(true, std::memory_order_relaxed);
    if (cfg.slow_req_us != 0) set_slow_request_threshold_us(cfg.slow_req_us);
    if (cfg.trace_sample != 0) set_trace_sample_every(cfg.trace_sample);
    if (cfg.exemplar_cap != 0) {
      set_exemplar_capacity(static_cast<std::size_t>(cfg.exemplar_cap));
    }
    if (!cfg.report_path.empty() || !cfg.trace_path.empty()) {
      std::atexit([] { flush(); });
    }
  }
} g_env_init;

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void set_tracing(bool on) noexcept {
  detail::g_tracing.store(on, std::memory_order_relaxed);
}

void Counter::add(std::uint64_t n) const noexcept {
  if (slot_ == kInvalid || !enabled()) return;
  slot_for(slot_).fetch_add(n, std::memory_order_relaxed);
}

void Gauge::set(double v) const noexcept {
  if (cell_ == nullptr || !enabled()) return;
  cell_->store(v, std::memory_order_relaxed);
}

void Histogram::observe(double v) const noexcept {
  if (bounds_ == nullptr || !enabled()) return;
  const std::vector<double>& bounds = *bounds_;
  std::size_t bucket = 0;
  while (bucket < bounds.size() && v > bounds[bucket]) ++bucket;
  slot_for(slot_ + static_cast<std::uint32_t>(bucket))
      .fetch_add(1, std::memory_order_relaxed);
  // Sum slot holds a double bit pattern; each shard has exactly one writer
  // (its owner thread), so load-add-store is race-free.
  std::atomic<std::uint64_t>& sum =
      slot_for(slot_ + static_cast<std::uint32_t>(bounds.size() + 1));
  const double cur = std::bit_cast<double>(sum.load(std::memory_order_relaxed));
  sum.store(std::bit_cast<std::uint64_t>(cur + v), std::memory_order_relaxed);
}

Counter counter(std::string_view name) {
  return Counter(Registry::instance().register_counter(name));
}

Gauge gauge(std::string_view name) {
  return Gauge(Registry::instance().register_gauge(name));
}

Histogram histogram(std::string_view name, std::vector<double> upper_bounds) {
  const MetricDef& def =
      Registry::instance().register_histogram(name, std::move(upper_bounds));
  return Histogram(def.slot, def.bounds.get());
}

std::vector<double> exponential_bounds(double start, double factor,
                                       std::size_t count) {
  if (!(start > 0.0) || !(factor > 1.0) || count == 0) {
    throw std::invalid_argument("obs::exponential_bounds: bad parameters");
  }
  std::vector<double> bounds(count);
  double v = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds[i] = v;
    v *= factor;
  }
  return bounds;
}

Span::Span(const char* name) noexcept {
  if (!enabled()) return;
  span_begin(name);
  active_ = true;
}

Span::~Span() {
  if (active_) span_end();
}

double HistogramSnapshot::quantile(double p) const noexcept {
  if (count == 0 || counts.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cum += counts[i];
    if (counts[i] == 0 || static_cast<double>(cum) < target) continue;
    if (i >= bounds.size()) {
      // Overflow bucket: there is no upper edge to interpolate toward, so
      // the best defensible estimate clamps to the highest finite bound.
      break;
    }
    const double hi = bounds[i];
    const double lo = i == 0 ? std::min(0.0, hi) : bounds[i - 1];
    const double prev = static_cast<double>(cum - counts[i]);
    const double frac = std::clamp(
        (target - prev) / static_cast<double>(counts[i]), 0.0, 1.0);
    return lo + (hi - lo) * frac;
  }
  return bounds.empty() ? std::numeric_limits<double>::quiet_NaN()
                        : bounds.back();
}

Snapshot delta(const Snapshot& from, const Snapshot& to) {
  // A reset between the two snapshots restarted every stream at zero, so
  // `to` already IS everything accumulated since `from`'s stream ended.
  if (from.epoch != to.epoch) return to;
  Snapshot d;
  d.epoch = to.epoch;
  d.sequence = to.sequence;
  d.gauges = to.gauges;  // last-write-wins; a difference is meaningless
  for (const auto& [name, v] : to.counters) {
    const auto it = from.counters.find(name);
    const std::uint64_t base = it == from.counters.end() ? 0 : it->second;
    d.counters[name] = v >= base ? v - base : 0;  // saturate on torn reads
  }
  for (const auto& [name, h] : to.histograms) {
    HistogramSnapshot dh;
    dh.bounds = h.bounds;
    dh.counts.assign(h.counts.size(), 0);
    const auto it = from.histograms.find(name);
    const HistogramSnapshot* base =
        (it != from.histograms.end() &&
         it->second.counts.size() == h.counts.size())
            ? &it->second
            : nullptr;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      const std::uint64_t b = base ? base->counts[i] : 0;
      dh.counts[i] = h.counts[i] >= b ? h.counts[i] - b : 0;
      dh.count += dh.counts[i];
    }
    dh.sum = base ? h.sum - base->sum : h.sum;
    d.histograms.emplace(name, std::move(dh));
  }
  std::map<std::string, const SpanStats*> from_spans;
  for (const SpanStats& s : from.spans) from_spans.emplace(s.name, &s);
  for (const SpanStats& s : to.spans) {
    SpanStats ds = s;
    if (const auto it = from_spans.find(s.name); it != from_spans.end()) {
      const SpanStats& b = *it->second;
      ds.count = s.count >= b.count ? s.count - b.count : 0;
      ds.total_ms = std::max(0.0, s.total_ms - b.total_ms);
      ds.self_ms = std::max(0.0, s.self_ms - b.self_ms);
    }
    if (ds.count != 0) d.spans.push_back(std::move(ds));
  }
  d.dropped_events = to.dropped_events >= from.dropped_events
                         ? to.dropped_events - from.dropped_events
                         : 0;
  return d;
}

util::json::Value snapshot_json(const Snapshot& snap) {
  util::json::Value root = util::json::Value::object();
  root["epoch"] = util::json::Value(snap.epoch);
  root["sequence"] = util::json::Value(snap.sequence);

  util::json::Value counters = util::json::Value::object();
  for (const auto& [name, value] : snap.counters) {
    counters[name] = util::json::Value(value);
  }
  root["counters"] = std::move(counters);

  util::json::Value gauges = util::json::Value::object();
  for (const auto& [name, value] : snap.gauges) {
    gauges[name] = util::json::Value(value);
  }
  root["gauges"] = std::move(gauges);

  util::json::Value histograms = util::json::Value::object();
  for (const auto& [name, h] : snap.histograms) {
    util::json::Value entry = util::json::Value::object();
    util::json::Value bounds = util::json::Value::array();
    for (const double b : h.bounds) bounds.push_back(util::json::Value(b));
    util::json::Value counts = util::json::Value::array();
    for (const std::uint64_t c : h.counts) {
      counts.push_back(util::json::Value(c));
    }
    entry["bounds"] = std::move(bounds);
    entry["counts"] = std::move(counts);
    entry["count"] = util::json::Value(h.count);
    entry["sum"] = util::json::Value(h.sum);
    histograms[name] = std::move(entry);
  }
  root["histograms"] = std::move(histograms);
  return root;
}

namespace {

/// Prometheus metric-name sanitizer: [a-zA-Z0-9_:] survive, everything else
/// (the registry's dots, mainly) becomes '_'; a leading digit gets a '_'
/// prefix. Registry names are code-controlled, so collisions are a code
/// review problem, not a runtime one.
[[nodiscard]] std::string prom_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

[[nodiscard]] std::string prom_num(double v) {
  char buf[64];
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void write_prometheus(std::ostream& os, const Snapshot& snap) {
  for (const auto& [name, value] : snap.counters) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << "_total counter\n"
       << n << "_total " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " gauge\n" << n << " " << prom_num(value) << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.bounds.size() && i < h.counts.size(); ++i) {
      cum += h.counts[i];
      os << n << "_bucket{le=\"" << prom_num(h.bounds[i]) << "\"} " << cum
         << "\n";
    }
    os << n << "_bucket{le=\"+Inf\"} " << h.count << "\n"
       << n << "_sum " << prom_num(h.sum) << "\n"
       << n << "_count " << h.count << "\n";
    if (h.count > 0) {
      os << "# TYPE " << n << "_quantile gauge\n";
      // Literal labels: %.17g would render 0.99 as 0.98999…, and the label
      // is an identifier scrapers match on, not a measurement.
      constexpr std::pair<const char*, double> kQuantiles[] = {
          {"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}};
      for (const auto& [label, q] : kQuantiles) {
        os << n << "_quantile{q=\"" << label << "\"} "
           << prom_num(h.quantile(q)) << "\n";
      }
    }
  }
}

std::string prometheus_text(const Snapshot& snap) {
  std::ostringstream os;
  write_prometheus(os, snap);
  return os.str();
}

Snapshot snapshot() { return Registry::instance().build_snapshot(); }

void reset() { Registry::instance().reset_all(); }

void write_report(std::ostream& os) {
  const Snapshot snap = snapshot();
  util::json::Value root = snapshot_json(snap);
  root["version"] = util::json::Value(1);
  root["tool"] = util::json::Value("oftec-obs");
  root["enabled"] = util::json::Value(enabled());

  util::json::Value spans = util::json::Value::array();
  for (const SpanStats& s : snap.spans) {
    util::json::Value entry = util::json::Value::object();
    entry["name"] = util::json::Value(s.name);
    entry["count"] = util::json::Value(s.count);
    entry["total_ms"] = util::json::Value(s.total_ms);
    entry["self_ms"] = util::json::Value(s.self_ms);
    spans.push_back(std::move(entry));
  }
  root["spans"] = std::move(spans);
  root["dropped_events"] = util::json::Value(snap.dropped_events);

  root.write(os, 2);
  os << '\n';
}

bool write_report_file(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_report(os);
  return static_cast<bool>(os);
}

void write_chrome_trace(std::ostream& os) {
  Registry::instance().export_trace(os);
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os);
  return static_cast<bool>(os);
}

std::string profile_table() {
  const Snapshot snap = snapshot();
  std::ostringstream os;
  if (snap.spans.empty()) return "";
  os << "obs span profile (ordered by self time):\n";
  char line[160];
  std::snprintf(line, sizeof(line), "  %-40s %10s %12s %12s\n", "span",
                "count", "total [ms]", "self [ms]");
  os << line;
  for (const SpanStats& s : snap.spans) {
    std::snprintf(line, sizeof(line), "  %-40s %10llu %12.2f %12.2f\n",
                  s.name.c_str(), static_cast<unsigned long long>(s.count),
                  s.total_ms, s.self_ms);
    os << line;
  }
  if (snap.dropped_events > 0) {
    os << "  (" << snap.dropped_events
       << " trace events dropped at the per-thread ring cap)\n";
  }
  return os.str();
}

void flush() {
  const EnvConfig& cfg = env_config();
  if (!cfg.report_path.empty()) (void)write_report_file(cfg.report_path);
  if (!cfg.trace_path.empty()) (void)write_chrome_trace_file(cfg.trace_path);
}

std::string report_path_from_env() { return env_config().report_path; }

std::string trace_path_from_env() { return env_config().trace_path; }

// ---------------------------------------------------------------------------
// Slow-request exemplars
// ---------------------------------------------------------------------------

std::uint64_t record_exemplar(Exemplar exemplar) noexcept {
  ExemplarRingState& st = ring_state();
  if (g_fault_exemplar_ring.should_fail()) {
    st.dropped.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  // try_lock, never lock: the caller is the serve hot path. Contention means
  // another thread is recording or a dump is in flight — drop rather than
  // stall a response.
  std::unique_lock<std::mutex> lock(st.mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    st.dropped.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  exemplar.seq = st.next_seq++;
  ++st.captured;
  const std::uint64_t seq = exemplar.seq;
  if (st.ring.size() < st.capacity) {
    st.ring.push_back(std::move(exemplar));  // no alloc: reserved to capacity
  } else {
    st.ring[st.head] = std::move(exemplar);  // drop-oldest
    st.head = (st.head + 1) % st.capacity;
  }
  return seq;
}

std::vector<Exemplar> exemplars() {
  ExemplarRingState& st = ring_state();
  std::lock_guard<std::mutex> lock(st.mutex);
  std::vector<Exemplar> out;
  out.reserve(st.ring.size());
  for (std::size_t i = 0; i < st.ring.size(); ++i) {
    out.push_back(st.ring[(st.head + i) % st.ring.size()]);
  }
  return out;
}

ExemplarRingStats exemplar_ring_stats() {
  ExemplarRingState& st = ring_state();
  std::lock_guard<std::mutex> lock(st.mutex);
  ExemplarRingStats stats;
  stats.captured = st.captured;
  stats.dropped = st.dropped.load(std::memory_order_relaxed);
  stats.capacity = st.capacity;
  return stats;
}

void set_exemplar_capacity(std::size_t capacity) {
  ExemplarRingState& st = ring_state();
  std::lock_guard<std::mutex> lock(st.mutex);
  st.capacity = std::max<std::size_t>(1, capacity);
  st.ring.clear();
  st.ring.reserve(st.capacity);
  st.head = 0;
}

void clear_exemplars() {
  ExemplarRingState& st = ring_state();
  std::lock_guard<std::mutex> lock(st.mutex);
  st.ring.clear();
  st.head = 0;
  st.captured = 0;
  st.dropped.store(0, std::memory_order_relaxed);
}

bool should_capture_exemplar(double total_us) noexcept {
  const std::uint64_t slow = g_slow_req_us.load(std::memory_order_relaxed);
  if (slow != 0 && total_us >= static_cast<double>(slow)) return true;
  const std::uint64_t every = g_trace_sample.load(std::memory_order_relaxed);
  if (every != 0 &&
      g_sample_counter.fetch_add(1, std::memory_order_relaxed) % every == 0) {
    return true;
  }
  return false;
}

std::uint64_t slow_request_threshold_us() noexcept {
  return g_slow_req_us.load(std::memory_order_relaxed);
}

void set_slow_request_threshold_us(std::uint64_t us) noexcept {
  g_slow_req_us.store(us, std::memory_order_relaxed);
}

std::uint64_t trace_sample_every() noexcept {
  return g_trace_sample.load(std::memory_order_relaxed);
}

void set_trace_sample_every(std::uint64_t n) noexcept {
  g_trace_sample.store(n, std::memory_order_relaxed);
}

bool exemplars_active() noexcept {
  return g_slow_req_us.load(std::memory_order_relaxed) != 0 ||
         g_trace_sample.load(std::memory_order_relaxed) != 0;
}

double exemplar_now_us() noexcept {
  return static_cast<double>(now_ns()) * 1e-3;
}

util::json::Value exemplar_trace_json(const std::vector<Exemplar>& exemplars) {
  util::json::Value events = util::json::Value::array();
  for (const Exemplar& ex : exemplars) {
    const auto tid = static_cast<std::int64_t>(ex.seq);
    util::json::Value meta = util::json::Value::object();
    meta["name"] = util::json::Value("thread_name");
    meta["ph"] = util::json::Value("M");
    meta["pid"] = util::json::Value(0);
    meta["tid"] = util::json::Value(tid);
    util::json::Value margs = util::json::Value::object();
    std::string label = ex.trace_id.empty() ? ex.name : ex.trace_id;
    margs["name"] = util::json::Value("trace " + label);
    meta["args"] = std::move(margs);
    events.push_back(std::move(meta));

    util::json::Value root = util::json::Value::object();
    root["name"] = util::json::Value(ex.name.empty() ? "request" : ex.name);
    root["ph"] = util::json::Value("X");
    root["pid"] = util::json::Value(0);
    root["tid"] = util::json::Value(tid);
    root["ts"] = util::json::Value(ex.start_us);
    root["dur"] = util::json::Value(ex.total_us);
    util::json::Value rargs = util::json::Value::object();
    rargs["trace_id"] = util::json::Value(ex.trace_id);
    rargs["seq"] = util::json::Value(ex.seq);
    root["args"] = std::move(rargs);
    events.push_back(std::move(root));

    for (const ExemplarStage& stage : ex.stages) {
      util::json::Value ev = util::json::Value::object();
      ev["name"] = util::json::Value(stage.name);
      ev["ph"] = util::json::Value("X");
      ev["pid"] = util::json::Value(0);
      ev["tid"] = util::json::Value(tid);
      ev["ts"] = util::json::Value(ex.start_us + stage.start_us);
      ev["dur"] = util::json::Value(stage.dur_us);
      events.push_back(std::move(ev));
    }
  }
  util::json::Value root = util::json::Value::object();
  root["displayTimeUnit"] = util::json::Value("ms");
  root["traceEvents"] = std::move(events);
  return root;
}

}  // namespace oftec::obs
