// Fixed-width ASCII table formatter for bench/example console output.
//
// Produces tables in the same row/column layout as the paper's Table 2 and the
// per-benchmark series of Figure 6 so a reader can compare shapes at a glance.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace oftec::util {

/// Column alignment inside a Table.
enum class Align { kLeft, kRight };

/// Accumulates rows of strings and renders them with padded columns and an
/// underlined header.
class Table {
 public:
  /// Define the columns. Must be called before add_row.
  void set_header(std::vector<std::string> columns,
                  std::vector<Align> aligns = {});

  /// Append a row; arity must match the header.
  void add_row(std::vector<std::string> fields);

  /// Render to `os`.
  void print(std::ostream& os) const;

  /// Render to a string.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace oftec::util
