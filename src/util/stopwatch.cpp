#include "util/stopwatch.h"

namespace oftec::util {

Stopwatch::Stopwatch() noexcept : start_(std::chrono::steady_clock::now()) {}

void Stopwatch::reset() noexcept { start_ = std::chrono::steady_clock::now(); }

double Stopwatch::elapsed_ms() const noexcept {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(now - start_).count();
}

double Stopwatch::elapsed_s() const noexcept { return elapsed_ms() / 1e3; }

}  // namespace oftec::util
