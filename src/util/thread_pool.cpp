#include "util/thread_pool.h"

#include <chrono>
#include <cstdlib>
#include <system_error>

#include "util/fault.h"
#include "util/log.h"
#include "util/obs.h"

namespace oftec::util {

namespace {

/// True while the current thread is inside a parallel_for body of some pool;
/// nested calls then run inline instead of deadlocking on the job slot.
thread_local bool t_inside_pool_body = false;

const obs::Counter g_obs_jobs = obs::counter("thread_pool.jobs");
const obs::Counter g_obs_tasks = obs::counter("thread_pool.tasks");
const obs::Counter g_obs_steals = obs::counter("thread_pool.steals");
const obs::Counter g_obs_inline_tasks = obs::counter("thread_pool.inline_tasks");
const obs::Gauge g_obs_queue_depth = obs::gauge("thread_pool.queue_depth");
const obs::Histogram g_obs_task_ms =
    obs::histogram("thread_pool.task_ms", obs::exponential_bounds(0.01, 4.0, 10));

}  // namespace

std::size_t ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("OFTEC_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t threads) {
  static const fault::Site spawn_fail = fault::site("thread_pool.spawn_fail");
  if (threads == 0) threads = default_thread_count();
  workers_.reserve(threads - 1);
  for (std::size_t id = 1; id < threads; ++id) {
    // A worker that fails to start (injected, or a real resource-exhaustion
    // std::system_error) leaves a smaller pool; parallel_for stays correct at
    // any worker count, including zero, so degrade rather than abort.
    if (spawn_fail.should_fail()) {
      log::warn("thread_pool: worker ", id, " failed to start (injected); ",
                "continuing with a smaller pool");
      continue;
    }
    try {
      workers_.emplace_back([this, id] { worker_loop(id); });
    } catch (const std::system_error& e) {
      log::warn("thread_pool: worker ", id, " failed to start (", e.what(),
                "); continuing with ", workers_.size(), " workers");
      break;
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::pop_or_steal(Job& job, std::size_t self, std::size_t& index) {
  // Own deque: front (preserves block locality).
  {
    WorkerQueue& own = *job.queues[self];
    const std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.indices.empty()) {
      index = own.indices.front();
      own.indices.pop_front();
      return true;
    }
  }
  // Steal: back of the next non-empty victim.
  const std::size_t participants = job.queues.size();
  for (std::size_t hop = 1; hop < participants; ++hop) {
    WorkerQueue& victim = *job.queues[(self + hop) % participants];
    const std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.indices.empty()) {
      index = victim.indices.back();
      victim.indices.pop_back();
      g_obs_steals.add();
      return true;
    }
  }
  return false;
}

void ThreadPool::participate(Job& job, std::size_t self) {
  std::size_t index = 0;
  while (pop_or_steal(job, self, index)) {
    if (!job.cancelled.load(std::memory_order_relaxed)) {
      const bool timed = obs::enabled();
      const auto start = timed ? std::chrono::steady_clock::now()
                               : std::chrono::steady_clock::time_point{};
      t_inside_pool_body = true;
      try {
        (*job.body)(index);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(job.error_mutex);
          if (!job.error) job.error = std::current_exception();
        }
        job.cancelled.store(true, std::memory_order_relaxed);
      }
      t_inside_pool_body = false;
      if (timed) {
        g_obs_tasks.add();
        g_obs_task_ms.observe(std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - start)
                                  .count());
      }
    }
    job.remaining.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::worker_loop(std::size_t worker_id) {
  std::uint64_t seen = 0;
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_cv_.wait(lock,
                    [&] { return stopping_ || (job_ && job_seq_ != seen); });
      if (stopping_) return;
      job = job_;
      seen = job_seq_;
    }
    participate(*job, worker_id);
    if (job->remaining.load(std::memory_order_acquire) == 0) {
      // Bridge through the mutex so a submitter that read a stale count
      // under the lock is guaranteed to be blocked before this notify.
      { const std::lock_guard<std::mutex> lock(mutex_); }
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  // Inline paths: single-threaded pool, tiny batch, or a nested call from
  // inside another parallel_for body (worker threads are all busy then).
  if (workers_.empty() || count == 1 || t_inside_pool_body) {
    g_obs_inline_tasks.add(count);
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  const std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  const std::size_t participants = workers_.size() + 1;
  g_obs_jobs.add();
  g_obs_queue_depth.set(static_cast<double>(count));

  auto job = std::make_shared<Job>();
  job->body = &body;
  job->remaining.store(count, std::memory_order_relaxed);
  job->queues.reserve(participants);
  for (std::size_t p = 0; p < participants; ++p) {
    job->queues.push_back(std::make_unique<WorkerQueue>());
  }
  // Deal contiguous blocks so neighbours (which tend to cost alike) start on
  // the same worker; stealing rebalances the tails.
  for (std::size_t p = 0; p < participants; ++p) {
    const std::size_t lo = count * p / participants;
    const std::size_t hi = count * (p + 1) / participants;
    for (std::size_t i = lo; i < hi; ++i) {
      job->queues[p]->indices.push_back(i);
    }
  }

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    ++job_seq_;
  }
  wake_cv_.notify_all();

  participate(*job, /*self=*/0);

  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return job->remaining.load(std::memory_order_acquire) == 0;
    });
    job_.reset();
  }

  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace oftec::util
