#include "util/log.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

namespace oftec::log {

namespace {

constexpr int kPrefixTimestamp = 1;
constexpr int kPrefixThreadId = 2;

[[nodiscard]] std::string lowercase(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

[[nodiscard]] Level initial_level() noexcept {
  const char* env = std::getenv("OFTEC_LOG_LEVEL");
  if (env == nullptr) return Level::kWarn;
  return detail::parse_level(env, Level::kWarn);
}

[[nodiscard]] int initial_prefix() noexcept {
  const char* env = std::getenv("OFTEC_LOG_PREFIX");
  if (env == nullptr) return 0;
  int bits = 0;
  const std::string spec = lowercase(env);
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t end = spec.find_first_of(", ", start);
    const std::string_view token =
        std::string_view(spec).substr(start, end == std::string::npos
                                                 ? std::string::npos
                                                 : end - start);
    if (token == "time" || token == "timestamp") bits |= kPrefixTimestamp;
    if (token == "tid" || token == "thread") bits |= kPrefixThreadId;
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return bits;
}

std::atomic<Level> g_level{initial_level()};
std::atomic<int> g_prefix{initial_prefix()};
std::mutex g_mutex;

// File sink state, guarded by g_mutex (same lock as line emission, so a
// sink swap never splits a line between files).
std::FILE* g_file = nullptr;
std::string& file_path_storage() {
  static std::string path;
  return path;
}

struct EnvFileSinkInit {
  EnvFileSinkInit() {
    if (const char* env = std::getenv("OFTEC_LOG_FILE");
        env != nullptr && *env != '\0') {
      (void)set_file(env);
    }
  }
} g_env_file_sink_init;

/// Small sequential thread id (first-use order), easier to read in logs than
/// the opaque std::thread::id hash.
[[nodiscard]] unsigned sequential_thread_id() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

[[nodiscard]] const char* tag(Level lvl) noexcept {
  switch (lvl) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo:  return "INFO ";
    case Level::kWarn:  return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff:   return "OFF  ";
  }
  return "?????";
}

}  // namespace

namespace detail {

Level parse_level(std::string_view text, Level fallback) noexcept {
  const std::string name = lowercase(text);
  if (name == "debug" || name == "0") return Level::kDebug;
  if (name == "info" || name == "1") return Level::kInfo;
  if (name == "warn" || name == "warning" || name == "2") return Level::kWarn;
  if (name == "error" || name == "3") return Level::kError;
  if (name == "off" || name == "none" || name == "4") return Level::kOff;
  return fallback;
}

std::string format_prefix(PrefixOptions options) {
  std::string out;
  if (options.timestamp) {
    const auto now = std::chrono::system_clock::now();
    const std::time_t secs = std::chrono::system_clock::to_time_t(now);
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        now.time_since_epoch())
                        .count() %
                    1000;
    std::tm tm{};
#if defined(_WIN32)
    localtime_s(&tm, &secs);
#else
    localtime_r(&secs, &tm);
#endif
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d.%03d ", tm.tm_hour,
                  tm.tm_min, tm.tm_sec, static_cast<int>(ms));
    out += buf;
  }
  if (options.thread_id) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "t%02u ", sequential_thread_id());
    out += buf;
  }
  return out;
}

}  // namespace detail

void set_level(Level level) noexcept { g_level.store(level, std::memory_order_relaxed); }

Level level() noexcept { return g_level.load(std::memory_order_relaxed); }

bool enabled(Level lvl) noexcept {
  return static_cast<int>(lvl) >= static_cast<int>(level());
}

void set_prefix(PrefixOptions options) noexcept {
  g_prefix.store((options.timestamp ? kPrefixTimestamp : 0) |
                     (options.thread_id ? kPrefixThreadId : 0),
                 std::memory_order_relaxed);
}

PrefixOptions prefix() noexcept {
  const int bits = g_prefix.load(std::memory_order_relaxed);
  return PrefixOptions{(bits & kPrefixTimestamp) != 0,
                       (bits & kPrefixThreadId) != 0};
}

bool set_file(const std::string& path) {
  std::FILE* next = std::fopen(path.c_str(), "a");
  const std::lock_guard<std::mutex> lock(g_mutex);
  if (g_file != nullptr) std::fclose(g_file);
  g_file = next;
  file_path_storage() = next != nullptr ? path : std::string();
  return next != nullptr;
}

void close_file() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  if (g_file != nullptr) std::fclose(g_file);
  g_file = nullptr;
  file_path_storage().clear();
}

std::string file_path() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  return file_path_storage();
}

void write(Level lvl, std::string_view msg) {
  if (!enabled(lvl)) return;
  const std::string pre = detail::format_prefix(prefix());
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "%s[oftec %s] %.*s\n", pre.c_str(), tag(lvl),
               static_cast<int>(msg.size()), msg.data());
  if (g_file != nullptr) {
    std::fprintf(g_file, "%s[oftec %s] %.*s\n", pre.c_str(), tag(lvl),
                 static_cast<int>(msg.size()), msg.data());
    std::fflush(g_file);
  }
}

}  // namespace oftec::log
