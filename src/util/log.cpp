#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace oftec::log {

namespace {

std::atomic<Level> g_level{Level::kWarn};
std::mutex g_mutex;

[[nodiscard]] const char* tag(Level lvl) noexcept {
  switch (lvl) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo:  return "INFO ";
    case Level::kWarn:  return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff:   return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_level(Level level) noexcept { g_level.store(level, std::memory_order_relaxed); }

Level level() noexcept { return g_level.load(std::memory_order_relaxed); }

bool enabled(Level lvl) noexcept {
  return static_cast<int>(lvl) >= static_cast<int>(level());
}

void write(Level lvl, std::string_view msg) {
  if (!enabled(lvl)) return;
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[oftec %s] %.*s\n", tag(lvl),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace oftec::log
