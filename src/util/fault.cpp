#include "util/fault.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "util/log.h"
#include "util/strings.h"

namespace oftec::fault {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

/// SplitMix64 — tiny, full-period, and statistically solid for rate tests.
[[nodiscard]] std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct ArmedPattern {
  std::string pattern;
  std::uint64_t threshold = 0;
  std::uint64_t seed = 0;
};

/// Sites live forever once registered (handles hold raw pointers), matching
/// the obs registry's lifetime model.
struct Registry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<detail::SiteState>, std::less<>> sites;
  std::vector<ArmedPattern> patterns;  ///< latest spec wins per pattern

  void refresh_armed_flag() {
    bool any = false;
    for (const auto& [name, state] : sites) {
      any = any || state->threshold.load(std::memory_order_relaxed) != 0;
    }
    // A pattern with no matching site yet still counts: the site may
    // register later and must come up armed without a stale global flag.
    for (const ArmedPattern& p : patterns) any = any || p.threshold != 0;
    detail::g_armed.store(any, std::memory_order_relaxed);
  }
};

Registry& registry() {
  static Registry* r = new Registry();  // never destroyed (static-init safe)
  return *r;
}

[[nodiscard]] bool matches(std::string_view pattern, std::string_view name) {
  if (pattern == "*") return true;
  if (!pattern.empty() && pattern.back() == '*') {
    return name.substr(0, pattern.size() - 1) ==
           pattern.substr(0, pattern.size() - 1);
  }
  return pattern == name;
}

[[nodiscard]] std::uint64_t threshold_of(double rate) noexcept {
  if (!(rate > 0.0)) return 0;
  if (rate >= 1.0) return ~0ull;
  return static_cast<std::uint64_t>(
      std::ldexp(std::min(std::max(rate, 0.0), 1.0), 64));
}

void apply_env_once() {
  static const bool applied = [] {
    if (const char* spec = std::getenv("OFTEC_FAULT");
        spec != nullptr && *spec != '\0') {
      if (!apply_spec(spec)) {
        log::warn("fault: malformed OFTEC_FAULT entry in \"", spec,
                  "\" (expected site:rate[:seed],...)");
      }
    }
    return true;
  }();
  (void)applied;
}

struct EnvInit {
  EnvInit() { apply_env_once(); }
} g_env_init;

}  // namespace

namespace detail {

bool SiteState::decide() noexcept {
  const std::uint64_t t = threshold.load(std::memory_order_relaxed);
  if (t == 0) return false;
  const std::uint64_t n = calls.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t s = seed.load(std::memory_order_relaxed);
  const bool fire = t == ~0ull || mix64(s ^ (n * 0x9e3779b97f4a7c15ull)) < t;
  if (fire) fires.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

}  // namespace detail

Site site(std::string_view name) {
  apply_env_once();  // robust against static-init ordering across TUs
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.sites.find(name);
  if (it == r.sites.end()) {
    auto state = std::make_unique<detail::SiteState>();
    state->name = std::string(name);
    // Late registration: honor patterns armed before this site existed.
    for (const ArmedPattern& p : r.patterns) {
      if (matches(p.pattern, name)) {
        state->threshold.store(p.threshold, std::memory_order_relaxed);
        state->seed.store(p.seed, std::memory_order_relaxed);
      }
    }
    it = r.sites.emplace(std::string(name), std::move(state)).first;
  }
  return Site(it->second.get());
}

std::size_t arm(std::string_view pattern, double rate, std::uint64_t seed) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const std::uint64_t threshold = threshold_of(rate);
  std::size_t matched = 0;
  for (const auto& [name, state] : r.sites) {
    if (!matches(pattern, name)) continue;
    state->threshold.store(threshold, std::memory_order_relaxed);
    state->seed.store(seed, std::memory_order_relaxed);
    ++matched;
  }
  // Remember for later registrations; replace an identical pattern in place.
  const auto it = std::find_if(
      r.patterns.begin(), r.patterns.end(),
      [&](const ArmedPattern& p) { return p.pattern == pattern; });
  if (it != r.patterns.end()) {
    it->threshold = threshold;
    it->seed = seed;
  } else {
    r.patterns.push_back({std::string(pattern), threshold, seed});
  }
  r.refresh_armed_flag();
  return matched;
}

void disarm_all() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& [name, state] : r.sites) {
    state->threshold.store(0, std::memory_order_relaxed);
  }
  r.patterns.clear();
  detail::g_armed.store(false, std::memory_order_relaxed);
}

void reset_counters() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& [name, state] : r.sites) {
    state->calls.store(0, std::memory_order_relaxed);
    state->fires.store(0, std::memory_order_relaxed);
  }
}

bool apply_spec(std::string_view spec_list) {
  bool ok = true;
  for (const std::string& entry : util::split(spec_list, ',')) {
    const std::string_view trimmed = util::trim(entry);
    if (trimmed.empty()) continue;
    const std::vector<std::string> parts = util::split(trimmed, ':');
    if (parts.size() < 2 || parts.size() > 3 || parts[0].empty()) {
      ok = false;
      continue;
    }
    double rate = 0.0;
    std::uint64_t seed = 1;
    try {
      rate = std::stod(parts[1]);
      if (parts.size() == 3) seed = std::stoull(parts[2]);
    } catch (const std::exception&) {
      ok = false;
      continue;
    }
    if (!(rate >= 0.0) || rate > 1.0) {
      ok = false;
      continue;
    }
    arm(util::trim(parts[0]), rate, seed);
  }
  return ok;
}

std::vector<SiteStats> stats() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<SiteStats> out;
  out.reserve(r.sites.size());
  for (const auto& [name, state] : r.sites) {
    SiteStats s;
    s.name = name;
    const std::uint64_t t = state->threshold.load(std::memory_order_relaxed);
    s.rate = t == ~0ull ? 1.0 : std::ldexp(static_cast<double>(t), -64);
    s.seed = state->seed.load(std::memory_order_relaxed);
    s.calls = state->calls.load(std::memory_order_relaxed);
    s.fires = state->fires.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

std::uint64_t fires(std::string_view name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.sites.find(name);
  return it == r.sites.end()
             ? 0
             : it->second->fires.load(std::memory_order_relaxed);
}

}  // namespace oftec::fault
