#include "util/table.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace oftec::util {

void Table::set_header(std::vector<std::string> columns,
                       std::vector<Align> aligns) {
  if (!rows_.empty()) {
    throw std::logic_error("Table: header must be set before rows");
  }
  if (!aligns.empty() && aligns.size() != columns.size()) {
    throw std::invalid_argument("Table: aligns arity mismatch");
  }
  header_ = std::move(columns);
  if (aligns.empty()) {
    // Default: first column left (labels), the rest right (numbers).
    aligns_.assign(header_.size(), Align::kRight);
    if (!aligns_.empty()) aligns_.front() = Align::kLeft;
  } else {
    aligns_ = std::move(aligns);
  }
}

void Table::add_row(std::vector<std::string> fields) {
  if (fields.size() != header_.size()) {
    throw std::invalid_argument("Table: row arity mismatch");
  }
  rows_.push_back(std::move(fields));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) os << "  ";
      const std::size_t pad = widths[i] - row[i].size();
      if (aligns_[i] == Align::kRight) os << std::string(pad, ' ');
      os << row[i];
      if (aligns_[i] == Align::kLeft) os << std::string(pad, ' ');
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w;
  total += header_.empty() ? 0 : 2 * (header_.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace oftec::util
