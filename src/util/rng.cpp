#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace oftec::util {

namespace {

[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // Use the top 53 bits for a uniformly distributed double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Rejection-free modulo is fine here: n is tiny relative to 2^64 in all
  // library uses, so the bias is negligible for workload synthesis.
  return next_u64() % n;
}

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  // Box–Muller transform on two uniforms; avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  spare_ = radius * std::sin(angle);
  has_spare_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

}  // namespace oftec::util
