// Deterministic pseudo-random number generation (xoshiro256**).
//
// Workload synthesis must be reproducible run-to-run and platform-to-platform,
// so the library carries its own small generator instead of relying on
// implementation-defined std::default_random_engine behaviour.
#pragma once

#include <array>
#include <cstdint>

namespace oftec::util {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm),
/// seeded via splitmix64 so any 64-bit seed yields a well-mixed state.
class Rng {
 public:
  /// Construct from a 64-bit seed. The same seed always produces the same
  /// sequence.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Next raw 64-bit value.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Standard normal deviate (Box–Muller; one value per call, spare cached).
  [[nodiscard]] double normal() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace oftec::util
