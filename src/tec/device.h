// Thermoelectric cooler device physics (paper Sec. 2, Eqs. 1–3).
//
// One "TEC unit" is a thin-film module with a nominal footprint; the chip is
// tiled with such units wired electrically in series (same I_TEC everywhere)
// and thermally in parallel. All classic Peltier-device figures of merit
// (optimal current, ΔT_max, COP) are provided both because OFTEC's tests use
// them as invariants and because they are useful to downstream users sizing a
// deployment.
#pragma once

namespace oftec::tec {

/// Parameters of one TEC unit. Defaults model a superlattice thin-film unit
/// (Chowdhury et al., Nat. Nanotech. 2009 scale) with a 1 mm² footprint.
struct TecDeviceParams {
  double seebeck = 0.0025;        ///< α: module Seebeck coefficient [V/K]
  double resistance = 0.04;       ///< R: electrical resistance [Ω]
  double conductance = 0.06;      ///< K: thermal conductance [W/K]
  double max_current = 5.0;       ///< damage threshold I_TEC,max [A]
  double footprint = 1.0e-6;      ///< device area [m²]
  double thickness = 100.0e-6;    ///< TEC layer thickness [m]

  /// Effective vertical thermal conductivity of the TEC layer [W/(m·K)]
  /// implied by K, thickness, and footprint: k = K·t/A. Used to model the
  /// TEC layer as a conduction layer in no-current regions and to compute
  /// the paper's "boosted TIM1" baseline fairness rule.
  [[nodiscard]] double layer_conductivity() const noexcept {
    return conductance * thickness / footprint;
  }

  /// Figure of merit Z = α²/(R·K) [1/K].
  [[nodiscard]] double figure_of_merit() const noexcept {
    return seebeck * seebeck / (resistance * conductance);
  }

  /// Throws std::invalid_argument if any parameter is non-physical.
  void validate() const;
};

/// Heat absorbed per unit time at the cold side (Eq. 1 with N = 1):
///   q̇_c = α·T_c·I − K·(T_h − T_c) − ½·R·I².
[[nodiscard]] double cold_side_heat(const TecDeviceParams& p, double t_cold,
                                    double t_hot, double current) noexcept;

/// Heat released per unit time at the hot side (Eq. 2 with N = 1):
///   q̇_h = α·T_h·I − K·(T_h − T_c) + ½·R·I².
[[nodiscard]] double hot_side_heat(const TecDeviceParams& p, double t_cold,
                                   double t_hot, double current) noexcept;

/// Electrical power drawn by the device (Eq. 3 with N = 1):
///   P = q̇_h − q̇_c = α·ΔT·I + R·I².
[[nodiscard]] double electrical_power(const TecDeviceParams& p, double t_cold,
                                      double t_hot, double current) noexcept;

/// Coefficient of performance q̇_c / P. Returns 0 when P ≤ 0.
[[nodiscard]] double cop(const TecDeviceParams& p, double t_cold, double t_hot,
                         double current) noexcept;

/// Current maximizing q̇_c at fixed temperatures: I_opt = α·T_c / R.
[[nodiscard]] double max_cooling_current(const TecDeviceParams& p,
                                         double t_cold) noexcept;

/// Largest sustainable temperature difference at zero heat load:
/// ΔT_max = ½·Z·T_c².
[[nodiscard]] double max_delta_t(const TecDeviceParams& p,
                                 double t_cold) noexcept;

}  // namespace oftec::tec
