#include "tec/device.h"

#include <stdexcept>

namespace oftec::tec {

void TecDeviceParams::validate() const {
  if (seebeck <= 0.0) {
    throw std::invalid_argument("TecDeviceParams: seebeck must be > 0");
  }
  if (resistance <= 0.0) {
    throw std::invalid_argument("TecDeviceParams: resistance must be > 0");
  }
  if (conductance <= 0.0) {
    throw std::invalid_argument("TecDeviceParams: conductance must be > 0");
  }
  if (max_current <= 0.0) {
    throw std::invalid_argument("TecDeviceParams: max_current must be > 0");
  }
  if (footprint <= 0.0 || thickness <= 0.0) {
    throw std::invalid_argument("TecDeviceParams: geometry must be positive");
  }
}

double cold_side_heat(const TecDeviceParams& p, double t_cold, double t_hot,
                      double current) noexcept {
  const double delta_t = t_hot - t_cold;
  return p.seebeck * t_cold * current - p.conductance * delta_t -
         0.5 * p.resistance * current * current;
}

double hot_side_heat(const TecDeviceParams& p, double t_cold, double t_hot,
                     double current) noexcept {
  const double delta_t = t_hot - t_cold;
  return p.seebeck * t_hot * current - p.conductance * delta_t +
         0.5 * p.resistance * current * current;
}

double electrical_power(const TecDeviceParams& p, double t_cold, double t_hot,
                        double current) noexcept {
  const double delta_t = t_hot - t_cold;
  return p.seebeck * delta_t * current + p.resistance * current * current;
}

double cop(const TecDeviceParams& p, double t_cold, double t_hot,
           double current) noexcept {
  const double power = electrical_power(p, t_cold, t_hot, current);
  if (power <= 0.0) return 0.0;
  return cold_side_heat(p, t_cold, t_hot, current) / power;
}

double max_cooling_current(const TecDeviceParams& p, double t_cold) noexcept {
  return p.seebeck * t_cold / p.resistance;
}

double max_delta_t(const TecDeviceParams& p, double t_cold) noexcept {
  return 0.5 * p.figure_of_merit() * t_cold * t_cold;
}

}  // namespace oftec::tec
