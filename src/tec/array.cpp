#include "tec/array.h"

#include <stdexcept>

namespace oftec::tec {

TecArray::TecArray(TecDeviceParams params, std::vector<bool> coverage,
                   double cell_area)
    : params_(params) {
  params_.validate();
  if (cell_area <= 0.0) {
    throw std::invalid_argument("TecArray: cell_area must be positive");
  }
  const double m = cell_area / params_.footprint;
  cells_.reserve(coverage.size());
  for (const bool covered : coverage) {
    CellTec cell;
    if (covered) {
      cell.covered = true;
      cell.multiplier = m;
      cell.seebeck = m * params_.seebeck;
      cell.resistance = m * params_.resistance;
      cell.conductance = m * params_.conductance;
    }
    cells_.push_back(cell);
  }
}

const CellTec& TecArray::cell(std::size_t i) const {
  if (i >= cells_.size()) throw std::out_of_range("TecArray::cell");
  return cells_[i];
}

std::size_t TecArray::covered_cell_count() const noexcept {
  std::size_t n = 0;
  for (const CellTec& c : cells_) n += c.covered ? 1 : 0;
  return n;
}

double TecArray::total_units() const noexcept {
  double n = 0.0;
  for (const CellTec& c : cells_) n += c.multiplier;
  return n;
}

double TecArray::electrical_power(const std::vector<double>& t_cold,
                                  const std::vector<double>& t_hot,
                                  double current) const {
  if (t_cold.size() != cells_.size() || t_hot.size() != cells_.size()) {
    throw std::invalid_argument("TecArray::electrical_power: arity mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const CellTec& c = cells_[i];
    if (!c.covered) continue;
    const double delta_t = t_hot[i] - t_cold[i];
    acc += c.seebeck * delta_t * current + c.resistance * current * current;
  }
  return acc;
}

double TecArray::total_cold_heat(const std::vector<double>& t_cold,
                                 const std::vector<double>& t_hot,
                                 double current) const {
  if (t_cold.size() != cells_.size() || t_hot.size() != cells_.size()) {
    throw std::invalid_argument("TecArray::total_cold_heat: arity mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const CellTec& c = cells_[i];
    if (!c.covered) continue;
    const double delta_t = t_hot[i] - t_cold[i];
    acc += c.seebeck * t_cold[i] * current - c.conductance * delta_t -
           0.5 * c.resistance * current * current;
  }
  return acc;
}

}  // namespace oftec::tec
