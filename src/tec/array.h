// TEC array deployment over a thermal grid.
//
// The chip surface is tiled with TEC units, one tile per covered grid cell,
// all wired electrically in series (every unit carries the same I_TEC,
// Sec. 6.1). A cell of area A holds m = A / footprint units; m units in
// series on one cell scale α, K, and R linearly (thermally parallel,
// electrically series), which is exactly the N-multiplier of Eqs. (1)–(2).
#pragma once

#include <cstddef>
#include <vector>

#include "tec/device.h"

namespace oftec::tec {

/// Per-cell effective device parameters (unit parameters times the cell's
/// device multiplier m).
struct CellTec {
  bool covered = false;
  double multiplier = 0.0;  ///< m: number of units on this cell (fractional ok)
  double seebeck = 0.0;     ///< m·α  [V/K]
  double resistance = 0.0;  ///< m·R  [Ω]
  double conductance = 0.0; ///< m·K  [W/K]
};

class TecArray {
 public:
  /// Deploy units on the cells flagged in `coverage`; every covered cell has
  /// area `cell_area` [m²].
  TecArray(TecDeviceParams params, std::vector<bool> coverage,
           double cell_area);

  [[nodiscard]] const TecDeviceParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return cells_.size();
  }
  [[nodiscard]] const CellTec& cell(std::size_t i) const;

  /// Number of covered cells.
  [[nodiscard]] std::size_t covered_cell_count() const noexcept;

  /// Total device count N = Σ m over covered cells.
  [[nodiscard]] double total_units() const noexcept;

  /// Total electrical power at driving current `current` given per-cell
  /// cold/hot temperatures (Eq. 3 summed over the array). Vectors are indexed
  /// by cell; entries for uncovered cells are ignored.
  [[nodiscard]] double electrical_power(const std::vector<double>& t_cold,
                                        const std::vector<double>& t_hot,
                                        double current) const;

  /// Total heat absorbed at the cold sides (Eq. 1 summed over the array).
  [[nodiscard]] double total_cold_heat(const std::vector<double>& t_cold,
                                       const std::vector<double>& t_hot,
                                       double current) const;

 private:
  TecDeviceParams params_;
  std::vector<CellTec> cells_;
};

}  // namespace oftec::tec
