#include "core/problems.h"

#include <stdexcept>

namespace oftec::core {

CoolingProblem::CoolingProblem(const CoolingSystem& system, Objective objective,
                               bool temperature_constraint, double strictness,
                               double t_max_override)
    : system_(&system),
      objective_(objective),
      temperature_constraint_(temperature_constraint),
      strictness_(strictness),
      t_max_(t_max_override > 0.0 ? t_max_override : system.t_max()) {
  if (system.has_tec()) {
    bounds_.lower = {0.0, 0.0};
    bounds_.upper = {system.omega_max(), system.current_max()};
  } else {
    bounds_.lower = {0.0};
    bounds_.upper = {system.omega_max()};
  }
}

std::size_t CoolingProblem::dimension() const {
  return bounds_.lower.size();
}

std::size_t CoolingProblem::constraint_count() const {
  return temperature_constraint_ ? 1 : 0;
}

const opt::Bounds& CoolingProblem::bounds() const { return bounds_; }

double CoolingProblem::omega_of(const la::Vector& x) const {
  if (x.size() != dimension()) {
    throw std::invalid_argument("CoolingProblem: bad decision vector");
  }
  return x[0];
}

double CoolingProblem::current_of(const la::Vector& x) const {
  if (x.size() != dimension()) {
    throw std::invalid_argument("CoolingProblem: bad decision vector");
  }
  return dimension() == 2 ? x[1] : 0.0;
}

double CoolingProblem::objective(const la::Vector& x) const {
  const Evaluation& ev = system_->evaluate(omega_of(x), current_of(x));
  return objective_ == Objective::kCoolingPower ? ev.cooling_power()
                                                : ev.max_chip_temperature;
}

la::Vector CoolingProblem::constraints(const la::Vector& x) const {
  if (!temperature_constraint_) return {};
  const Evaluation& ev = system_->evaluate(omega_of(x), current_of(x));
  return {ev.max_chip_temperature - (t_max_ - strictness_)};
}

la::Vector CoolingProblem::midpoint() const {
  la::Vector x(dimension());
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.5 * (bounds_.lower[i] + bounds_.upper[i]);
  }
  return x;
}

}  // namespace oftec::core
