#include "core/cooling_system.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/obs.h"

namespace oftec::core {

namespace {

const obs::Counter g_obs_evaluations = obs::counter("cooling.evaluations");
const obs::Counter g_obs_cache_hits = obs::counter("cooling.cache_hits");
const obs::Gauge g_obs_cache_hit_rate = obs::gauge("cooling.eval_cache_hit_rate");

}  // namespace

double Evaluation::cooling_power() const noexcept {
  if (runaway) return std::numeric_limits<double>::infinity();
  return power.total();
}

Evaluation make_evaluation(const thermal::ThermalModel& model,
                           const thermal::SteadyResult& result, double omega) {
  Evaluation ev;
  ev.status = result.status;
  if (result.runaway || !result.converged) {
    ev.runaway = true;
    ev.max_chip_temperature = std::numeric_limits<double>::infinity();
  } else {
    ev.max_chip_temperature = result.max_chip_temperature;
    ev.power.leakage = result.leakage_power;
    ev.power.tec = result.tec_power;
    ev.power.fan = model.config().fan.power(omega);
  }
  ev.solver_iterations = result.iterations;
  return ev;
}

CoolingSystem::CoolingSystem(const floorplan::Floorplan& fp,
                             const power::PowerMap& dynamic_power,
                             const power::LeakageModel& leakage,
                             Config config)
    : cache_limit_(config.cache_limit) {
  // Validate the workload at the boundary: a NaN or negative watt entry
  // would otherwise surface deep inside the solver as a mysterious runaway
  // (or worse, a silently wrong answer fed to the optimizer).
  if (&dynamic_power.floorplan() != &fp) {
    throw std::invalid_argument(
        "CoolingSystem: power map is bound to a different floorplan");
  }
  if (dynamic_power.values().size() != fp.block_count()) {
    throw std::invalid_argument(
        "CoolingSystem: power map arity does not match the floorplan");
  }
  for (std::size_t b = 0; b < dynamic_power.values().size(); ++b) {
    const double w = dynamic_power.values()[b];
    if (!std::isfinite(w) || w < 0.0) {
      throw std::invalid_argument(
          "CoolingSystem: power map entry for block '" + fp.blocks()[b].name +
          "' is " + (std::isfinite(w) ? "negative" : "not finite"));
    }
  }
  model_ = std::make_unique<thermal::ThermalModel>(
      std::move(config.package), fp, config.grid_nx, config.grid_ny,
      std::move(config.tec_coverage));
  solver_ = std::make_unique<thermal::SteadySolver>(
      *model_, model_->distribute(dynamic_power), model_->cell_leakage(leakage),
      config.steady);
  engine_ = std::make_unique<thermal::SolveEngine>(*solver_, config.engine);
}

const Evaluation& CoolingSystem::evaluate(double omega, double current) const {
  if (!(omega >= 0.0) || omega > omega_max() * (1.0 + 1e-9)) {
    throw std::invalid_argument("CoolingSystem::evaluate: omega out of range");
  }
  if (!(current >= 0.0) || current > current_max() * (1.0 + 1e-9) ||
      (!has_tec() && current != 0.0)) {
    throw std::invalid_argument(
        "CoolingSystem::evaluate: current out of range");
  }

  g_obs_evaluations.add();
  const auto key = std::make_pair(omega, current);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = cache_.find(key); it != cache_.end()) {
      ++cache_hits_;
      g_obs_cache_hits.add();
      if (obs::enabled()) {
        const auto total =
            static_cast<double>(cache_hits_ + solve_count_);
        if (total > 0.0) {
          g_obs_cache_hit_rate.set(static_cast<double>(cache_hits_) / total);
        }
      }
      return it->second;
    }
    if (cache_.size() >= cache_limit_) cache_.clear();
  }

  // Solve outside the lock — the engine is internally synchronized, and the
  // solve is a pure function of (ω, I), so concurrent duplicate solves of
  // the same point produce identical Evaluations.
  const thermal::SteadyResult sr = engine_->solve({omega, current});
  Evaluation ev = make_evaluation(*model_, sr, omega);

  const std::lock_guard<std::mutex> lock(mutex_);
  ++solve_count_;
  return cache_.emplace(key, std::move(ev)).first->second;
}

double CoolingSystem::t_max() const noexcept { return model_->config().t_max; }

double CoolingSystem::ambient() const noexcept {
  return model_->config().ambient;
}

double CoolingSystem::omega_max() const noexcept {
  return model_->config().fan.max_speed;
}

double CoolingSystem::current_max() const noexcept {
  return has_tec() ? model_->config().tec.max_current : 0.0;
}

bool CoolingSystem::has_tec() const noexcept {
  return model_->tec_array() != nullptr;
}

const la::Vector& CoolingSystem::cell_dynamic_power() const noexcept {
  return solver_->cell_dynamic_power();
}

const std::vector<power::ExponentialTerm>& CoolingSystem::cell_leakage()
    const noexcept {
  return solver_->cell_leakage();
}

}  // namespace oftec::core
