#include "core/oftec.h"

#include <cmath>
#include <stdexcept>

#include "core/problems.h"
#include "opt/grid_search.h"
#include "opt/interior_point.h"
#include "opt/trust_region.h"
#include "util/obs.h"
#include "util/stopwatch.h"

namespace oftec::core {

namespace {

const obs::Counter g_obs_runs = obs::counter("oftec.runs");
const obs::Counter g_obs_opt2_bootstraps = obs::counter("oftec.opt2_bootstraps");
const obs::Counter g_obs_infeasible = obs::counter("oftec.infeasible");
const obs::Histogram g_obs_runtime_ms =
    obs::histogram("oftec.runtime_ms", obs::exponential_bounds(1.0, 2.0, 14));
const obs::Histogram g_obs_thermal_solves = obs::histogram(
    "oftec.thermal_solves", {8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0});

}  // namespace

std::string solver_name(Solver s) {
  switch (s) {
    case Solver::kActiveSetSqp: return "active-set-SQP";
    case Solver::kInteriorPoint: return "interior-point";
    case Solver::kTrustRegion: return "trust-region";
    case Solver::kGridSearch: return "grid-search";
  }
  throw std::invalid_argument("solver_name: unknown solver");
}

namespace {

[[nodiscard]] opt::OptResult dispatch(Solver solver, const opt::Problem& problem,
                                      const la::Vector& x0,
                                      const OftecOptions& options,
                                      const opt::StopPredicate& stop) {
  switch (solver) {
    case Solver::kActiveSetSqp:
      return opt::solve_sqp(problem, x0, options.sqp, stop);
    case Solver::kInteriorPoint:
      return opt::solve_interior_point(problem, x0);
    case Solver::kTrustRegion:
      return opt::solve_trust_region(problem, x0);
    case Solver::kGridSearch: {
      opt::GridSearchOptions gs;
      gs.points_per_dimension = options.grid_points;
      return opt::solve_grid_search(problem, gs);
    }
  }
  throw std::invalid_argument("dispatch: unknown solver");
}

}  // namespace

MinTemperatureResult run_min_temperature(const CoolingSystem& system,
                                         const OftecOptions& options) {
  OBS_SPAN("oftec.min_temperature");
  const util::Stopwatch watch;
  const std::size_t solves_before = system.evaluation_count();

  const CoolingProblem opt2(system, CoolingProblem::Objective::kMaxTemperature,
                            /*temperature_constraint=*/false);
  const opt::OptResult r =
      dispatch(options.solver, opt2, opt2.midpoint(), options, nullptr);

  MinTemperatureResult result;
  result.omega = opt2.omega_of(r.x);
  result.current = opt2.current_of(r.x);
  result.max_chip_temperature = r.objective;
  result.finite = std::isfinite(r.objective);
  if (result.finite) {
    result.power = system.evaluate(result.omega, result.current).power;
  }
  result.runtime_ms = watch.elapsed_ms();
  result.thermal_solves = system.evaluation_count() - solves_before;
  return result;
}

OftecResult run_oftec(const CoolingSystem& system, const OftecOptions& options) {
  OBS_SPAN("oftec.run");
  g_obs_runs.add();
  const util::Stopwatch watch;
  const std::size_t solves_before = system.evaluation_count();

  OftecResult result;

  const CoolingProblem opt2(system, CoolingProblem::Objective::kMaxTemperature,
                            /*temperature_constraint=*/false);
  const CoolingProblem opt1(system, CoolingProblem::Objective::kCoolingPower,
                            /*temperature_constraint=*/true,
                            /*strictness=*/0.01, options.t_max_override);

  const double t_max = opt1.t_max();
  const double stop_threshold = t_max - options.feasibility_margin;

  // Line 1: start at the middle of the (ω, I) box.
  la::Vector x = opt2.midpoint();
  double temperature = opt2.objective(x);

  // Lines 2–5: bootstrap feasibility via Optimization 2.
  if (!(temperature < t_max)) {
    OBS_SPAN("oftec.opt2");
    result.used_opt2 = true;
    g_obs_opt2_bootstraps.add();
    const opt::StopPredicate early_stop =
        [&](const la::Vector&, double objective) {
          return objective < stop_threshold;
        };
    const opt::OptResult r2 = dispatch(options.solver, opt2, x, options,
                                       early_stop);
    x = r2.x;
    temperature = r2.objective;
    if (!(temperature < t_max)) {
      // Line 5: infeasible — report the best temperature found. When the
      // Optimization 2 solver itself converged (or proved runaway), that is
      // a definitive "no feasible operating point" verdict; when it merely
      // ran out of budget, report its failure so a fallback tier can retry
      // with a different method instead of trusting a truncated search.
      g_obs_infeasible.add();
      result.success = false;
      result.status = is_definitive(r2.status) ? SolveStatus::kRunaway
                                               : r2.status;
      result.opt2_omega = opt2.omega_of(x);
      result.opt2_current = opt2.current_of(x);
      result.opt2_temperature = temperature;
      if (std::isfinite(temperature)) {
        result.opt2_power =
            system.evaluate(result.opt2_omega, result.opt2_current).power;
      }
      result.runtime_ms = watch.elapsed_ms();
      result.thermal_solves = system.evaluation_count() - solves_before;
      if (obs::enabled()) {
        g_obs_runtime_ms.observe(result.runtime_ms);
        g_obs_thermal_solves.observe(
            static_cast<double>(result.thermal_solves));
      }
      return result;
    }
  }
  result.opt2_omega = opt2.omega_of(x);
  result.opt2_current = opt2.current_of(x);
  result.opt2_temperature = temperature;
  result.opt2_power =
      system.evaluate(result.opt2_omega, result.opt2_current).power;

  // Line 6: minimize cooling power from the feasible start.
  OBS_SPAN("oftec.opt1");
  const opt::OptResult r1 = dispatch(options.solver, opt1, x, options, nullptr);

  // Guard against a solver returning an infeasible "optimum": fall back to
  // the Optimization 2 point, which is feasible by construction.
  la::Vector x_star = r1.x;
  const Evaluation* ev = &system.evaluate(opt1.omega_of(x_star),
                                          opt1.current_of(x_star));
  if (ev->runaway || !(ev->max_chip_temperature < t_max)) {
    x_star = x;
    ev = &system.evaluate(opt1.omega_of(x_star), opt1.current_of(x_star));
  }

  result.success = true;
  result.status = SolveStatus::kOk;
  result.omega = opt1.omega_of(x_star);
  result.current = opt1.current_of(x_star);
  result.max_chip_temperature = ev->max_chip_temperature;
  result.power = ev->power;
  result.runtime_ms = watch.elapsed_ms();
  result.thermal_solves = system.evaluation_count() - solves_before;
  if (obs::enabled()) {
    g_obs_runtime_ms.observe(result.runtime_ms);
    g_obs_thermal_solves.observe(static_cast<double>(result.thermal_solves));
  }
  return result;
}

}  // namespace oftec::core
