#include "core/deployment.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "floorplan/grid_map.h"
#include "thermal/model.h"
#include "thermal/steady.h"

namespace oftec::core {

namespace {

struct PlacementEval {
  bool runaway = false;
  double max_chip_temperature = 0.0;
  la::Vector chip_temperatures;
};

PlacementEval evaluate_placement(const floorplan::Floorplan& fp,
                              const power::PowerMap& dynamic_power,
                              const power::LeakageModel& leakage,
                              const DeploymentOptions& options,
                              const std::vector<bool>& coverage,
                              std::size_t& evaluations) {
  const thermal::ThermalModel model(options.system.package, fp,
                                    options.system.grid_nx,
                                    options.system.grid_ny, coverage);
  const thermal::SteadySolver solver(model, model.distribute(dynamic_power),
                                     model.cell_leakage(leakage),
                                     options.system.steady);
  const thermal::SteadyResult r =
      solver.solve(options.omega, options.current);
  ++evaluations;
  PlacementEval out;
  out.runaway = r.runaway || !r.converged;
  if (!out.runaway) {
    out.max_chip_temperature = r.max_chip_temperature;
    out.chip_temperatures = r.chip_temperatures;
  }
  return out;
}

}  // namespace

DeploymentResult optimize_deployment(const floorplan::Floorplan& fp,
                                     const power::PowerMap& dynamic_power,
                                     const power::LeakageModel& leakage,
                                     const DeploymentOptions& options) {
  const std::size_t nx = options.system.grid_nx;
  const std::size_t ny = options.system.grid_ny;
  const floorplan::GridMap grid(fp, nx, ny);
  const std::size_t cells = grid.cell_count();

  std::vector<bool> candidate(cells, false);
  std::size_t candidate_count = 0;
  for (std::size_t cell = 0; cell < cells; ++cell) {
    if (!options.core_cells_only ||
        grid.kind_fraction(cell, floorplan::UnitKind::kCore) >= 0.5) {
      candidate[cell] = true;
      ++candidate_count;
    }
  }
  if (candidate_count == 0) {
    throw std::invalid_argument("optimize_deployment: no candidate cells");
  }

  DeploymentResult result;
  std::vector<bool> coverage(cells, false);

  PlacementEval current = evaluate_placement(fp, dynamic_power, leakage, options,
                                          coverage, result.evaluations);
  if (current.runaway) {
    throw std::invalid_argument(
        "optimize_deployment: operating point is in thermal runaway even "
        "before placement");
  }
  result.baseline_temperature = current.max_chip_temperature;
  result.coverage = coverage;
  result.covered_cells = 0;
  result.max_chip_temperature = current.max_chip_temperature;

  const std::size_t budget =
      options.max_cells == 0 ? candidate_count : options.max_cells;
  std::size_t since_best = 0;

  while (result.steps.size() < budget && since_best < options.patience) {
    // Hottest uncovered candidate cell under the current placement.
    std::size_t hottest = cells;
    double hottest_temp = -std::numeric_limits<double>::infinity();
    for (std::size_t cell = 0; cell < cells; ++cell) {
      if (!candidate[cell] || coverage[cell]) continue;
      if (current.chip_temperatures[cell] > hottest_temp) {
        hottest_temp = current.chip_temperatures[cell];
        hottest = cell;
      }
    }
    if (hottest == cells) break;  // all candidates covered

    coverage[hottest] = true;
    const PlacementEval next = evaluate_placement(
        fp, dynamic_power, leakage, options, coverage, result.evaluations);
    if (next.runaway) {
      // Over-driving this placement diverges — definitely past the optimum.
      coverage[hottest] = false;
      break;
    }
    current = next;
    result.steps.push_back({hottest, next.max_chip_temperature});

    if (next.max_chip_temperature < result.max_chip_temperature) {
      result.max_chip_temperature = next.max_chip_temperature;
      result.coverage = coverage;
      result.covered_cells = result.steps.size();
      since_best = 0;
    } else {
      ++since_best;
    }
  }

  return result;
}

}  // namespace oftec::core
