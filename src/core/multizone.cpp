#include "core/multizone.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/problems.h"
#include "floorplan/grid_map.h"
#include "opt/sqp.h"
#include "util/obs.h"
#include "util/stopwatch.h"

namespace oftec::core {

namespace {

const obs::Counter g_obs_runs = obs::counter("multizone.runs");

[[nodiscard]] bool is_integer_cluster_unit(const std::string& name) {
  return name == "IntExec" || name == "IntReg" || name == "IntQ" ||
         name == "IntMap" || name == "LdStQ" || name == "DTB";
}

[[nodiscard]] bool is_fp_cluster_unit(const std::string& name) {
  return name.rfind("FP", 0) == 0;  // FPAdd, FPMul, FPReg, FPMap, FPQ
}

}  // namespace

ZonePartition ZonePartition::by_unit_cluster(const floorplan::Floorplan& fp,
                                             std::size_t nx, std::size_t ny) {
  const floorplan::GridMap grid(fp, nx, ny);
  const std::vector<bool> covered = grid.tec_coverage();

  ZonePartition part;
  part.zone_of_cell.assign(grid.cell_count(), kUnzoned);
  part.zone_names = {"int", "fp", "misc"};
  part.zone_count = 3;

  for (std::size_t cell = 0; cell < grid.cell_count(); ++cell) {
    if (!covered[cell]) continue;
    const std::string& unit = fp.blocks()[grid.dominant_block(cell)].name;
    if (is_integer_cluster_unit(unit)) {
      part.zone_of_cell[cell] = 0;
    } else if (is_fp_cluster_unit(unit)) {
      part.zone_of_cell[cell] = 1;
    } else {
      part.zone_of_cell[cell] = 2;
    }
  }
  return part;
}

ZonePartition ZonePartition::single_zone(const floorplan::Floorplan& fp,
                                         std::size_t nx, std::size_t ny) {
  const floorplan::GridMap grid(fp, nx, ny);
  const std::vector<bool> covered = grid.tec_coverage();
  ZonePartition part;
  part.zone_of_cell.assign(grid.cell_count(), kUnzoned);
  part.zone_names = {"all"};
  part.zone_count = 1;
  for (std::size_t cell = 0; cell < grid.cell_count(); ++cell) {
    if (covered[cell]) part.zone_of_cell[cell] = 0;
  }
  return part;
}

la::Vector ZonePartition::expand(const la::Vector& zone_currents) const {
  if (zone_currents.size() != zone_count) {
    throw std::invalid_argument("ZonePartition::expand: arity mismatch");
  }
  la::Vector out(zone_of_cell.size(), 0.0);
  for (std::size_t cell = 0; cell < zone_of_cell.size(); ++cell) {
    if (zone_of_cell[cell] != kUnzoned) {
      out[cell] = zone_currents[zone_of_cell[cell]];
    }
  }
  return out;
}

MultiZoneSystem::MultiZoneSystem(const floorplan::Floorplan& fp,
                                 const power::PowerMap& dynamic_power,
                                 const power::LeakageModel& leakage,
                                 ZonePartition partition,
                                 CoolingSystem::Config config)
    : partition_(std::move(partition)) {
  if (partition_.zone_count == 0) {
    throw std::invalid_argument("MultiZoneSystem: empty partition");
  }
  // The partition implies the coverage.
  std::vector<bool> coverage(partition_.zone_of_cell.size(), false);
  for (std::size_t cell = 0; cell < coverage.size(); ++cell) {
    coverage[cell] = partition_.zone_of_cell[cell] != ZonePartition::kUnzoned;
  }
  config.tec_coverage = std::move(coverage);
  model_ = std::make_unique<thermal::ThermalModel>(
      std::move(config.package), fp, config.grid_nx, config.grid_ny,
      std::move(config.tec_coverage));
  if (partition_.zone_of_cell.size() != model_->layout().cells_per_layer()) {
    throw std::invalid_argument(
        "MultiZoneSystem: partition grid does not match config grid");
  }
  solver_ = std::make_unique<thermal::SteadySolver>(
      *model_, model_->distribute(dynamic_power),
      model_->cell_leakage(leakage), config.steady);
  engine_ = std::make_unique<thermal::SolveEngine>(*solver_);
}

double MultiZoneSystem::t_max() const noexcept {
  return model_->config().t_max;
}

double MultiZoneSystem::omega_max() const noexcept {
  return model_->config().fan.max_speed;
}

double MultiZoneSystem::current_max() const noexcept {
  return model_->config().tec.max_current;
}

const Evaluation& MultiZoneSystem::evaluate(
    double omega, const la::Vector& zone_currents) const {
  if (!(omega >= 0.0) || omega > omega_max() * (1.0 + 1e-9)) {
    throw std::invalid_argument("MultiZoneSystem::evaluate: omega range");
  }
  for (const double current : zone_currents) {
    if (!(current >= 0.0) || current > current_max() * (1.0 + 1e-9)) {
      throw std::invalid_argument("MultiZoneSystem::evaluate: current range");
    }
  }

  std::vector<double> key;
  key.reserve(1 + zone_currents.size());
  key.push_back(omega);
  key.insert(key.end(), zone_currents.begin(), zone_currents.end());
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = cache_.find(key); it != cache_.end()) {
      return it->second;
    }
  }

  // Engine solves are pure functions of (ω, cell currents) — see
  // CoolingSystem::evaluate for the concurrency contract.
  const la::Vector cell_current = partition_.expand(zone_currents);
  const thermal::SteadyResult sr = engine_->solve_cells(omega, cell_current);

  Evaluation ev;
  ev.status = sr.status;
  if (sr.runaway || !sr.converged) {
    ev.runaway = true;
    ev.max_chip_temperature = std::numeric_limits<double>::infinity();
  } else {
    ev.max_chip_temperature = sr.max_chip_temperature;
    ev.power.leakage = sr.leakage_power;
    ev.power.tec = sr.tec_power;
    ev.power.fan = model_->config().fan.power(omega);
  }
  ev.solver_iterations = sr.iterations;
  const std::lock_guard<std::mutex> lock(mutex_);
  ++solve_count_;
  return cache_.emplace(std::move(key), std::move(ev)).first->second;
}

MultiZoneProblem::MultiZoneProblem(const MultiZoneSystem& system,
                                   Objective objective,
                                   bool temperature_constraint,
                                   double strictness)
    : system_(&system),
      objective_(objective),
      temperature_constraint_(temperature_constraint),
      strictness_(strictness) {
  const std::size_t zones = system.partition().zone_count;
  bounds_.lower.assign(1 + zones, 0.0);
  bounds_.upper.assign(1 + zones, system.current_max());
  bounds_.upper[0] = system.omega_max();
}

std::size_t MultiZoneProblem::dimension() const {
  return bounds_.lower.size();
}

std::size_t MultiZoneProblem::constraint_count() const {
  return temperature_constraint_ ? 1 : 0;
}

const opt::Bounds& MultiZoneProblem::bounds() const { return bounds_; }

double MultiZoneProblem::omega_of(const la::Vector& x) const {
  if (x.size() != dimension()) {
    throw std::invalid_argument("MultiZoneProblem: bad decision vector");
  }
  return x[0];
}

la::Vector MultiZoneProblem::currents_of(const la::Vector& x) const {
  if (x.size() != dimension()) {
    throw std::invalid_argument("MultiZoneProblem: bad decision vector");
  }
  return la::Vector(x.begin() + 1, x.end());
}

double MultiZoneProblem::objective(const la::Vector& x) const {
  const Evaluation& ev = system_->evaluate(omega_of(x), currents_of(x));
  return objective_ == Objective::kCoolingPower ? ev.cooling_power()
                                                : ev.max_chip_temperature;
}

la::Vector MultiZoneProblem::constraints(const la::Vector& x) const {
  if (!temperature_constraint_) return {};
  const Evaluation& ev = system_->evaluate(omega_of(x), currents_of(x));
  return {ev.max_chip_temperature - (system_->t_max() - strictness_)};
}

la::Vector MultiZoneProblem::midpoint() const {
  la::Vector x(dimension());
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.5 * (bounds_.lower[i] + bounds_.upper[i]);
  }
  return x;
}

MultiZoneResult run_multizone_oftec(const MultiZoneSystem& system,
                                    const opt::SqpOptions& sqp,
                                    double feasibility_margin) {
  OBS_SPAN("multizone.run");
  g_obs_runs.add();
  const util::Stopwatch watch;
  const std::size_t solves_before = system.evaluation_count();

  const MultiZoneProblem opt2(system,
                              MultiZoneProblem::Objective::kMaxTemperature,
                              /*temperature_constraint=*/false);
  const MultiZoneProblem opt1(system,
                              MultiZoneProblem::Objective::kCoolingPower,
                              /*temperature_constraint=*/true);
  const double t_max = system.t_max();
  const double stop_threshold = t_max - feasibility_margin;

  MultiZoneResult result;
  la::Vector x = opt2.midpoint();
  double temperature = opt2.objective(x);

  if (!(temperature < t_max)) {
    result.used_opt2 = true;
    const opt::OptResult r2 = opt::solve_sqp(
        opt2, x, sqp, [&](const la::Vector&, double objective) {
          return objective < stop_threshold;
        });
    x = r2.x;
    temperature = r2.objective;
    if (!(temperature < t_max)) {
      result.success = false;
      result.status = is_definitive(r2.status) ? SolveStatus::kRunaway
                                               : r2.status;
      result.omega = opt2.omega_of(x);
      result.zone_currents = opt2.currents_of(x);
      result.max_chip_temperature = temperature;
      result.runtime_ms = watch.elapsed_ms();
      result.thermal_solves = system.evaluation_count() - solves_before;
      return result;
    }
  }

  const opt::OptResult r1 = opt::solve_sqp(opt1, x, sqp, nullptr);
  la::Vector x_star = r1.x;
  const Evaluation* ev =
      &system.evaluate(opt1.omega_of(x_star), opt1.currents_of(x_star));
  if (ev->runaway || !(ev->max_chip_temperature < t_max)) {
    x_star = x;
    ev = &system.evaluate(opt1.omega_of(x_star), opt1.currents_of(x_star));
  }

  result.success = true;
  result.status = SolveStatus::kOk;
  result.omega = opt1.omega_of(x_star);
  result.zone_currents = opt1.currents_of(x_star);
  result.max_chip_temperature = ev->max_chip_temperature;
  result.power = ev->power;
  result.runtime_ms = watch.elapsed_ms();
  result.thermal_solves = system.evaluation_count() - solves_before;
  return result;
}

}  // namespace oftec::core
