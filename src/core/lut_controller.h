// Look-up-table controller (paper Sec. 6.2 extension).
//
// "With the current runtime of OFTEC, one can classify the input dynamic
// power vector to different categories and pre-calculate optimization
// solutions and store them in a look-up table. In this way, the desired
// controlling values can be accessed immediately."
//
// Build time: run OFTEC for each training power map and store
// (power-vector feature → (ω*, I*)). Run time: nearest-neighbor lookup in
// feature space, O(#entries) with no thermal solves.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cooling_system.h"
#include "core/oftec.h"
#include "floorplan/floorplan.h"
#include "power/leakage.h"
#include "power/power_map.h"

namespace oftec::core {

class LutController {
 public:
  struct Entry {
    la::Vector feature;  ///< per-block power vector [W]
    double omega = 0.0;
    double current = 0.0;
    bool feasible = false;
    /// Build-time OFTEC verdict; infeasible entries distinguish "provably
    /// impossible load" (kRunaway) from "the build-time solve failed".
    SolveStatus status = SolveStatus::kNotConverged;
    double max_chip_temperature = 0.0;  ///< at build time [K]
  };

  struct LookupResult {
    double omega = 0.0;
    double current = 0.0;
    bool feasible = false;
    SolveStatus status = SolveStatus::kNotConverged;  ///< of the entry
    std::size_t entry_index = 0;
    double feature_distance = 0.0;  ///< ‖query − entry‖₂ [W]
  };

  /// Pre-compute the table: one OFTEC run per training power map. The
  /// floorplan and leakage model must match the deployment target.
  /// `threads` fans independent training maps across a pool (each map gets
  /// its own CoolingSystem, so runs never share state); entry order always
  /// matches `training` order. 1 → serial, 0 → OFTEC_THREADS env /
  /// hardware concurrency.
  static LutController build(const std::vector<power::PowerMap>& training,
                             const floorplan::Floorplan& fp,
                             const power::LeakageModel& leakage,
                             const CoolingSystem::Config& config = {},
                             const OftecOptions& oftec_options = {},
                             std::size_t threads = 1);

  /// Nearest-neighbor control lookup — no thermal solves.
  [[nodiscard]] LookupResult lookup(const power::PowerMap& power) const;

  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return entries_;
  }

  /// Feature extraction used by both build and lookup.
  [[nodiscard]] static la::Vector feature_of(const power::PowerMap& power);

 private:
  std::vector<Entry> entries_;
};

}  // namespace oftec::core
