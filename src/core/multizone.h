// Multi-zone TEC control — the natural extension of OFTEC's single shared
// current.
//
// The paper wires every deployed TEC electrically in series ("driven by the
// same current value", Sec. 6.1), so one I_TEC must serve both the hottest
// and the mildest covered region. Partitioning the covered cells into a few
// independently driven zones (integer cluster / FP cluster / remaining core
// area) lets the optimizer starve cool zones of current while feeding the
// hot spot, strictly generalizing Optimization 1:
//
//     min  𝒫(ω, I₁ … I_Z)   s.t.   𝒯(ω, I₁ … I_Z) < T_max, box bounds.
//
// With Z ≤ 3 the decision space stays small enough for the same active-set
// SQP machinery (the exact QP subproblem solver enumerates up to 4-D).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/cooling_system.h"
#include "core/oftec.h"
#include "core/problems.h"
#include "floorplan/floorplan.h"
#include "opt/problem.h"
#include "power/leakage.h"
#include "power/power_map.h"

namespace oftec::core {

/// Assignment of covered cells to electrical zones.
struct ZonePartition {
  /// zone index per grid cell; kUnzoned for uncovered cells.
  std::vector<std::size_t> zone_of_cell;
  std::size_t zone_count = 0;
  std::vector<std::string> zone_names;

  static constexpr std::size_t kUnzoned = static_cast<std::size_t>(-1);

  /// Partition the default TEC coverage into up to three zones by the
  /// dominant functional unit of each cell: the integer cluster ("int"),
  /// the floating-point cluster ("fp"), and everything else ("misc").
  [[nodiscard]] static ZonePartition by_unit_cluster(
      const floorplan::Floorplan& fp, std::size_t nx, std::size_t ny);

  /// One zone spanning the whole default coverage (reduces multi-zone
  /// control to the paper's single-current formulation — used to verify the
  /// generalization is faithful).
  [[nodiscard]] static ZonePartition single_zone(
      const floorplan::Floorplan& fp, std::size_t nx, std::size_t ny);

  /// Expand per-zone currents to a per-cell current vector.
  [[nodiscard]] la::Vector expand(const la::Vector& zone_currents) const;
};

/// Evaluation facade for (ω, I₁…I_Z) points — the multi-zone analogue of
/// CoolingSystem (memoized the same way).
class MultiZoneSystem {
 public:
  MultiZoneSystem(const floorplan::Floorplan& fp,
                  const power::PowerMap& dynamic_power,
                  const power::LeakageModel& leakage, ZonePartition partition,
                  CoolingSystem::Config config = {});

  [[nodiscard]] const ZonePartition& partition() const noexcept {
    return partition_;
  }
  [[nodiscard]] double t_max() const noexcept;
  [[nodiscard]] double omega_max() const noexcept;
  [[nodiscard]] double current_max() const noexcept;

  /// Evaluate at fan speed ω and per-zone currents (size = zone_count).
  [[nodiscard]] const Evaluation& evaluate(
      double omega, const la::Vector& zone_currents) const;

  [[nodiscard]] std::size_t evaluation_count() const noexcept {
    return solve_count_;
  }

 private:
  std::unique_ptr<thermal::ThermalModel> model_;
  std::unique_ptr<thermal::SteadySolver> solver_;
  std::unique_ptr<thermal::SolveEngine> engine_;
  ZonePartition partition_;
  mutable std::mutex mutex_;  // guards cache_ and the counter
  mutable std::map<std::vector<double>, Evaluation> cache_;
  mutable std::size_t solve_count_ = 0;
};

/// Optimization-1/2 adapter over a MultiZoneSystem: x = (ω, I₁ … I_Z).
class MultiZoneProblem final : public opt::Problem {
 public:
  using Objective = CoolingProblem::Objective;

  MultiZoneProblem(const MultiZoneSystem& system, Objective objective,
                   bool temperature_constraint, double strictness = 0.01);

  [[nodiscard]] std::size_t dimension() const override;
  [[nodiscard]] std::size_t constraint_count() const override;
  [[nodiscard]] const opt::Bounds& bounds() const override;
  [[nodiscard]] double objective(const la::Vector& x) const override;
  [[nodiscard]] la::Vector constraints(const la::Vector& x) const override;

  [[nodiscard]] double omega_of(const la::Vector& x) const;
  [[nodiscard]] la::Vector currents_of(const la::Vector& x) const;
  [[nodiscard]] la::Vector midpoint() const;

 private:
  const MultiZoneSystem* system_;
  Objective objective_;
  bool temperature_constraint_;
  double strictness_;
  opt::Bounds bounds_;
};

/// Multi-zone OFTEC result.
struct MultiZoneResult {
  bool success = false;
  /// Structured outcome, mirroring OftecResult::status: kRunaway is the
  /// definitive "no feasible point", kNotConverged a solver failure.
  SolveStatus status = SolveStatus::kNotConverged;
  bool used_opt2 = false;
  double omega = 0.0;
  la::Vector zone_currents;
  double max_chip_temperature = 0.0;
  CoolingBreakdown power;
  double runtime_ms = 0.0;
  std::size_t thermal_solves = 0;
};

/// Algorithm 1 generalized to (ω, I₁ … I_Z).
[[nodiscard]] MultiZoneResult run_multizone_oftec(
    const MultiZoneSystem& system, const opt::SqpOptions& sqp = {},
    double feasibility_margin = 0.25);

}  // namespace oftec::core
