// Cooling-power vs. temperature Pareto front.
//
// Optimization 1 sits at one point of a trade-off the paper calls out
// explicitly ("OFTEC slightly increases the temperature in order to reduce
// the cooling power consumption", Fig. 6(e) discussion). Sweeping the
// thermal threshold T_max and re-running OFTEC traces the whole frontier:
// how many watts of cooling each additional degree of allowed die
// temperature buys. Useful for picking a threshold when the 90 °C limit is
// a design variable rather than a given.
#pragma once

#include <vector>

#include "core/cooling_system.h"
#include "core/oftec.h"
#include "floorplan/floorplan.h"
#include "power/leakage.h"
#include "power/power_map.h"

namespace oftec::core {

struct ParetoOptions {
  double t_limit_lo_c = 75.0;   ///< coolest threshold swept [°C]
  double t_limit_hi_c = 100.0;  ///< hottest threshold swept [°C]
  std::size_t points = 11;
  CoolingSystem::Config system;
  OftecOptions oftec;
  /// Run every threshold against ONE memoized CoolingSystem (evaluations
  /// are threshold-independent, so the sweep shares thermal solves across
  /// thresholds). Off → the reference path: a fresh system per threshold
  /// with t_max baked into the package config. Both paths produce identical
  /// fronts; tests assert it.
  bool share_system = true;
  /// Worker threads for the threshold sweep (needs share_system); 0 →
  /// OFTEC_THREADS env / hardware concurrency, 1 → serial.
  std::size_t threads = 1;
};

struct ParetoPoint {
  double t_limit = 0.0;   ///< threshold this point was optimized for [K]
  bool feasible = false;
  /// Why an infeasible point is infeasible: kRunaway is a definitive "no
  /// operating point satisfies this threshold"; anything else means the
  /// solver gave out and the point is unknown rather than impossible.
  SolveStatus status = SolveStatus::kNotConverged;
  double cooling_power = 0.0;        ///< 𝒫 at the optimum [W]
  double max_chip_temperature = 0.0; ///< achieved 𝒯 [K]
  double omega = 0.0;
  double current = 0.0;
};

/// Sweep T_max and run OFTEC per point. Points come back in increasing
/// threshold order; feasible points have non-increasing cooling power
/// (a relaxed constraint can only help — asserted by tests).
[[nodiscard]] std::vector<ParetoPoint> sweep_pareto_front(
    const floorplan::Floorplan& fp, const power::PowerMap& dynamic_power,
    const power::LeakageModel& leakage, const ParetoOptions& options = {});

}  // namespace oftec::core
