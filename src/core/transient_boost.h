// Transient TEC over-drive (paper Sec. 6.2 / Ref. [8] extension).
//
// The Peltier effect responds to a current step immediately while Joule heat
// arrives with the package RC delay, so briefly raising I_TEC above its
// steady-state optimum buys extra cooling "for a short period of time (i.e.,
// order of a second)". This module runs the experiment: start from the
// steady state at (ω*, I*), step the current to I* + boost for a window, and
// record the chip-temperature dip and the post-boost recovery.
#pragma once

#include "core/cooling_system.h"
#include "thermal/transient.h"

namespace oftec::core {

struct BoostOptions {
  double boost_current = 1.0;   ///< ΔI above I* [A] (Ref. [8]: ≈ 1 A)
  double boost_duration = 1.0;  ///< [s] (Ref. [8]: ≈ 1 s)
  double settle_duration = 2.0; ///< observation window after the boost [s]
  thermal::TransientOptions transient{.time_step = 5e-3,
                                      .duration = 0.0,  // derived
                                      .record_stride = 4};
};

struct BoostExperiment {
  thermal::TransientResult trace;   ///< boosted run
  thermal::TransientResult control; ///< constant-I* run, same duration
  double steady_temperature = 0.0;  ///< 𝒯 at (ω*, I*) [K]
  double min_boost_temperature = 0.0;  ///< lowest 𝒯 during the boost [K]
  double time_of_minimum = 0.0;        ///< [s]
  double post_boost_peak = 0.0;        ///< highest 𝒯 after boost ends [K]
  double transient_benefit = 0.0;      ///< steady − min during boost [K]
};

/// Run the boost experiment on a hybrid system at operating point (ω*, I*).
/// The boost current is clamped to the device limit I_max.
[[nodiscard]] BoostExperiment run_transient_boost(const CoolingSystem& system,
                                                  double omega_star,
                                                  double current_star,
                                                  const BoostOptions& options = {});

}  // namespace oftec::core
