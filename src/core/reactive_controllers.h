// Reactive TEC controllers from the paper's related work (ref. [5],
// Alexandrov et al., ASP-DAC'12), reimplemented as comparators:
//
//   * ThresholdController — "turns on or off TECs when the temperature goes
//     above or below a certain temperature"; a single trip point, so it
//     chatters when the plant sits near it.
//   * HysteresisController — the "maximum cooling based controller, which
//     uses the hysteresis effect to decrease the number of ON/OFF
//     transitions": separate turn-on and turn-off temperatures.
//
// Both drive the TECs with a constant current when ON (ref. [5]: "TECs are
// supplied with a constant current") and keep the fan at a fixed speed —
// that is precisely the gap OFTEC fills by co-optimizing (ω, I) instead.
#pragma once

#include <cstddef>

#include "thermal/transient.h"

namespace oftec::core {

/// Stateful on/off TEC controller with a hysteresis band. Setting
/// `on_temperature == off_temperature` degenerates to the plain threshold
/// controller of ref. [5].
class HysteresisController {
 public:
  struct Params {
    double omega = 0.0;            ///< fixed fan speed [rad/s]
    double on_current = 0.0;       ///< I_TEC when ON [A]
    double on_temperature = 0.0;   ///< turn ON above this [K]
    double off_temperature = 0.0;  ///< turn OFF below this [K]; ≤ on_temperature
  };

  explicit HysteresisController(const Params& params);

  /// Feedback-control step (bind into TransientSolver::run_closed_loop).
  [[nodiscard]] thermal::ControlSetting control(double time,
                                                double max_chip_temperature);

  /// Adapter producing the std::function form.
  [[nodiscard]] thermal::FeedbackControl as_feedback();

  [[nodiscard]] bool is_on() const noexcept { return on_; }
  /// Number of OFF→ON and ON→OFF transitions so far — ref. [5]'s metric.
  [[nodiscard]] std::size_t switch_count() const noexcept { return switches_; }

 private:
  Params params_;
  bool on_ = false;
  std::size_t switches_ = 0;
};

/// Plain threshold controller: one trip temperature (zero hysteresis band).
[[nodiscard]] HysteresisController make_threshold_controller(
    double omega, double on_current, double trip_temperature);

}  // namespace oftec::core
