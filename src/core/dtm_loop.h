// Dynamic thermal management loop: trace replay with periodic
// re-optimization.
//
// The paper's deployment story (Sec. 6.2): OFTEC is fast enough (sub-second)
// to run "as an online controlling algorithm", optionally fronted by the
// LUT for instant reactions. This harness closes that loop against the
// transient thermal model:
//
//   every control period:
//     1. reduce the trace window ahead to its per-unit max-power vector;
//     2. obtain (ω, I) — exact OFTEC, or LUT lookup;
//     3. hold the setting while the transient model integrates the *actual*
//        (time-varying) trace power.
//
// Reported metrics: temperature envelope, thermal-violation time, average
// cooling power, and control-latency spent in the optimizer.
//
// Degradation layers (failures leave the loop in control, never in doubt):
//   tier 1  the configured policy (exact OFTEC / LUT / static);
//   tier 2  LUT lookup, when a table is available;
//   tier 3  coarse grid-search OFTEC (exhaustive, derivative-free);
//   tier 4  fail-safe: ω = ω_max, I = 0, plus dynamic-power throttling.
// Tiers are tried in order per decision, driven by the structured
// SolveStatus each layer reports — no exception ever escapes a decision.
// Independently, a thermal-runaway watchdog forces the fail-safe tier after
// `watchdog_patience` consecutive integration steps that are both above
// T_max and non-decreasing, and releases it once the die cools below
// T_max − watchdog_release_margin.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cooling_system.h"
#include "core/lut_controller.h"
#include "core/oftec.h"
#include "floorplan/floorplan.h"
#include "power/leakage.h"
#include "thermal/transient.h"
#include "workload/trace.h"

namespace oftec::core {

/// How the loop obtains its control settings.
enum class DtmPolicy {
  kExactOftec,  ///< run Algorithm 1 every control period
  kLut,         ///< nearest-neighbor lookup in a prebuilt table
  kStatic,      ///< one OFTEC run on the whole-trace max vector, then hold
};

/// Which degradation rung produced a control setting.
enum class ControllerTier {
  kPrimary,     ///< the configured policy succeeded
  kLut,         ///< fell back to the LUT
  kGridSearch,  ///< fell back to coarse grid-search OFTEC
  kFailSafe,    ///< max fan, zero TEC current, dynamic power throttled
};

[[nodiscard]] constexpr const char* tier_name(ControllerTier t) noexcept {
  switch (t) {
    case ControllerTier::kPrimary: return "primary";
    case ControllerTier::kLut: return "lut";
    case ControllerTier::kGridSearch: return "grid_search";
    case ControllerTier::kFailSafe: return "fail_safe";
  }
  return "unknown";
}

/// Overall verdict of a DTM run. Honesty invariant: any violation time or
/// fallback activity forbids kOk — a run that ever exceeded T_max (or could
/// not use its primary controller throughout) never reports full health.
enum class ControlStatus {
  kOk,        ///< primary controller throughout, no thermal violation
  kDegraded,  ///< a fallback tier served decisions, or T_max was exceeded
  kFailSafe,  ///< the watchdog forced the fail-safe tier at least once
  kRunaway,   ///< the transient integration diverged even under fail-safe
};

[[nodiscard]] constexpr const char* to_string(ControlStatus s) noexcept {
  switch (s) {
    case ControlStatus::kOk: return "ok";
    case ControlStatus::kDegraded: return "degraded";
    case ControlStatus::kFailSafe: return "fail_safe";
    case ControlStatus::kRunaway: return "runaway";
  }
  return "unknown";
}

struct DtmOptions {
  DtmPolicy policy = DtmPolicy::kExactOftec;
  double control_period = 0.5;  ///< [s] between re-optimizations
  CoolingSystem::Config system;
  OftecOptions oftec;
  /// Required when policy == kLut; with other policies, an optional tier-2
  /// fallback.
  const LutController* lut = nullptr;
  double time_step = 10e-3;  ///< transient integration step [s]
  /// Leakage-tangent hold window for the transient stepper [K]; 0 (the
  /// default) re-linearizes every step — the historical semantics. See
  /// thermal::TransientOptions::relinearization_threshold.
  double relinearization_threshold = 0.0;

  /// Watchdog: consecutive steps above T_max with non-decreasing temperature
  /// before the fail-safe tier is forced (bounds time-to-fail-safe by
  /// patience · time_step).
  std::size_t watchdog_patience = 3;
  /// Release fail-safe once max_chip < T_max − margin [K].
  double watchdog_release_margin = 2.0;
  /// Dynamic-power scale applied while fail-safe is active (models the DVFS
  /// throttle that accompanies max cooling). In (0, 1].
  double failsafe_throttle = 0.5;
  /// Grid resolution of the tier-3 grid-search fallback.
  std::size_t fallback_grid_points = 9;
};

struct DtmSample {
  double time = 0.0;
  double max_chip_temperature = 0.0;  ///< [K]
  double omega = 0.0;
  double current = 0.0;
  double cooling_power = 0.0;  ///< leakage + TEC + fan at this instant [W]
  ControllerTier tier = ControllerTier::kPrimary;  ///< rung in charge
};

struct DtmResult {
  std::vector<DtmSample> samples;
  double peak_temperature = 0.0;        ///< [K]
  double violation_time = 0.0;          ///< seconds above T_max
  double average_cooling_power = 0.0;   ///< [W]
  double control_time_ms = 0.0;         ///< total optimizer latency
  std::size_t reoptimizations = 0;
  bool runaway = false;

  ControlStatus status = ControlStatus::kOk;
  std::size_t fallback_decisions = 0;  ///< decisions served below tier 1
  std::size_t watchdog_trips = 0;      ///< fail-safe activations
  double failsafe_time = 0.0;          ///< seconds spent in fail-safe [s]
};

/// Replay `trace` through the transient model under the chosen policy.
/// The loop starts from the steady state of the first control decision.
[[nodiscard]] DtmResult run_dtm_loop(const floorplan::Floorplan& fp,
                                     const workload::PowerTrace& trace,
                                     const power::LeakageModel& leakage,
                                     const DtmOptions& options = {});

}  // namespace oftec::core
