// Dynamic thermal management loop: trace replay with periodic
// re-optimization.
//
// The paper's deployment story (Sec. 6.2): OFTEC is fast enough (sub-second)
// to run "as an online controlling algorithm", optionally fronted by the
// LUT for instant reactions. This harness closes that loop against the
// transient thermal model:
//
//   every control period:
//     1. reduce the trace window ahead to its per-unit max-power vector;
//     2. obtain (ω, I) — exact OFTEC, or LUT lookup;
//     3. hold the setting while the transient model integrates the *actual*
//        (time-varying) trace power.
//
// Reported metrics: temperature envelope, thermal-violation time, average
// cooling power, and control-latency spent in the optimizer.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cooling_system.h"
#include "core/lut_controller.h"
#include "core/oftec.h"
#include "floorplan/floorplan.h"
#include "power/leakage.h"
#include "thermal/transient.h"
#include "workload/trace.h"

namespace oftec::core {

/// How the loop obtains its control settings.
enum class DtmPolicy {
  kExactOftec,  ///< run Algorithm 1 every control period
  kLut,         ///< nearest-neighbor lookup in a prebuilt table
  kStatic,      ///< one OFTEC run on the whole-trace max vector, then hold
};

struct DtmOptions {
  DtmPolicy policy = DtmPolicy::kExactOftec;
  double control_period = 0.5;  ///< [s] between re-optimizations
  CoolingSystem::Config system;
  OftecOptions oftec;
  /// Required when policy == kLut.
  const LutController* lut = nullptr;
  double time_step = 10e-3;  ///< transient integration step [s]
};

struct DtmSample {
  double time = 0.0;
  double max_chip_temperature = 0.0;  ///< [K]
  double omega = 0.0;
  double current = 0.0;
  double cooling_power = 0.0;  ///< leakage + TEC + fan at this instant [W]
};

struct DtmResult {
  std::vector<DtmSample> samples;
  double peak_temperature = 0.0;        ///< [K]
  double violation_time = 0.0;          ///< seconds above T_max
  double average_cooling_power = 0.0;   ///< [W]
  double control_time_ms = 0.0;         ///< total optimizer latency
  std::size_t reoptimizations = 0;
  bool runaway = false;
};

/// Replay `trace` through the transient model under the chosen policy.
/// The loop starts from the steady state of the first control decision.
[[nodiscard]] DtmResult run_dtm_loop(const floorplan::Floorplan& fp,
                                     const workload::PowerTrace& trace,
                                     const power::LeakageModel& leakage,
                                     const DtmOptions& options = {});

}  // namespace oftec::core
