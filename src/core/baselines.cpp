#include "core/baselines.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace oftec::core {

BaselineResult run_variable_fan_baseline(const CoolingSystem& fan_only_system,
                                         const OftecOptions& options) {
  if (fan_only_system.has_tec()) {
    throw std::invalid_argument(
        "run_variable_fan_baseline: expected a no-TEC system");
  }
  const OftecResult r = run_oftec(fan_only_system, options);
  BaselineResult out;
  out.success = r.success;
  out.omega = r.omega;
  out.current = 0.0;
  out.max_chip_temperature =
      r.success ? r.max_chip_temperature : r.opt2_temperature;
  out.power = r.success ? r.power : r.opt2_power;
  out.runaway = !std::isfinite(out.max_chip_temperature);
  out.opt2_omega = r.opt2_omega;
  out.opt2_temperature = r.opt2_temperature;
  out.opt2_power = r.opt2_power;
  if (!r.success) {
    out.omega = r.opt2_omega;  // best the fan could do
  }
  return out;
}

BaselineResult run_fixed_fan_baseline(const CoolingSystem& fan_only_system,
                                      double omega_fixed) {
  if (fan_only_system.has_tec()) {
    throw std::invalid_argument(
        "run_fixed_fan_baseline: expected a no-TEC system");
  }
  const Evaluation& ev = fan_only_system.evaluate(omega_fixed, 0.0);
  BaselineResult out;
  out.omega = omega_fixed;
  out.current = 0.0;
  out.runaway = ev.runaway;
  out.max_chip_temperature = ev.max_chip_temperature;
  if (!ev.runaway) out.power = ev.power;
  out.success =
      !ev.runaway && ev.max_chip_temperature <= fan_only_system.t_max();
  // The fixed baseline has no optimization phases; report the same point.
  out.opt2_omega = omega_fixed;
  out.opt2_temperature = ev.max_chip_temperature;
  out.opt2_power = out.power;
  return out;
}

BaselineResult run_tec_only(const CoolingSystem& hybrid_system,
                            std::size_t current_samples) {
  if (!hybrid_system.has_tec()) {
    throw std::invalid_argument("run_tec_only: expected a hybrid system");
  }
  if (current_samples < 2) {
    throw std::invalid_argument("run_tec_only: need >= 2 samples");
  }
  BaselineResult out;
  out.omega = 0.0;
  out.max_chip_temperature = std::numeric_limits<double>::infinity();
  out.runaway = true;

  const double i_max = hybrid_system.current_max();
  for (std::size_t s = 0; s < current_samples; ++s) {
    const double current = i_max * static_cast<double>(s) /
                           static_cast<double>(current_samples - 1);
    const Evaluation& ev = hybrid_system.evaluate(0.0, current);
    if (ev.runaway) continue;
    out.runaway = false;
    if (ev.max_chip_temperature < out.max_chip_temperature) {
      out.max_chip_temperature = ev.max_chip_temperature;
      out.current = current;
      out.power = ev.power;
    }
  }
  out.success = !out.runaway &&
                out.max_chip_temperature <= hybrid_system.t_max();
  out.opt2_omega = 0.0;
  out.opt2_temperature = out.max_chip_temperature;
  out.opt2_power = out.power;
  return out;
}

}  // namespace oftec::core
