// Throttling fallback (paper Sec. 6.2): "These five cases should be further
// cooled down using other thermal management techniques such as reducing the
// voltage/frequency of the chip or throttling different functional units
// which leads to performance degradation."
//
// When even OFTEC cannot meet T_max for a workload, this module finds the
// smallest dynamic-power reduction that makes the problem feasible again —
// the performance price of an undersized cooling assembly. Throttling scales
// the dynamic power uniformly (frequency scaling ∝ f; combined DVFS would be
// steeper — the scaling exponent is configurable).
#pragma once

#include "core/cooling_system.h"
#include "core/oftec.h"
#include "floorplan/floorplan.h"
#include "power/leakage.h"
#include "power/power_map.h"

namespace oftec::core {

struct ThrottleOptions {
  /// Smallest frequency factor considered (below this, give up).
  double min_factor = 0.4;
  /// Bisection resolution on the frequency factor.
  double tolerance = 0.01;
  /// Dynamic power ∝ factor^exponent (1 = frequency-only throttling,
  /// ~3 = full DVFS where voltage tracks frequency).
  double power_exponent = 1.0;
  CoolingSystem::Config system;
  OftecOptions oftec;
};

struct ThrottleResult {
  bool feasible = false;       ///< a factor ≥ min_factor works
  double frequency_factor = 1.0;  ///< smallest throttle that meets T_max
  double power_factor = 1.0;   ///< resulting dynamic-power scale
  OftecResult oftec;           ///< OFTEC solution at the throttled load
  std::size_t probes = 0;      ///< OFTEC invocations spent searching
};

/// Find the largest frequency factor in [min_factor, 1] whose scaled
/// workload OFTEC can cool, by bisection on the factor (feasibility is
/// monotone in power). Returns factor 1.0 untouched when the full-speed
/// workload is already feasible.
[[nodiscard]] ThrottleResult find_minimum_throttle(
    const floorplan::Floorplan& fp, const power::PowerMap& full_power,
    const power::LeakageModel& leakage, const ThrottleOptions& options = {});

}  // namespace oftec::core
