#include "core/pareto.h"

#include <stdexcept>

#include "util/units.h"

namespace oftec::core {

std::vector<ParetoPoint> sweep_pareto_front(
    const floorplan::Floorplan& fp, const power::PowerMap& dynamic_power,
    const power::LeakageModel& leakage, const ParetoOptions& options) {
  if (options.points < 2 || options.t_limit_hi_c <= options.t_limit_lo_c) {
    throw std::invalid_argument("sweep_pareto_front: bad threshold range");
  }

  std::vector<ParetoPoint> front;
  front.reserve(options.points);
  for (std::size_t i = 0; i < options.points; ++i) {
    const double t_limit_c =
        options.t_limit_lo_c +
        (options.t_limit_hi_c - options.t_limit_lo_c) *
            static_cast<double>(i) / static_cast<double>(options.points - 1);

    CoolingSystem::Config cfg = options.system;
    cfg.package.t_max = units::celsius_to_kelvin(t_limit_c);
    const CoolingSystem system(fp, dynamic_power, leakage, cfg);
    const OftecResult r = run_oftec(system, options.oftec);

    ParetoPoint point;
    point.t_limit = cfg.package.t_max;
    point.feasible = r.success;
    if (r.success) {
      point.cooling_power = r.power.total();
      point.max_chip_temperature = r.max_chip_temperature;
      point.omega = r.omega;
      point.current = r.current;
    } else {
      point.max_chip_temperature = r.opt2_temperature;
    }
    front.push_back(point);
  }
  return front;
}

}  // namespace oftec::core
