#include "core/pareto.h"

#include <stdexcept>

#include "util/obs.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace oftec::core {

namespace {

const obs::Counter g_obs_sweeps = obs::counter("pareto.sweeps");
const obs::Counter g_obs_points = obs::counter("pareto.points");

[[nodiscard]] ParetoPoint point_from(double t_limit_kelvin,
                                     const OftecResult& r) {
  ParetoPoint point;
  point.t_limit = t_limit_kelvin;
  point.feasible = r.success;
  point.status = r.status;
  if (r.success) {
    point.cooling_power = r.power.total();
    point.max_chip_temperature = r.max_chip_temperature;
    point.omega = r.omega;
    point.current = r.current;
  } else {
    point.max_chip_temperature = r.opt2_temperature;
  }
  return point;
}

}  // namespace

std::vector<ParetoPoint> sweep_pareto_front(
    const floorplan::Floorplan& fp, const power::PowerMap& dynamic_power,
    const power::LeakageModel& leakage, const ParetoOptions& options) {
  if (options.points < 2 || options.t_limit_hi_c <= options.t_limit_lo_c) {
    throw std::invalid_argument("sweep_pareto_front: bad threshold range");
  }
  OBS_SPAN("pareto.sweep");
  g_obs_sweeps.add();
  g_obs_points.add(options.points);

  const auto threshold_c = [&](std::size_t i) {
    return options.t_limit_lo_c +
           (options.t_limit_hi_c - options.t_limit_lo_c) *
               static_cast<double>(i) / static_cast<double>(options.points - 1);
  };

  std::vector<ParetoPoint> front(options.points);

  if (options.share_system) {
    // One memoized system serves every threshold: evaluations depend only on
    // (ω, I), so the Optimization-2 bootstrap and most SQP iterates hit the
    // shared cache after the first threshold. Each run_oftec call is
    // independent and evaluate() is thread-safe, so the sweep also fans
    // across the pool when asked.
    const CoolingSystem system(fp, dynamic_power, leakage, options.system);
    const auto run_one = [&](std::size_t i) {
      const double t_limit_k = units::celsius_to_kelvin(threshold_c(i));
      OftecOptions oftec = options.oftec;
      oftec.t_max_override = t_limit_k;
      front[i] = point_from(t_limit_k, run_oftec(system, oftec));
    };
    if (options.threads == 1) {
      for (std::size_t i = 0; i < options.points; ++i) run_one(i);
    } else {
      util::ThreadPool pool(options.threads);
      pool.parallel_for(options.points, run_one);
    }
    return front;
  }

  for (std::size_t i = 0; i < options.points; ++i) {
    CoolingSystem::Config cfg = options.system;
    cfg.package.t_max = units::celsius_to_kelvin(threshold_c(i));
    const CoolingSystem system(fp, dynamic_power, leakage, cfg);
    front[i] = point_from(cfg.package.t_max, run_oftec(system, options.oftec));
  }
  return front;
}

}  // namespace oftec::core
