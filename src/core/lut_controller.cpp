#include "core/lut_controller.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/obs.h"
#include "util/thread_pool.h"

namespace oftec::core {

namespace {

const obs::Counter g_obs_lookups = obs::counter("lut.lookups");
const obs::Counter g_obs_builds = obs::counter("lut.builds");
const obs::Histogram g_obs_feature_distance =
    obs::histogram("lut.feature_distance", obs::exponential_bounds(0.01, 4.0, 8));

}  // namespace

la::Vector LutController::feature_of(const power::PowerMap& power) {
  return power.values();
}

LutController LutController::build(const std::vector<power::PowerMap>& training,
                                   const floorplan::Floorplan& fp,
                                   const power::LeakageModel& leakage,
                                   const CoolingSystem::Config& config,
                                   const OftecOptions& oftec_options,
                                   std::size_t threads) {
  if (training.empty()) {
    throw std::invalid_argument("LutController::build: no training maps");
  }
  OBS_SPAN("lut.build");
  g_obs_builds.add();
  LutController lut;
  lut.entries_.resize(training.size());
  const auto build_entry = [&](std::size_t i) {
    const power::PowerMap& map = training[i];
    CoolingSystem system(fp, map, leakage, config);
    const OftecResult r = run_oftec(system, oftec_options);
    Entry e;
    e.feature = feature_of(map);
    e.feasible = r.success;
    e.status = r.status;
    if (r.success) {
      e.omega = r.omega;
      e.current = r.current;
      e.max_chip_temperature = r.max_chip_temperature;
    } else {
      // Store the min-temperature setting so the controller still reacts
      // sensibly to loads it cannot fully cool.
      e.omega = r.opt2_omega;
      e.current = r.opt2_current;
      e.max_chip_temperature = r.opt2_temperature;
    }
    lut.entries_[i] = std::move(e);
  };
  if (threads == 1) {
    for (std::size_t i = 0; i < training.size(); ++i) build_entry(i);
  } else {
    util::ThreadPool pool(threads);
    pool.parallel_for(training.size(), build_entry);
  }
  return lut;
}

LutController::LookupResult LutController::lookup(
    const power::PowerMap& power) const {
  if (entries_.empty()) {
    throw std::logic_error("LutController::lookup: empty table");
  }
  const la::Vector query = feature_of(power);

  LookupResult best;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    if (e.feature.size() != query.size()) {
      throw std::invalid_argument("LutController::lookup: floorplan mismatch");
    }
    double dist2 = 0.0;
    for (std::size_t j = 0; j < query.size(); ++j) {
      const double d = query[j] - e.feature[j];
      dist2 += d * d;
    }
    if (dist2 < best_dist) {
      best_dist = dist2;
      best.entry_index = i;
    }
  }
  const Entry& chosen = entries_[best.entry_index];
  best.omega = chosen.omega;
  best.current = chosen.current;
  best.feasible = chosen.feasible;
  best.status = chosen.status;
  best.feature_distance = std::sqrt(best_dist);
  g_obs_lookups.add();
  if (obs::enabled()) g_obs_feature_distance.observe(best.feature_distance);
  return best;
}

}  // namespace oftec::core
