// The paper's comparison systems (Sec. 6.1).
//
//   1. Variable-ω fan-only: no TECs (boosted-TIM1 fairness package); the fan
//      speed is set "using a method similar to OFTEC" — i.e. Algorithm 1
//      with a one-dimensional decision vector.
//   2. Fixed-ω fan-only: ω pinned at 2000 RPM, no optimization.
//   3. TEC-only: ω = 0, only I_TEC optimized — the configuration the paper
//      shows cannot avoid thermal runaway.
#pragma once

#include "core/cooling_system.h"
#include "core/oftec.h"

namespace oftec::core {

/// Outcome of a baseline run, aligned with OftecResult for table building.
struct BaselineResult {
  bool success = false;  ///< thermal constraint met
  bool runaway = false;
  double omega = 0.0;
  double current = 0.0;
  double max_chip_temperature = 0.0;  ///< [K]; +inf on runaway
  CoolingBreakdown power;
  /// Min-temperature phase outcome (Optimization 2 analogue).
  double opt2_omega = 0.0;
  double opt2_temperature = 0.0;
  CoolingBreakdown opt2_power;
};

/// Variable-ω baseline on a no-TEC system (build the system from
/// PackageConfig::without_tecs()).
[[nodiscard]] BaselineResult run_variable_fan_baseline(
    const CoolingSystem& fan_only_system, const OftecOptions& options = {});

/// Fixed-speed baseline (paper: 2000 RPM) on a no-TEC system.
[[nodiscard]] BaselineResult run_fixed_fan_baseline(
    const CoolingSystem& fan_only_system, double omega_fixed);

/// TEC-only: ω = 0 on the hybrid system; sweeps I over [0, I_max] looking
/// for any non-runaway point (grid sweep — optimization is pointless if the
/// whole axis diverges, which is the claim under test).
[[nodiscard]] BaselineResult run_tec_only(const CoolingSystem& hybrid_system,
                                          std::size_t current_samples = 26);

}  // namespace oftec::core
