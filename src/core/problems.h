// Optimization 1 and 2 as opt::Problem instances.
//
// Decision vector: x = (ω) for fan-only packages, x = (ω, I_TEC) for hybrid
// ones. Two objective choices cover both of the paper's formulations:
//   Optimization 1: minimize 𝒫, subject to 𝒯 ≤ T_max   (kCoolingPower + constraint)
//   Optimization 2: minimize 𝒯, box constraints only    (kMaxTemperature)
#pragma once

#include "core/cooling_system.h"
#include "opt/problem.h"

namespace oftec::core {

class CoolingProblem final : public opt::Problem {
 public:
  enum class Objective { kCoolingPower, kMaxTemperature };

  /// `temperature_constraint` adds g(x) = 𝒯(x) − (T_max − strictness) ≤ 0.
  /// The paper's constraint (15) is the strict inequality T_i < T_max;
  /// `strictness` (in kelvin) keeps boundary-converged solutions strictly
  /// inside it. `t_max_override` (> 0, in kelvin) replaces the system's
  /// built-in threshold — evaluations are T_max-independent, so one memoized
  /// system can serve problems at many thresholds (the Pareto sweep).
  CoolingProblem(const CoolingSystem& system, Objective objective,
                 bool temperature_constraint, double strictness = 0.01,
                 double t_max_override = 0.0);

  [[nodiscard]] std::size_t dimension() const override;
  [[nodiscard]] std::size_t constraint_count() const override;
  [[nodiscard]] const opt::Bounds& bounds() const override;
  [[nodiscard]] double objective(const la::Vector& x) const override;
  [[nodiscard]] la::Vector constraints(const la::Vector& x) const override;

  /// Decode the decision vector.
  [[nodiscard]] double omega_of(const la::Vector& x) const;
  [[nodiscard]] double current_of(const la::Vector& x) const;

  [[nodiscard]] const CoolingSystem& system() const noexcept {
    return *system_;
  }

  /// Threshold actually enforced (override or the system's T_max) [K].
  [[nodiscard]] double t_max() const noexcept { return t_max_; }

  /// Midpoint of the box — Algorithm 1's initial guess (ω_max/2, I_max/2).
  [[nodiscard]] la::Vector midpoint() const;

 private:
  const CoolingSystem* system_;
  Objective objective_;
  bool temperature_constraint_;
  double strictness_;
  double t_max_;
  opt::Bounds bounds_;
};

}  // namespace oftec::core
