// Selective TEC deployment (the "Deployment" half of the paper's title;
// formulated as an optimization by refs. [6][7], Long et al.).
//
// "Excessive deployment of TECs adversely affects the temperature of the
// device because of lateral heating among TECs. Moreover, deploying
// unnecessary TECs increases the power consumption of the cooling
// solution." (Sec. 3)
//
// Placement heuristic (the hotspot-chasing scheme of refs. [6][7]): start
// from an empty placement and repeatedly cover the currently hottest
// uncovered candidate cell, re-simulating after each addition. The maximum
// die temperature traces a U-curve — it falls while the hot region gets
// covered, then rises once additional TECs only contribute Joule heat and
// lateral heating — and the optimizer returns the placement at the bottom
// of that curve.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cooling_system.h"
#include "floorplan/floorplan.h"
#include "power/leakage.h"
#include "power/power_map.h"

namespace oftec::core {

struct DeploymentOptions {
  /// Hard cap on covered cells; 0 → candidates.size().
  std::size_t max_cells = 0;
  /// Operating point the placement is evaluated at.
  double omega = 524.0;   ///< [rad/s]
  double current = 2.0;   ///< [A]
  /// Stop after this many consecutive additions without improving the best
  /// maximum temperature (the over-deployment side of the U-curve).
  std::size_t patience = 3;
  /// Restrict candidates to core-majority cells (the paper's policy space);
  /// false allows covering cache cells too.
  bool core_cells_only = true;
  /// Note: with the default paste filler (PackageConfig::paper_default()),
  /// a *sparse* placement leaves most of the TEC layer at low conductivity
  /// and light placements may be infeasible at any fan speed. To study
  /// active pumping in isolation, raise `system.package.filler_conductivity`
  /// to the TEC composite value (tec.layer_conductivity()).
  CoolingSystem::Config system;
};

struct DeploymentStep {
  std::size_t cell = 0;  ///< cell covered at this step (hottest at the time)
  double max_chip_temperature = 0.0;  ///< 𝒯 after the addition [K]
};

struct DeploymentResult {
  std::vector<bool> coverage;          ///< best placement found
  std::size_t covered_cells = 0;       ///< cells in the best placement
  double max_chip_temperature = 0.0;   ///< 𝒯 at the best placement [K]
  double baseline_temperature = 0.0;   ///< 𝒯 with no TECs covered [K]
  std::vector<DeploymentStep> steps;   ///< full trajectory (may overshoot)
  std::size_t evaluations = 0;         ///< thermal solves spent
};

/// Hotspot-chasing placement for one workload. Throws std::invalid_argument
/// on a runaway operating point (pick a fan speed the bare package
/// survives).
[[nodiscard]] DeploymentResult optimize_deployment(
    const floorplan::Floorplan& fp, const power::PowerMap& dynamic_power,
    const power::LeakageModel& leakage, const DeploymentOptions& options = {});

}  // namespace oftec::core
