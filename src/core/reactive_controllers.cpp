#include "core/reactive_controllers.h"

#include <stdexcept>

namespace oftec::core {

HysteresisController::HysteresisController(const Params& params)
    : params_(params) {
  if (params.off_temperature > params.on_temperature) {
    throw std::invalid_argument(
        "HysteresisController: off_temperature must not exceed "
        "on_temperature");
  }
  if (params.omega < 0.0 || params.on_current < 0.0) {
    throw std::invalid_argument("HysteresisController: negative actuation");
  }
}

thermal::ControlSetting HysteresisController::control(
    double /*time*/, double max_chip_temperature) {
  if (!on_ && max_chip_temperature > params_.on_temperature) {
    on_ = true;
    ++switches_;
  } else if (on_ && max_chip_temperature < params_.off_temperature) {
    on_ = false;
    ++switches_;
  }
  return {params_.omega, on_ ? params_.on_current : 0.0};
}

thermal::FeedbackControl HysteresisController::as_feedback() {
  return [this](double time, double max_chip_temperature) {
    return control(time, max_chip_temperature);
  };
}

HysteresisController make_threshold_controller(double omega, double on_current,
                                               double trip_temperature) {
  HysteresisController::Params params;
  params.omega = omega;
  params.on_current = on_current;
  params.on_temperature = trip_temperature;
  params.off_temperature = trip_temperature;
  return HysteresisController(params);
}

}  // namespace oftec::core
