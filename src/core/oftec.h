// OFTEC — Algorithm 1 of the paper.
//
//   1. x0 ← (ω_max/2, I_max/2)
//   2. if 𝒯(x0) > T_max:
//   3.     x1 ← active-set SQP on Optimization 2 from x0,
//          stopping early as soon as 𝒯 < T_max
//   4.     if 𝒯(x1) > T_max: return failed (problem infeasible)
//   5. x* ← active-set SQP on Optimization 1 from x1
//   6. return (ω*, I_TEC*)
//
// The NLP engine is pluggable (SQP / interior point / trust region /
// exhaustive search) to reproduce the paper's solver comparison.
#pragma once

#include <string>

#include "core/cooling_system.h"
#include "opt/sqp.h"

namespace oftec::core {

/// Which nonlinear solver drives both phases.
enum class Solver { kActiveSetSqp, kInteriorPoint, kTrustRegion, kGridSearch };

[[nodiscard]] std::string solver_name(Solver s);

struct OftecOptions {
  Solver solver = Solver::kActiveSetSqp;
  opt::SqpOptions sqp;
  /// Stop the Optimization 2 phase as soon as 𝒯 < T_max − margin [K]
  /// (margin keeps the Optimization 1 start strictly feasible).
  double feasibility_margin = 0.25;
  /// Grid resolution when solver == kGridSearch.
  std::size_t grid_points = 41;
  /// Thermal threshold override [K]; 0 → the system's T_max. Evaluations
  /// are threshold-independent, so sweeping this on one shared (memoized)
  /// CoolingSystem reuses every thermal solve across thresholds — the
  /// Pareto front for the price of roughly one OFTEC run.
  double t_max_override = 0.0;
};

struct OftecResult {
  bool success = false;      ///< a feasible (ω*, I*) was found
  /// Structured outcome. kOk accompanies success; kRunaway means the problem
  /// is provably infeasible (every probe hit runaway); kNotConverged and
  /// friends mean the numerics gave out — callers with a fallback chain
  /// (dtm_loop) only treat is_definitive() results as final.
  SolveStatus status = SolveStatus::kNotConverged;
  bool used_opt2 = false;    ///< the bootstrap phase ran
  double omega = 0.0;        ///< ω* [rad/s]
  double current = 0.0;      ///< I_TEC* [A]
  double max_chip_temperature = 0.0;  ///< 𝒯 at the solution [K]
  CoolingBreakdown power;    ///< 𝒫 breakdown at the solution
  /// 𝒯-minimizing point found by the Optimization 2 phase (valid when
  /// used_opt2; equals the start otherwise).
  double opt2_omega = 0.0;
  double opt2_current = 0.0;
  double opt2_temperature = 0.0;
  CoolingBreakdown opt2_power;
  double runtime_ms = 0.0;
  std::size_t thermal_solves = 0;  ///< uncached simulator invocations
};

/// Run Algorithm 1 on a hybrid (TEC + fan) system. Also accepts fan-only
/// systems (decision vector degenerates to ω) — that is exactly the paper's
/// variable-ω baseline ("the speed is set using a method similar to OFTEC
/// with the difference that no TEC current is required to be found").
[[nodiscard]] OftecResult run_oftec(const CoolingSystem& system,
                                    const OftecOptions& options = {});

/// Result of a standalone Optimization 2 run (minimize the maximum die
/// temperature over the box, no early stop). This is the experiment behind
/// Fig. 6(c,d) — "an interesting problem by itself ... as long as the
/// cooling power consumption is not a concern" (Sec. 5.2).
struct MinTemperatureResult {
  bool finite = false;  ///< a non-runaway operating point was found
  double omega = 0.0;
  double current = 0.0;
  double max_chip_temperature = 0.0;  ///< the minimized 𝒯 [K]
  CoolingBreakdown power;             ///< 𝒫 at the 𝒯-minimizing point
  double runtime_ms = 0.0;
  std::size_t thermal_solves = 0;
};

/// Minimize 𝒯(ω, I) to convergence (Optimization 2 run in isolation).
[[nodiscard]] MinTemperatureResult run_min_temperature(
    const CoolingSystem& system, const OftecOptions& options = {});

}  // namespace oftec::core
