#include "core/throttle.h"

#include <cmath>
#include <stdexcept>

namespace oftec::core {

namespace {

/// Run OFTEC on the workload scaled by factor^exponent.
OftecResult probe(const floorplan::Floorplan& fp,
                  const power::PowerMap& full_power,
                  const power::LeakageModel& leakage,
                  const ThrottleOptions& options, double frequency_factor) {
  power::PowerMap scaled = full_power;
  scaled.scale(std::pow(frequency_factor, options.power_exponent));
  const CoolingSystem system(fp, scaled, leakage, options.system);
  return run_oftec(system, options.oftec);
}

}  // namespace

ThrottleResult find_minimum_throttle(const floorplan::Floorplan& fp,
                                     const power::PowerMap& full_power,
                                     const power::LeakageModel& leakage,
                                     const ThrottleOptions& options) {
  if (options.min_factor <= 0.0 || options.min_factor >= 1.0) {
    throw std::invalid_argument(
        "find_minimum_throttle: min_factor must be in (0, 1)");
  }
  if (options.tolerance <= 0.0) {
    throw std::invalid_argument("find_minimum_throttle: bad tolerance");
  }

  ThrottleResult result;

  // Full speed first — most workloads need no throttling at all.
  OftecResult at_full = probe(fp, full_power, leakage, options, 1.0);
  ++result.probes;
  if (at_full.success) {
    result.feasible = true;
    result.frequency_factor = 1.0;
    result.power_factor = 1.0;
    result.oftec = std::move(at_full);
    return result;
  }

  // Check the floor: if even the deepest allowed throttle fails, report so.
  OftecResult at_floor =
      probe(fp, full_power, leakage, options, options.min_factor);
  ++result.probes;
  if (!at_floor.success) {
    result.feasible = false;
    result.frequency_factor = options.min_factor;
    result.power_factor =
        std::pow(options.min_factor, options.power_exponent);
    result.oftec = std::move(at_floor);
    return result;
  }

  // Bisection on the frequency factor: lo always feasible, hi infeasible.
  double lo = options.min_factor;
  double hi = 1.0;
  OftecResult best = std::move(at_floor);
  while (hi - lo > options.tolerance) {
    const double mid = 0.5 * (lo + hi);
    OftecResult r = probe(fp, full_power, leakage, options, mid);
    ++result.probes;
    if (r.success) {
      lo = mid;
      best = std::move(r);
    } else {
      hi = mid;
    }
  }

  result.feasible = true;
  result.frequency_factor = lo;
  result.power_factor = std::pow(lo, options.power_exponent);
  result.oftec = std::move(best);
  return result;
}

}  // namespace oftec::core
