#include "core/dtm_loop.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "la/banded_lu.h"
#include "thermal/model.h"
#include "thermal/steady.h"
#include "util/obs.h"
#include "util/stopwatch.h"

namespace oftec::core {

namespace {

const obs::Counter g_obs_runs = obs::counter("dtm.runs");
const obs::Counter g_obs_periods = obs::counter("dtm.periods");
const obs::Counter g_obs_reoptimizations = obs::counter("dtm.reoptimizations");
// Per-control-period latency breakdown: total decision time, then its parts
// (workload windowing vs. the optimize/lookup that produces the setting).
const obs::Histogram g_obs_decide_ms =
    obs::histogram("dtm.decide_ms", obs::exponential_bounds(0.1, 2.0, 14));
const obs::Histogram g_obs_window_ms =
    obs::histogram("dtm.window_ms", obs::exponential_bounds(0.01, 2.0, 12));
const obs::Histogram g_obs_optimize_ms =
    obs::histogram("dtm.optimize_ms", obs::exponential_bounds(0.1, 2.0, 14));
const obs::Histogram g_obs_lookup_ms =
    obs::histogram("dtm.lookup_ms", obs::exponential_bounds(0.001, 2.0, 12));

/// Per-unit max over trace samples [begin, end).
power::PowerMap window_max(const workload::PowerTrace& trace,
                           const floorplan::Floorplan& fp, std::size_t begin,
                           std::size_t end) {
  power::PowerMap out(fp);
  for (std::size_t s = begin; s < end && s < trace.size(); ++s) {
    out.max_with(trace.samples[s]);
  }
  return out;
}

struct Setting {
  double omega = 0.0;
  double current = 0.0;
};

}  // namespace

DtmResult run_dtm_loop(const floorplan::Floorplan& fp,
                       const workload::PowerTrace& trace,
                       const power::LeakageModel& leakage,
                       const DtmOptions& options) {
  if (trace.samples.empty()) {
    throw std::invalid_argument("run_dtm_loop: empty trace");
  }
  if (options.policy == DtmPolicy::kLut && options.lut == nullptr) {
    throw std::invalid_argument("run_dtm_loop: LUT policy needs a table");
  }
  if (options.control_period <= 0.0 || options.time_step <= 0.0) {
    throw std::invalid_argument("run_dtm_loop: bad timing parameters");
  }
  OBS_SPAN("dtm.run");
  g_obs_runs.add();

  const thermal::ThermalModel model(options.system.package, fp,
                                    options.system.grid_nx,
                                    options.system.grid_ny);
  const auto leak_terms = model.cell_leakage(leakage);
  const double t_max = model.config().t_max;
  const double dt = options.time_step;
  const std::size_t cells = model.layout().cells_per_layer();
  const std::size_t n = model.layout().node_count();
  const la::Vector& cap = model.capacitances();

  // Per-sample cell power, computed lazily.
  std::vector<la::Vector> cell_power(trace.size());
  auto power_at = [&](std::size_t sample) -> const la::Vector& {
    sample = std::min(sample, trace.size() - 1);
    if (cell_power[sample].empty()) {
      cell_power[sample] = model.distribute(trace.samples[sample]);
    }
    return cell_power[sample];
  };

  const std::size_t samples_per_period = std::max<std::size_t>(
      1, static_cast<std::size_t>(options.control_period /
                                  trace.sample_interval));

  DtmResult result;

  // Control decision for the window starting at trace sample `begin`.
  auto decide = [&](std::size_t begin) -> Setting {
    OBS_SPAN("dtm.decide");
    g_obs_periods.add();
    const util::Stopwatch decide_watch;
    const power::PowerMap window =
        options.policy == DtmPolicy::kStatic
            ? window_max(trace, fp, 0, trace.size())
            : window_max(trace, fp, begin, begin + samples_per_period);
    if (obs::enabled()) g_obs_window_ms.observe(decide_watch.elapsed_ms());
    const util::Stopwatch watch;
    Setting setting;
    switch (options.policy) {
      case DtmPolicy::kLut: {
        const LutController::LookupResult hit = options.lut->lookup(window);
        setting = {hit.omega, hit.current};
        if (obs::enabled()) g_obs_lookup_ms.observe(watch.elapsed_ms());
        break;
      }
      case DtmPolicy::kExactOftec:
      case DtmPolicy::kStatic: {
        const CoolingSystem system(fp, window, leakage, options.system);
        const OftecResult r = run_oftec(system, options.oftec);
        setting = r.success ? Setting{r.omega, r.current}
                            : Setting{r.opt2_omega, r.opt2_current};
        if (obs::enabled()) g_obs_optimize_ms.observe(watch.elapsed_ms());
        break;
      }
    }
    result.control_time_ms += watch.elapsed_ms();
    ++result.reoptimizations;
    g_obs_reoptimizations.add();
    if (obs::enabled()) g_obs_decide_ms.observe(decide_watch.elapsed_ms());
    return setting;
  };

  // Initial state: steady at the first decision.
  Setting setting = decide(0);
  thermal::SteadySolver steady(model, power_at(0), leak_terms,
                               options.system.steady);
  const thermal::SteadyResult initial =
      steady.solve(setting.omega, setting.current);
  if (initial.runaway) {
    result.runaway = true;
    return result;
  }
  la::Vector temps = initial.temperatures;

  const auto total_steps = static_cast<std::size_t>(
      std::ceil(trace.duration() / dt));
  const std::size_t record_stride =
      std::max<std::size_t>(1, total_steps / 400);
  std::vector<power::TaylorCoefficients> taylor(cells);

  double power_acc = 0.0;
  std::size_t power_count = 0;

  for (std::size_t step = 0; step < total_steps; ++step) {
    const double time = static_cast<double>(step) * dt;
    const auto sample =
        static_cast<std::size_t>(time / trace.sample_interval);

    // Re-optimize at control-period boundaries (the first decision was
    // made before the loop).
    if (step > 0 && options.policy != DtmPolicy::kStatic &&
        sample % samples_per_period == 0 &&
        static_cast<std::size_t>((time - dt) / trace.sample_interval) %
                samples_per_period !=
            0) {
      setting = decide(sample);
    }

    OBS_SPAN("dtm.transient_step");
    const la::Vector chip = model.slab_temperatures(temps, thermal::Slab::kChip);
    for (std::size_t i = 0; i < cells; ++i) {
      taylor[i] = power::tangent_linearize(leak_terms[i], chip[i]);
    }
    thermal::AssembledSystem sys =
        model.assemble(setting.omega, setting.current, power_at(sample),
                       taylor);
    for (std::size_t i = 0; i < n; ++i) {
      const double c_dt = cap[i] / dt;
      sys.matrix.add(i, i, c_dt);
      sys.rhs[i] += c_dt * temps[i];
    }
    try {
      temps = la::BandedLu(sys.matrix).solve(sys.rhs);
    } catch (const std::runtime_error&) {
      result.runaway = true;
      return result;
    }

    const double max_chip =
        model.max_slab_temperature(temps, thermal::Slab::kChip);
    if (!std::isfinite(max_chip) || max_chip > 500.0) {
      result.runaway = true;
      return result;
    }
    result.peak_temperature = std::max(result.peak_temperature, max_chip);
    if (max_chip > t_max) result.violation_time += dt;

    const double cooling = model.leakage_power(temps, leak_terms) +
                           model.tec_power(temps, setting.current) +
                           model.config().fan.power(setting.omega);
    power_acc += cooling;
    ++power_count;

    if (step % record_stride == 0 || step + 1 == total_steps) {
      result.samples.push_back({time + dt, max_chip, setting.omega,
                                setting.current, cooling});
    }
  }

  result.average_cooling_power =
      power_count > 0 ? power_acc / static_cast<double>(power_count) : 0.0;
  return result;
}

}  // namespace oftec::core
