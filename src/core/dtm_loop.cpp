#include "core/dtm_loop.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "la/vector_ops.h"
#include "thermal/model.h"
#include "thermal/steady.h"
#include "thermal/transient_engine.h"
#include "util/obs.h"
#include "util/stopwatch.h"

namespace oftec::core {

namespace {

const obs::Counter g_obs_runs = obs::counter("dtm.runs");
const obs::Counter g_obs_periods = obs::counter("dtm.periods");
const obs::Counter g_obs_reoptimizations = obs::counter("dtm.reoptimizations");
// Per-control-period latency breakdown: total decision time, then its parts
// (workload windowing vs. the optimize/lookup that produces the setting).
const obs::Histogram g_obs_decide_ms =
    obs::histogram("dtm.decide_ms", obs::exponential_bounds(0.1, 2.0, 14));
const obs::Histogram g_obs_window_ms =
    obs::histogram("dtm.window_ms", obs::exponential_bounds(0.01, 2.0, 12));
const obs::Histogram g_obs_optimize_ms =
    obs::histogram("dtm.optimize_ms", obs::exponential_bounds(0.1, 2.0, 14));
const obs::Histogram g_obs_lookup_ms =
    obs::histogram("dtm.lookup_ms", obs::exponential_bounds(0.001, 2.0, 12));
const obs::Counter g_obs_fallbacks = obs::counter("dtm.fallback_decisions");
const obs::Counter g_obs_watchdog_trips = obs::counter("dtm.watchdog_trips");
// Factor-reuse economics of the fast transient path.
const obs::Counter g_obs_step_factorizations =
    obs::counter("dtm.step_factorizations");
const obs::Counter g_obs_step_factor_hits =
    obs::counter("dtm.step_factor_hits");

/// Per-unit max over trace samples [begin, end).
power::PowerMap window_max(const workload::PowerTrace& trace,
                           const floorplan::Floorplan& fp, std::size_t begin,
                           std::size_t end) {
  power::PowerMap out(fp);
  for (std::size_t s = begin; s < end && s < trace.size(); ++s) {
    out.max_with(trace.samples[s]);
  }
  return out;
}

struct Setting {
  double omega = 0.0;
  double current = 0.0;
};

/// A control setting together with the degradation rung that produced it.
struct Decision {
  Setting setting;
  ControllerTier tier = ControllerTier::kFailSafe;
};

}  // namespace

DtmResult run_dtm_loop(const floorplan::Floorplan& fp,
                       const workload::PowerTrace& trace,
                       const power::LeakageModel& leakage,
                       const DtmOptions& options) {
  if (trace.samples.empty()) {
    throw std::invalid_argument("run_dtm_loop: empty trace");
  }
  if (options.policy == DtmPolicy::kLut && options.lut == nullptr) {
    throw std::invalid_argument("run_dtm_loop: LUT policy needs a table");
  }
  if (options.control_period <= 0.0 || options.time_step <= 0.0) {
    throw std::invalid_argument("run_dtm_loop: bad timing parameters");
  }
  if (options.watchdog_patience == 0) {
    throw std::invalid_argument("run_dtm_loop: watchdog_patience must be >= 1");
  }
  if (!(options.failsafe_throttle > 0.0) || options.failsafe_throttle > 1.0) {
    throw std::invalid_argument(
        "run_dtm_loop: failsafe_throttle must be in (0, 1]");
  }
  if (options.fallback_grid_points < 2) {
    throw std::invalid_argument(
        "run_dtm_loop: fallback_grid_points must be >= 2");
  }
  if (!(options.relinearization_threshold >= 0.0)) {
    throw std::invalid_argument(
        "run_dtm_loop: relinearization_threshold must be >= 0");
  }
  OBS_SPAN("dtm.run");
  g_obs_runs.add();

  const thermal::ThermalModel model(options.system.package, fp,
                                    options.system.grid_nx,
                                    options.system.grid_ny);
  const auto leak_terms = model.cell_leakage(leakage);
  const double t_max = model.config().t_max;
  const double dt = options.time_step;

  // Fast transient path: the stepper reuses one banded factorization while
  // the held setting (and the leakage linearization) stays bit-constant —
  // per-step trace power only touches the right-hand side. The chip-only
  // runaway verdict is this loop's historical semantics (the TEC reject
  // side may legitimately exceed the all-node limit under max current).
  thermal::TransientStepper::Config stepper_cfg;
  stepper_cfg.runaway_temperature = 500.0;
  stepper_cfg.relinearization_threshold = options.relinearization_threshold;
  stepper_cfg.runaway_check = thermal::RunawayCheck::kChipOnly;
  thermal::TransientStepper stepper(model, leak_terms, stepper_cfg);
  // Counts flow to obs on every exit path (runaway returns included).
  struct StepperObsFlush {
    const thermal::TransientStepper& s;
    ~StepperObsFlush() {
      g_obs_step_factorizations.add(s.factorizations());
      g_obs_step_factor_hits.add(s.factor_hits());
    }
  } stepper_obs_flush{stepper};

  // Per-sample cell power, computed lazily.
  std::vector<la::Vector> cell_power(trace.size());
  auto power_at = [&](std::size_t sample) -> const la::Vector& {
    sample = std::min(sample, trace.size() - 1);
    if (cell_power[sample].empty()) {
      cell_power[sample] = model.distribute(trace.samples[sample]);
    }
    return cell_power[sample];
  };

  const std::size_t samples_per_period = std::max<std::size_t>(
      1, static_cast<std::size_t>(options.control_period /
                                  trace.sample_interval));

  DtmResult result;

  const Setting failsafe_setting{model.config().fan.max_speed, 0.0};

  // Control decision for the window starting at trace sample `begin`,
  // descending the degradation chain until a tier produces a setting. No
  // exception escapes: a tier that throws (bad inputs, injected allocation
  // failure, solver blow-up) simply yields to the next rung, and the
  // fail-safe rung always succeeds.
  auto decide = [&](std::size_t begin) -> Decision {
    OBS_SPAN("dtm.decide");
    g_obs_periods.add();
    const util::Stopwatch decide_watch;
    const power::PowerMap window =
        options.policy == DtmPolicy::kStatic
            ? window_max(trace, fp, 0, trace.size())
            : window_max(trace, fp, begin, begin + samples_per_period);
    if (obs::enabled()) g_obs_window_ms.observe(decide_watch.elapsed_ms());
    const util::Stopwatch watch;

    Decision decision{failsafe_setting, ControllerTier::kFailSafe};
    bool decided = false;

    // Lazily built, shared by the OFTEC-based tiers. Construction itself can
    // fail (that counts against the tier, not the loop).
    std::optional<CoolingSystem> system;
    const auto ensure_system = [&]() -> CoolingSystem* {
      if (!system) {
        try {
          system.emplace(fp, window, leakage, options.system);
        } catch (const std::exception&) {
          return nullptr;
        }
      }
      return &*system;
    };

    const auto try_oftec = [&](const OftecOptions& oopts,
                               ControllerTier tier) {
      CoolingSystem* sys = ensure_system();
      if (sys == nullptr) return;
      try {
        const OftecResult r = run_oftec(*sys, oopts);
        if (r.success) {
          decision = {{r.omega, r.current}, tier};
          decided = true;
        } else if (r.status == SolveStatus::kRunaway &&
                   std::isfinite(r.opt2_temperature)) {
          // Definitive verdict: no feasible operating point exists. The
          // temperature-minimizing setting is the best possible answer —
          // take it and let the violation accounting tell the truth.
          decision = {{r.opt2_omega, r.opt2_current}, tier};
          decided = true;
        }
        // Non-definitive failure (kNotConverged etc.): fall through.
      } catch (const std::exception&) {
        // Tier failed outright; fall through.
      }
    };

    const auto try_lut = [&](ControllerTier tier) {
      if (options.lut == nullptr) return;
      try {
        const LutController::LookupResult hit = options.lut->lookup(window);
        if (hit.feasible) {
          decision = {{hit.omega, hit.current}, tier};
          decided = true;
        }
      } catch (const std::exception&) {
      }
    };

    // Tier 1: the configured policy.
    switch (options.policy) {
      case DtmPolicy::kLut:
        try_lut(ControllerTier::kPrimary);
        if (obs::enabled()) g_obs_lookup_ms.observe(watch.elapsed_ms());
        break;
      case DtmPolicy::kExactOftec:
      case DtmPolicy::kStatic:
        try_oftec(options.oftec, ControllerTier::kPrimary);
        if (obs::enabled()) g_obs_optimize_ms.observe(watch.elapsed_ms());
        break;
    }
    // Tier 2: the LUT, when one is available and was not already tier 1.
    if (!decided && options.policy != DtmPolicy::kLut) {
      try_lut(ControllerTier::kLut);
    }
    // Tier 3: coarse exhaustive grid search — derivative-free, immune to the
    // line-search/QP failure modes of the gradient-based solvers.
    if (!decided) {
      OftecOptions grid = options.oftec;
      grid.solver = Solver::kGridSearch;
      grid.grid_points = options.fallback_grid_points;
      try_oftec(grid, ControllerTier::kGridSearch);
    }
    // Tier 4 is the pre-loaded fail-safe decision.

    if (decision.tier != ControllerTier::kPrimary) {
      ++result.fallback_decisions;
      g_obs_fallbacks.add();
    }
    result.control_time_ms += watch.elapsed_ms();
    ++result.reoptimizations;
    g_obs_reoptimizations.add();
    if (obs::enabled()) g_obs_decide_ms.observe(decide_watch.elapsed_ms());
    return decision;
  };

  // Initial state: steady at the first decision; when that operating point
  // has no stable state (or the solve fails), bring the system up fail-safe
  // with the workload throttled rather than refusing to run.
  Decision decision = decide(0);
  Setting setting = decision.setting;
  ControllerTier tier = decision.tier;
  bool failsafe_active = tier == ControllerTier::kFailSafe;

  thermal::SteadyResult initial =
      thermal::SteadySolver(model, power_at(0), leak_terms,
                            options.system.steady)
          .solve(setting.omega, setting.current);
  if (initial.status != SolveStatus::kOk) {
    failsafe_active = true;
    tier = ControllerTier::kFailSafe;
    setting = failsafe_setting;
    ++result.watchdog_trips;
    g_obs_watchdog_trips.add();
    la::Vector throttled = power_at(0);
    la::scale(options.failsafe_throttle, throttled);
    initial = thermal::SteadySolver(model, throttled, leak_terms,
                                    options.system.steady)
                  .solve(setting.omega, setting.current);
    if (initial.status != SolveStatus::kOk) {
      result.runaway = true;
      result.status = ControlStatus::kRunaway;
      return result;
    }
  }
  stepper.reset(initial.temperatures);

  const auto total_steps = static_cast<std::size_t>(
      std::ceil(trace.duration() / dt));
  const std::size_t record_stride =
      std::max<std::size_t>(1, total_steps / 400);

  double power_acc = 0.0;
  std::size_t power_count = 0;

  // Watchdog state: consecutive steps that are both above T_max and not
  // cooling down. Bounded reaction time: patience · dt after the first hot
  // step, the fail-safe tier is in charge.
  std::size_t hot_streak = 0;
  double prev_max_chip = model.config().ambient;

  // One backward-Euler step under setting `s` with cell power `p`. False —
  // leaving the state unchanged, so a fail-safe retry re-integrates from the
  // same temperatures — when the step matrix is singular or the stepped
  // state fails the chip-only runaway verdict (no exception escapes).
  const auto integrate = [&](const Setting& s, const la::Vector& p) -> bool {
    return stepper.step({s.omega, s.current}, p, dt);
  };

  la::Vector throttled_power;  // scratch for the fail-safe power scaling

  for (std::size_t step = 0; step < total_steps; ++step) {
    const double time = static_cast<double>(step) * dt;
    const auto sample =
        static_cast<std::size_t>(time / trace.sample_interval);

    // Re-optimize at control-period boundaries (the first decision was
    // made before the loop). A fresh decision also releases fail-safe —
    // if the new setting overheats, the watchdog re-trips within bounds.
    if (step > 0 && options.policy != DtmPolicy::kStatic &&
        sample % samples_per_period == 0 &&
        static_cast<std::size_t>((time - dt) / trace.sample_interval) %
                samples_per_period !=
            0) {
      decision = decide(sample);
      setting = decision.setting;
      tier = decision.tier;
      failsafe_active = tier == ControllerTier::kFailSafe;
      hot_streak = 0;
    }

    OBS_SPAN("dtm.transient_step");
    const la::Vector* step_power = &power_at(sample);
    if (failsafe_active) {
      throttled_power = *step_power;
      la::scale(options.failsafe_throttle, throttled_power);
      step_power = &throttled_power;
    }

    if (!integrate(setting, *step_power)) {
      if (failsafe_active) {
        // Diverged even under max cooling and a throttled workload.
        result.runaway = true;
        result.status = ControlStatus::kRunaway;
        return result;
      }
      // Retry the step once under fail-safe before giving up: a singular or
      // exploding step at an aggressive setting is often integrable at max
      // fan with the workload throttled.
      failsafe_active = true;
      tier = ControllerTier::kFailSafe;
      setting = failsafe_setting;
      ++result.watchdog_trips;
      g_obs_watchdog_trips.add();
      hot_streak = 0;
      throttled_power = power_at(sample);
      la::scale(options.failsafe_throttle, throttled_power);
      if (!integrate(setting, throttled_power)) {
        result.runaway = true;
        result.status = ControlStatus::kRunaway;
        return result;
      }
    }

    const double max_chip = stepper.max_chip_temperature();
    result.peak_temperature = std::max(result.peak_temperature, max_chip);
    if (max_chip > t_max) result.violation_time += dt;
    if (failsafe_active) result.failsafe_time += dt;

    // Watchdog: trip to fail-safe after `patience` consecutive hot,
    // non-cooling steps; release once safely below T_max.
    if (max_chip > t_max && max_chip >= prev_max_chip) {
      ++hot_streak;
    } else {
      hot_streak = 0;
    }
    prev_max_chip = max_chip;
    if (!failsafe_active && hot_streak >= options.watchdog_patience) {
      failsafe_active = true;
      tier = ControllerTier::kFailSafe;
      setting = failsafe_setting;
      ++result.watchdog_trips;
      g_obs_watchdog_trips.add();
      hot_streak = 0;
    } else if (failsafe_active &&
               max_chip < t_max - options.watchdog_release_margin &&
               decision.tier != ControllerTier::kFailSafe) {
      // Cool again: hand control back to the last real decision. If it
      // overheats once more the watchdog re-trips, so oscillation stays
      // bounded and every trip is counted.
      failsafe_active = false;
      setting = decision.setting;
      tier = decision.tier;
    }

    const double cooling = stepper.leakage_power() +
                           stepper.tec_power(setting.current) +
                           model.config().fan.power(setting.omega);
    power_acc += cooling;
    ++power_count;

    if (step % record_stride == 0 || step + 1 == total_steps) {
      result.samples.push_back({time + dt, max_chip, setting.omega,
                                setting.current, cooling, tier});
    }
  }

  result.average_cooling_power =
      power_count > 0 ? power_acc / static_cast<double>(power_count) : 0.0;
  // Honest verdict: fail-safe involvement dominates, then any degradation —
  // a run with violation time or fallback decisions is never kOk.
  if (result.watchdog_trips > 0 || result.failsafe_time > 0.0) {
    result.status = ControlStatus::kFailSafe;
  } else if (result.fallback_decisions > 0 || result.violation_time > 0.0) {
    result.status = ControlStatus::kDegraded;
  } else {
    result.status = ControlStatus::kOk;
  }
  return result;
}

}  // namespace oftec::core
