#include "core/transient_boost.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "thermal/transient_engine.h"

namespace oftec::core {

BoostExperiment run_transient_boost(const CoolingSystem& system,
                                    double omega_star, double current_star,
                                    const BoostOptions& options) {
  if (!system.has_tec()) {
    throw std::invalid_argument("run_transient_boost: expected hybrid system");
  }
  const double i_max = system.current_max();
  const double boosted =
      std::min(current_star + options.boost_current, i_max);

  // Steady state at the operating point = initial condition.
  const thermal::SteadyResult steady =
      system.solver().solve(omega_star, current_star);
  if (steady.runaway) {
    throw std::invalid_argument(
        "run_transient_boost: operating point is in thermal runaway");
  }

  thermal::TransientOptions topt = options.transient;
  topt.duration = options.boost_duration + options.settle_duration;

  const thermal::TransientEngine engine(system.thermal_model(),
                                        system.cell_dynamic_power(),
                                        system.cell_leakage(), topt);

  // The boosted trace and its control are independent — fan them through
  // run_batch (bit-identical to running them serially). Jobs capture by
  // value: each may execute on a different pool thread.
  const double boost_duration = options.boost_duration;
  std::vector<thermal::TransientJob> jobs(2);
  jobs[0].control = [omega_star, boosted, current_star, boost_duration](
                        double time, double) -> thermal::ControlSetting {
    const double current = time < boost_duration ? boosted : current_star;
    return {omega_star, current};
  };
  jobs[0].initial_temperatures = steady.temperatures;
  jobs[0].options = topt;
  jobs[1].control = [omega_star, current_star](
                        double, double) -> thermal::ControlSetting {
    return {omega_star, current_star};
  };
  jobs[1].initial_temperatures = steady.temperatures;
  jobs[1].options = topt;

  BoostExperiment exp;
  exp.steady_temperature = steady.max_chip_temperature;
  std::vector<thermal::TransientResult> results = engine.run_batch(jobs);
  exp.trace = std::move(results[0]);
  exp.control = std::move(results[1]);

  exp.min_boost_temperature = exp.steady_temperature;
  exp.post_boost_peak = exp.steady_temperature;
  for (const thermal::TransientSample& s : exp.trace.samples) {
    if (s.time <= options.boost_duration) {
      if (s.max_chip_temperature < exp.min_boost_temperature) {
        exp.min_boost_temperature = s.max_chip_temperature;
        exp.time_of_minimum = s.time;
      }
    } else {
      exp.post_boost_peak =
          std::max(exp.post_boost_peak, s.max_chip_temperature);
    }
  }
  exp.transient_benefit = exp.steady_temperature - exp.min_boost_temperature;
  return exp;
}

}  // namespace oftec::core
