#include "core/transient_boost.h"

#include <algorithm>
#include <stdexcept>

namespace oftec::core {

BoostExperiment run_transient_boost(const CoolingSystem& system,
                                    double omega_star, double current_star,
                                    const BoostOptions& options) {
  if (!system.has_tec()) {
    throw std::invalid_argument("run_transient_boost: expected hybrid system");
  }
  const double i_max = system.current_max();
  const double boosted =
      std::min(current_star + options.boost_current, i_max);

  // Steady state at the operating point = initial condition.
  const thermal::SteadyResult steady =
      system.solver().solve(omega_star, current_star);
  if (steady.runaway) {
    throw std::invalid_argument(
        "run_transient_boost: operating point is in thermal runaway");
  }

  thermal::TransientOptions topt = options.transient;
  topt.duration = options.boost_duration + options.settle_duration;

  thermal::TransientSolver transient(system.thermal_model(),
                                     system.cell_dynamic_power(),
                                     system.cell_leakage(), topt);

  const thermal::ControlSchedule boosted_schedule =
      [&](double time) -> thermal::ControlSetting {
    const double current =
        time < options.boost_duration ? boosted : current_star;
    return {omega_star, current};
  };
  const thermal::ControlSchedule control_schedule =
      [&](double) -> thermal::ControlSetting {
    return {omega_star, current_star};
  };

  BoostExperiment exp;
  exp.steady_temperature = steady.max_chip_temperature;
  exp.trace = transient.run(boosted_schedule, steady.temperatures);
  exp.control = transient.run(control_schedule, steady.temperatures);

  exp.min_boost_temperature = exp.steady_temperature;
  exp.post_boost_peak = exp.steady_temperature;
  for (const thermal::TransientSample& s : exp.trace.samples) {
    if (s.time <= options.boost_duration) {
      if (s.max_chip_temperature < exp.min_boost_temperature) {
        exp.min_boost_temperature = s.max_chip_temperature;
        exp.time_of_minimum = s.time;
      }
    } else {
      exp.post_boost_peak =
          std::max(exp.post_boost_peak, s.max_chip_temperature);
    }
  }
  exp.transient_benefit = exp.steady_temperature - exp.min_boost_temperature;
  return exp;
}

}  // namespace oftec::core
