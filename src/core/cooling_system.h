// CoolingSystem: the facade the optimizers drive.
//
// Binds one workload (max dynamic-power map + leakage model) to one package
// on one floorplan, and evaluates the two quantities OFTEC's formulations
// need at a given (ω, I_TEC):
//   𝒯(ω, I) — maximum chip-layer temperature (Optimization 2 objective,
//              Optimization 1 constraint), +inf in thermal runaway;
//   𝒫(ω, I) — cooling-related power P_leakage + P_TEC + P_fan (Eq. 10).
// Evaluations are memoized: the SQP evaluates 𝒯 and 𝒫 at identical points
// (objective + constraint + finite differences), and each uncached point
// costs a full nonlinear thermal solve.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "floorplan/floorplan.h"
#include "package/package_config.h"
#include "power/leakage.h"
#include "power/power_map.h"
#include "thermal/model.h"
#include "thermal/solve_engine.h"
#include "thermal/steady.h"

namespace oftec::core {

/// Cooling-power breakdown (the three terms of Eq. 10).
struct CoolingBreakdown {
  double leakage = 0.0;  ///< Σ p_leak over chip cells, exact exponential [W]
  double tec = 0.0;      ///< Eq. 3 over the array [W]
  double fan = 0.0;      ///< Eq. 8 [W]

  [[nodiscard]] double total() const noexcept { return leakage + tec + fan; }
};

/// One evaluated operating point.
struct Evaluation {
  bool runaway = false;
  /// Structured solver outcome. runaway=true covers both "physically no
  /// fixed point" (kRunaway) and "the numerics failed" (kNotConverged /
  /// kNumericalError / kSingular); fallback layers branch on the distinction.
  SolveStatus status = SolveStatus::kNotConverged;
  double max_chip_temperature = 0.0;  ///< 𝒯 [K]; +inf when runaway
  CoolingBreakdown power;             ///< valid only when !runaway
  std::size_t solver_iterations = 0;

  /// 𝒫 [K]; +inf when runaway.
  [[nodiscard]] double cooling_power() const noexcept;
};

/// Convert a steady-state solve at fan speed ω into the Evaluation the
/// optimizers consume. This is the one place the 𝒯/𝒫 summary is derived
/// from a SteadyResult — CoolingSystem::evaluate and the serving layer's
/// batched path both call it, so a served response is bit-identical to a
/// direct library call.
[[nodiscard]] Evaluation make_evaluation(const thermal::ThermalModel& model,
                                         const thermal::SteadyResult& result,
                                         double omega);

class CoolingSystem {
 public:
  struct Config {
    package::PackageConfig package;  ///< default-constructed → paper_default()
    std::size_t grid_nx = 10;
    std::size_t grid_ny = 10;
    thermal::SteadyOptions steady;
    /// Options for the batched SolveEngine behind evaluate(). In particular
    /// use_iterative=false forces every solve through the cached direct
    /// factorization path (the serving benchmark uses this to surface the
    /// factor cache).
    thermal::EngineOptions engine;
    std::size_t cache_limit = 1 << 14;
    /// Explicit TEC placement; empty → the paper's default policy (cover
    /// every core-majority cell).
    std::optional<std::vector<bool>> tec_coverage;

    Config() : package(package::PackageConfig::paper_default()) {}
  };

  /// The floorplan and models are copied/bound; `fp` must outlive the system.
  CoolingSystem(const floorplan::Floorplan& fp,
                const power::PowerMap& dynamic_power,
                const power::LeakageModel& leakage, Config config = {});

  /// Evaluate (memoized). ω in [0, ω_max] rad/s, I in [0, I_max] A; I must be
  /// 0 for packages without TECs.
  ///
  /// Solves run through the batched SolveEngine from a fixed initial guess,
  /// so every evaluation is a pure function of (ω, I): results are identical
  /// regardless of call order or thread count. Safe to call concurrently;
  /// the returned reference stays valid until the memo cache overflows
  /// `cache_limit` entries and is evicted wholesale — callers that hold
  /// references across that many distinct evaluations must copy.
  [[nodiscard]] const Evaluation& evaluate(double omega, double current) const;

  [[nodiscard]] double t_max() const noexcept;     ///< [K]
  [[nodiscard]] double ambient() const noexcept;   ///< [K]
  [[nodiscard]] double omega_max() const noexcept; ///< [rad/s]
  [[nodiscard]] double current_max() const noexcept;  ///< [A]; 0 if no TECs
  [[nodiscard]] bool has_tec() const noexcept;

  [[nodiscard]] const thermal::ThermalModel& thermal_model() const noexcept {
    return *model_;
  }
  [[nodiscard]] const thermal::SteadySolver& solver() const noexcept {
    return *solver_;
  }
  /// The batched engine backing evaluate() — exposed so sweeps can fan
  /// whole operating-point batches without round-tripping the memo cache.
  [[nodiscard]] const thermal::SolveEngine& engine() const noexcept {
    return *engine_;
  }
  /// Per-cell inputs (for transient experiments sharing this workload).
  [[nodiscard]] const la::Vector& cell_dynamic_power() const noexcept;
  [[nodiscard]] const std::vector<power::ExponentialTerm>& cell_leakage()
      const noexcept;

  [[nodiscard]] std::size_t evaluation_count() const noexcept {
    return solve_count_;
  }
  [[nodiscard]] std::size_t cache_hits() const noexcept { return cache_hits_; }

 private:
  std::unique_ptr<thermal::ThermalModel> model_;
  std::unique_ptr<thermal::SteadySolver> solver_;
  std::unique_ptr<thermal::SolveEngine> engine_;
  std::size_t cache_limit_;
  mutable std::mutex mutex_;  // guards cache_ and the counters
  mutable std::map<std::pair<double, double>, Evaluation> cache_;
  mutable std::size_t solve_count_ = 0;
  mutable std::size_t cache_hits_ = 0;
};

}  // namespace oftec::core
