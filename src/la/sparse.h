// Compressed-sparse-row matrix with a triplet (COO) builder.
//
// The thermal network assembler emits (row, col, value) triplets; the builder
// coalesces duplicates and produces a CSR matrix for matvec-based iterative
// solvers and for conversion to band storage for the direct solver.
#pragma once

#include <cstddef>
#include <vector>

#include "la/banded_matrix.h"
#include "la/vector_ops.h"

namespace oftec::la {

/// One (row, col, value) entry of a matrix under construction.
struct Triplet {
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 0.0;
};

class CsrMatrix;

/// Accumulates triplets; duplicates are summed on build().
class TripletBuilder {
 public:
  explicit TripletBuilder(std::size_t n) : n_(n) {}

  /// Add `v` at (r, c). Throws std::out_of_range for bad indices.
  void add(std::size_t r, std::size_t c, double v);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::size_t triplet_count() const noexcept {
    return triplets_.size();
  }

  /// Coalesce into a CSR matrix.
  [[nodiscard]] CsrMatrix build() const;

 private:
  std::size_t n_ = 0;
  std::vector<Triplet> triplets_;
};

/// Square CSR matrix.
class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(std::size_t n, std::vector<std::size_t> row_ptr,
            std::vector<std::size_t> col_idx, std::vector<double> values);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return values_.size(); }

  /// y = A x.
  [[nodiscard]] Vector multiply(const Vector& x) const;

  /// Fused matvec + dot: y = A x (y is resized) and returns Σ x[r]·y[r],
  /// accumulated in ascending row order as each y[r] completes — the same
  /// sequential arithmetic as multiply() followed by a scalar dot, with one
  /// pass over x/y instead of two. Allocation-free once y has capacity.
  double multiply_dot(const Vector& x, Vector& y) const;

  /// Fused residual: r = b − A x (r is resized), each r[i] computed as
  /// b[i] − (A x)[i] — bit-identical to multiply() followed by
  /// axpy(−1, ax, r). Allocation-free once r has capacity. This is the
  /// warm-start residual evaluation of the iterative solvers.
  void residual_into(const Vector& b, const Vector& x, Vector& r) const;

  /// Diagonal entries (0 where absent) — Jacobi preconditioner input.
  [[nodiscard]] Vector diagonal() const;

  /// Entry (r, c), 0 if not stored.
  [[nodiscard]] double get(std::size_t r, std::size_t c) const;

  /// Maximum of max(r−c) and max(c−r) over stored nonzeros — the band
  /// widths needed to hold this matrix.
  [[nodiscard]] std::pair<std::size_t, std::size_t> bandwidths() const;

  /// Convert to band storage (for BandedLu). Throws if an entry falls outside
  /// the provided bandwidths.
  [[nodiscard]] BandedMatrix to_banded(std::size_t kl, std::size_t ku) const;

  /// True if A is structurally and numerically symmetric within tol.
  [[nodiscard]] bool is_symmetric(double tol = 1e-12) const;

  [[nodiscard]] const std::vector<std::size_t>& row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<std::size_t>& col_idx() const noexcept {
    return col_idx_;
  }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

  /// Mutable access to the stored values. The sparsity pattern is fixed;
  /// this is the hook incremental assemblers use to re-stamp a matrix whose
  /// structure is constant across operating points (diagonal-only updates).
  [[nodiscard]] std::vector<double>& mutable_values() noexcept {
    return values_;
  }

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

/// Extract the nonzeros of a banded matrix into CSR form (used to hand the
/// thermal system to the iterative solvers).
[[nodiscard]] CsrMatrix banded_to_csr(const BandedMatrix& banded,
                                      double drop_tolerance = 0.0);

}  // namespace oftec::la
