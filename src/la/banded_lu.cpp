#include "la/banded_lu.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace oftec::la {

BandedLu::BandedLu(BandedMatrix a) : ab_(std::move(a)) { factor(); }

void BandedLu::refactorize_swap(BandedMatrix& a) {
  std::swap(ab_, a);
  factor();
}

void BandedLu::factor() {
  valid_ = false;
  const std::size_t n = ab_.size();
  const std::size_t kl = ab_.lower_bandwidth();
  const std::size_t ku = ab_.upper_bandwidth();
  const std::size_t kv = kl + ku;  // effective upper bandwidth after pivoting
  ipiv_.resize(n);
  min_pivot_ = std::numeric_limits<double>::infinity();

  for (std::size_t j = 0; j < n; ++j) {
    // Number of sub-diagonal entries in column j.
    const std::size_t km = std::min(kl, n - 1 - j);

    // Partial pivoting within the column's band.
    std::size_t p = 0;
    double best = std::abs(ab_.storage(kv, j));
    for (std::size_t r = 1; r <= km; ++r) {
      const double v = std::abs(ab_.storage(kv + r, j));
      if (v > best) {
        best = v;
        p = r;
      }
    }
    ipiv_[j] = j + p;
    if (best == 0.0) {
      throw std::runtime_error("BandedLu: singular matrix");
    }
    min_pivot_ = std::min(min_pivot_, best);

    if (p != 0) {
      // Swap rows j and j+p across columns j..min(n-1, j+kv).
      const std::size_t c_hi = std::min(n - 1, j + kv);
      for (std::size_t c = j; c <= c_hi; ++c) {
        std::swap(ab_.storage(kv + j - c, c), ab_.storage(kv + j + p - c, c));
      }
    }

    // Compute multipliers.
    const double inv_pivot = 1.0 / ab_.storage(kv, j);
    for (std::size_t r = 1; r <= km; ++r) {
      ab_.storage(kv + r, j) *= inv_pivot;
    }

    // Rank-1 update of the trailing band.
    const std::size_t c_hi = std::min(n - 1, j + kv);
    for (std::size_t c = j + 1; c <= c_hi; ++c) {
      const double u_jc = ab_.storage(kv + j - c, c);
      if (u_jc == 0.0) continue;
      for (std::size_t r = 1; r <= km; ++r) {
        ab_.storage(kv + j + r - c, c) -= ab_.storage(kv + r, j) * u_jc;
      }
    }
  }
  valid_ = true;
}

Vector BandedLu::solve(const Vector& b) const {
  Vector x = b;
  solve_in_place(x);
  return x;
}

void BandedLu::solve_in_place(Vector& x) const {
  if (!valid_) {
    throw std::logic_error("BandedLu::solve: no valid factorization");
  }
  const std::size_t n = ab_.size();
  if (x.size() != n) {
    throw std::invalid_argument("BandedLu::solve: size mismatch");
  }
  const std::size_t kl = ab_.lower_bandwidth();
  const std::size_t ku = ab_.upper_bandwidth();
  const std::size_t kv = kl + ku;

  // Apply P and L (forward substitution).
  for (std::size_t j = 0; j < n; ++j) {
    if (ipiv_[j] != j) std::swap(x[j], x[ipiv_[j]]);
    const std::size_t km = std::min(kl, n - 1 - j);
    const double xj = x[j];
    if (xj == 0.0) continue;
    for (std::size_t r = 1; r <= km; ++r) {
      x[j + r] -= ab_.storage(kv + r, j) * xj;
    }
  }
  // Back substitution with U (bandwidth kv).
  for (std::size_t jj = n; jj-- > 0;) {
    double acc = x[jj];
    const std::size_t c_hi = std::min(n - 1, jj + kv);
    for (std::size_t c = jj + 1; c <= c_hi; ++c) {
      acc -= ab_.storage(kv + jj - c, c) * x[c];
    }
    x[jj] = acc / ab_.storage(kv, jj);
  }
}

Vector solve_banded(const BandedMatrix& a, const Vector& b) {
  return BandedLu(a).solve(b);
}

}  // namespace oftec::la
