#include "la/banded_lu.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "la/backend.h"

namespace oftec::la {

BandedLu::BandedLu(BandedMatrix a) : ab_(std::move(a)) { factor(); }

void BandedLu::refactorize_swap(BandedMatrix& a) {
  std::swap(ab_, a);
  factor();
}

// Panel-blocked dgbtrf-style factorization (panels of kLuPanel columns).
//
// The seed walked one column at a time, sweeping every trailing band column
// per step — O(n·kv·kl) memory traffic that blows the cache at large
// bandwidths. The blocked version factors a panel with updates restricted to
// panel columns, then visits each deferred trailing column exactly once and
// applies the whole panel's worth of swaps and updates to it while it sits
// in L1 — traffic drops by ~the panel width.
//
// Bit-safety: per individual band entry the operations and their order are
// exactly the seed's, only interleaved differently across independent
// columns, so factorizations stay bit-identical to the seed under the scalar
// backend (goldens enforce this) and across backends for the element-wise
// parts. Two deferred-column flavors keep that true under pivoting:
//   - panel had no row interchanges (the common case for the thermal
//     matrices): the U-block rows resolve sequentially, and the below-panel
//     rows batch into one panel_update — per element the same multiply-then-
//     add sequence as the seed's per-step axpys, with the seed's exact-zero
//     skip (len 0) preserved so untouched signed zeros keep their bits.
//   - panel pivoted: the column replays the seed's interleaved swap/update
//     sequence verbatim (swaps do not commute past updates, so no batching).
// The pivot search stays scalar: its strict-greater tie-breaking picks the
// *first* maximal entry, an order-dependent choice no reduction may alter.
void BandedLu::factor() {
  const BackendOps& ops = backend();
  valid_ = false;
  const std::size_t n = ab_.size();
  const std::size_t kl = ab_.lower_bandwidth();
  const std::size_t ku = ab_.upper_bandwidth();
  const std::size_t kv = kl + ku;  // effective upper bandwidth after pivoting
  ipiv_.resize(n);
  min_pivot_ = std::numeric_limits<double>::infinity();

  constexpr std::size_t kLuPanel = 16;
  double alpha[kLuPanel];
  const double* xs[kLuPanel];
  std::size_t lens[kLuPanel];

  for (std::size_t j0 = 0; j0 < n; j0 += kLuPanel) {
    const std::size_t jP = std::min(n, j0 + kLuPanel);
    bool panel_pivoted = false;

    // --- Panel factorization: the seed's dgbtf2 step with row swaps and
    // --- trailing updates restricted to columns < jP.
    for (std::size_t j = j0; j < jP; ++j) {
      // Number of sub-diagonal entries in column j.
      const std::size_t km = std::min(kl, n - 1 - j);
      double* colj = ab_.col_ptr(j) + kv;  // colj[r] = A(j+r, j), r = 0..km

      // Partial pivoting within the column's band.
      std::size_t p = 0;
      double best = std::abs(colj[0]);
      for (std::size_t r = 1; r <= km; ++r) {
        const double v = std::abs(colj[r]);
        if (v > best) {
          best = v;
          p = r;
        }
      }
      ipiv_[j] = j + p;
      if (best == 0.0) {
        throw std::runtime_error("BandedLu: singular matrix");
      }
      min_pivot_ = std::min(min_pivot_, best);

      const std::size_t c_hi = std::min(jP - 1, j + kv);
      if (p != 0) {
        panel_pivoted = true;
        for (std::size_t c = j; c <= c_hi; ++c) {
          std::swap(ab_.storage(kv + j - c, c),
                    ab_.storage(kv + j + p - c, c));
        }
      }

      // Compute multipliers.
      const double inv_pivot = 1.0 / colj[0];
      ops.scale(km, inv_pivot, colj + 1);

      // In-panel trailing update: column c gains (-u_jc) · L(:,j).
      for (std::size_t c = j + 1; c <= c_hi; ++c) {
        const double u_jc = ab_.storage(kv + j - c, c);
        // Skipping exact zeros preserves the seed's signed-zero bits in the
        // untouched entries (adding -0.0 could flip a stored -0.0 to +0.0).
        if (u_jc == 0.0) continue;
        ops.axpy(km, -u_jc, colj + 1, ab_.col_ptr(c) + (kv + j - c) + 1);
      }
    }

    // --- Deferred trailing columns, each visited once.
    const std::size_t c_last = std::min(n - 1, jP - 1 + kv);
    for (std::size_t c = jP; c <= c_last; ++c) {
      const std::size_t j_lo = std::max(j0, c > kv ? c - kv : 0);
      double* colc = ab_.col_ptr(c);

      if (panel_pivoted) {
        // Replay the seed's interleaved sequence for this column.
        for (std::size_t j = j_lo; j < jP; ++j) {
          const std::size_t pj = ipiv_[j] - j;
          if (pj != 0) std::swap(colc[kv + j - c], colc[kv + j + pj - c]);
          const double u = colc[kv + j - c];
          if (u == 0.0) continue;
          ops.axpy(std::min(kl, n - 1 - j), -u, ab_.col_ptr(j) + kv + 1,
                   colc + (kv + j - c) + 1);
        }
        continue;
      }

      // No interchanges in this panel: resolve the U-block rows
      // sequentially (row q depends on updates from all j < q), then batch
      // the below-panel rows — every source starts at row jP — into one
      // panel_update.
      std::size_t np = 0;
      for (std::size_t q = j_lo; q < jP; ++q) {
        const double u = colc[kv + q - c];
        if (u == 0.0) continue;  // seed's exact-zero skip
        const std::size_t km = std::min(kl, n - 1 - q);
        const double* colq = ab_.col_ptr(q) + kv;
        const double nu = -u;
        const std::size_t r_hi = std::min(jP - 1, q + km);
        for (std::size_t r = q + 1; r <= r_hi; ++r) {
          colc[kv + r - c] += nu * colq[r - q];
        }
        if (q + km >= jP) {
          alpha[np] = nu;
          xs[np] = colq + (jP - q);
          lens[np] = q + km - jP + 1;
          ++np;
        }
      }
      if (np != 0) {
        ops.panel_update(np, alpha, xs, lens, colc + (kv + jP - c));
      }
    }
  }
  valid_ = true;
}

Vector BandedLu::solve(const Vector& b) const {
  Vector x = b;
  solve_in_place(x);
  return x;
}

void BandedLu::solve_in_place(Vector& x) const {
  if (!valid_) {
    throw std::logic_error("BandedLu::solve: no valid factorization");
  }
  const BackendOps& ops = backend();
  const std::size_t n = ab_.size();
  if (x.size() != n) {
    throw std::invalid_argument("BandedLu::solve: size mismatch");
  }
  const std::size_t kl = ab_.lower_bandwidth();
  const std::size_t ku = ab_.upper_bandwidth();
  const std::size_t kv = kl + ku;
  const std::size_t rows = ab_.storage_rows();

  // Apply P and L (forward substitution): x[j+1..j+km] -= xj · L(:,j),
  // contiguous on both sides.
  for (std::size_t j = 0; j < n; ++j) {
    if (ipiv_[j] != j) std::swap(x[j], x[ipiv_[j]]);
    const std::size_t km = std::min(kl, n - 1 - j);
    const double xj = x[j];
    if (xj == 0.0) continue;
    ops.axpy(km, -xj, ab_.col_ptr(j) + kv + 1, x.data() + j + 1);
  }
  // Back substitution with U (bandwidth kv). Walking row jj rightwards
  // moves one column over and one band-row up: stride rows-1 through the
  // storage, against contiguous x.
  for (std::size_t jj = n; jj-- > 0;) {
    const std::size_t c_hi = std::min(n - 1, jj + kv);
    const std::size_t len = c_hi - jj;
    const double acc =
        len == 0 ? x[jj]
                 : ops.nmsub_fold(x[jj], len, ab_.col_ptr(jj + 1) + kv - 1,
                                  static_cast<std::ptrdiff_t>(rows) - 1,
                                  x.data() + jj + 1, 1);
    x[jj] = acc / ab_.storage(kv, jj);
  }
}

Vector solve_banded(const BandedMatrix& a, const Vector& b) {
  return BandedLu(a).solve(b);
}

}  // namespace oftec::la
