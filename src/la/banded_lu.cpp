#include "la/banded_lu.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "la/backend.h"

namespace oftec::la {

BandedLu::BandedLu(BandedMatrix a) : ab_(std::move(a)) { factor(); }

void BandedLu::refactorize_swap(BandedMatrix& a) {
  std::swap(ab_, a);
  factor();
}

// With column-major band storage, column j's entries ab_(kv..kv+km, j) are
// contiguous, so the multiplier scaling and each trailing-column update are
// unit-stride backend kernels. The arithmetic per element — multiply by the
// reciprocal pivot; y -= l*u, realized as y += (-u)*l, which is the same
// IEEE operation — matches the seed loops exactly, so factorizations are
// bit-identical under the scalar backend (goldens enforce this). The pivot
// search stays scalar: its strict-greater tie-breaking picks the *first*
// maximal entry, an order-dependent choice no reduction tree may alter.
void BandedLu::factor() {
  const BackendOps& ops = backend();
  valid_ = false;
  const std::size_t n = ab_.size();
  const std::size_t kl = ab_.lower_bandwidth();
  const std::size_t ku = ab_.upper_bandwidth();
  const std::size_t kv = kl + ku;  // effective upper bandwidth after pivoting
  ipiv_.resize(n);
  min_pivot_ = std::numeric_limits<double>::infinity();

  for (std::size_t j = 0; j < n; ++j) {
    // Number of sub-diagonal entries in column j.
    const std::size_t km = std::min(kl, n - 1 - j);
    double* colj = ab_.col_ptr(j) + kv;  // colj[r] = A(j+r, j), r = 0..km

    // Partial pivoting within the column's band.
    std::size_t p = 0;
    double best = std::abs(colj[0]);
    for (std::size_t r = 1; r <= km; ++r) {
      const double v = std::abs(colj[r]);
      if (v > best) {
        best = v;
        p = r;
      }
    }
    ipiv_[j] = j + p;
    if (best == 0.0) {
      throw std::runtime_error("BandedLu: singular matrix");
    }
    min_pivot_ = std::min(min_pivot_, best);

    if (p != 0) {
      // Swap rows j and j+p across columns j..min(n-1, j+kv). Row entries
      // sit one step below the previous column's, so this walk is strided —
      // it stays a scalar loop (length ≤ kv+1).
      const std::size_t c_hi = std::min(n - 1, j + kv);
      for (std::size_t c = j; c <= c_hi; ++c) {
        std::swap(ab_.storage(kv + j - c, c), ab_.storage(kv + j + p - c, c));
      }
    }

    // Compute multipliers.
    const double inv_pivot = 1.0 / colj[0];
    ops.scale(km, inv_pivot, colj + 1);

    // Rank-1 update of the trailing band: column c gains (-u_jc) · L(:,j),
    // both sides contiguous.
    const std::size_t c_hi = std::min(n - 1, j + kv);
    for (std::size_t c = j + 1; c <= c_hi; ++c) {
      const double u_jc = ab_.storage(kv + j - c, c);
      // Skipping exact zeros preserves the seed's signed-zero bits in the
      // untouched entries (adding -0.0 could flip a stored -0.0 to +0.0).
      if (u_jc == 0.0) continue;
      ops.axpy(km, -u_jc, colj + 1, ab_.col_ptr(c) + (kv + j - c) + 1);
    }
  }
  valid_ = true;
}

Vector BandedLu::solve(const Vector& b) const {
  Vector x = b;
  solve_in_place(x);
  return x;
}

void BandedLu::solve_in_place(Vector& x) const {
  if (!valid_) {
    throw std::logic_error("BandedLu::solve: no valid factorization");
  }
  const BackendOps& ops = backend();
  const std::size_t n = ab_.size();
  if (x.size() != n) {
    throw std::invalid_argument("BandedLu::solve: size mismatch");
  }
  const std::size_t kl = ab_.lower_bandwidth();
  const std::size_t ku = ab_.upper_bandwidth();
  const std::size_t kv = kl + ku;
  const std::size_t rows = ab_.storage_rows();

  // Apply P and L (forward substitution): x[j+1..j+km] -= xj · L(:,j),
  // contiguous on both sides.
  for (std::size_t j = 0; j < n; ++j) {
    if (ipiv_[j] != j) std::swap(x[j], x[ipiv_[j]]);
    const std::size_t km = std::min(kl, n - 1 - j);
    const double xj = x[j];
    if (xj == 0.0) continue;
    ops.axpy(km, -xj, ab_.col_ptr(j) + kv + 1, x.data() + j + 1);
  }
  // Back substitution with U (bandwidth kv). Walking row jj rightwards
  // moves one column over and one band-row up: stride rows-1 through the
  // storage, against contiguous x.
  for (std::size_t jj = n; jj-- > 0;) {
    const std::size_t c_hi = std::min(n - 1, jj + kv);
    const std::size_t len = c_hi - jj;
    const double acc =
        len == 0 ? x[jj]
                 : ops.nmsub_fold(x[jj], len, ab_.col_ptr(jj + 1) + kv - 1,
                                  static_cast<std::ptrdiff_t>(rows) - 1,
                                  x.data() + jj + 1, 1);
    x[jj] = acc / ab_.storage(kv, jj);
  }
}

Vector solve_banded(const BandedMatrix& a, const Vector& b) {
  return BandedLu(a).solve(b);
}

}  // namespace oftec::la
