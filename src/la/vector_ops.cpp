#include "la/vector_ops.h"

#include <cmath>
#include <stdexcept>

namespace oftec::la {

double dot(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("dot: size mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

double norm_inf(const Vector& a) {
  double m = 0.0;
  for (const double v : a) m = std::max(m, std::abs(v));
  return m;
}

void axpy(double alpha, const Vector& x, Vector& y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("axpy: size mismatch");
  }
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(double alpha, Vector& x) {
  for (double& v : x) v *= alpha;
}

double max_element_value(const Vector& a) {
  if (a.empty()) throw std::invalid_argument("max_element_value: empty");
  double m = a.front();
  for (const double v : a) m = std::max(m, v);
  return m;
}

std::size_t argmax(const Vector& a) {
  if (a.empty()) throw std::invalid_argument("argmax: empty");
  std::size_t best = 0;
  for (std::size_t i = 1; i < a.size(); ++i) {
    if (a[i] > a[best]) best = i;
  }
  return best;
}

double sum(const Vector& a) {
  double acc = 0.0;
  for (const double v : a) acc += v;
  return acc;
}

double max_abs_diff(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("max_abs_diff: size mismatch");
  }
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

}  // namespace oftec::la
