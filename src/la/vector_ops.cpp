#include "la/vector_ops.h"

#include <cmath>
#include <stdexcept>

#include "la/backend.h"

namespace oftec::la {

// These wrappers validate shapes, then hand the hoisted pointers to the
// active la::Backend kernel table (scalar reference or runtime-dispatched
// SIMD — see backend.h) — these are the BLAS-1 bodies under every CG
// iteration and transient step.

double dot(const Vector& a, const Vector& b) {
  const std::size_t n = a.size();
  if (b.size() != n) {
    throw std::invalid_argument("dot: size mismatch");
  }
  return backend().dot(n, a.data(), b.data());
}

double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

double norm_inf(const Vector& a) {
  double m = 0.0;
  for (const double v : a) m = std::max(m, std::abs(v));
  return m;
}

void axpy(double alpha, const Vector& x, Vector& y) {
  const std::size_t n = x.size();
  if (y.size() != n) {
    throw std::invalid_argument("axpy: size mismatch");
  }
  backend().axpy(n, alpha, x.data(), y.data());
}

double axpy_dot(double alpha, const Vector& x, Vector& y) {
  const std::size_t n = x.size();
  if (y.size() != n) {
    throw std::invalid_argument("axpy_dot: size mismatch");
  }
  return backend().axpy_dot(n, alpha, x.data(), y.data());
}

void scale(double alpha, Vector& x) {
  backend().scale(x.size(), alpha, x.data());
}

double max_element_value(const Vector& a) {
  if (a.empty()) throw std::invalid_argument("max_element_value: empty");
  double m = a.front();
  for (const double v : a) m = std::max(m, v);
  return m;
}

std::size_t argmax(const Vector& a) {
  if (a.empty()) throw std::invalid_argument("argmax: empty");
  std::size_t best = 0;
  for (std::size_t i = 1; i < a.size(); ++i) {
    if (a[i] > a[best]) best = i;
  }
  return best;
}

double sum(const Vector& a) {
  double acc = 0.0;
  for (const double v : a) acc += v;
  return acc;
}

double max_abs_diff(const Vector& a, const Vector& b) {
  const std::size_t n = a.size();
  if (b.size() != n) {
    throw std::invalid_argument("max_abs_diff: size mismatch");
  }
  return backend().max_abs_diff(n, a.data(), b.data());
}

}  // namespace oftec::la
