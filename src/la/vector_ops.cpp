#include "la/vector_ops.h"

#include <cmath>
#include <stdexcept>

namespace oftec::la {

// The kernels hoist sizes and data pointers into locals so the inner loops
// carry no per-iteration size() / operator[] re-derivation — these are the
// BLAS-1 bodies under every CG iteration and transient step.

double dot(const Vector& a, const Vector& b) {
  const std::size_t n = a.size();
  if (b.size() != n) {
    throw std::invalid_argument("dot: size mismatch");
  }
  const double* pa = a.data();
  const double* pb = b.data();
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += pa[i] * pb[i];
  return acc;
}

double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

double norm_inf(const Vector& a) {
  double m = 0.0;
  for (const double v : a) m = std::max(m, std::abs(v));
  return m;
}

void axpy(double alpha, const Vector& x, Vector& y) {
  const std::size_t n = x.size();
  if (y.size() != n) {
    throw std::invalid_argument("axpy: size mismatch");
  }
  const double* px = x.data();
  double* py = y.data();
  for (std::size_t i = 0; i < n; ++i) py[i] += alpha * px[i];
}

double axpy_dot(double alpha, const Vector& x, Vector& y) {
  const std::size_t n = x.size();
  if (y.size() != n) {
    throw std::invalid_argument("axpy_dot: size mismatch");
  }
  const double* px = x.data();
  double* py = y.data();
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    py[i] += alpha * px[i];
    acc += py[i] * py[i];
  }
  return acc;
}

void scale(double alpha, Vector& x) {
  for (double& v : x) v *= alpha;
}

double max_element_value(const Vector& a) {
  if (a.empty()) throw std::invalid_argument("max_element_value: empty");
  double m = a.front();
  for (const double v : a) m = std::max(m, v);
  return m;
}

std::size_t argmax(const Vector& a) {
  if (a.empty()) throw std::invalid_argument("argmax: empty");
  std::size_t best = 0;
  for (std::size_t i = 1; i < a.size(); ++i) {
    if (a[i] > a[best]) best = i;
  }
  return best;
}

double sum(const Vector& a) {
  double acc = 0.0;
  for (const double v : a) acc += v;
  return acc;
}

double max_abs_diff(const Vector& a, const Vector& b) {
  const std::size_t n = a.size();
  if (b.size() != n) {
    throw std::invalid_argument("max_abs_diff: size mismatch");
  }
  const double* pa = a.data();
  const double* pb = b.data();
  double m = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    m = std::max(m, std::abs(pa[i] - pb[i]));
  }
  return m;
}

}  // namespace oftec::la
