// Ordinary least squares.
//
// Two uses in the library: (1) the paper's leakage calibration flow — fit the
// Taylor coefficients (a, b) of Eq. (4) to 10 leakage samples over
// [300 K, 390 K]; (2) fitting the heat-sink conductance law g = p·ln(ω) + r
// (Eq. 9) to sampled HotSpot-style conductance values.
#pragma once

#include <cstddef>
#include <vector>

#include "la/dense_matrix.h"
#include "la/vector_ops.h"

namespace oftec::la {

/// Result of a 1-D linear fit y ≈ slope·x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  ///< coefficient of determination
};

/// Least-squares straight-line fit. Requires ≥ 2 points with distinct x.
[[nodiscard]] LinearFit fit_line(const Vector& x, const Vector& y);

/// General least squares: minimize ‖X·beta − y‖₂ via normal equations.
/// X is (m×k) with m ≥ k and full column rank.
[[nodiscard]] Vector least_squares(const DenseMatrix& x, const Vector& y);

}  // namespace oftec::la
