// Banded matrix in LAPACK-style band storage.
//
// The layered thermal grid produces matrices whose bandwidth equals one grid
// slab (nx*ny); band storage plus banded LU is the primary direct solver for
// the steady-state thermal system. Storage reserves `kl` extra super-diagonal
// rows so banded LU with partial pivoting can fill in without reallocating.
#pragma once

#include <cstddef>
#include <vector>

#include "la/vector_ops.h"

namespace oftec::la {

class BandedMatrix {
 public:
  BandedMatrix() = default;

  /// n×n matrix with `kl` sub-diagonals and `ku` super-diagonals, zero-filled.
  BandedMatrix(std::size_t n, std::size_t kl, std::size_t ku);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::size_t lower_bandwidth() const noexcept { return kl_; }
  [[nodiscard]] std::size_t upper_bandwidth() const noexcept { return ku_; }

  /// True if (r, c) lies inside the declared band (excluding the pivoting
  /// fill-in region).
  [[nodiscard]] bool in_band(std::size_t r, std::size_t c) const noexcept;

  /// True if (r, c) lies inside the storage (band plus fill-in region).
  [[nodiscard]] bool in_storage(std::size_t r, std::size_t c) const noexcept;

  /// Checked element access; writing outside the band throws.
  [[nodiscard]] double& at(std::size_t r, std::size_t c);

  /// Checked read; entries outside the band read as zero.
  [[nodiscard]] double get(std::size_t r, std::size_t c) const;

  /// Add `v` to element (r, c); throws if outside the band.
  void add(std::size_t r, std::size_t c, double v);

  /// y = A x.
  [[nodiscard]] Vector multiply(const Vector& x) const;

  /// Direct access to the band storage for the LU factorization.
  /// Layout: entry (r, c) lives at storage(kl + ku + r - c, c).
  ///
  /// Storage is column-major (true LAPACK band layout): a column's band
  /// entries are contiguous, so the factorization's pivot search,
  /// multiplier scaling, trailing-column updates, and the forward
  /// substitution all walk unit-stride memory — the shape the la::Backend
  /// kernels want. The (band_row, col) indexing is unchanged from the old
  /// row-major layout; only the linearization moved, so per-element
  /// arithmetic (and therefore every factorization bit) is identical.
  [[nodiscard]] double& storage(std::size_t band_row, std::size_t col) noexcept {
    return data_[col * rows_ + band_row];
  }
  [[nodiscard]] double storage(std::size_t band_row,
                               std::size_t col) const noexcept {
    return data_[col * rows_ + band_row];
  }

  /// First band-storage element of column `col`; the column's
  /// storage_rows() entries are contiguous from here.
  [[nodiscard]] double* col_ptr(std::size_t col) noexcept {
    return data_.data() + col * rows_;
  }
  [[nodiscard]] const double* col_ptr(std::size_t col) const noexcept {
    return data_.data() + col * rows_;
  }

  /// Number of band-storage rows (= 2*kl + ku + 1).
  [[nodiscard]] std::size_t storage_rows() const noexcept { return rows_; }

 private:
  std::size_t n_ = 0;
  std::size_t kl_ = 0;
  std::size_t ku_ = 0;
  std::size_t rows_ = 1;      // 2*kl + ku + 1
  std::vector<double> data_;  // (2*kl+ku+1) × n, column-major
};

}  // namespace oftec::la
