// Banded Cholesky factorization (LLᵀ) for symmetric positive definite
// band matrices.
//
// The *pure conduction* thermal matrix G (no TEC current, no leakage slope)
// is SPD, and transient steps with C/Δt on the diagonal usually keep it that
// way; Cholesky then halves the flop count and storage versus the pivoted
// LU. Construction throws when the matrix is not positive definite — which
// the steady solver exploits as a cheap SPD test before choosing a path.
#pragma once

#include <cstddef>

#include "la/banded_matrix.h"
#include "la/vector_ops.h"

namespace oftec::la {

class BandedCholesky {
 public:
  /// Factor the SPD matrix `a` (only the lower band is read; the matrix
  /// must be symmetric with kl == ku). Throws std::runtime_error if a
  /// non-positive pivot appears (matrix not positive definite) and
  /// std::invalid_argument on kl != ku.
  explicit BandedCholesky(const BandedMatrix& a);

  /// Solve A x = b.
  [[nodiscard]] Vector solve(const Vector& b) const;

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::size_t bandwidth() const noexcept { return k_; }

  /// Smallest diagonal entry of L — a conditioning indicator.
  [[nodiscard]] double min_diagonal() const noexcept { return min_diag_; }

 private:
  /// L stored column-major banded: column j is contiguous at
  /// factor_[j*(k+1)], diagonal first — entry L(i,j) for 0 ≤ i−j ≤ k at
  /// factor_[j*(k+1) + (i-j)]. See la/cholesky_core.h.
  [[nodiscard]] double l(std::size_t i, std::size_t j) const noexcept {
    return factor_[j * (k_ + 1) + (i - j)];
  }

  std::size_t n_ = 0;
  std::size_t k_ = 0;
  Vector factor_;
  double min_diag_ = 0.0;
};

}  // namespace oftec::la
