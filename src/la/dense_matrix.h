// Row-major dense matrix.
//
// Dense storage is used for small systems only: the SQP/QP working matrices
// (a handful of variables/constraints) and as a brute-force reference in
// tests. The thermal network uses BandedMatrix / CsrMatrix instead.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "la/vector_ops.h"

namespace oftec::la {

class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// rows×cols zero matrix.
  DenseMatrix(std::size_t rows, std::size_t cols);

  /// Build from nested initializer list; all rows must have equal arity.
  DenseMatrix(std::initializer_list<std::initializer_list<double>> init);

  /// n×n identity.
  [[nodiscard]] static DenseMatrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// Unchecked access for hot paths.
  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// y = A x. Requires x.size() == cols().
  [[nodiscard]] Vector multiply(const Vector& x) const;

  /// y = Aᵀ x. Requires x.size() == rows().
  [[nodiscard]] Vector multiply_transposed(const Vector& x) const;

  /// C = A B. Requires cols() == b.rows(). (Named distinctly from the
  /// vector overload so brace-initialized vectors stay unambiguous.)
  [[nodiscard]] DenseMatrix matmul(const DenseMatrix& b) const;

  /// Aᵀ.
  [[nodiscard]] DenseMatrix transposed() const;

  /// max_{i,j} |A_ij - B_ij|; matrices must be the same shape.
  [[nodiscard]] double max_abs_diff(const DenseMatrix& b) const;

  /// true if |A - Aᵀ|_max <= tol.
  [[nodiscard]] bool is_symmetric(double tol = 1e-12) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace oftec::la
