// Banded LU factorization with partial pivoting (LAPACK dgbtf2-style).
//
// Partial pivoting matters here: near thermal runaway the modified
// conductance matrix (G − A) loses diagonal dominance, and an unpivoted band
// factorization would be unstable exactly in the operating region the paper's
// Figure 6(a,b) explores.
#pragma once

#include <cstddef>
#include <vector>

#include "la/banded_matrix.h"
#include "la/vector_ops.h"

namespace oftec::la {

class BandedLu {
 public:
  /// Factor `a` in place (copied). Throws std::runtime_error if singular.
  explicit BandedLu(BandedMatrix a);

  /// Solve A x = b.
  [[nodiscard]] Vector solve(const Vector& b) const;

  [[nodiscard]] std::size_t size() const noexcept { return ab_.size(); }

  /// Smallest |pivot| encountered; a tiny value signals near-singularity
  /// (used by the thermal solver to flag approaching runaway).
  [[nodiscard]] double min_abs_pivot() const noexcept { return min_pivot_; }

 private:
  BandedMatrix ab_;
  std::vector<std::size_t> ipiv_;
  double min_pivot_ = 0.0;
};

/// One-shot convenience: solve A x = b by banded LU.
[[nodiscard]] Vector solve_banded(const BandedMatrix& a, const Vector& b);

}  // namespace oftec::la
