// Banded LU factorization with partial pivoting (LAPACK dgbtf2-style).
//
// Partial pivoting matters here: near thermal runaway the modified
// conductance matrix (G − A) loses diagonal dominance, and an unpivoted band
// factorization would be unstable exactly in the operating region the paper's
// Figure 6(a,b) explores.
//
// Two usage styles:
//   - one-shot: `BandedLu lu(matrix); x = lu.solve(b);`
//   - recycling (the transient engine's step loop): keep one BandedLu per
//     cached operating point and call refactorize_swap()/solve_in_place(),
//     which allocate nothing once the storage is warm. Both styles run the
//     same factorization and substitution code, so their results are
//     bit-identical for identical inputs.
#pragma once

#include <cstddef>
#include <vector>

#include "la/banded_matrix.h"
#include "la/vector_ops.h"

namespace oftec::la {

class BandedLu {
 public:
  /// Empty factor; usable only after a successful refactorize_swap().
  BandedLu() = default;

  /// Factor `a` in place (copied). Throws std::runtime_error if singular.
  explicit BandedLu(BandedMatrix a);

  /// Swap `a`'s storage in and factor it in place; `a` receives the previous
  /// factor's storage back (same shape when this object was valid, empty the
  /// first time) for reuse as assembly scratch — the step loop circulates one
  /// buffer set with zero steady-state allocations. Bit-identical to
  /// constructing a fresh BandedLu from the same matrix. Throws
  /// std::runtime_error if singular; the factor is then invalid until the
  /// next successful refactorization.
  void refactorize_swap(BandedMatrix& a);

  /// Solve A x = b.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Solve in place: `x` holds b on entry and the solution on return.
  /// Bit-identical to solve() on the same right-hand side.
  void solve_in_place(Vector& x) const;

  /// False after default construction or a failed (singular) refactorization.
  [[nodiscard]] bool valid() const noexcept { return valid_; }

  [[nodiscard]] std::size_t size() const noexcept { return ab_.size(); }

  /// Smallest |pivot| encountered; a tiny value signals near-singularity
  /// (used by the thermal solver to flag approaching runaway).
  [[nodiscard]] double min_abs_pivot() const noexcept { return min_pivot_; }

 private:
  /// Factor ab_ in place (dgbtf2). Shared by the constructor and
  /// refactorize_swap so both entry points produce identical bits.
  void factor();

  BandedMatrix ab_;
  std::vector<std::size_t> ipiv_;
  double min_pivot_ = 0.0;
  bool valid_ = false;
};

/// One-shot convenience: solve A x = b by banded LU.
[[nodiscard]] Vector solve_banded(const BandedMatrix& a, const Vector& b);

}  // namespace oftec::la
