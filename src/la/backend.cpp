#include "la/backend.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>
#include <string_view>

#include "la/backend_detail.h"
#include "util/fault.h"
#include "util/log.h"
#include "util/obs.h"

namespace oftec::la {

namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels. These are byte-for-byte the loop bodies the seed
// solvers ran inline (sequential accumulation, multiply-then-add, no FMA at
// the baseline -march), so routing the solvers through this table changes no
// bits. tests/la/test_backend_parity.cpp enforces that against checked-in
// goldens.
// ---------------------------------------------------------------------------

void scalar_axpy(std::size_t n, double alpha, const double* x, double* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scalar_scale(std::size_t n, double alpha, double* x) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
}

double scalar_dot(std::size_t n, const double* x, const double* y) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

double scalar_axpy_dot(std::size_t n, double alpha, const double* x,
                       double* y) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += alpha * x[i];
    acc += y[i] * y[i];
  }
  return acc;
}

double scalar_max_abs_diff(std::size_t n, const double* x, const double* y) {
  double m = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = x[i] - y[i];
    const double a = d < 0.0 ? -d : d;
    if (a > m) m = a;
  }
  return m;
}

double scalar_nmsub_fold(double init, std::size_t n, const double* a,
                         std::ptrdiff_t sa, const double* x,
                         std::ptrdiff_t sx) {
  double acc = init;
  for (std::size_t i = 0; i < n; ++i) {
    acc -= *a * *x;
    a += sa;
    x += sx;
  }
  return acc;
}

void scalar_panel_update(std::size_t p, const double* alpha,
                         const double* const* x, const std::size_t* len,
                         double* y) {
  // p successive axpys in s order: per destination element the sources
  // apply ascending, which is the panel_update contract verbatim.
  for (std::size_t s = 0; s < p; ++s) {
    scalar_axpy(len[s], alpha[s], x[s], y);
  }
}

void scalar_panel_fold(std::size_t p, const double* init, const double* a0,
                       std::ptrdiff_t sa, std::size_t len0,
                       std::size_t len_cap, const double* x, double* out) {
  for (std::size_t s = 0; s < p; ++s) {
    const std::size_t len = std::min(len0 + s, len_cap);
    out[s] = scalar_nmsub_fold(init[s], len, a0 + s * sa, 1, x, 1);
  }
}

void scalar_trsv_fwd(std::size_t n, std::size_t k, const double* factor,
                     double* x) {
  // Column-oriented forward substitution. Per element x[i] this subtracts
  // l(i,j)·x[j] for j ascending and then divides by l(i,i) — the same
  // per-element operation sequence as the seed's row folds, so the result
  // is bit-identical to them (x[j]·l ≡ l·x[j]; y + (−a)·x ≡ y − a·x).
  const std::size_t stride = k + 1;
  for (std::size_t j = 0; j < n; ++j) {
    const double* colj = factor + j * stride;
    const double xj = x[j] / colj[0];
    x[j] = xj;
    const std::size_t sub = std::min(k, n - 1 - j);  // rows j+1..j+sub
    scalar_axpy(sub, -xj, colj + 1, x + j + 1);
  }
}

void scalar_trsv_bwd(std::size_t n, std::size_t k, const double* factor,
                     double* x) {
  // Row folds over contiguous factor columns (column ii of L is row ii of
  // Lᵀ), sequential per row: the seed's exact back-substitution arithmetic.
  const std::size_t stride = k + 1;
  for (std::size_t ii = n; ii-- > 0;) {
    const double* colii = factor + ii * stride;
    const std::size_t len = std::min(k, n - 1 - ii);
    const double acc = scalar_nmsub_fold(x[ii], len, colii + 1, 1,
                                         x + ii + 1, 1);
    x[ii] = acc / colii[0];
  }
}

double scalar_cg_update(std::size_t n, double alpha, const double* p,
                        const double* ap, double* x, double* r) {
  // Interleaving the two independent destinations changes no per-element
  // arithmetic: identical bits to axpy(alpha, p, x); axpy_dot(−alpha, ap, r).
  const double nalpha = -alpha;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    x[i] += alpha * p[i];
    r[i] += nalpha * ap[i];
    acc += r[i] * r[i];
  }
  return acc;
}

double scalar_precond_dot(std::size_t n, const double* d, const double* r,
                          double* z) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    z[i] = d[i] * r[i];
    acc += r[i] * z[i];
  }
  return acc;
}

void scalar_search_dir_update(std::size_t n, double beta, const double* z,
                              double* p) {
  for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
}

constexpr BackendOps kScalarOps = {
    "scalar",          BackendKind::kScalar, scalar_axpy,
    scalar_scale,      scalar_dot,           scalar_axpy_dot,
    scalar_max_abs_diff, scalar_nmsub_fold,  scalar_panel_update,
    scalar_panel_fold, scalar_trsv_fwd,      scalar_trsv_bwd,
    scalar_cg_update,  scalar_precond_dot,   scalar_search_dir_update,
};

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

const obs::Counter g_obs_installs = obs::counter("la.backend.installs");
const obs::Counter g_obs_simd_selected = obs::counter("la.backend.simd_selected");
const obs::Counter g_obs_scalar_fallback =
    obs::counter("la.backend.scalar_fallback");

std::atomic<const BackendOps*> g_active{nullptr};
std::mutex g_install_mutex;

/// Widest simd table the machine can run, after the dispatch-fallback fault
/// gate. The fault site models a production deployment discovering at
/// startup that its simd path is unusable (microcode disable, masked CPUID
/// in a VM) — the chaos suite arms it to prove the solver stack degrades to
/// scalar with identical results, not an abort.
const BackendOps* usable_simd_table() {
  static const fault::Site simd_unavailable =
      fault::site("la.backend.simd_unavailable");
  if (simd_unavailable.should_fail()) {
    log::warn("la.backend: simd dispatch unavailable (injected); ",
              "falling back to scalar kernels");
    return nullptr;
  }
  if (const BackendOps* t = detail::avx512_table()) return t;
  return detail::avx2_table();
}

}  // namespace

const BackendOps& scalar_backend() noexcept { return kScalarOps; }

bool simd_supported() noexcept { return detail::avx2_table() != nullptr; }
bool avx512_supported() noexcept { return detail::avx512_table() != nullptr; }

const BackendOps* simd_backend() noexcept {
  if (const BackendOps* t = detail::avx512_table()) return t;
  return detail::avx2_table();
}
const BackendOps* avx2_backend() noexcept { return detail::avx2_table(); }
const BackendOps* avx512_backend() noexcept { return detail::avx512_table(); }

const BackendOps& install_backend(const char* spec) {
  const std::lock_guard<std::mutex> lock(g_install_mutex);
  const std::string_view s = spec != nullptr ? std::string_view(spec)
                                             : std::string_view("auto");
  const BackendOps* chosen = nullptr;
  if (s == "scalar") {
    chosen = &kScalarOps;
  } else if (s == "simd" || s == "auto" || s.empty()) {
    chosen = usable_simd_table();
    if (chosen == nullptr) {
      if (s == "simd") {
        log::warn("la.backend: OFTEC_LA_BACKEND=simd requested but no simd ",
                  "implementation is runnable here; using scalar");
      }
      chosen = &kScalarOps;
    }
  } else if (s == "avx2") {
    // Narrow test/bench flavors: pin one ISA so the parity suite can compare
    // avx2 and avx512 outputs on machines that have both.
    chosen = usable_simd_table() != nullptr ? detail::avx2_table() : nullptr;
    if (chosen == nullptr) {
      log::warn("la.backend: avx2 kernels unavailable; using scalar");
      chosen = &kScalarOps;
    }
  } else if (s == "avx512") {
    chosen = usable_simd_table() != nullptr ? detail::avx512_table() : nullptr;
    if (chosen == nullptr) {
      log::warn("la.backend: avx512 kernels unavailable; using scalar");
      chosen = &kScalarOps;
    }
  } else {
    log::warn("la.backend: unrecognized OFTEC_LA_BACKEND=\"", s,
              "\" (expected scalar|simd|auto); using auto");
    chosen = usable_simd_table();
    if (chosen == nullptr) chosen = &kScalarOps;
  }

  g_obs_installs.add();
  if (chosen->kind == BackendKind::kSimd) {
    g_obs_simd_selected.add();
  } else if (s != "scalar") {
    g_obs_scalar_fallback.add();
  }
  log::debug("la.backend: installed ", chosen->name, " (requested \"", s,
             "\")");
  g_active.store(chosen, std::memory_order_release);
  return *chosen;
}

const BackendOps& backend() noexcept {
  const BackendOps* active = g_active.load(std::memory_order_acquire);
  if (active != nullptr) return *active;
  // First use: resolve from the environment. Concurrent first calls race
  // benignly — both resolve the same spec and install the same table.
  return install_backend(std::getenv("OFTEC_LA_BACKEND"));
}

}  // namespace oftec::la
