// Dense LU factorization with partial pivoting.
//
// Used for small systems (QP subproblems, regression normal equations) and as
// the reference solver in thermal-network tests.
#pragma once

#include <cstddef>
#include <vector>

#include "la/dense_matrix.h"
#include "la/vector_ops.h"

namespace oftec::la {

/// Factors A = P·L·U once and solves repeatedly.
class DenseLu {
 public:
  /// Factor `a` (copied). Throws std::runtime_error if numerically singular.
  explicit DenseLu(DenseMatrix a);

  /// Solve A x = b.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Determinant of A (product of pivots with permutation sign).
  [[nodiscard]] double determinant() const noexcept { return det_; }

  [[nodiscard]] std::size_t size() const noexcept { return lu_.rows(); }

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;
  double det_ = 1.0;
};

/// One-shot convenience: solve A x = b by dense LU.
[[nodiscard]] Vector solve_dense(const DenseMatrix& a, const Vector& b);

/// Invert a small dense matrix (used for 2x2 Hessian manipulation in tests).
[[nodiscard]] DenseMatrix invert_dense(const DenseMatrix& a);

}  // namespace oftec::la
