#include "la/dense_matrix.h"

#include <cmath>
#include <stdexcept>

namespace oftec::la {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

DenseMatrix::DenseMatrix(
    std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    if (row.size() != cols_) {
      throw std::invalid_argument("DenseMatrix: ragged initializer");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix eye(n, n);
  for (std::size_t i = 0; i < n; ++i) eye(i, i) = 1.0;
  return eye;
}

double& DenseMatrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("DenseMatrix::at");
  }
  return data_[r * cols_ + c];
}

double DenseMatrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("DenseMatrix::at");
  }
  return data_[r * cols_ + c];
}

Vector DenseMatrix::multiply(const Vector& x) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("DenseMatrix::multiply: size mismatch");
  }
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

Vector DenseMatrix::multiply_transposed(const Vector& x) const {
  if (x.size() != rows_) {
    throw std::invalid_argument(
        "DenseMatrix::multiply_transposed: size mismatch");
  }
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) y[c] += (*this)(r, c) * x[r];
  }
  return y;
}

DenseMatrix DenseMatrix::matmul(const DenseMatrix& b) const {
  if (cols_ != b.rows()) {
    throw std::invalid_argument("DenseMatrix::matmul: shape mismatch");
  }
  DenseMatrix out(rows_, b.cols());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a_rk = (*this)(r, k);
      if (a_rk == 0.0) continue;
      for (std::size_t c = 0; c < b.cols(); ++c) {
        out(r, c) += a_rk * b(k, c);
      }
    }
  }
  return out;
}

DenseMatrix DenseMatrix::transposed() const {
  DenseMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

double DenseMatrix::max_abs_diff(const DenseMatrix& b) const {
  if (rows_ != b.rows() || cols_ != b.cols()) {
    throw std::invalid_argument("DenseMatrix::max_abs_diff: shape mismatch");
  }
  double m = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      m = std::max(m, std::abs((*this)(r, c) - b(r, c)));
    }
  }
  return m;
}

bool DenseMatrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = r + 1; c < cols_; ++c) {
      if (std::abs((*this)(r, c) - (*this)(c, r)) > tol) return false;
    }
  }
  return true;
}

}  // namespace oftec::la
