// Shared panel-blocked core of the two banded Cholesky classes.
//
// Both BandedCholesky and BandedCholeskyNumeric factor the same way; this
// header holds the one implementation so the "refactorize ≡ fresh
// construction, bit for bit" property is true by construction.
//
// Storage: the factor is column-major banded — column j occupies
// factor[j*(k+1) .. j*(k+1)+k], diagonal first, i.e. L(i,j) lives at
// factor[j*(k+1) + (i-j)] for 0 ≤ i−j ≤ k. Each column is contiguous in
// memory, which is what lets the panel kernels stream whole columns.
//
// Algorithm: left-looking by destination column. Column j receives, from
// every finalized source column m ∈ [j−k, j),
//     colj[r−j] += (−L(j,m)) · L(r,m)        for r = j .. min(n−1, m+k),
// applied in ascending m, and is then finalized (√diag, divide the
// sub-diagonal). Per destination *element* this is exactly the seed's
// sequential fold  acc −= L(i,m)·L(j,m)  in the same m order — (−a)·b is
// exactly −(a·b), x+(−p) ≡ x−p, and multiplication commutes — so the scalar
// backend reproduces the seed factor bit for bit. Every operation is
// element-wise (panel_update, axpy, divide), so the simd backends produce
// the *same* bits as scalar: the factorization is backend-invariant.
//
// Blocking: destination panels of kDestPanel columns; external sources
// stream through panel_update in blocks of kSrcBlock columns (block outer,
// destination column inner, so a ~(k·kSrcBlock)-double source block stays in
// cache across the whole panel). Sources inside the panel are applied
// per-column during finalization (at most kDestPanel−1 of them).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <string>

#include "la/backend.h"

namespace oftec::la::detail {

inline constexpr std::size_t kCholDestPanel = 16;
inline constexpr std::size_t kCholSrcBlock = 32;

/// Factor an SPD band matrix in place. `factor` is column-major banded
/// (layout above) and holds the lower band of A on entry, L on return.
/// Returns min_j L(j,j). Throws std::runtime_error("<err_prefix>: matrix
/// not positive definite") on a non-positive pivot.
inline double banded_cholesky_factor_inplace(std::size_t n, std::size_t k,
                                             double* factor,
                                             const BackendOps& ops,
                                             const char* err_prefix) {
  const std::size_t stride = k + 1;
  double min_diag = std::numeric_limits<double>::infinity();

  const double* xs[kCholSrcBlock];
  double alpha[kCholSrcBlock];
  std::size_t lens[kCholSrcBlock];

  for (std::size_t j0 = 0; j0 < n; j0 += kCholDestPanel) {
    const std::size_t j1 = std::min(n, j0 + kCholDestPanel);

    // External sources m < j0, in ascending blocks. Block outer / dest
    // inner keeps the source block hot across the panel; per destination
    // element the sources still apply in ascending m.
    const std::size_t m_lo0 = j0 > k ? j0 - k : 0;
    for (std::size_t mb = m_lo0; mb < j0; mb += kCholSrcBlock) {
      const std::size_t p = std::min(j0, mb + kCholSrcBlock) - mb;
      for (std::size_t j = j0; j < j1; ++j) {
        bool any = false;
        for (std::size_t s = 0; s < p; ++s) {
          const std::size_t m = mb + s;
          const double* colm = factor + m * stride;
          if (m + k < j) {  // column m's band ends above row j
            alpha[s] = 0.0;
            xs[s] = colm;
            lens[s] = 0;
            continue;
          }
          alpha[s] = -colm[j - m];
          xs[s] = colm + (j - m);
          lens[s] = std::min(n - 1, m + k) - j + 1;
          any = true;
        }
        if (any) ops.panel_update(p, alpha, xs, lens, factor + j * stride);
      }
    }

    // Finalize the panel left-looking: apply the (≤ kCholDestPanel−1)
    // in-panel sources, then pivot.
    for (std::size_t j = j0; j < j1; ++j) {
      double* colj = factor + j * stride;
      const std::size_t m_lo = j > k ? j - k : 0;
      for (std::size_t m = std::max(m_lo, j0); m < j; ++m) {
        const double* colm = factor + m * stride;
        ops.axpy(std::min(n - 1, m + k) - j + 1, -colm[j - m], colm + (j - m),
                 colj);
      }
      const double diag = colj[0];
      if (!(diag > 0.0)) {
        throw std::runtime_error(std::string(err_prefix) +
                                 ": matrix not positive definite");
      }
      const double ljj = std::sqrt(diag);
      colj[0] = ljj;
      min_diag = std::min(min_diag, ljj);
      const std::size_t sub = std::min(k, n - 1 - j);
      for (std::size_t r = 1; r <= sub; ++r) colj[r] /= ljj;
    }
  }
  return min_diag;
}

/// Copy the lower band of `a` into column-major banded storage (zero-filled
/// beyond the matrix edge).
template <typename BandedMatrixT>
inline void fill_lower_band(const BandedMatrixT& a, std::size_t n,
                            std::size_t k, double* factor) {
  for (std::size_t j = 0; j < n; ++j) {
    double* colj = factor + j * (k + 1);
    const std::size_t i_hi = std::min(n - 1, j + k);
    for (std::size_t i = j; i <= i_hi; ++i) colj[i - j] = a.get(i, j);
  }
}

}  // namespace oftec::la::detail
