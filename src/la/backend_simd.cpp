// AVX2 / AVX-512 kernel tables for the la::Backend seam.
//
// The build stays at the baseline -march (no global -mavx2), so every
// vector function here carries a target attribute and is only ever called
// after a __builtin_cpu_supports check — the binary runs unchanged on
// pre-AVX2 machines, where dispatch resolves to scalar.
//
// Determinism design (see backend.h):
//   * Element-wise kernels (axpy, scale) do multiply-then-add per element —
//     explicit _mm*_mul_pd/_mm*_add_pd, never FMA — so they are bit-identical
//     to the scalar reference.
//   * Reductions use a FIXED 8-logical-lane accumulator layout: lane l
//     accumulates elements i ≡ l (mod 8) in index order. AVX2 realizes the
//     lanes as two __m256d, AVX-512 as one __m512d; both spill the 8 lane
//     totals and combine them with the same scalar tree
//         ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))
//     then fold the tail (< 8 elements) sequentially. Hence avx2 and avx512
//     return identical bits for identical inputs, and a fixed backend is
//     deterministic across runs and thread counts. For n < 8 the whole input
//     is tail, so reductions degenerate to the scalar result exactly.
//   * max_abs_diff assumes finite inputs (NaN handling follows _mm_max_pd
//     operand order, which differs from std::max; the library never feeds
//     NaNs here — solvers reject non-finite state upstream).
#include "la/backend_detail.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include <algorithm>
#include <cstddef>

namespace oftec::la::detail {

#if defined(__x86_64__) || defined(__i386__)

namespace {

/// Scalar tree-combine of the 8 lane totals — shared by both ISA flavors so
/// their reduction results are bit-identical by construction.
inline double combine8(const double lanes[8]) {
  return ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
         ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
}

inline double combine8_max(const double lanes[8]) {
  double m = lanes[0];
  for (int l = 1; l < 8; ++l) {
    if (lanes[l] > m) m = lanes[l];
  }
  return m;
}

// ---------------------------------------------------------------------------
// AVX2
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) __m256d load4_strided(const double* p,
                                                      std::ptrdiff_t s) {
  if (s == 1) return _mm256_loadu_pd(p);
  return _mm256_set_pd(p[3 * s], p[2 * s], p[s], p[0]);
}

__attribute__((target("avx2"))) void avx2_axpy(std::size_t n, double alpha,
                                               const double* x, double* y) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d vy = _mm256_loadu_pd(y + i);
    _mm256_storeu_pd(y + i, _mm256_add_pd(vy, _mm256_mul_pd(va, vx)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx2"))) void avx2_scale(std::size_t n, double alpha,
                                                double* x) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), va));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

__attribute__((target("avx2"))) double avx2_dot(std::size_t n, const double* x,
                                                const double* y) {
  __m256d acc_lo = _mm256_setzero_pd();  // lanes 0..3
  __m256d acc_hi = _mm256_setzero_pd();  // lanes 4..7
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(_mm256_loadu_pd(x + i),
                                                 _mm256_loadu_pd(y + i)));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(_mm256_loadu_pd(x + i + 4),
                                                 _mm256_loadu_pd(y + i + 4)));
  }
  alignas(32) double lanes[8];
  _mm256_store_pd(lanes, acc_lo);
  _mm256_store_pd(lanes + 4, acc_hi);
  double acc = combine8(lanes);
  for (; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

__attribute__((target("avx2"))) double avx2_axpy_dot(std::size_t n,
                                                     double alpha,
                                                     const double* x,
                                                     double* y) {
  const __m256d va = _mm256_set1_pd(alpha);
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d vy0 = _mm256_loadu_pd(y + i);
    vy0 = _mm256_add_pd(vy0, _mm256_mul_pd(va, _mm256_loadu_pd(x + i)));
    _mm256_storeu_pd(y + i, vy0);
    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(vy0, vy0));
    __m256d vy1 = _mm256_loadu_pd(y + i + 4);
    vy1 = _mm256_add_pd(vy1, _mm256_mul_pd(va, _mm256_loadu_pd(x + i + 4)));
    _mm256_storeu_pd(y + i + 4, vy1);
    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(vy1, vy1));
  }
  alignas(32) double lanes[8];
  _mm256_store_pd(lanes, acc_lo);
  _mm256_store_pd(lanes + 4, acc_hi);
  double acc = combine8(lanes);
  for (; i < n; ++i) {
    y[i] += alpha * x[i];
    acc += y[i] * y[i];
  }
  return acc;
}

__attribute__((target("avx2"))) double avx2_max_abs_diff(std::size_t n,
                                                         const double* x,
                                                         const double* y) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d m_lo = _mm256_setzero_pd();
  __m256d m_hi = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 = _mm256_andnot_pd(
        sign_mask,
        _mm256_sub_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
    m_lo = _mm256_max_pd(m_lo, d0);
    const __m256d d1 = _mm256_andnot_pd(
        sign_mask,
        _mm256_sub_pd(_mm256_loadu_pd(x + i + 4), _mm256_loadu_pd(y + i + 4)));
    m_hi = _mm256_max_pd(m_hi, d1);
  }
  alignas(32) double lanes[8];
  _mm256_store_pd(lanes, m_lo);
  _mm256_store_pd(lanes + 4, m_hi);
  double m = combine8_max(lanes);
  for (; i < n; ++i) {
    const double d = x[i] - y[i];
    const double a = d < 0.0 ? -d : d;
    if (a > m) m = a;
  }
  return m;
}

__attribute__((target("avx2"))) double avx2_nmsub_fold(double init,
                                                       std::size_t n,
                                                       const double* a,
                                                       std::ptrdiff_t sa,
                                                       const double* x,
                                                       std::ptrdiff_t sx) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  std::size_t i = 0;
  const double* pa = a;
  const double* px = x;
  for (; i + 8 <= n; i += 8) {
    acc_lo = _mm256_sub_pd(
        acc_lo, _mm256_mul_pd(load4_strided(pa, sa), load4_strided(px, sx)));
    acc_hi = _mm256_sub_pd(
        acc_hi, _mm256_mul_pd(load4_strided(pa + 4 * sa, sa),
                              load4_strided(px + 4 * sx, sx)));
    pa += 8 * sa;
    px += 8 * sx;
  }
  alignas(32) double lanes[8];
  _mm256_store_pd(lanes, acc_lo);
  _mm256_store_pd(lanes + 4, acc_hi);
  double acc = init + combine8(lanes);
  for (; i < n; ++i) {
    acc -= *pa * *px;
    pa += sa;
    px += sx;
  }
  return acc;
}

// Multi-source fused axpy. The destination chunk rides in registers while
// the sources stream past it; a source whose span ends inside the chunk
// ("partial") is applied to memory in its turn — flush, scalar, reload —
// so every destination element still sees its sources in ascending s order.
// Element-wise (multiply-then-add per element), hence bit-identical to the
// scalar reference regardless of the chunking.
__attribute__((target("avx2"))) void avx2_panel_update(
    std::size_t p, const double* alpha, const double* const* x,
    const std::size_t* len, double* y) {
  std::size_t max_len = 0;
  for (std::size_t s = 0; s < p; ++s) max_len = std::max(max_len, len[s]);
  std::size_t r0 = 0;
  for (; r0 + 16 <= max_len; r0 += 16) {
    __m256d acc0 = _mm256_loadu_pd(y + r0);
    __m256d acc1 = _mm256_loadu_pd(y + r0 + 4);
    __m256d acc2 = _mm256_loadu_pd(y + r0 + 8);
    __m256d acc3 = _mm256_loadu_pd(y + r0 + 12);
    for (std::size_t s = 0; s < p; ++s) {
      const std::size_t ls = len[s];
      if (ls <= r0) continue;
      const double* xs = x[s];
      if (ls >= r0 + 16) {
        const __m256d va = _mm256_set1_pd(alpha[s]);
        acc0 = _mm256_add_pd(acc0,
                             _mm256_mul_pd(va, _mm256_loadu_pd(xs + r0)));
        acc1 = _mm256_add_pd(acc1,
                             _mm256_mul_pd(va, _mm256_loadu_pd(xs + r0 + 4)));
        acc2 = _mm256_add_pd(acc2,
                             _mm256_mul_pd(va, _mm256_loadu_pd(xs + r0 + 8)));
        acc3 = _mm256_add_pd(acc3,
                             _mm256_mul_pd(va, _mm256_loadu_pd(xs + r0 + 12)));
      } else {
        _mm256_storeu_pd(y + r0, acc0);
        _mm256_storeu_pd(y + r0 + 4, acc1);
        _mm256_storeu_pd(y + r0 + 8, acc2);
        _mm256_storeu_pd(y + r0 + 12, acc3);
        const double as = alpha[s];
        for (std::size_t r = r0; r < ls; ++r) y[r] += as * xs[r];
        acc0 = _mm256_loadu_pd(y + r0);
        acc1 = _mm256_loadu_pd(y + r0 + 4);
        acc2 = _mm256_loadu_pd(y + r0 + 8);
        acc3 = _mm256_loadu_pd(y + r0 + 12);
      }
    }
    _mm256_storeu_pd(y + r0, acc0);
    _mm256_storeu_pd(y + r0 + 4, acc1);
    _mm256_storeu_pd(y + r0 + 8, acc2);
    _mm256_storeu_pd(y + r0 + 12, acc3);
  }
  for (; r0 + 4 <= max_len; r0 += 4) {
    __m256d acc = _mm256_loadu_pd(y + r0);
    for (std::size_t s = 0; s < p; ++s) {
      const std::size_t ls = len[s];
      if (ls <= r0) continue;
      const double* xs = x[s];
      if (ls >= r0 + 4) {
        acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(alpha[s]),
                                               _mm256_loadu_pd(xs + r0)));
      } else {
        _mm256_storeu_pd(y + r0, acc);
        const double as = alpha[s];
        for (std::size_t r = r0; r < ls; ++r) y[r] += as * xs[r];
        acc = _mm256_loadu_pd(y + r0);
      }
    }
    _mm256_storeu_pd(y + r0, acc);
  }
  for (std::size_t s = 0; s < p; ++s) {
    const double as = alpha[s];
    const double* xs = x[s];
    for (std::size_t r = r0; r < len[s]; ++r) y[r] += as * xs[r];
  }
}

/// Contiguous nmsub fold — the unit-stride core of avx2_nmsub_fold
/// (bit-identical to it for sa == sx == 1).
__attribute__((target("avx2"))) double avx2_fold1(double init, std::size_t n,
                                                  const double* a,
                                                  const double* x) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc_lo = _mm256_sub_pd(
        acc_lo, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(x + i)));
    acc_hi = _mm256_sub_pd(
        acc_hi, _mm256_mul_pd(_mm256_loadu_pd(a + i + 4),
                              _mm256_loadu_pd(x + i + 4)));
  }
  alignas(32) double lanes[8];
  _mm256_store_pd(lanes, acc_lo);
  _mm256_store_pd(lanes + 4, acc_hi);
  double acc = init + combine8(lanes);
  for (; i < n; ++i) acc -= a[i] * x[i];
  return acc;
}

__attribute__((target("avx2"))) void avx2_panel_fold(
    std::size_t p, const double* init, const double* a0, std::ptrdiff_t sa,
    std::size_t len0, std::size_t len_cap, const double* x, double* out) {
  for (std::size_t s = 0; s < p; ++s) {
    out[s] = avx2_fold1(init[s], std::min(len0 + s, len_cap), a0 + s * sa, x);
  }
}

__attribute__((target("avx2"))) void avx2_trsv_fwd(std::size_t n,
                                                   std::size_t k,
                                                   const double* factor,
                                                   double* x) {
  const std::size_t stride = k + 1;
  for (std::size_t j = 0; j < n; ++j) {
    const double* colj = factor + j * stride;
    const double xj = x[j] / colj[0];
    x[j] = xj;
    avx2_axpy(std::min(k, n - 1 - j), -xj, colj + 1, x + j + 1);
  }
}

__attribute__((target("avx2"))) void avx2_trsv_bwd(std::size_t n,
                                                   std::size_t k,
                                                   const double* factor,
                                                   double* x) {
  const std::size_t stride = k + 1;
  if (k < 8) {
    // Narrow band: per-row contiguous folds (a block's source pointers could
    // step outside the factor storage when k is smaller than the block).
    for (std::size_t ii = n; ii-- > 0;) {
      const double* colii = factor + ii * stride;
      const std::size_t len = std::min(k, n - 1 - ii);
      x[ii] = avx2_fold1(x[ii], len, colii + 1, x + ii + 1) / colii[0];
    }
    return;
  }
  // Blocks of 8 rows: the 8 independent out-of-block ("far") contributions
  // fold through panel_fold with the shared trailing x, then the in-block
  // triangle resolves sequentially. AVX2 and AVX-512 share this exact block
  // structure, so their results are bit-identical.
  std::size_t hi = n;  // exclusive block top
  while (hi > 0) {
    const std::size_t lo = hi >= 8 ? hi - 8 : 0;
    const std::size_t bw = hi - lo;
    double init[8];
    double far[8];
    for (std::size_t s = 0; s < bw; ++s) init[s] = x[lo + s];
    const double* a0 = factor + lo * stride + (hi - lo);
    avx2_panel_fold(bw, init, a0, static_cast<std::ptrdiff_t>(k),
                    lo + k + 1 - hi, n - hi, x + hi, far);
    for (std::size_t s = bw; s-- > 0;) {
      const std::size_t ii = lo + s;
      const double* colii = factor + ii * stride;
      double acc = far[s];
      for (std::size_t i = ii + 1; i < hi; ++i) acc -= colii[i - ii] * x[i];
      x[ii] = acc / colii[0];
    }
    hi = lo;
  }
}

__attribute__((target("avx2"))) double avx2_cg_update(std::size_t n,
                                                      double alpha,
                                                      const double* p,
                                                      const double* ap,
                                                      double* x, double* r) {
  const __m256d va = _mm256_set1_pd(alpha);
  const __m256d vna = _mm256_set1_pd(-alpha);
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d vx0 = _mm256_loadu_pd(x + i);
    vx0 = _mm256_add_pd(vx0, _mm256_mul_pd(va, _mm256_loadu_pd(p + i)));
    _mm256_storeu_pd(x + i, vx0);
    __m256d vx1 = _mm256_loadu_pd(x + i + 4);
    vx1 = _mm256_add_pd(vx1, _mm256_mul_pd(va, _mm256_loadu_pd(p + i + 4)));
    _mm256_storeu_pd(x + i + 4, vx1);
    __m256d vr0 = _mm256_loadu_pd(r + i);
    vr0 = _mm256_add_pd(vr0, _mm256_mul_pd(vna, _mm256_loadu_pd(ap + i)));
    _mm256_storeu_pd(r + i, vr0);
    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(vr0, vr0));
    __m256d vr1 = _mm256_loadu_pd(r + i + 4);
    vr1 = _mm256_add_pd(vr1, _mm256_mul_pd(vna, _mm256_loadu_pd(ap + i + 4)));
    _mm256_storeu_pd(r + i + 4, vr1);
    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(vr1, vr1));
  }
  alignas(32) double lanes[8];
  _mm256_store_pd(lanes, acc_lo);
  _mm256_store_pd(lanes + 4, acc_hi);
  double acc = combine8(lanes);
  const double nalpha = -alpha;
  for (; i < n; ++i) {
    x[i] += alpha * p[i];
    r[i] += nalpha * ap[i];
    acc += r[i] * r[i];
  }
  return acc;
}

__attribute__((target("avx2"))) double avx2_precond_dot(std::size_t n,
                                                        const double* d,
                                                        const double* r,
                                                        double* z) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d vr0 = _mm256_loadu_pd(r + i);
    const __m256d vz0 = _mm256_mul_pd(_mm256_loadu_pd(d + i), vr0);
    _mm256_storeu_pd(z + i, vz0);
    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(vr0, vz0));
    const __m256d vr1 = _mm256_loadu_pd(r + i + 4);
    const __m256d vz1 = _mm256_mul_pd(_mm256_loadu_pd(d + i + 4), vr1);
    _mm256_storeu_pd(z + i + 4, vz1);
    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(vr1, vz1));
  }
  alignas(32) double lanes[8];
  _mm256_store_pd(lanes, acc_lo);
  _mm256_store_pd(lanes + 4, acc_hi);
  double acc = combine8(lanes);
  for (; i < n; ++i) {
    z[i] = d[i] * r[i];
    acc += r[i] * z[i];
  }
  return acc;
}

__attribute__((target("avx2"))) void avx2_search_dir_update(std::size_t n,
                                                            double beta,
                                                            const double* z,
                                                            double* p) {
  const __m256d vb = _mm256_set1_pd(beta);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vp = _mm256_mul_pd(vb, _mm256_loadu_pd(p + i));
    _mm256_storeu_pd(p + i, _mm256_add_pd(_mm256_loadu_pd(z + i), vp));
  }
  for (; i < n; ++i) p[i] = z[i] + beta * p[i];
}

constexpr BackendOps kAvx2Ops = {
    "simd-avx2",       BackendKind::kSimd, avx2_axpy,
    avx2_scale,        avx2_dot,           avx2_axpy_dot,
    avx2_max_abs_diff, avx2_nmsub_fold,    avx2_panel_update,
    avx2_panel_fold,   avx2_trsv_fwd,      avx2_trsv_bwd,
    avx2_cg_update,    avx2_precond_dot,   avx2_search_dir_update,
};

// ---------------------------------------------------------------------------
// AVX-512 — same 8-lane accumulator in one register.
// ---------------------------------------------------------------------------

__attribute__((target("avx512f"))) __m512d load8_strided(const double* p,
                                                         std::ptrdiff_t s) {
  if (s == 1) return _mm512_loadu_pd(p);
  return _mm512_set_pd(p[7 * s], p[6 * s], p[5 * s], p[4 * s], p[3 * s],
                       p[2 * s], p[s], p[0]);
}

__attribute__((target("avx512f"))) void avx512_axpy(std::size_t n,
                                                    double alpha,
                                                    const double* x,
                                                    double* y) {
  const __m512d va = _mm512_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d vx = _mm512_loadu_pd(x + i);
    const __m512d vy = _mm512_loadu_pd(y + i);
    _mm512_storeu_pd(y + i, _mm512_add_pd(vy, _mm512_mul_pd(va, vx)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx512f"))) void avx512_scale(std::size_t n,
                                                     double alpha, double* x) {
  const __m512d va = _mm512_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(x + i, _mm512_mul_pd(_mm512_loadu_pd(x + i), va));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

__attribute__((target("avx512f"))) double avx512_dot(std::size_t n,
                                                     const double* x,
                                                     const double* y) {
  __m512d acc = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_pd(acc, _mm512_mul_pd(_mm512_loadu_pd(x + i),
                                           _mm512_loadu_pd(y + i)));
  }
  alignas(64) double lanes[8];
  _mm512_store_pd(lanes, acc);
  double r = combine8(lanes);
  for (; i < n; ++i) r += x[i] * y[i];
  return r;
}

__attribute__((target("avx512f"))) double avx512_axpy_dot(std::size_t n,
                                                          double alpha,
                                                          const double* x,
                                                          double* y) {
  const __m512d va = _mm512_set1_pd(alpha);
  __m512d acc = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512d vy = _mm512_loadu_pd(y + i);
    vy = _mm512_add_pd(vy, _mm512_mul_pd(va, _mm512_loadu_pd(x + i)));
    _mm512_storeu_pd(y + i, vy);
    acc = _mm512_add_pd(acc, _mm512_mul_pd(vy, vy));
  }
  alignas(64) double lanes[8];
  _mm512_store_pd(lanes, acc);
  double r = combine8(lanes);
  for (; i < n; ++i) {
    y[i] += alpha * x[i];
    r += y[i] * y[i];
  }
  return r;
}

__attribute__((target("avx512f"))) double avx512_max_abs_diff(std::size_t n,
                                                              const double* x,
                                                              const double* y) {
  __m512d m8 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d d = _mm512_abs_pd(
        _mm512_sub_pd(_mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i)));
    m8 = _mm512_max_pd(m8, d);
  }
  alignas(64) double lanes[8];
  _mm512_store_pd(lanes, m8);
  double m = combine8_max(lanes);
  for (; i < n; ++i) {
    const double d = x[i] - y[i];
    const double a = d < 0.0 ? -d : d;
    if (a > m) m = a;
  }
  return m;
}

__attribute__((target("avx512f"))) double avx512_nmsub_fold(
    double init, std::size_t n, const double* a, std::ptrdiff_t sa,
    const double* x, std::ptrdiff_t sx) {
  __m512d acc8 = _mm512_setzero_pd();
  std::size_t i = 0;
  const double* pa = a;
  const double* px = x;
  for (; i + 8 <= n; i += 8) {
    acc8 = _mm512_sub_pd(
        acc8, _mm512_mul_pd(load8_strided(pa, sa), load8_strided(px, sx)));
    pa += 8 * sa;
    px += 8 * sx;
  }
  alignas(64) double lanes[8];
  _mm512_store_pd(lanes, acc8);
  double acc = init + combine8(lanes);
  for (; i < n; ++i) {
    acc -= *pa * *px;
    pa += sa;
    px += sx;
  }
  return acc;
}

// Panel/fused kernels — same structure as the avx2 flavors above. The
// element-wise ones (panel_update, trsv_fwd, search_dir_update, the x-update
// half of cg_update) are bit-identical to scalar whatever the vector width;
// the reduction-bearing ones keep the fixed 8-lane tree (one __m512d here,
// an __m256d pair in avx2), so avx2 ≡ avx512 bitwise throughout.
__attribute__((target("avx512f"))) void avx512_panel_update(
    std::size_t p, const double* alpha, const double* const* x,
    const std::size_t* len, double* y) {
  std::size_t max_len = 0;
  for (std::size_t s = 0; s < p; ++s) max_len = std::max(max_len, len[s]);
  std::size_t r0 = 0;
  for (; r0 + 32 <= max_len; r0 += 32) {
    __m512d acc0 = _mm512_loadu_pd(y + r0);
    __m512d acc1 = _mm512_loadu_pd(y + r0 + 8);
    __m512d acc2 = _mm512_loadu_pd(y + r0 + 16);
    __m512d acc3 = _mm512_loadu_pd(y + r0 + 24);
    for (std::size_t s = 0; s < p; ++s) {
      const std::size_t ls = len[s];
      if (ls <= r0) continue;
      const double* xs = x[s];
      if (ls >= r0 + 32) {
        const __m512d va = _mm512_set1_pd(alpha[s]);
        acc0 = _mm512_add_pd(acc0,
                             _mm512_mul_pd(va, _mm512_loadu_pd(xs + r0)));
        acc1 = _mm512_add_pd(acc1,
                             _mm512_mul_pd(va, _mm512_loadu_pd(xs + r0 + 8)));
        acc2 = _mm512_add_pd(acc2,
                             _mm512_mul_pd(va, _mm512_loadu_pd(xs + r0 + 16)));
        acc3 = _mm512_add_pd(acc3,
                             _mm512_mul_pd(va, _mm512_loadu_pd(xs + r0 + 24)));
      } else {
        _mm512_storeu_pd(y + r0, acc0);
        _mm512_storeu_pd(y + r0 + 8, acc1);
        _mm512_storeu_pd(y + r0 + 16, acc2);
        _mm512_storeu_pd(y + r0 + 24, acc3);
        const double as = alpha[s];
        for (std::size_t r = r0; r < ls; ++r) y[r] += as * xs[r];
        acc0 = _mm512_loadu_pd(y + r0);
        acc1 = _mm512_loadu_pd(y + r0 + 8);
        acc2 = _mm512_loadu_pd(y + r0 + 16);
        acc3 = _mm512_loadu_pd(y + r0 + 24);
      }
    }
    _mm512_storeu_pd(y + r0, acc0);
    _mm512_storeu_pd(y + r0 + 8, acc1);
    _mm512_storeu_pd(y + r0 + 16, acc2);
    _mm512_storeu_pd(y + r0 + 24, acc3);
  }
  for (; r0 + 8 <= max_len; r0 += 8) {
    __m512d acc = _mm512_loadu_pd(y + r0);
    for (std::size_t s = 0; s < p; ++s) {
      const std::size_t ls = len[s];
      if (ls <= r0) continue;
      const double* xs = x[s];
      if (ls >= r0 + 8) {
        acc = _mm512_add_pd(acc, _mm512_mul_pd(_mm512_set1_pd(alpha[s]),
                                               _mm512_loadu_pd(xs + r0)));
      } else {
        _mm512_storeu_pd(y + r0, acc);
        const double as = alpha[s];
        for (std::size_t r = r0; r < ls; ++r) y[r] += as * xs[r];
        acc = _mm512_loadu_pd(y + r0);
      }
    }
    _mm512_storeu_pd(y + r0, acc);
  }
  for (std::size_t s = 0; s < p; ++s) {
    const double as = alpha[s];
    const double* xs = x[s];
    for (std::size_t r = r0; r < len[s]; ++r) y[r] += as * xs[r];
  }
}

__attribute__((target("avx512f"))) double avx512_fold1(double init,
                                                       std::size_t n,
                                                       const double* a,
                                                       const double* x) {
  __m512d acc8 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc8 = _mm512_sub_pd(
        acc8, _mm512_mul_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(x + i)));
  }
  alignas(64) double lanes[8];
  _mm512_store_pd(lanes, acc8);
  double acc = init + combine8(lanes);
  for (; i < n; ++i) acc -= a[i] * x[i];
  return acc;
}

__attribute__((target("avx512f"))) void avx512_panel_fold(
    std::size_t p, const double* init, const double* a0, std::ptrdiff_t sa,
    std::size_t len0, std::size_t len_cap, const double* x, double* out) {
  for (std::size_t s = 0; s < p; ++s) {
    out[s] =
        avx512_fold1(init[s], std::min(len0 + s, len_cap), a0 + s * sa, x);
  }
}

__attribute__((target("avx512f"))) void avx512_trsv_fwd(std::size_t n,
                                                        std::size_t k,
                                                        const double* factor,
                                                        double* x) {
  const std::size_t stride = k + 1;
  for (std::size_t j = 0; j < n; ++j) {
    const double* colj = factor + j * stride;
    const double xj = x[j] / colj[0];
    x[j] = xj;
    avx512_axpy(std::min(k, n - 1 - j), -xj, colj + 1, x + j + 1);
  }
}

__attribute__((target("avx512f"))) void avx512_trsv_bwd(std::size_t n,
                                                        std::size_t k,
                                                        const double* factor,
                                                        double* x) {
  const std::size_t stride = k + 1;
  if (k < 8) {
    for (std::size_t ii = n; ii-- > 0;) {
      const double* colii = factor + ii * stride;
      const std::size_t len = std::min(k, n - 1 - ii);
      x[ii] = avx512_fold1(x[ii], len, colii + 1, x + ii + 1) / colii[0];
    }
    return;
  }
  std::size_t hi = n;  // exclusive block top; must mirror avx2_trsv_bwd
  while (hi > 0) {
    const std::size_t lo = hi >= 8 ? hi - 8 : 0;
    const std::size_t bw = hi - lo;
    double init[8];
    double far[8];
    for (std::size_t s = 0; s < bw; ++s) init[s] = x[lo + s];
    const double* a0 = factor + lo * stride + (hi - lo);
    avx512_panel_fold(bw, init, a0, static_cast<std::ptrdiff_t>(k),
                      lo + k + 1 - hi, n - hi, x + hi, far);
    for (std::size_t s = bw; s-- > 0;) {
      const std::size_t ii = lo + s;
      const double* colii = factor + ii * stride;
      double acc = far[s];
      for (std::size_t i = ii + 1; i < hi; ++i) acc -= colii[i - ii] * x[i];
      x[ii] = acc / colii[0];
    }
    hi = lo;
  }
}

__attribute__((target("avx512f"))) double avx512_cg_update(
    std::size_t n, double alpha, const double* p, const double* ap, double* x,
    double* r) {
  const __m512d va = _mm512_set1_pd(alpha);
  const __m512d vna = _mm512_set1_pd(-alpha);
  __m512d acc8 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512d vx = _mm512_loadu_pd(x + i);
    vx = _mm512_add_pd(vx, _mm512_mul_pd(va, _mm512_loadu_pd(p + i)));
    _mm512_storeu_pd(x + i, vx);
    __m512d vr = _mm512_loadu_pd(r + i);
    vr = _mm512_add_pd(vr, _mm512_mul_pd(vna, _mm512_loadu_pd(ap + i)));
    _mm512_storeu_pd(r + i, vr);
    acc8 = _mm512_add_pd(acc8, _mm512_mul_pd(vr, vr));
  }
  alignas(64) double lanes[8];
  _mm512_store_pd(lanes, acc8);
  double acc = combine8(lanes);
  const double nalpha = -alpha;
  for (; i < n; ++i) {
    x[i] += alpha * p[i];
    r[i] += nalpha * ap[i];
    acc += r[i] * r[i];
  }
  return acc;
}

__attribute__((target("avx512f"))) double avx512_precond_dot(std::size_t n,
                                                             const double* d,
                                                             const double* r,
                                                             double* z) {
  __m512d acc8 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d vr = _mm512_loadu_pd(r + i);
    const __m512d vz = _mm512_mul_pd(_mm512_loadu_pd(d + i), vr);
    _mm512_storeu_pd(z + i, vz);
    acc8 = _mm512_add_pd(acc8, _mm512_mul_pd(vr, vz));
  }
  alignas(64) double lanes[8];
  _mm512_store_pd(lanes, acc8);
  double acc = combine8(lanes);
  for (; i < n; ++i) {
    z[i] = d[i] * r[i];
    acc += r[i] * z[i];
  }
  return acc;
}

__attribute__((target("avx512f"))) void avx512_search_dir_update(
    std::size_t n, double beta, const double* z, double* p) {
  const __m512d vb = _mm512_set1_pd(beta);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d vp = _mm512_mul_pd(vb, _mm512_loadu_pd(p + i));
    _mm512_storeu_pd(p + i, _mm512_add_pd(_mm512_loadu_pd(z + i), vp));
  }
  for (; i < n; ++i) p[i] = z[i] + beta * p[i];
}

constexpr BackendOps kAvx512Ops = {
    "simd-avx512",       BackendKind::kSimd,  avx512_axpy,
    avx512_scale,        avx512_dot,          avx512_axpy_dot,
    avx512_max_abs_diff, avx512_nmsub_fold,   avx512_panel_update,
    avx512_panel_fold,   avx512_trsv_fwd,     avx512_trsv_bwd,
    avx512_cg_update,    avx512_precond_dot,  avx512_search_dir_update,
};

}  // namespace

const BackendOps* avx2_table() noexcept {
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported ? &kAvx2Ops : nullptr;
}

const BackendOps* avx512_table() noexcept {
  static const bool supported = __builtin_cpu_supports("avx512f") != 0;
  return supported ? &kAvx512Ops : nullptr;
}

#else  // non-x86: scalar only

const BackendOps* avx2_table() noexcept { return nullptr; }
const BackendOps* avx512_table() noexcept { return nullptr; }

#endif

}  // namespace oftec::la::detail
