// AVX2 / AVX-512 kernel tables for the la::Backend seam.
//
// The build stays at the baseline -march (no global -mavx2), so every
// vector function here carries a target attribute and is only ever called
// after a __builtin_cpu_supports check — the binary runs unchanged on
// pre-AVX2 machines, where dispatch resolves to scalar.
//
// Determinism design (see backend.h):
//   * Element-wise kernels (axpy, scale) do multiply-then-add per element —
//     explicit _mm*_mul_pd/_mm*_add_pd, never FMA — so they are bit-identical
//     to the scalar reference.
//   * Reductions use a FIXED 8-logical-lane accumulator layout: lane l
//     accumulates elements i ≡ l (mod 8) in index order. AVX2 realizes the
//     lanes as two __m256d, AVX-512 as one __m512d; both spill the 8 lane
//     totals and combine them with the same scalar tree
//         ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))
//     then fold the tail (< 8 elements) sequentially. Hence avx2 and avx512
//     return identical bits for identical inputs, and a fixed backend is
//     deterministic across runs and thread counts. For n < 8 the whole input
//     is tail, so reductions degenerate to the scalar result exactly.
//   * max_abs_diff assumes finite inputs (NaN handling follows _mm_max_pd
//     operand order, which differs from std::max; the library never feeds
//     NaNs here — solvers reject non-finite state upstream).
#include "la/backend_detail.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include <cstddef>

namespace oftec::la::detail {

#if defined(__x86_64__) || defined(__i386__)

namespace {

/// Scalar tree-combine of the 8 lane totals — shared by both ISA flavors so
/// their reduction results are bit-identical by construction.
inline double combine8(const double lanes[8]) {
  return ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
         ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
}

inline double combine8_max(const double lanes[8]) {
  double m = lanes[0];
  for (int l = 1; l < 8; ++l) {
    if (lanes[l] > m) m = lanes[l];
  }
  return m;
}

// ---------------------------------------------------------------------------
// AVX2
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) __m256d load4_strided(const double* p,
                                                      std::ptrdiff_t s) {
  if (s == 1) return _mm256_loadu_pd(p);
  return _mm256_set_pd(p[3 * s], p[2 * s], p[s], p[0]);
}

__attribute__((target("avx2"))) void avx2_axpy(std::size_t n, double alpha,
                                               const double* x, double* y) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d vy = _mm256_loadu_pd(y + i);
    _mm256_storeu_pd(y + i, _mm256_add_pd(vy, _mm256_mul_pd(va, vx)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx2"))) void avx2_scale(std::size_t n, double alpha,
                                                double* x) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), va));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

__attribute__((target("avx2"))) double avx2_dot(std::size_t n, const double* x,
                                                const double* y) {
  __m256d acc_lo = _mm256_setzero_pd();  // lanes 0..3
  __m256d acc_hi = _mm256_setzero_pd();  // lanes 4..7
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(_mm256_loadu_pd(x + i),
                                                 _mm256_loadu_pd(y + i)));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(_mm256_loadu_pd(x + i + 4),
                                                 _mm256_loadu_pd(y + i + 4)));
  }
  alignas(32) double lanes[8];
  _mm256_store_pd(lanes, acc_lo);
  _mm256_store_pd(lanes + 4, acc_hi);
  double acc = combine8(lanes);
  for (; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

__attribute__((target("avx2"))) double avx2_axpy_dot(std::size_t n,
                                                     double alpha,
                                                     const double* x,
                                                     double* y) {
  const __m256d va = _mm256_set1_pd(alpha);
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d vy0 = _mm256_loadu_pd(y + i);
    vy0 = _mm256_add_pd(vy0, _mm256_mul_pd(va, _mm256_loadu_pd(x + i)));
    _mm256_storeu_pd(y + i, vy0);
    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(vy0, vy0));
    __m256d vy1 = _mm256_loadu_pd(y + i + 4);
    vy1 = _mm256_add_pd(vy1, _mm256_mul_pd(va, _mm256_loadu_pd(x + i + 4)));
    _mm256_storeu_pd(y + i + 4, vy1);
    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(vy1, vy1));
  }
  alignas(32) double lanes[8];
  _mm256_store_pd(lanes, acc_lo);
  _mm256_store_pd(lanes + 4, acc_hi);
  double acc = combine8(lanes);
  for (; i < n; ++i) {
    y[i] += alpha * x[i];
    acc += y[i] * y[i];
  }
  return acc;
}

__attribute__((target("avx2"))) double avx2_max_abs_diff(std::size_t n,
                                                         const double* x,
                                                         const double* y) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d m_lo = _mm256_setzero_pd();
  __m256d m_hi = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 = _mm256_andnot_pd(
        sign_mask,
        _mm256_sub_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
    m_lo = _mm256_max_pd(m_lo, d0);
    const __m256d d1 = _mm256_andnot_pd(
        sign_mask,
        _mm256_sub_pd(_mm256_loadu_pd(x + i + 4), _mm256_loadu_pd(y + i + 4)));
    m_hi = _mm256_max_pd(m_hi, d1);
  }
  alignas(32) double lanes[8];
  _mm256_store_pd(lanes, m_lo);
  _mm256_store_pd(lanes + 4, m_hi);
  double m = combine8_max(lanes);
  for (; i < n; ++i) {
    const double d = x[i] - y[i];
    const double a = d < 0.0 ? -d : d;
    if (a > m) m = a;
  }
  return m;
}

__attribute__((target("avx2"))) double avx2_nmsub_fold(double init,
                                                       std::size_t n,
                                                       const double* a,
                                                       std::ptrdiff_t sa,
                                                       const double* x,
                                                       std::ptrdiff_t sx) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  std::size_t i = 0;
  const double* pa = a;
  const double* px = x;
  for (; i + 8 <= n; i += 8) {
    acc_lo = _mm256_sub_pd(
        acc_lo, _mm256_mul_pd(load4_strided(pa, sa), load4_strided(px, sx)));
    acc_hi = _mm256_sub_pd(
        acc_hi, _mm256_mul_pd(load4_strided(pa + 4 * sa, sa),
                              load4_strided(px + 4 * sx, sx)));
    pa += 8 * sa;
    px += 8 * sx;
  }
  alignas(32) double lanes[8];
  _mm256_store_pd(lanes, acc_lo);
  _mm256_store_pd(lanes + 4, acc_hi);
  double acc = init + combine8(lanes);
  for (; i < n; ++i) {
    acc -= *pa * *px;
    pa += sa;
    px += sx;
  }
  return acc;
}

constexpr BackendOps kAvx2Ops = {
    "simd-avx2",       BackendKind::kSimd, avx2_axpy,
    avx2_scale,        avx2_dot,           avx2_axpy_dot,
    avx2_max_abs_diff, avx2_nmsub_fold,
};

// ---------------------------------------------------------------------------
// AVX-512 — same 8-lane accumulator in one register.
// ---------------------------------------------------------------------------

__attribute__((target("avx512f"))) __m512d load8_strided(const double* p,
                                                         std::ptrdiff_t s) {
  if (s == 1) return _mm512_loadu_pd(p);
  return _mm512_set_pd(p[7 * s], p[6 * s], p[5 * s], p[4 * s], p[3 * s],
                       p[2 * s], p[s], p[0]);
}

__attribute__((target("avx512f"))) void avx512_axpy(std::size_t n,
                                                    double alpha,
                                                    const double* x,
                                                    double* y) {
  const __m512d va = _mm512_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d vx = _mm512_loadu_pd(x + i);
    const __m512d vy = _mm512_loadu_pd(y + i);
    _mm512_storeu_pd(y + i, _mm512_add_pd(vy, _mm512_mul_pd(va, vx)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx512f"))) void avx512_scale(std::size_t n,
                                                     double alpha, double* x) {
  const __m512d va = _mm512_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(x + i, _mm512_mul_pd(_mm512_loadu_pd(x + i), va));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

__attribute__((target("avx512f"))) double avx512_dot(std::size_t n,
                                                     const double* x,
                                                     const double* y) {
  __m512d acc = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_pd(acc, _mm512_mul_pd(_mm512_loadu_pd(x + i),
                                           _mm512_loadu_pd(y + i)));
  }
  alignas(64) double lanes[8];
  _mm512_store_pd(lanes, acc);
  double r = combine8(lanes);
  for (; i < n; ++i) r += x[i] * y[i];
  return r;
}

__attribute__((target("avx512f"))) double avx512_axpy_dot(std::size_t n,
                                                          double alpha,
                                                          const double* x,
                                                          double* y) {
  const __m512d va = _mm512_set1_pd(alpha);
  __m512d acc = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512d vy = _mm512_loadu_pd(y + i);
    vy = _mm512_add_pd(vy, _mm512_mul_pd(va, _mm512_loadu_pd(x + i)));
    _mm512_storeu_pd(y + i, vy);
    acc = _mm512_add_pd(acc, _mm512_mul_pd(vy, vy));
  }
  alignas(64) double lanes[8];
  _mm512_store_pd(lanes, acc);
  double r = combine8(lanes);
  for (; i < n; ++i) {
    y[i] += alpha * x[i];
    r += y[i] * y[i];
  }
  return r;
}

__attribute__((target("avx512f"))) double avx512_max_abs_diff(std::size_t n,
                                                              const double* x,
                                                              const double* y) {
  __m512d m8 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d d = _mm512_abs_pd(
        _mm512_sub_pd(_mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i)));
    m8 = _mm512_max_pd(m8, d);
  }
  alignas(64) double lanes[8];
  _mm512_store_pd(lanes, m8);
  double m = combine8_max(lanes);
  for (; i < n; ++i) {
    const double d = x[i] - y[i];
    const double a = d < 0.0 ? -d : d;
    if (a > m) m = a;
  }
  return m;
}

__attribute__((target("avx512f"))) double avx512_nmsub_fold(
    double init, std::size_t n, const double* a, std::ptrdiff_t sa,
    const double* x, std::ptrdiff_t sx) {
  __m512d acc8 = _mm512_setzero_pd();
  std::size_t i = 0;
  const double* pa = a;
  const double* px = x;
  for (; i + 8 <= n; i += 8) {
    acc8 = _mm512_sub_pd(
        acc8, _mm512_mul_pd(load8_strided(pa, sa), load8_strided(px, sx)));
    pa += 8 * sa;
    px += 8 * sx;
  }
  alignas(64) double lanes[8];
  _mm512_store_pd(lanes, acc8);
  double acc = init + combine8(lanes);
  for (; i < n; ++i) {
    acc -= *pa * *px;
    pa += sa;
    px += sx;
  }
  return acc;
}

constexpr BackendOps kAvx512Ops = {
    "simd-avx512",       BackendKind::kSimd, avx512_axpy,
    avx512_scale,        avx512_dot,         avx512_axpy_dot,
    avx512_max_abs_diff, avx512_nmsub_fold,
};

}  // namespace

const BackendOps* avx2_table() noexcept {
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported ? &kAvx2Ops : nullptr;
}

const BackendOps* avx512_table() noexcept {
  static const bool supported = __builtin_cpu_supports("avx512f") != 0;
  return supported ? &kAvx512Ops : nullptr;
}

#else  // non-x86: scalar only

const BackendOps* avx2_table() noexcept { return nullptr; }
const BackendOps* avx512_table() noexcept { return nullptr; }

#endif

}  // namespace oftec::la::detail
