#include "la/banded_cholesky.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "la/backend.h"

namespace oftec::la {

// The factor is stored diagonal-major (l(i,j) = factor_[(i-j)*n + j]), so a
// fixed-row walk l(i, m), m ascending, strides 1-n through storage and a
// fixed-column walk l(i, ii), i ascending, strides +n. All four inner loops
// — both factorization folds and both substitution folds — are
// negative-multiply-subtract reductions, routed through the backend's
// nmsub_fold. The scalar backend folds sequentially with the seed's exact
// arithmetic (bit-identical); the simd backend uses its deterministic 8-lane
// tree (ULP-bounded, see backend.h).

BandedCholesky::BandedCholesky(const BandedMatrix& a)
    : n_(a.size()), k_(a.lower_bandwidth()) {
  if (a.lower_bandwidth() != a.upper_bandwidth()) {
    throw std::invalid_argument(
        "BandedCholesky: matrix must have symmetric bandwidths");
  }
  const BackendOps& ops = backend();
  const std::ptrdiff_t row_stride = 1 - static_cast<std::ptrdiff_t>(n_);
  factor_.assign((k_ + 1) * n_, 0.0);
  min_diag_ = std::numeric_limits<double>::infinity();

  // Copy the lower band of A into the factor storage.
  for (std::size_t j = 0; j < n_; ++j) {
    const std::size_t i_hi = std::min(n_ - 1, j + k_);
    for (std::size_t i = j; i <= i_hi; ++i) {
      l(i, j) = a.get(i, j);
    }
  }

  // Band Cholesky (unblocked, column version).
  for (std::size_t j = 0; j < n_; ++j) {
    double diag = l(j, j);
    // Subtract Σ_{m} L(j,m)² for m in the band left of j.
    const std::size_t m_lo = j > k_ ? j - k_ : 0;
    if (j > m_lo) {
      const double* pj = factor_.data() + (j - m_lo) * n_ + m_lo;
      diag = ops.nmsub_fold(diag, j - m_lo, pj, row_stride, pj, row_stride);
    }
    if (!(diag > 0.0)) {
      throw std::runtime_error("BandedCholesky: matrix not positive definite");
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    min_diag_ = std::min(min_diag_, ljj);

    const std::size_t i_hi = std::min(n_ - 1, j + k_);
    for (std::size_t i = j + 1; i <= i_hi; ++i) {
      double acc = l(i, j);
      const std::size_t m_lo_i = i > k_ ? i - k_ : 0;
      const std::size_t m0 = std::max(m_lo, m_lo_i);
      if (j > m0) {
        acc = ops.nmsub_fold(acc, j - m0,
                             factor_.data() + (i - m0) * n_ + m0, row_stride,
                             factor_.data() + (j - m0) * n_ + m0, row_stride);
      }
      l(i, j) = acc / ljj;
    }
  }
}

Vector BandedCholesky::solve(const Vector& b) const {
  if (b.size() != n_) {
    throw std::invalid_argument("BandedCholesky::solve: size mismatch");
  }
  const BackendOps& ops = backend();
  const std::ptrdiff_t row_stride = 1 - static_cast<std::ptrdiff_t>(n_);
  Vector x = b;
  // Forward: L y = b.
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = x[i];
    const std::size_t j_lo = i > k_ ? i - k_ : 0;
    if (i > j_lo) {
      acc = ops.nmsub_fold(acc, i - j_lo,
                           factor_.data() + (i - j_lo) * n_ + j_lo, row_stride,
                           x.data() + j_lo, 1);
    }
    x[i] = acc / l(i, i);
  }
  // Backward: Lᵀ x = y.
  for (std::size_t ii = n_; ii-- > 0;) {
    double acc = x[ii];
    const std::size_t i_hi = std::min(n_ - 1, ii + k_);
    if (i_hi > ii) {
      acc = ops.nmsub_fold(acc, i_hi - ii, factor_.data() + n_ + ii,
                           static_cast<std::ptrdiff_t>(n_), x.data() + ii + 1,
                           1);
    }
    x[ii] = acc / l(ii, ii);
  }
  return x;
}

}  // namespace oftec::la
