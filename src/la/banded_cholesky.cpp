#include "la/banded_cholesky.h"

#include <stdexcept>

#include "la/backend.h"
#include "la/cholesky_core.h"

namespace oftec::la {

// Factorization and solves run on the backend's panel kernels over the
// column-major band layout (see la/cholesky_core.h for the layout and the
// bit-exactness argument). The factorization and forward substitution are
// element-wise — identical bits on every backend, and identical to the seed
// implementation this class started as. Back substitution is a row fold:
// scalar keeps the seed's sequential arithmetic; simd uses its deterministic
// 8-lane tree (ULP-bounded, AVX2 ≡ AVX-512; see backend.h).

BandedCholesky::BandedCholesky(const BandedMatrix& a)
    : n_(a.size()), k_(a.lower_bandwidth()) {
  if (a.lower_bandwidth() != a.upper_bandwidth()) {
    throw std::invalid_argument(
        "BandedCholesky: matrix must have symmetric bandwidths");
  }
  factor_.assign((k_ + 1) * n_, 0.0);
  detail::fill_lower_band(a, n_, k_, factor_.data());
  min_diag_ = detail::banded_cholesky_factor_inplace(n_, k_, factor_.data(),
                                                     backend(),
                                                     "BandedCholesky");
}

Vector BandedCholesky::solve(const Vector& b) const {
  if (b.size() != n_) {
    throw std::invalid_argument("BandedCholesky::solve: size mismatch");
  }
  const BackendOps& ops = backend();
  Vector x = b;
  ops.trsv_fwd(n_, k_, factor_.data(), x.data());
  ops.trsv_bwd(n_, k_, factor_.data(), x.data());
  return x;
}

}  // namespace oftec::la
