#include "la/banded_cholesky.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace oftec::la {

BandedCholesky::BandedCholesky(const BandedMatrix& a)
    : n_(a.size()), k_(a.lower_bandwidth()) {
  if (a.lower_bandwidth() != a.upper_bandwidth()) {
    throw std::invalid_argument(
        "BandedCholesky: matrix must have symmetric bandwidths");
  }
  factor_.assign((k_ + 1) * n_, 0.0);
  min_diag_ = std::numeric_limits<double>::infinity();

  // Copy the lower band of A into the factor storage.
  for (std::size_t j = 0; j < n_; ++j) {
    const std::size_t i_hi = std::min(n_ - 1, j + k_);
    for (std::size_t i = j; i <= i_hi; ++i) {
      l(i, j) = a.get(i, j);
    }
  }

  // Band Cholesky (unblocked, column version).
  for (std::size_t j = 0; j < n_; ++j) {
    double diag = l(j, j);
    // Subtract Σ_{m} L(j,m)² for m in the band left of j.
    const std::size_t m_lo = j > k_ ? j - k_ : 0;
    for (std::size_t m = m_lo; m < j; ++m) {
      diag -= l(j, m) * l(j, m);
    }
    if (!(diag > 0.0)) {
      throw std::runtime_error("BandedCholesky: matrix not positive definite");
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    min_diag_ = std::min(min_diag_, ljj);

    const std::size_t i_hi = std::min(n_ - 1, j + k_);
    for (std::size_t i = j + 1; i <= i_hi; ++i) {
      double acc = l(i, j);
      const std::size_t m_lo_i = i > k_ ? i - k_ : 0;
      for (std::size_t m = std::max(m_lo, m_lo_i); m < j; ++m) {
        acc -= l(i, m) * l(j, m);
      }
      l(i, j) = acc / ljj;
    }
  }
}

Vector BandedCholesky::solve(const Vector& b) const {
  if (b.size() != n_) {
    throw std::invalid_argument("BandedCholesky::solve: size mismatch");
  }
  Vector x = b;
  // Forward: L y = b.
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = x[i];
    const std::size_t j_lo = i > k_ ? i - k_ : 0;
    for (std::size_t j = j_lo; j < i; ++j) {
      acc -= l(i, j) * x[j];
    }
    x[i] = acc / l(i, i);
  }
  // Backward: Lᵀ x = y.
  for (std::size_t ii = n_; ii-- > 0;) {
    double acc = x[ii];
    const std::size_t i_hi = std::min(n_ - 1, ii + k_);
    for (std::size_t i = ii + 1; i <= i_hi; ++i) {
      acc -= l(i, ii) * x[i];
    }
    x[ii] = acc / l(ii, ii);
  }
  return x;
}

}  // namespace oftec::la
