#include "la/split_cholesky.h"

#include <stdexcept>

#include "la/backend.h"
#include "la/cholesky_core.h"
#include "util/obs.h"

namespace oftec::la {

namespace {
const obs::Counter g_obs_refactorizations =
    obs::counter("la.cholesky.refactorizations");
}  // namespace

BandedCholeskySymbolic::BandedCholeskySymbolic(std::size_t n,
                                               std::size_t bandwidth)
    : n_(n), k_(bandwidth) {
  if (n == 0) {
    throw std::invalid_argument("BandedCholeskySymbolic: empty matrix");
  }
}

BandedCholeskySymbolic BandedCholeskySymbolic::analyze(const BandedMatrix& a) {
  if (a.lower_bandwidth() != a.upper_bandwidth()) {
    throw std::invalid_argument(
        "BandedCholeskySymbolic: matrix must have symmetric bandwidths");
  }
  return {a.size(), a.lower_bandwidth()};
}

bool BandedCholeskySymbolic::matches(const BandedMatrix& a) const noexcept {
  return a.size() == n_ && a.lower_bandwidth() == k_ &&
         a.upper_bandwidth() == k_;
}

BandedCholeskyNumeric::BandedCholeskyNumeric(
    std::shared_ptr<const BandedCholeskySymbolic> symbolic)
    : symbolic_(std::move(symbolic)) {
  if (!symbolic_) {
    throw std::invalid_argument("BandedCholeskyNumeric: null symbolic");
  }
  factor_.assign(symbolic_->factor_storage(), 0.0);
}

void BandedCholeskyNumeric::refactorize(const BandedMatrix& a) {
  if (!symbolic_->matches(a)) {
    throw std::invalid_argument(
        "BandedCholeskyNumeric::refactorize: structure mismatch");
  }
  const std::size_t n = symbolic_->size();
  const std::size_t k = symbolic_->bandwidth();
  g_obs_refactorizations.add();
  factorized_ = false;
  factor_.assign(symbolic_->factor_storage(), 0.0);

  // The shared panel-blocked core (la/cholesky_core.h) into reused storage:
  // identical arithmetic, in identical order, to constructing a fresh
  // la::BandedCholesky — and backend-invariant bits, since every operation
  // is element-wise.
  detail::fill_lower_band(a, n, k, factor_.data());
  min_diag_ = detail::banded_cholesky_factor_inplace(
      n, k, factor_.data(), backend(), "BandedCholeskyNumeric");
  factorized_ = true;
}

Vector BandedCholeskyNumeric::solve(const Vector& b) const {
  if (!factorized_) {
    throw std::logic_error("BandedCholeskyNumeric::solve: no valid factor");
  }
  const std::size_t n = symbolic_->size();
  const std::size_t k = symbolic_->bandwidth();
  if (b.size() != n) {
    throw std::invalid_argument("BandedCholeskyNumeric::solve: size mismatch");
  }
  const BackendOps& ops = backend();
  Vector x = b;
  ops.trsv_fwd(n, k, factor_.data(), x.data());
  ops.trsv_bwd(n, k, factor_.data(), x.data());
  return x;
}

}  // namespace oftec::la
