#include "la/split_cholesky.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "la/backend.h"
#include "util/obs.h"

namespace oftec::la {

namespace {
const obs::Counter g_obs_refactorizations =
    obs::counter("la.cholesky.refactorizations");
}  // namespace

BandedCholeskySymbolic::BandedCholeskySymbolic(std::size_t n,
                                               std::size_t bandwidth)
    : n_(n), k_(bandwidth) {
  if (n == 0) {
    throw std::invalid_argument("BandedCholeskySymbolic: empty matrix");
  }
}

BandedCholeskySymbolic BandedCholeskySymbolic::analyze(const BandedMatrix& a) {
  if (a.lower_bandwidth() != a.upper_bandwidth()) {
    throw std::invalid_argument(
        "BandedCholeskySymbolic: matrix must have symmetric bandwidths");
  }
  return {a.size(), a.lower_bandwidth()};
}

bool BandedCholeskySymbolic::matches(const BandedMatrix& a) const noexcept {
  return a.size() == n_ && a.lower_bandwidth() == k_ &&
         a.upper_bandwidth() == k_;
}

BandedCholeskyNumeric::BandedCholeskyNumeric(
    std::shared_ptr<const BandedCholeskySymbolic> symbolic)
    : symbolic_(std::move(symbolic)) {
  if (!symbolic_) {
    throw std::invalid_argument("BandedCholeskyNumeric: null symbolic");
  }
  factor_.assign(symbolic_->factor_storage(), 0.0);
}

void BandedCholeskyNumeric::refactorize(const BandedMatrix& a) {
  if (!symbolic_->matches(a)) {
    throw std::invalid_argument(
        "BandedCholeskyNumeric::refactorize: structure mismatch");
  }
  const std::size_t n = symbolic_->size();
  const std::size_t k = symbolic_->bandwidth();
  const BackendOps& ops = backend();
  const std::ptrdiff_t row_stride = 1 - static_cast<std::ptrdiff_t>(n);
  g_obs_refactorizations.add();
  factorized_ = false;
  factor_.assign(symbolic_->factor_storage(), 0.0);
  min_diag_ = std::numeric_limits<double>::infinity();

  // Identical arithmetic to la::BandedCholesky, into reused storage; the
  // inner folds go through the backend's nmsub_fold like that class
  // (scalar: seed-bit-identical; simd: deterministic 8-lane tree).
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t i_hi = std::min(n - 1, j + k);
    for (std::size_t i = j; i <= i_hi; ++i) {
      l(i, j) = a.get(i, j);
    }
  }

  for (std::size_t j = 0; j < n; ++j) {
    double diag = l(j, j);
    const std::size_t m_lo = j > k ? j - k : 0;
    if (j > m_lo) {
      const double* pj = factor_.data() + (j - m_lo) * n + m_lo;
      diag = ops.nmsub_fold(diag, j - m_lo, pj, row_stride, pj, row_stride);
    }
    if (!(diag > 0.0)) {
      throw std::runtime_error(
          "BandedCholeskyNumeric: matrix not positive definite");
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    min_diag_ = std::min(min_diag_, ljj);

    const std::size_t i_hi = std::min(n - 1, j + k);
    for (std::size_t i = j + 1; i <= i_hi; ++i) {
      double acc = l(i, j);
      const std::size_t m_lo_i = i > k ? i - k : 0;
      const std::size_t m0 = std::max(m_lo, m_lo_i);
      if (j > m0) {
        acc = ops.nmsub_fold(acc, j - m0,
                             factor_.data() + (i - m0) * n + m0, row_stride,
                             factor_.data() + (j - m0) * n + m0, row_stride);
      }
      l(i, j) = acc / ljj;
    }
  }
  factorized_ = true;
}

Vector BandedCholeskyNumeric::solve(const Vector& b) const {
  if (!factorized_) {
    throw std::logic_error("BandedCholeskyNumeric::solve: no valid factor");
  }
  const std::size_t n = symbolic_->size();
  const std::size_t k = symbolic_->bandwidth();
  if (b.size() != n) {
    throw std::invalid_argument("BandedCholeskyNumeric::solve: size mismatch");
  }
  const BackendOps& ops = backend();
  const std::ptrdiff_t row_stride = 1 - static_cast<std::ptrdiff_t>(n);
  Vector x = b;
  // Forward: L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double acc = x[i];
    const std::size_t j_lo = i > k ? i - k : 0;
    if (i > j_lo) {
      acc = ops.nmsub_fold(acc, i - j_lo,
                           factor_.data() + (i - j_lo) * n + j_lo, row_stride,
                           x.data() + j_lo, 1);
    }
    x[i] = acc / l(i, i);
  }
  // Backward: Lᵀ x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    const std::size_t i_hi = std::min(n - 1, ii + k);
    if (i_hi > ii) {
      acc = ops.nmsub_fold(acc, i_hi - ii, factor_.data() + n + ii,
                           static_cast<std::ptrdiff_t>(n), x.data() + ii + 1,
                           1);
    }
    x[ii] = acc / l(ii, ii);
  }
  return x;
}

}  // namespace oftec::la
