#include "la/regression.h"

#include <cmath>
#include <stdexcept>

#include "la/dense_lu.h"

namespace oftec::la {

LinearFit fit_line(const Vector& x, const Vector& y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("fit_line: need >= 2 paired points");
  }
  const double n = static_cast<double>(x.size());
  const double sx = sum(x);
  const double sy = sum(y);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) {
    throw std::invalid_argument("fit_line: x values are all identical");
  }
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;

  const double mean_y = sy / n;
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = fit.slope * x[i] + fit.intercept;
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - mean_y) * (y[i] - mean_y);
  }
  fit.r_squared = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

Vector least_squares(const DenseMatrix& x, const Vector& y) {
  if (x.rows() != y.size()) {
    throw std::invalid_argument("least_squares: row mismatch");
  }
  if (x.rows() < x.cols()) {
    throw std::invalid_argument("least_squares: underdetermined system");
  }
  // Normal equations: (XᵀX) beta = Xᵀ y. Fine for the small, well-conditioned
  // design matrices used in calibration.
  const DenseMatrix xt = x.transposed();
  const DenseMatrix xtx = xt.matmul(x);
  const Vector xty = xt.multiply(y);
  return solve_dense(xtx, xty);
}

}  // namespace oftec::la
