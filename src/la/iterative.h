// Iterative Krylov solvers: CG (SPD systems) and BiCGSTAB (general).
//
// The unmodified conductance matrix G is symmetric positive definite, so CG
// applies; once the TEC Peltier terms are folded into the left-hand side the
// system becomes nonsymmetric and BiCGSTAB is used. Both are
// Jacobi-preconditioned. The direct banded solver remains the default in the
// thermal module; these exist for large grids and as cross-checks.
#pragma once

#include <cstddef>

#include "la/sparse.h"
#include "la/vector_ops.h"

namespace oftec::la {

/// Result of an iterative solve.
struct IterativeResult {
  Vector x;                 ///< solution (last iterate if not converged)
  bool converged = false;   ///< residual tolerance reached
  std::size_t iterations = 0;
  double residual_norm = 0.0;  ///< final ‖b − A·x‖₂
};

/// Reusable scratch for solve_cg. A caller that solves in a loop (the
/// steady-state Newton iteration, transient stepping) passes one of these
/// via IterativeOptions so the four iteration vectors are allocated once and
/// recycled; results are bit-identical with or without it.
struct CgWorkspace {
  Vector r;   ///< residual
  Vector z;   ///< preconditioned residual
  Vector p;   ///< search direction
  Vector ap;  ///< A·p
};

/// Options shared by both solvers.
struct IterativeOptions {
  double tolerance = 1e-10;      ///< relative residual target ‖r‖/‖b‖
  std::size_t max_iterations = 0;  ///< 0 → 10·n
  bool jacobi_precondition = true;
  /// Optional warm start (must have size n when set). Krylov iterations then
  /// run on the residual system, which cuts the iteration count sharply when
  /// the guess is close — e.g. successive Newton linearizations of the
  /// steady-state thermal system. Not owned; must outlive the call.
  const Vector* initial_guess = nullptr;
  /// Optional scratch reused across solve_cg calls (ignored by BiCGSTAB).
  /// Not owned; must outlive the call.
  CgWorkspace* workspace = nullptr;
};

/// Preconditioned conjugate gradient; caller asserts A is SPD.
[[nodiscard]] IterativeResult solve_cg(const CsrMatrix& a, const Vector& b,
                                       const IterativeOptions& opts = {});

/// Preconditioned BiCGSTAB for general square systems.
[[nodiscard]] IterativeResult solve_bicgstab(const CsrMatrix& a,
                                             const Vector& b,
                                             const IterativeOptions& opts = {});

}  // namespace oftec::la
