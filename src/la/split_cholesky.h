// Banded Cholesky split into symbolic analysis and numeric refactorization.
//
// Every steady-state thermal system of one package stack shares the same
// sparsity structure: the operating point (ω, I_TEC, leakage linearization)
// only moves diagonal entries, never the band pattern. Splitting the
// factorization lets the solve engine pay the structural work (band layout,
// workspace allocation) once per stack and then refactorize per operating
// point into the same storage — the classic symbolic/numeric split of sparse
// direct solvers, specialized to the band case where the "symbolic" phase
// reduces to the filled lower band.
//
// BandedCholeskyNumeric::refactorize performs the identical arithmetic, in
// the identical order, as constructing a fresh la::BandedCholesky — the
// property tests assert exact agreement.
#pragma once

#include <cstddef>
#include <memory>

#include "la/banded_matrix.h"
#include "la/vector_ops.h"

namespace oftec::la {

/// Structure-only analysis of an SPD band matrix family: dimension, band
/// width, and the factor storage layout. Immutable; share one instance
/// (via shared_ptr) across all numeric factors of the same package stack.
class BandedCholeskySymbolic {
 public:
  /// Analyze an n×n SPD family with `bandwidth` sub-diagonals (kl == ku).
  BandedCholeskySymbolic(std::size_t n, std::size_t bandwidth);

  /// Convenience: read the structure off a concrete matrix. Throws
  /// std::invalid_argument if kl != ku.
  static BandedCholeskySymbolic analyze(const BandedMatrix& a);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::size_t bandwidth() const noexcept { return k_; }
  /// Doubles needed to hold the factor L: (k+1)·n.
  [[nodiscard]] std::size_t factor_storage() const noexcept {
    return (k_ + 1) * n_;
  }
  /// True if `a` has this structure (size and symmetric bandwidths).
  [[nodiscard]] bool matches(const BandedMatrix& a) const noexcept;

 private:
  std::size_t n_ = 0;
  std::size_t k_ = 0;
};

/// Numeric factor bound to one symbolic analysis. refactorize() reuses the
/// workspace allocated at construction; solve() is const and therefore safe
/// to call concurrently from multiple threads once factorized.
class BandedCholeskyNumeric {
 public:
  explicit BandedCholeskyNumeric(
      std::shared_ptr<const BandedCholeskySymbolic> symbolic);

  /// Factor `a` (lower band read; must match the symbolic structure).
  /// Throws std::invalid_argument on a structure mismatch and
  /// std::runtime_error when the matrix is not positive definite; in the
  /// latter case the factor is left invalid (factorized() == false).
  void refactorize(const BandedMatrix& a);

  [[nodiscard]] bool factorized() const noexcept { return factorized_; }

  /// Solve A x = b with the current factor. Throws std::logic_error when no
  /// valid factor is held.
  [[nodiscard]] Vector solve(const Vector& b) const;

  [[nodiscard]] const BandedCholeskySymbolic& symbolic() const noexcept {
    return *symbolic_;
  }
  /// Smallest diagonal entry of L — a conditioning indicator.
  [[nodiscard]] double min_diagonal() const noexcept { return min_diag_; }

 private:
  /// Column-major banded factor, same layout as BandedCholesky
  /// (la/cholesky_core.h): L(i,j) at factor_[j*(k+1) + (i-j)].
  [[nodiscard]] double l(std::size_t i, std::size_t j) const noexcept {
    return factor_[j * (symbolic_->bandwidth() + 1) + (i - j)];
  }

  std::shared_ptr<const BandedCholeskySymbolic> symbolic_;
  Vector factor_;
  bool factorized_ = false;
  double min_diag_ = 0.0;
};

}  // namespace oftec::la
