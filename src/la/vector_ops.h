// Dense vector primitives.
//
// The library represents vectors as std::vector<double>; these free functions
// supply the handful of BLAS-1 operations the solvers need.
#pragma once

#include <cstddef>
#include <vector>

namespace oftec::la {

using Vector = std::vector<double>;

/// Dot product. Requires a.size() == b.size().
[[nodiscard]] double dot(const Vector& a, const Vector& b);

/// Euclidean norm.
[[nodiscard]] double norm2(const Vector& a);

/// Infinity norm (max |a_i|); 0 for the empty vector.
[[nodiscard]] double norm_inf(const Vector& a);

/// y += alpha * x. Requires x.size() == y.size().
void axpy(double alpha, const Vector& x, Vector& y);

/// Fused update-and-measure: y += alpha * x, returning dot(y, y) of the
/// updated y in the same pass. Bit-identical to axpy() followed by
/// dot(y, y) — both accumulators see the same operations in the same
/// order — but touches y once instead of twice. This is CG's residual
/// update (`r -= alpha*A p; ||r||`), the second-hottest loop of the
/// iterative path.
[[nodiscard]] double axpy_dot(double alpha, const Vector& x, Vector& y);

/// x *= alpha.
void scale(double alpha, Vector& x);

/// Element-wise maximum value; throws std::invalid_argument on empty input.
[[nodiscard]] double max_element_value(const Vector& a);

/// Index of the maximum element; throws std::invalid_argument on empty input.
[[nodiscard]] std::size_t argmax(const Vector& a);

/// Sum of all elements.
[[nodiscard]] double sum(const Vector& a);

/// max_i |a_i - b_i|. Requires equal sizes.
[[nodiscard]] double max_abs_diff(const Vector& a, const Vector& b);

}  // namespace oftec::la
