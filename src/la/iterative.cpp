#include "la/iterative.h"

#include <cmath>

#include "la/backend.h"
#include "util/fault.h"
#include "util/obs.h"

namespace oftec::la {

namespace {

const obs::Counter g_obs_cg_solves = obs::counter("la.cg.solves");
const obs::Counter g_obs_cg_iterations = obs::counter("la.cg.iterations_total");
const obs::Counter g_obs_bicgstab_solves = obs::counter("la.bicgstab.solves");
const obs::Counter g_obs_bicgstab_iterations =
    obs::counter("la.bicgstab.iterations_total");

/// Counts one solve (and its final iteration count) on every exit path.
struct IterTally {
  const obs::Counter& solves;
  const obs::Counter& iterations;
  const IterativeResult& res;
  ~IterTally() {
    solves.add();
    iterations.add(res.iterations);
  }
};

[[nodiscard]] Vector jacobi_inverse_diagonal(const CsrMatrix& a,
                                             bool enabled) {
  Vector inv_d(a.size(), 1.0);
  if (!enabled) return inv_d;
  const Vector d = a.diagonal();
  for (std::size_t i = 0; i < d.size(); ++i) {
    inv_d[i] = d[i] != 0.0 ? 1.0 / d[i] : 1.0;
  }
  return inv_d;
}

[[nodiscard]] Vector apply_diag(const Vector& d, const Vector& v) {
  Vector out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = d[i] * v[i];
  return out;
}

/// Initialize x and r = b − A·x from the optional warm start. The warm
/// residual goes through the fused CsrMatrix::residual_into (one pass, no
/// temporary; bit-identical to the multiply + axpy(−1) it replaced).
void init_iterate(const CsrMatrix& a, const Vector& b,
                  const IterativeOptions& opts, Vector& x, Vector& r) {
  if (opts.initial_guess != nullptr && opts.initial_guess->size() == b.size()) {
    x = *opts.initial_guess;
    a.residual_into(b, x, r);
  } else {
    x.assign(b.size(), 0.0);
    r = b;
  }
}

}  // namespace

IterativeResult solve_cg(const CsrMatrix& a, const Vector& b,
                         const IterativeOptions& opts) {
  static const fault::Site cg_stall = fault::site("la.cg_stall");
  const std::size_t n = a.size();
  if (cg_stall.should_fail()) {
    // Report an honest stall: zero iterate, full residual, not converged.
    // Callers fall through to the direct banded solve exactly as they do
    // when the Krylov iteration genuinely stagnates near runaway.
    IterativeResult res;
    const IterTally tally{g_obs_cg_solves, g_obs_cg_iterations, res};
    res.x.assign(n, 0.0);
    res.residual_norm = norm2(b);
    return res;
  }
  const std::size_t max_iter =
      opts.max_iterations != 0 ? opts.max_iterations : 10 * n;
  const Vector inv_d = jacobi_inverse_diagonal(a, opts.jacobi_precondition);
  const BackendOps& ops = backend();

  IterativeResult res;
  const IterTally tally{g_obs_cg_solves, g_obs_cg_iterations, res};
  CgWorkspace local;
  CgWorkspace& ws = opts.workspace != nullptr ? *opts.workspace : local;
  Vector& r = ws.r;
  init_iterate(a, b, opts, res.x, r);
  const double b_norm = norm2(b);
  if (b_norm == 0.0) {
    res.x.assign(n, 0.0);
    res.converged = true;
    return res;
  }
  res.residual_norm = norm2(r);
  if (res.residual_norm <= opts.tolerance * b_norm) {
    res.converged = true;
    return res;
  }

  // Every vector touch in the iteration is one fused backend pass:
  //   multiply_dot      ap = A·p and p·ap          (1 pass over p, ap)
  //   cg_update         x += αp, r −= α·ap, ‖r‖²   (1 pass over p/ap/x/r)
  //   precond_dot       z = d∘r and r·z            (1 pass over r, z)
  //   search_dir_update p = z + βp                 (1 pass over z, p)
  // The scalar backend reproduces the unfused sequence bit for bit; the simd
  // backend's reductions use its fixed 8-lane tree (see backend.h).
  Vector& z = ws.z;
  z.resize(n);
  double rz = ops.precond_dot(n, inv_d.data(), r.data(), z.data());
  Vector& p = ws.p;
  p = z;
  Vector& ap = ws.ap;

  for (std::size_t it = 0; it < max_iter; ++it) {
    const double p_ap = a.multiply_dot(p, ap);
    if (p_ap <= 0.0) break;  // matrix not SPD — bail to caller
    const double alpha = rz / p_ap;
    res.iterations = it + 1;
    res.residual_norm = std::sqrt(
        ops.cg_update(n, alpha, p.data(), ap.data(), res.x.data(), r.data()));
    if (res.residual_norm <= opts.tolerance * b_norm) {
      res.converged = true;
      return res;
    }
    const double rz_new = ops.precond_dot(n, inv_d.data(), r.data(), z.data());
    const double beta = rz_new / rz;
    rz = rz_new;
    ops.search_dir_update(n, beta, z.data(), p.data());
  }
  res.residual_norm = norm2(r);
  return res;
}

IterativeResult solve_bicgstab(const CsrMatrix& a, const Vector& b,
                               const IterativeOptions& opts) {
  static const fault::Site cg_stall = fault::site("la.cg_stall");
  const std::size_t n = a.size();
  if (cg_stall.should_fail()) {
    IterativeResult res;
    const IterTally tally{g_obs_bicgstab_solves, g_obs_bicgstab_iterations,
                          res};
    res.x.assign(n, 0.0);
    res.residual_norm = norm2(b);
    return res;
  }
  const std::size_t max_iter =
      opts.max_iterations != 0 ? opts.max_iterations : 10 * n;
  const Vector inv_d = jacobi_inverse_diagonal(a, opts.jacobi_precondition);

  IterativeResult res;
  const IterTally tally{g_obs_bicgstab_solves, g_obs_bicgstab_iterations, res};
  Vector r;
  init_iterate(a, b, opts, res.x, r);
  const double b_norm = norm2(b);
  if (b_norm == 0.0) {
    res.x.assign(n, 0.0);
    res.converged = true;
    return res;
  }
  res.residual_norm = norm2(r);
  if (res.residual_norm <= opts.tolerance * b_norm) {
    res.converged = true;
    return res;
  }

  const Vector r_hat = r;  // shadow residual
  double rho = 1.0, alpha = 1.0, omega = 1.0;
  Vector v(n, 0.0), p(n, 0.0);

  for (std::size_t it = 0; it < max_iter; ++it) {
    const double rho_new = dot(r_hat, r);
    if (rho_new == 0.0) break;  // breakdown
    if (it == 0) {
      p = r;
    } else {
      const double beta = (rho_new / rho) * (alpha / omega);
      for (std::size_t i = 0; i < n; ++i) {
        p[i] = r[i] + beta * (p[i] - omega * v[i]);
      }
    }
    rho = rho_new;

    const Vector p_hat = apply_diag(inv_d, p);
    v = a.multiply(p_hat);
    const double rhv = dot(r_hat, v);
    if (rhv == 0.0) break;
    alpha = rho / rhv;

    Vector s = r;
    axpy(-alpha, v, s);
    res.iterations = it + 1;
    if (norm2(s) <= opts.tolerance * b_norm) {
      axpy(alpha, p_hat, res.x);
      res.residual_norm = norm2(s);
      res.converged = true;
      return res;
    }

    const Vector s_hat = apply_diag(inv_d, s);
    const Vector t = a.multiply(s_hat);
    const double tt = dot(t, t);
    if (tt == 0.0) break;
    omega = dot(t, s) / tt;

    axpy(alpha, p_hat, res.x);
    axpy(omega, s_hat, res.x);
    r = s;
    axpy(-omega, t, r);

    res.residual_norm = norm2(r);
    if (res.residual_norm <= opts.tolerance * b_norm) {
      res.converged = true;
      return res;
    }
    if (omega == 0.0) break;
  }
  res.residual_norm = norm2(r);
  return res;
}

}  // namespace oftec::la
