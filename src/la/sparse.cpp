#include "la/sparse.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace oftec::la {

void TripletBuilder::add(std::size_t r, std::size_t c, double v) {
  if (r >= n_ || c >= n_) {
    throw std::out_of_range("TripletBuilder::add: index out of range");
  }
  triplets_.push_back({r, c, v});
}

CsrMatrix TripletBuilder::build() const {
  std::vector<Triplet> sorted = triplets_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  std::vector<std::size_t> row_ptr(n_ + 1, 0);
  std::vector<std::size_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(sorted.size());
  values.reserve(sorted.size());

  std::size_t i = 0;
  for (std::size_t r = 0; r < n_; ++r) {
    row_ptr[r] = values.size();
    while (i < sorted.size() && sorted[i].row == r) {
      const std::size_t c = sorted[i].col;
      double acc = 0.0;
      while (i < sorted.size() && sorted[i].row == r && sorted[i].col == c) {
        acc += sorted[i].value;
        ++i;
      }
      col_idx.push_back(c);
      values.push_back(acc);
    }
  }
  row_ptr[n_] = values.size();
  return CsrMatrix(n_, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix::CsrMatrix(std::size_t n, std::vector<std::size_t> row_ptr,
                     std::vector<std::size_t> col_idx,
                     std::vector<double> values)
    : n_(n),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  if (row_ptr_.size() != n_ + 1 || col_idx_.size() != values_.size()) {
    throw std::invalid_argument("CsrMatrix: inconsistent arrays");
  }
}

Vector CsrMatrix::multiply(const Vector& x) const {
  if (x.size() != n_) {
    throw std::invalid_argument("CsrMatrix::multiply: size mismatch");
  }
  Vector y(n_, 0.0);
  for (std::size_t r = 0; r < n_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += values_[k] * x[col_idx_[k]];
    }
    y[r] = acc;
  }
  return y;
}

double CsrMatrix::multiply_dot(const Vector& x, Vector& y) const {
  if (x.size() != n_) {
    throw std::invalid_argument("CsrMatrix::multiply_dot: size mismatch");
  }
  y.resize(n_);
  double dot_acc = 0.0;
  for (std::size_t r = 0; r < n_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += values_[k] * x[col_idx_[k]];
    }
    y[r] = acc;
    dot_acc += x[r] * acc;
  }
  return dot_acc;
}

void CsrMatrix::residual_into(const Vector& b, const Vector& x,
                              Vector& r) const {
  if (x.size() != n_ || b.size() != n_) {
    throw std::invalid_argument("CsrMatrix::residual_into: size mismatch");
  }
  r.resize(n_);
  for (std::size_t row = 0; row < n_; ++row) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
      acc += values_[k] * x[col_idx_[k]];
    }
    r[row] = b[row] - acc;
  }
}

Vector CsrMatrix::diagonal() const {
  Vector d(n_, 0.0);
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      if (col_idx_[k] == r) {
        d[r] = values_[k];
        break;
      }
    }
  }
  return d;
}

double CsrMatrix::get(std::size_t r, std::size_t c) const {
  if (r >= n_ || c >= n_) {
    throw std::out_of_range("CsrMatrix::get: index out of range");
  }
  for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
    if (col_idx_[k] == c) return values_[k];
  }
  return 0.0;
}

std::pair<std::size_t, std::size_t> CsrMatrix::bandwidths() const {
  std::size_t kl = 0;
  std::size_t ku = 0;
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const std::size_t c = col_idx_[k];
      if (r >= c) {
        kl = std::max(kl, r - c);
      } else {
        ku = std::max(ku, c - r);
      }
    }
  }
  return {kl, ku};
}

BandedMatrix CsrMatrix::to_banded(std::size_t kl, std::size_t ku) const {
  BandedMatrix band(n_, kl, ku);
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const std::size_t c = col_idx_[k];
      if (!band.in_band(r, c)) {
        throw std::invalid_argument("CsrMatrix::to_banded: entry outside band");
      }
      band.at(r, c) = values_[k];
    }
  }
  return band;
}

CsrMatrix banded_to_csr(const BandedMatrix& banded, double drop_tolerance) {
  const std::size_t n = banded.size();
  const std::size_t kl = banded.lower_bandwidth();
  const std::size_t ku = banded.upper_bandwidth();
  std::vector<std::size_t> row_ptr(n + 1, 0);
  std::vector<std::size_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(n * 8);
  values.reserve(n * 8);
  for (std::size_t r = 0; r < n; ++r) {
    row_ptr[r] = values.size();
    const std::size_t c_lo = r > kl ? r - kl : 0;
    const std::size_t c_hi = std::min(n - 1, r + ku);
    for (std::size_t c = c_lo; c <= c_hi; ++c) {
      const double v = banded.storage(kl + ku + r - c, c);
      if (std::abs(v) > drop_tolerance || r == c) {
        col_idx.push_back(c);
        values.push_back(v);
      }
    }
  }
  row_ptr[n] = values.size();
  return CsrMatrix(n, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

bool CsrMatrix::is_symmetric(double tol) const {
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const std::size_t c = col_idx_[k];
      if (std::abs(values_[k] - get(c, r)) > tol) return false;
    }
  }
  return true;
}

}  // namespace oftec::la
