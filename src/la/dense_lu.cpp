#include "la/dense_lu.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace oftec::la {

DenseLu::DenseLu(DenseMatrix a) : lu_(std::move(a)) {
  if (lu_.rows() != lu_.cols()) {
    throw std::invalid_argument("DenseLu: matrix must be square");
  }
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude entry in column k.
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best == 0.0) {
      throw std::runtime_error("DenseLu: singular matrix");
    }
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(k, c), lu_(pivot, c));
      }
      std::swap(perm_[k], perm_[pivot]);
      det_ = -det_;
    }
    det_ *= lu_(k, k);
    const double inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mult = lu_(r, k) * inv_pivot;
      lu_(r, k) = mult;
      if (mult == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) {
        lu_(r, c) -= mult * lu_(k, c);
      }
    }
  }
}

Vector DenseLu::solve(const Vector& b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) {
    throw std::invalid_argument("DenseLu::solve: size mismatch");
  }
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  // Forward substitution with unit-diagonal L.
  for (std::size_t i = 1; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Backward substitution with U.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

Vector solve_dense(const DenseMatrix& a, const Vector& b) {
  return DenseLu(a).solve(b);
}

DenseMatrix invert_dense(const DenseMatrix& a) {
  const DenseLu lu(a);
  const std::size_t n = a.rows();
  DenseMatrix inv(n, n);
  Vector e(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    e.assign(n, 0.0);
    e[c] = 1.0;
    const Vector col = lu.solve(e);
    for (std::size_t r = 0; r < n; ++r) inv(r, c) = col[r];
  }
  return inv;
}

}  // namespace oftec::la
