// Internal glue between backend.cpp (dispatch) and backend_simd.cpp (the
// ISA-specific kernel tables). Not installed; include backend.h instead.
#pragma once

#include "la/backend.h"

namespace oftec::la::detail {

/// The AVX2 / AVX-512 tables, or null when the build target or the running
/// CPU cannot execute them. Cheap after the first call.
[[nodiscard]] const BackendOps* avx2_table() noexcept;
[[nodiscard]] const BackendOps* avx512_table() noexcept;

}  // namespace oftec::la::detail
