// Runtime-dispatched kernel backend for the dense/banded hot loops.
//
// Every solver in the library funnels its inner arithmetic through a handful
// of BLAS-1-shaped kernels: contiguous axpy/dot (CG, the banded LU forward
// substitution and trailing update after the column-major storage change),
// the fused axpy_dot residual update, and strided negative-multiply-subtract
// folds (back substitution, both Cholesky factorizations and solves). This
// header is the seam that lets those call sites pick an implementation at
// runtime:
//
//   scalar — the reference. Plain sequential C++ loops, bit-identical to the
//            seed implementations they replaced (enforced against checked-in
//            goldens by tests/la/test_backend_parity.cpp). Always available.
//   simd   — AVX2 or AVX-512 kernels. Element-wise kernels (axpy, scale) are
//            bit-identical to scalar (same multiply/add per element, no FMA
//            contraction). Reduction kernels (dot, axpy_dot, nmsub_fold,
//            max_abs_diff) accumulate in a fixed 8-lane interleave combined
//            pairwise, so they are ULP-close to scalar and — because AVX2
//            and AVX-512 realize the *same* 8-lane tree — bit-identical
//            between the two instruction sets. The simd backend is therefore
//            deterministic: same inputs give the same bits on every machine
//            that runs it, at any thread count.
//
// Selection (first call to backend(), or an explicit install_backend()):
//   OFTEC_LA_BACKEND = scalar | simd | auto (default) | avx2 | avx512
// "auto" resolves to simd when the CPU supports AVX2, else scalar. An
// explicit "simd"/"avx2"/"avx512" on unsupported hardware degrades to the
// widest available implementation with a logged warning rather than
// failing — and the fault site "la.backend.simd_unavailable" injects that
// degradation deterministically for chaos tests (docs/robustness.md).
//
// Bit-identity policy (docs/solver.md "Kernel backends"):
//   - scalar: bit-identical to the seed solvers, forever.
//   - simd:   ULP-bounded against scalar per kernel call; deterministic for
//             a fixed backend across runs, machines, and thread counts.
//   - Paths that compare two runs of *this process* (batched-vs-serial,
//     engine-vs-reference, serve-vs-direct) stay bit-identical under either
//     backend, because both sides go through the same kernels.
#pragma once

#include <cstddef>

namespace oftec::la {

enum class BackendKind { kScalar, kSimd };

/// Kernel table. All pointers are non-null and callable from any thread.
struct BackendOps {
  const char* name = "scalar";  ///< "scalar", "simd-avx2", "simd-avx512"
  BackendKind kind = BackendKind::kScalar;

  /// y[i] += alpha * x[i] over contiguous spans (no aliasing).
  void (*axpy)(std::size_t n, double alpha, const double* x, double* y);
  /// x[i] *= alpha.
  void (*scale)(std::size_t n, double alpha, double* x);
  /// Σ x[i]·y[i].
  double (*dot)(std::size_t n, const double* x, const double* y);
  /// Fused y[i] += alpha·x[i]; returns Σ y[i]² of the updated y.
  double (*axpy_dot)(std::size_t n, double alpha, const double* x, double* y);
  /// max_i |x[i] − y[i]| (finite inputs; NaN handling is backend-specific).
  double (*max_abs_diff)(std::size_t n, const double* x, const double* y);
  /// Strided negative-multiply-subtract fold:
  ///   init − Σ_{i<n} a[i·sa] · x[i·sx]
  /// computed as a sequential fused fold by the scalar backend (the exact
  /// substitution-loop arithmetic of the seed solvers) and as an 8-lane tree
  /// by the simd backend. Strides are in elements and may be negative.
  double (*nmsub_fold)(double init, std::size_t n, const double* a,
                       std::ptrdiff_t sa, const double* x, std::ptrdiff_t sx);
};

/// The active backend. Resolved from OFTEC_LA_BACKEND (else "auto") on first
/// use, then constant until install_backend() is called. Never null.
[[nodiscard]] const BackendOps& backend() noexcept;

/// True when the CPU can run the AVX2 simd kernels (AVX2; the kernels use no
/// FMA so the FMA flag is not required).
[[nodiscard]] bool simd_supported() noexcept;
/// True when the AVX-512 flavor is additionally available (AVX-512F).
[[nodiscard]] bool avx512_supported() noexcept;

/// Resolve `spec` ("scalar" | "simd" | "auto" | "avx2" | "avx512"; null or
/// unrecognized → "auto" with a logged warning) and install the result as
/// the active backend. Returns the installed table. Intended for startup,
/// tests, and benches — installation is atomic, but swapping backends while
/// other threads are inside kernels mixes implementations between calls
/// (each individual call is internally consistent).
const BackendOps& install_backend(const char* spec);

/// The scalar reference table (always available; used by differential tests
/// regardless of the active backend).
[[nodiscard]] const BackendOps& scalar_backend() noexcept;

/// The simd table for the current machine, or null when !simd_supported().
/// Exposed so the parity suite can compare tables directly.
[[nodiscard]] const BackendOps* simd_backend() noexcept;

/// The specific AVX2 / AVX-512 tables when supported (null otherwise); the
/// determinism tests assert the two produce identical bits.
[[nodiscard]] const BackendOps* avx2_backend() noexcept;
[[nodiscard]] const BackendOps* avx512_backend() noexcept;

}  // namespace oftec::la
