// Runtime-dispatched kernel backend for the dense/banded hot loops.
//
// Every solver in the library funnels its inner arithmetic through a handful
// of BLAS-1-shaped kernels: contiguous axpy/dot (CG, the banded LU forward
// substitution and trailing update after the column-major storage change),
// the fused axpy_dot residual update, and strided negative-multiply-subtract
// folds (back substitution, both Cholesky factorizations and solves). This
// header is the seam that lets those call sites pick an implementation at
// runtime:
//
//   scalar — the reference. Plain sequential C++ loops, bit-identical to the
//            seed implementations they replaced (enforced against checked-in
//            goldens by tests/la/test_backend_parity.cpp). Always available.
//   simd   — AVX2 or AVX-512 kernels. Element-wise kernels (axpy, scale) are
//            bit-identical to scalar (same multiply/add per element, no FMA
//            contraction). Reduction kernels (dot, axpy_dot, nmsub_fold,
//            max_abs_diff) accumulate in a fixed 8-lane interleave combined
//            pairwise, so they are ULP-close to scalar and — because AVX2
//            and AVX-512 realize the *same* 8-lane tree — bit-identical
//            between the two instruction sets. The simd backend is therefore
//            deterministic: same inputs give the same bits on every machine
//            that runs it, at any thread count.
//
// Selection (first call to backend(), or an explicit install_backend()):
//   OFTEC_LA_BACKEND = scalar | simd | auto (default) | avx2 | avx512
// "auto" resolves to simd when the CPU supports AVX2, else scalar. An
// explicit "simd"/"avx2"/"avx512" on unsupported hardware degrades to the
// widest available implementation with a logged warning rather than
// failing — and the fault site "la.backend.simd_unavailable" injects that
// degradation deterministically for chaos tests (docs/robustness.md).
//
// Bit-identity policy (docs/solver.md "Kernel backends"):
//   - scalar: bit-identical to the seed solvers, forever.
//   - simd:   ULP-bounded against scalar per kernel call; deterministic for
//             a fixed backend across runs, machines, and thread counts.
//   - Paths that compare two runs of *this process* (batched-vs-serial,
//     engine-vs-reference, serve-vs-direct) stay bit-identical under either
//     backend, because both sides go through the same kernels.
#pragma once

#include <cstddef>

namespace oftec::la {

enum class BackendKind { kScalar, kSimd };

/// Kernel table. All pointers are non-null and callable from any thread.
struct BackendOps {
  const char* name = "scalar";  ///< "scalar", "simd-avx2", "simd-avx512"
  BackendKind kind = BackendKind::kScalar;

  /// y[i] += alpha * x[i] over contiguous spans (no aliasing).
  void (*axpy)(std::size_t n, double alpha, const double* x, double* y);
  /// x[i] *= alpha.
  void (*scale)(std::size_t n, double alpha, double* x);
  /// Σ x[i]·y[i].
  double (*dot)(std::size_t n, const double* x, const double* y);
  /// Fused y[i] += alpha·x[i]; returns Σ y[i]² of the updated y.
  double (*axpy_dot)(std::size_t n, double alpha, const double* x, double* y);
  /// max_i |x[i] − y[i]| (finite inputs; NaN handling is backend-specific).
  double (*max_abs_diff)(std::size_t n, const double* x, const double* y);
  /// Strided negative-multiply-subtract fold:
  ///   init − Σ_{i<n} a[i·sa] · x[i·sx]
  /// computed as a sequential fused fold by the scalar backend (the exact
  /// substitution-loop arithmetic of the seed solvers) and as an 8-lane tree
  /// by the simd backend. Strides are in elements and may be negative.
  double (*nmsub_fold)(double init, std::size_t n, const double* a,
                       std::ptrdiff_t sa, const double* x, std::ptrdiff_t sx);

  // --- Panel primitives (PR 10). The factorizations feed whole multi-column
  // --- updates through one call so the destination column stays in
  // --- registers while contiguous source columns stream past it.

  /// Multi-source fused axpy ("panel update"):
  ///   for s = 0..p−1:  y[r] += alpha[s] · x[s][r]   for r < len[s],
  /// where every source starts at the same destination element. For each
  /// destination element the sources apply in ascending s, so the result is
  /// bit-identical to p successive axpy calls in s order — element-wise on
  /// every backend, hence bit-identical between scalar and simd. Sources
  /// must not alias y; len[s] may be 0 (x[s] is then never dereferenced).
  void (*panel_update)(std::size_t p, const double* alpha,
                       const double* const* x, const std::size_t* len,
                       double* y);

  /// p independent negative-multiply-subtract folds of regularly strided,
  /// contiguous source columns against one shared x:
  ///   out[s] = init[s] − Σ_{i < len_s} a_s[i] · x[i],
  /// with a_s = a0 + s·sa and len_s = min(len0 + s, len_cap). Each fold uses
  /// nmsub_fold's arithmetic (scalar: sequential seed fold; simd: the fixed
  /// 8-lane tree), so out[s] is bit-identical to p separate nmsub_fold calls
  /// with unit strides.
  void (*panel_fold)(std::size_t p, const double* init, const double* a0,
                     std::ptrdiff_t sa, std::size_t len0, std::size_t len_cap,
                     const double* x, double* out);

  /// Fused forward substitution L y = b over a column-major band Cholesky
  /// factor (column j is `factor + j·(k+1)`, diagonal first, rows
  /// j..min(n−1, j+k)). In place: x holds b on entry, y on return. A
  /// column-oriented sequence of axpys plus one division per diagonal —
  /// element-wise, so bit-identical across backends (and to the seed's
  /// row-fold forward substitution; see docs/solver.md).
  void (*trsv_fwd)(std::size_t n, std::size_t k, const double* factor,
                   double* x);

  /// Fused backward substitution Lᵀ x = y over the same layout. Row folds
  /// over contiguous factor columns: scalar folds sequentially (seed bits);
  /// simd blocks 8 rows and folds their out-of-block contributions with the
  /// 8-lane tree (deterministic, AVX2 ≡ AVX-512, ULP-bounded vs scalar).
  void (*trsv_bwd)(std::size_t n, std::size_t k, const double* factor,
                   double* x);

  // --- Fused CG-iteration kernels (PR 10): one pass per vector touch.

  /// Fused CG iterate/residual update: x[i] += alpha·p[i];
  /// r[i] += (−alpha)·ap[i]; returns Σ r[i]² of the updated r. The x update
  /// is element-wise; the r/Σ part is exactly axpy_dot(−alpha, ap, r), so
  /// the result is bit-identical to the unfused axpy + axpy_dot pair on the
  /// same backend.
  double (*cg_update)(std::size_t n, double alpha, const double* p,
                      const double* ap, double* x, double* r);

  /// Fused Jacobi preconditioner apply + dot: z[i] = d[i]·r[i]; returns
  /// Σ r[i]·z[i]. Bit-identical to the unfused element-wise product followed
  /// by dot(r, z) on the same backend (same 8-lane tree in simd).
  double (*precond_dot)(std::size_t n, const double* d, const double* r,
                        double* z);

  /// Search-direction refresh p[i] = z[i] + beta·p[i] (element-wise;
  /// bit-identical across backends).
  void (*search_dir_update)(std::size_t n, double beta, const double* z,
                            double* p);
};

/// The active backend. Resolved from OFTEC_LA_BACKEND (else "auto") on first
/// use, then constant until install_backend() is called. Never null.
[[nodiscard]] const BackendOps& backend() noexcept;

/// True when the CPU can run the AVX2 simd kernels (AVX2; the kernels use no
/// FMA so the FMA flag is not required).
[[nodiscard]] bool simd_supported() noexcept;
/// True when the AVX-512 flavor is additionally available (AVX-512F).
[[nodiscard]] bool avx512_supported() noexcept;

/// Resolve `spec` ("scalar" | "simd" | "auto" | "avx2" | "avx512"; null or
/// unrecognized → "auto" with a logged warning) and install the result as
/// the active backend. Returns the installed table. Intended for startup,
/// tests, and benches — installation is atomic, but swapping backends while
/// other threads are inside kernels mixes implementations between calls
/// (each individual call is internally consistent).
const BackendOps& install_backend(const char* spec);

/// The scalar reference table (always available; used by differential tests
/// regardless of the active backend).
[[nodiscard]] const BackendOps& scalar_backend() noexcept;

/// The simd table for the current machine, or null when !simd_supported().
/// Exposed so the parity suite can compare tables directly.
[[nodiscard]] const BackendOps* simd_backend() noexcept;

/// The specific AVX2 / AVX-512 tables when supported (null otherwise); the
/// determinism tests assert the two produce identical bits.
[[nodiscard]] const BackendOps* avx2_backend() noexcept;
[[nodiscard]] const BackendOps* avx512_backend() noexcept;

}  // namespace oftec::la
