#include "la/banded_matrix.h"

#include <stdexcept>

namespace oftec::la {

BandedMatrix::BandedMatrix(std::size_t n, std::size_t kl, std::size_t ku)
    : n_(n),
      kl_(kl),
      ku_(ku),
      rows_(2 * kl + ku + 1),
      data_((2 * kl + ku + 1) * n, 0.0) {}

bool BandedMatrix::in_band(std::size_t r, std::size_t c) const noexcept {
  if (r >= n_ || c >= n_) return false;
  if (r >= c) return r - c <= kl_;
  return c - r <= ku_;
}

bool BandedMatrix::in_storage(std::size_t r, std::size_t c) const noexcept {
  if (r >= n_ || c >= n_) return false;
  if (r >= c) return r - c <= kl_;
  return c - r <= ku_ + kl_;  // fill-in region extends the upper bandwidth
}

double& BandedMatrix::at(std::size_t r, std::size_t c) {
  if (!in_storage(r, c)) {
    throw std::out_of_range("BandedMatrix::at: outside band");
  }
  return storage(kl_ + ku_ + r - c, c);
}

double BandedMatrix::get(std::size_t r, std::size_t c) const {
  if (r >= n_ || c >= n_) {
    throw std::out_of_range("BandedMatrix::get: outside matrix");
  }
  if (!in_storage(r, c)) return 0.0;
  return storage(kl_ + ku_ + r - c, c);
}

void BandedMatrix::add(std::size_t r, std::size_t c, double v) { at(r, c) += v; }

Vector BandedMatrix::multiply(const Vector& x) const {
  if (x.size() != n_) {
    throw std::invalid_argument("BandedMatrix::multiply: size mismatch");
  }
  Vector y(n_, 0.0);
  for (std::size_t r = 0; r < n_; ++r) {
    const std::size_t c_lo = r > kl_ ? r - kl_ : 0;
    const std::size_t c_hi = std::min(n_ - 1, r + ku_);
    double acc = 0.0;
    for (std::size_t c = c_lo; c <= c_hi; ++c) {
      acc += storage(kl_ + ku_ + r - c, c) * x[c];
    }
    y[r] = acc;
  }
  return y;
}

}  // namespace oftec::la
