#include "package/package_config.h"

#include <stdexcept>

#include "util/units.h"

namespace oftec::package {

const LayerSpec& PackageConfig::layer(LayerRole role) const {
  for (const LayerSpec& l : layers) {
    if (l.role == role) return l;
  }
  throw std::runtime_error("PackageConfig::layer: role not present");
}

PackageConfig PackageConfig::paper_default() {
  using units::mm;
  using units::um;

  PackageConfig cfg;

  LayerSpec pcb;
  pcb.name = "PCB";
  pcb.role = LayerRole::kPcb;
  pcb.material = materials::fr4();
  pcb.thickness = mm(1.0);
  pcb.width = pcb.height = mm(15.9);
  cfg.layers.push_back(pcb);

  LayerSpec chip;
  chip.name = "chip";
  chip.role = LayerRole::kChip;
  chip.material = materials::silicon();  // Table 1: k = 100
  chip.thickness = um(15.0);
  chip.width = chip.height = mm(15.9);
  cfg.layers.push_back(chip);

  LayerSpec tim1;
  tim1.name = "TIM1";
  tim1.role = LayerRole::kTim1;
  tim1.material = materials::thermal_paste();  // Table 1: k = 1.75
  tim1.thickness = um(20.0);
  tim1.width = tim1.height = mm(15.9);
  cfg.layers.push_back(tim1);

  LayerSpec tec_layer;
  tec_layer.name = "TEC";
  tec_layer.role = LayerRole::kTec;
  tec_layer.material = materials::tec_composite();
  tec_layer.thickness = um(100.0);
  tec_layer.width = tec_layer.height = mm(15.9);
  cfg.layers.push_back(tec_layer);

  LayerSpec spreader;
  spreader.name = "heat-spreader";
  spreader.role = LayerRole::kSpreader;
  spreader.material = materials::copper();  // Table 1: k = 400
  spreader.thickness = mm(1.0);
  spreader.width = spreader.height = mm(30.0);
  cfg.layers.push_back(spreader);

  LayerSpec tim2;
  tim2.name = "TIM2";
  tim2.role = LayerRole::kTim2;
  tim2.material = materials::thermal_paste();
  tim2.thickness = um(20.0);
  tim2.width = tim2.height = mm(30.0);
  cfg.layers.push_back(tim2);

  LayerSpec sink;
  sink.name = "heat-sink";
  sink.role = LayerRole::kHeatSink;
  sink.material = materials::copper();  // Table 1: k = 400
  sink.thickness = mm(7.0);
  sink.width = sink.height = mm(60.0);
  cfg.layers.push_back(sink);

  // TEC device: defaults in TecDeviceParams; I_TEC,max from the paper.
  cfg.tec.max_current = 5.0;
  // Make the TEC-layer bulk conductivity and the per-device conductance
  // consistent (k = K·t/A).
  cfg.layers[3].material.conductivity = cfg.tec.layer_conductivity();

  cfg.fan = FanModel{};          // c = 1.6e-7, ω_max = 524 rad/s
  cfg.sink_fan = HeatSinkFanModel{};  // p = 0.97, q = 1 s, r = −0.25, g_HS = 0.525

  cfg.ambient = units::celsius_to_kelvin(45.0);
  cfg.t_max = units::celsius_to_kelvin(90.0);
  cfg.validate();
  return cfg;
}

PackageConfig PackageConfig::without_tecs() const {
  PackageConfig cfg = *this;
  cfg.has_tec = false;
  // Fairness rule (Sec. 6.1): the baseline keeps the TEC layer as a passive
  // conduction slab at the composite conductivity, preserving the combined
  // TIM1+TEC vertical conductance of the hybrid package. The uncovered-cell
  // filler is irrelevant now; make it uniform too.
  for (LayerSpec& l : cfg.layers) {
    if (l.role == LayerRole::kTec) {
      l.material.conductivity = tec.layer_conductivity();
    }
  }
  cfg.filler_conductivity = tec.layer_conductivity();
  return cfg;
}

PackageConfig PackageConfig::scaled_to_die(double die_width,
                                           double die_height) const {
  if (die_width <= 0.0 || die_height <= 0.0) {
    throw std::invalid_argument(
        "PackageConfig::scaled_to_die: die must be positive");
  }
  PackageConfig cfg = *this;
  const LayerSpec& chip = layer(LayerRole::kChip);
  const double scale_w = die_width / chip.width;
  const double scale_h = die_height / chip.height;
  for (LayerSpec& l : cfg.layers) {
    const bool die_sized =
        l.role == LayerRole::kPcb || l.role == LayerRole::kChip ||
        l.role == LayerRole::kTim1 || l.role == LayerRole::kTec;
    if (die_sized) {
      l.width = die_width;
      l.height = die_height;
    } else {
      l.width *= scale_w;
      l.height *= scale_h;
    }
  }
  cfg.validate();
  return cfg;
}

void PackageConfig::validate() const {
  static constexpr LayerRole kExpectedOrder[] = {
      LayerRole::kPcb,     LayerRole::kChip, LayerRole::kTim1,
      LayerRole::kTec,     LayerRole::kSpreader, LayerRole::kTim2,
      LayerRole::kHeatSink};
  if (layers.size() != std::size(kExpectedOrder)) {
    throw std::invalid_argument("PackageConfig: expected 7 layers");
  }
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const LayerSpec& l = layers[i];
    if (l.role != kExpectedOrder[i]) {
      throw std::invalid_argument("PackageConfig: layer order mismatch at " +
                                  l.name);
    }
    if (l.thickness <= 0.0 || l.width <= 0.0 || l.height <= 0.0) {
      throw std::invalid_argument("PackageConfig: non-positive geometry in " +
                                  l.name);
    }
    if (l.material.conductivity <= 0.0) {
      throw std::invalid_argument("PackageConfig: non-positive conductivity in " +
                                  l.name);
    }
  }
  // Upper layers must be at least die-sized.
  const LayerSpec& chip = layer(LayerRole::kChip);
  for (const LayerSpec& l : layers) {
    if (l.width < chip.width - 1e-12 || l.height < chip.height - 1e-12) {
      if (l.role != LayerRole::kPcb) {
        throw std::invalid_argument("PackageConfig: layer smaller than die: " +
                                    l.name);
      }
    }
  }
  if (has_tec) tec.validate();
  fan.validate();
  sink_fan.validate();
  if (ambient <= 0.0 || t_max <= ambient) {
    throw std::invalid_argument("PackageConfig: need t_max > ambient > 0");
  }
  if (pcb_to_ambient_conductance < 0.0) {
    throw std::invalid_argument(
        "PackageConfig: negative PCB-ambient conductance");
  }
  if (filler_conductivity <= 0.0) {
    throw std::invalid_argument("PackageConfig: filler conductivity must be > 0");
  }
}

}  // namespace oftec::package
