// Forced-convection fan model (paper Eq. 8).
#pragma once

namespace oftec::package {

/// Cubic fan law P_fan = c·ω³ for laminar airflow, with a hard speed cap.
struct FanModel {
  /// c [W·s³]: depends on air viscous friction, density, and blade radius.
  /// Default is the paper's estimate (from Shin et al. [11]).
  double power_constant = 1.6e-7;
  /// ω_max [rad/s]; the paper uses 524 rad/s = 5000 RPM.
  double max_speed = 524.0;

  /// Electrical power [W] at speed ω [rad/s]. Throws std::invalid_argument
  /// on negative speed; speeds above max_speed are rejected too — callers
  /// must respect constraint (16).
  [[nodiscard]] double power(double omega) const;

  /// Throws std::invalid_argument if parameters are non-physical.
  void validate() const;
};

}  // namespace oftec::package
