// The cooling package assembly (paper Fig. 2 + Table 1).
//
// Stack, bottom to top: PCB, chip, TIM1, TEC layer (three thermal sub-layers:
// absorb / generate / reject), heat spreader, TIM2, heat sink; a fan above
// the sink sets the sink-to-ambient conductance. PackageConfig carries the
// full physical description the thermal-network assembler consumes.
#pragma once

#include <string>
#include <vector>

#include "package/fan.h"
#include "package/heatsink.h"
#include "package/materials.h"
#include "tec/device.h"

namespace oftec::package {

/// Role of a layer in the stack; the thermal assembler dispatches on this.
enum class LayerRole { kPcb, kChip, kTim1, kTec, kSpreader, kTim2, kHeatSink };

/// One physical layer. Layers are centered on the die axis; `width`/`height`
/// may exceed the die (spreader, sink) — the overhang is modeled by
/// peripheral ring nodes in the thermal network.
struct LayerSpec {
  std::string name;
  LayerRole role = LayerRole::kChip;
  Material material;
  double thickness = 0.0;  ///< [m]
  double width = 0.0;      ///< [m]
  double height = 0.0;     ///< [m]

  [[nodiscard]] double area() const noexcept { return width * height; }
};

/// Complete package description.
struct PackageConfig {
  std::vector<LayerSpec> layers;  ///< bottom→top; roles must appear in stack order
  tec::TecDeviceParams tec;
  bool has_tec = true;            ///< false → baseline package (fairness rule applied)
  FanModel fan;
  HeatSinkFanModel sink_fan;
  double ambient = 318.15;        ///< T_amb [K]; paper uses 45 °C
  double t_max = 363.15;          ///< thermal threshold [K]; paper uses 90 °C
  /// Secondary heat path: total PCB-to-ambient conductance [W/K].
  double pcb_to_ambient_conductance = 0.5;
  /// Conductivity of the filler occupying TEC-layer cells not covered by a
  /// TEC unit (thermal paste fills the gap) [W/(m·K)].
  double filler_conductivity = 1.75;

  /// Find the (single) layer with the given role.
  [[nodiscard]] const LayerSpec& layer(LayerRole role) const;

  /// The paper's package: Table 1 geometry/conductivities, Eq. 8/9 fan and
  /// sink constants, 45 °C ambient, 90 °C threshold, 5 A TEC limit.
  [[nodiscard]] static PackageConfig paper_default();

  /// Baseline package without TECs. Per the paper's fairness rule, the TEC
  /// layer is kept as a pure conduction layer at the TEC composite
  /// conductivity (equivalently: TIM1+TEC series conductance is preserved),
  /// so the no-TEC package is not penalized with a thinner stack.
  [[nodiscard]] PackageConfig without_tecs() const;

  /// Resize the package to a different die: die-sized layers (PCB, chip,
  /// TIM1, TEC) take the new dimensions exactly; overhanging layers
  /// (spreader, TIM2, sink) scale by the same ratio so they keep
  /// overhanging. Thicknesses are untouched.
  [[nodiscard]] PackageConfig scaled_to_die(double die_width,
                                            double die_height) const;

  /// Throws std::invalid_argument / std::runtime_error on an inconsistent
  /// stack (bad order, non-positive geometry, missing roles).
  void validate() const;
};

}  // namespace oftec::package
