// Key–value configuration I/O for the cooling package and process.
//
// A small INI-style format (`key = value`, `#` comments, optional
// `[section]` headers which are ignored) covering the knobs a user
// realistically tunes without recompiling: geometry and conductivity of
// every layer, fan/heat-sink law constants, TEC device parameters, ambient
// and threshold temperatures, and the leakage-process description.
//
//     # paper defaults, 80 C limit
//     t_max_c            = 80
//     fan.max_rpm        = 5000
//     tec.seebeck        = 0.0025
//     heat_sink.width_mm = 60
//
// Unknown keys are errors (typos should not silently do nothing).
#pragma once

#include <iosfwd>
#include <string>

#include "package/package_config.h"
#include "power/mcpat_like.h"

namespace oftec::package {

/// Parsed configuration bundle.
struct ConfigBundle {
  PackageConfig package;
  power::ProcessConfig process;
};

/// Apply `key = value` overrides from a stream onto the paper defaults.
/// Throws std::runtime_error with the offending line on parse errors or
/// unknown keys; the resulting package is validate()d.
[[nodiscard]] ConfigBundle read_config(std::istream& in);

/// File variant.
[[nodiscard]] ConfigBundle read_config_file(const std::string& path);

/// Serialize the full bundle in a form read_config accepts (round-trips).
void write_config(const ConfigBundle& bundle, std::ostream& out);

}  // namespace oftec::package
