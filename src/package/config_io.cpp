#include "package/config_io.h"

#include <fstream>
#include <functional>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"
#include "util/units.h"

namespace oftec::package {

namespace {

using Setter = std::function<void(ConfigBundle&, double)>;
using Getter = std::function<double(const ConfigBundle&)>;

struct KeySpec {
  Setter set;
  Getter get;
};

LayerSpec& layer_ref(ConfigBundle& b, LayerRole role) {
  for (LayerSpec& l : b.package.layers) {
    if (l.role == role) return l;
  }
  throw std::runtime_error("config: layer role missing");
}

const LayerSpec& layer_cref(const ConfigBundle& b, LayerRole role) {
  return b.package.layer(role);
}

/// Register the per-layer geometry/conductivity keys for one layer prefix.
void add_layer_keys(std::map<std::string, KeySpec>& keys,
                    const std::string& prefix, LayerRole role) {
  keys[prefix + ".width_mm"] = {
      [role](ConfigBundle& b, double v) {
        layer_ref(b, role).width = units::mm(v);
      },
      [role](const ConfigBundle& b) {
        return units::m_to_mm(layer_cref(b, role).width);
      }};
  keys[prefix + ".height_mm"] = {
      [role](ConfigBundle& b, double v) {
        layer_ref(b, role).height = units::mm(v);
      },
      [role](const ConfigBundle& b) {
        return units::m_to_mm(layer_cref(b, role).height);
      }};
  keys[prefix + ".thickness_um"] = {
      [role](ConfigBundle& b, double v) {
        layer_ref(b, role).thickness = units::um(v);
      },
      [role](const ConfigBundle& b) {
        return layer_cref(b, role).thickness * 1e6;
      }};
  keys[prefix + ".conductivity"] = {
      [role](ConfigBundle& b, double v) {
        layer_ref(b, role).material.conductivity = v;
      },
      [role](const ConfigBundle& b) {
        return layer_cref(b, role).material.conductivity;
      }};
  keys[prefix + ".volumetric_heat_capacity"] = {
      [role](ConfigBundle& b, double v) {
        layer_ref(b, role).material.volumetric_heat_capacity = v;
      },
      [role](const ConfigBundle& b) {
        return layer_cref(b, role).material.volumetric_heat_capacity;
      }};
}

const std::map<std::string, KeySpec>& key_table() {
  static const std::map<std::string, KeySpec> keys = [] {
    std::map<std::string, KeySpec> k;

    // Environment.
    k["ambient_c"] = {[](ConfigBundle& b, double v) {
                        b.package.ambient = units::celsius_to_kelvin(v);
                      },
                      [](const ConfigBundle& b) {
                        return units::kelvin_to_celsius(b.package.ambient);
                      }};
    k["t_max_c"] = {[](ConfigBundle& b, double v) {
                      b.package.t_max = units::celsius_to_kelvin(v);
                    },
                    [](const ConfigBundle& b) {
                      return units::kelvin_to_celsius(b.package.t_max);
                    }};
    k["pcb_to_ambient_conductance"] = {
        [](ConfigBundle& b, double v) {
          b.package.pcb_to_ambient_conductance = v;
        },
        [](const ConfigBundle& b) {
          return b.package.pcb_to_ambient_conductance;
        }};
    k["filler_conductivity"] = {
        [](ConfigBundle& b, double v) { b.package.filler_conductivity = v; },
        [](const ConfigBundle& b) { return b.package.filler_conductivity; }};

    // Fan (Eq. 8) and heat-sink law (Eq. 9).
    k["fan.power_constant"] = {
        [](ConfigBundle& b, double v) { b.package.fan.power_constant = v; },
        [](const ConfigBundle& b) { return b.package.fan.power_constant; }};
    k["fan.max_rpm"] = {[](ConfigBundle& b, double v) {
                          b.package.fan.max_speed = units::rpm_to_rad_s(v);
                        },
                        [](const ConfigBundle& b) {
                          return units::rad_s_to_rpm(b.package.fan.max_speed);
                        }};
    k["heat_sink_fan.p"] = {
        [](ConfigBundle& b, double v) { b.package.sink_fan.p = v; },
        [](const ConfigBundle& b) { return b.package.sink_fan.p; }};
    k["heat_sink_fan.q"] = {
        [](ConfigBundle& b, double v) { b.package.sink_fan.q = v; },
        [](const ConfigBundle& b) { return b.package.sink_fan.q; }};
    k["heat_sink_fan.r"] = {
        [](ConfigBundle& b, double v) { b.package.sink_fan.r = v; },
        [](const ConfigBundle& b) { return b.package.sink_fan.r; }};
    k["heat_sink_fan.g_natural"] = {
        [](ConfigBundle& b, double v) { b.package.sink_fan.g_natural = v; },
        [](const ConfigBundle& b) { return b.package.sink_fan.g_natural; }};

    // TEC device.
    k["tec.seebeck"] = {
        [](ConfigBundle& b, double v) { b.package.tec.seebeck = v; },
        [](const ConfigBundle& b) { return b.package.tec.seebeck; }};
    k["tec.resistance"] = {
        [](ConfigBundle& b, double v) { b.package.tec.resistance = v; },
        [](const ConfigBundle& b) { return b.package.tec.resistance; }};
    k["tec.conductance"] = {
        [](ConfigBundle& b, double v) { b.package.tec.conductance = v; },
        [](const ConfigBundle& b) { return b.package.tec.conductance; }};
    k["tec.max_current"] = {
        [](ConfigBundle& b, double v) { b.package.tec.max_current = v; },
        [](const ConfigBundle& b) { return b.package.tec.max_current; }};
    k["tec.footprint_mm2"] = {
        [](ConfigBundle& b, double v) { b.package.tec.footprint = v * 1e-6; },
        [](const ConfigBundle& b) { return b.package.tec.footprint * 1e6; }};
    k["tec.thickness_um"] = {
        [](ConfigBundle& b, double v) { b.package.tec.thickness = units::um(v); },
        [](const ConfigBundle& b) { return b.package.tec.thickness * 1e6; }};

    // Process / leakage (McPAT-substitute inputs).
    k["process.node_nm"] = {
        [](ConfigBundle& b, double v) { b.process.node_nm = v; },
        [](const ConfigBundle& b) { return b.process.node_nm; }};
    k["process.total_leakage_w"] = {
        [](ConfigBundle& b, double v) { b.process.total_leakage_at_t0 = v; },
        [](const ConfigBundle& b) { return b.process.total_leakage_at_t0; }};
    k["process.cache_density_ratio"] = {
        [](ConfigBundle& b, double v) { b.process.cache_density_ratio = v; },
        [](const ConfigBundle& b) { return b.process.cache_density_ratio; }};

    add_layer_keys(k, "pcb", LayerRole::kPcb);
    add_layer_keys(k, "chip", LayerRole::kChip);
    add_layer_keys(k, "tim1", LayerRole::kTim1);
    add_layer_keys(k, "tec_layer", LayerRole::kTec);
    add_layer_keys(k, "heat_spreader", LayerRole::kSpreader);
    add_layer_keys(k, "tim2", LayerRole::kTim2);
    add_layer_keys(k, "heat_sink", LayerRole::kHeatSink);
    return k;
  }();
  return keys;
}

}  // namespace

ConfigBundle read_config(std::istream& in) {
  ConfigBundle bundle;
  bundle.package = PackageConfig::paper_default();
  bundle.process.t0 = bundle.package.ambient;

  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#' || trimmed.front() == '[') {
      continue;  // comments and (ignored) section headers
    }
    const std::size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      throw std::runtime_error("config line " + std::to_string(line_number) +
                               ": expected key = value");
    }
    const std::string key{util::trim(trimmed.substr(0, eq))};
    const std::string value_text{util::trim(trimmed.substr(eq + 1))};

    const auto it = key_table().find(key);
    if (it == key_table().end()) {
      throw std::runtime_error("config line " + std::to_string(line_number) +
                               ": unknown key '" + key + "'");
    }
    double value = 0.0;
    try {
      std::size_t consumed = 0;
      value = std::stod(value_text, &consumed);
      if (consumed != value_text.size()) throw std::invalid_argument("");
    } catch (const std::exception&) {
      throw std::runtime_error("config line " + std::to_string(line_number) +
                               ": bad numeric value '" + value_text + "'");
    }
    it->second.set(bundle, value);
  }

  // Keep the TEC layer conductivity consistent with the device definition
  // unless the user pinned it explicitly — the simplest consistent rule is
  // to re-derive only when it still equals the default derived value.
  bundle.package.validate();
  return bundle;
}

ConfigBundle read_config_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_config_file: cannot open " + path);
  }
  return read_config(in);
}

void write_config(const ConfigBundle& bundle, std::ostream& out) {
  out << "# OFTEC package/process configuration\n";
  for (const auto& [key, spec] : key_table()) {
    out << key << " = " << util::format_double(spec.get(bundle), 9) << '\n';
  }
}

}  // namespace oftec::package
