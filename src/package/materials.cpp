#include "package/materials.h"

namespace oftec::package::materials {

Material silicon() { return {"silicon", 100.0, 1.75e6}; }

Material thermal_paste() { return {"thermal-paste", 1.75, 4.0e6}; }

Material copper() { return {"copper", 400.0, 3.55e6}; }

Material fr4() { return {"FR4", 0.3, 1.3e6}; }

Material tec_composite() {
  // Effective bulk conductivity of the TEC layer (superlattice pellets plus
  // metal headers). Notably higher than thermal paste — the paper leans on
  // this ("the thermal conductivity of the material that TECs are built from
  // is much higher than that of common thermal pastes").
  return {"TEC-composite", 90.0, 1.2e6};
}

}  // namespace oftec::package::materials
