#include "package/heatsink.h"

#include <cmath>
#include <stdexcept>

#include "la/regression.h"

namespace oftec::package {

double HeatSinkFanModel::conductance(double omega) const {
  if (omega < 0.0) {
    throw std::invalid_argument("HeatSinkFanModel::conductance: negative speed");
  }
  if (omega <= 0.0) return g_natural;
  const double g = p * std::log(q * omega) + r;
  return std::max(g, g_natural);
}

double HeatSinkFanModel::conductance_derivative(double omega) const {
  if (omega <= 0.0) return 0.0;
  const double g = p * std::log(q * omega) + r;
  if (g < g_natural) return 0.0;  // floored region
  return p / omega;
}

double HeatSinkFanModel::crossover_speed() const {
  // p·ln(q·ω) + r = g_natural  →  ω = exp((g_natural − r)/p) / q.
  return std::exp((g_natural - r) / p) / q;
}

HeatSinkFanModel HeatSinkFanModel::fit(const std::vector<double>& omegas,
                                       const std::vector<double>& conductances,
                                       double q, double g_natural) {
  if (omegas.size() != conductances.size() || omegas.size() < 2) {
    throw std::invalid_argument("HeatSinkFanModel::fit: need >= 2 samples");
  }
  la::Vector x(omegas.size()), y = conductances;
  for (std::size_t i = 0; i < omegas.size(); ++i) {
    if (omegas[i] <= 0.0) {
      throw std::invalid_argument("HeatSinkFanModel::fit: omega must be > 0");
    }
    x[i] = std::log(q * omegas[i]);
  }
  const la::LinearFit fit_result = la::fit_line(x, y);
  HeatSinkFanModel model;
  model.p = fit_result.slope;
  model.q = q;
  model.r = fit_result.intercept;
  model.g_natural = g_natural;
  model.validate();
  return model;
}

void HeatSinkFanModel::validate() const {
  if (p <= 0.0) {
    throw std::invalid_argument("HeatSinkFanModel: p must be > 0");
  }
  if (q <= 0.0) {
    throw std::invalid_argument("HeatSinkFanModel: q must be > 0");
  }
  if (g_natural <= 0.0) {
    throw std::invalid_argument("HeatSinkFanModel: g_natural must be > 0");
  }
}

}  // namespace oftec::package
