// Heat-sink + fan collective thermal conductance (paper Eq. 9).
//
// The sink-to-ambient conductance grows logarithmically with fan speed:
//   g(ω) = p·ln(q·ω) + r          for ω ≫ 1 rad/s,
// floored at the natural-convection conductance g_HS for small ω. The
// paper obtains p and r by curve-fitting the HotSpot-5 calculation; the
// `fit` factory reproduces that flow from (ω, g) samples.
#pragma once

#include <cstddef>
#include <vector>

namespace oftec::package {

struct HeatSinkFanModel {
  double p = 0.97;        ///< fit parameter [W/K]
  double q = 1.0;         ///< dimensional normalizer [s]; paper sets 1 s
  double r = -0.25;       ///< fit parameter [W/K]
  double g_natural = 0.525;///< g_HS: natural-convection floor [W/K]

  /// Collective conductance [W/K] at fan speed ω [rad/s].
  [[nodiscard]] double conductance(double omega) const;

  /// dg/dω [W/(K·rad/s)]; 0 in the floored region. Useful for analytic
  /// sensitivity checks in tests.
  [[nodiscard]] double conductance_derivative(double omega) const;

  /// Fan speed at which the log law crosses the natural floor.
  [[nodiscard]] double crossover_speed() const;

  /// Least-squares fit of (p, r) from sampled (ω, g) pairs at fixed q,
  /// mirroring the paper's "HotSpot 5 + curve fitting" calibration.
  [[nodiscard]] static HeatSinkFanModel fit(const std::vector<double>& omegas,
                                            const std::vector<double>& conductances,
                                            double q = 1.0,
                                            double g_natural = 0.525);

  /// Throws std::invalid_argument on non-physical parameters.
  void validate() const;
};

}  // namespace oftec::package
