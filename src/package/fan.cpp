#include "package/fan.h"

#include <stdexcept>

namespace oftec::package {

double FanModel::power(double omega) const {
  if (omega < 0.0) {
    throw std::invalid_argument("FanModel::power: negative speed");
  }
  if (omega > max_speed * (1.0 + 1e-9)) {
    throw std::invalid_argument("FanModel::power: speed exceeds max_speed");
  }
  return power_constant * omega * omega * omega;
}

void FanModel::validate() const {
  if (power_constant <= 0.0) {
    throw std::invalid_argument("FanModel: power_constant must be > 0");
  }
  if (max_speed <= 0.0) {
    throw std::invalid_argument("FanModel: max_speed must be > 0");
  }
}

}  // namespace oftec::package
