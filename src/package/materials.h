// Material properties for the package stack.
#pragma once

#include <string>

namespace oftec::package {

/// Homogeneous isotropic material.
struct Material {
  std::string name;
  double conductivity = 0.0;            ///< k [W/(m·K)]
  double volumetric_heat_capacity = 0.0;///< ρ·c_p [J/(m³·K)]
};

/// Standard materials used by the paper's package (Table 1 conductivities;
/// heat capacities at HotSpot-default scale for the transient solver).
namespace materials {

[[nodiscard]] Material silicon();       ///< chip: k = 100
[[nodiscard]] Material thermal_paste(); ///< TIM1/TIM2: k = 1.75
[[nodiscard]] Material copper();        ///< spreader & heat sink: k = 400
[[nodiscard]] Material fr4();           ///< PCB substrate
[[nodiscard]] Material tec_composite(); ///< TEC layer bulk (Bi₂Te₃ superlattice + metallization)

}  // namespace materials

}  // namespace oftec::package
