// Umbrella header: the whole OFTEC library through one include.
//
//   #include "oftec.h"
//
// Fine-grained headers remain available (and preferable inside the library
// itself); this exists for downstream applications and quick experiments.
#pragma once

#include "core/baselines.h"        // IWYU pragma: export
#include "core/cooling_system.h"   // IWYU pragma: export
#include "core/deployment.h"       // IWYU pragma: export
#include "core/dtm_loop.h"         // IWYU pragma: export
#include "core/lut_controller.h"   // IWYU pragma: export
#include "core/multizone.h"        // IWYU pragma: export
#include "core/oftec.h"            // IWYU pragma: export
#include "core/pareto.h"           // IWYU pragma: export
#include "core/problems.h"         // IWYU pragma: export
#include "core/reactive_controllers.h"  // IWYU pragma: export
#include "core/throttle.h"         // IWYU pragma: export
#include "core/transient_boost.h"  // IWYU pragma: export
#include "floorplan/cmp.h"         // IWYU pragma: export
#include "floorplan/ev6.h"         // IWYU pragma: export
#include "floorplan/flp_io.h"      // IWYU pragma: export
#include "floorplan/grid_map.h"    // IWYU pragma: export
#include "package/config_io.h"     // IWYU pragma: export
#include "package/package_config.h"  // IWYU pragma: export
#include "power/dynamic.h"         // IWYU pragma: export
#include "power/leakage.h"         // IWYU pragma: export
#include "power/mcpat_like.h"      // IWYU pragma: export
#include "tec/array.h"             // IWYU pragma: export
#include "tec/device.h"            // IWYU pragma: export
#include "thermal/model.h"         // IWYU pragma: export
#include "thermal/stack_report.h"  // IWYU pragma: export
#include "thermal/steady.h"        // IWYU pragma: export
#include "thermal/thermal_map.h"   // IWYU pragma: export
#include "thermal/transient.h"     // IWYU pragma: export
#include "util/units.h"            // IWYU pragma: export
#include "workload/benchmarks.h"   // IWYU pragma: export
#include "workload/trace.h"        // IWYU pragma: export
