#include "power/power_map.h"

#include <stdexcept>
#include <string>

namespace oftec::power {

PowerMap::PowerMap(const floorplan::Floorplan& fp)
    : fp_(&fp), values_(fp.block_count(), 0.0) {}

void PowerMap::set(std::size_t block, double watts) {
  if (block >= values_.size()) throw std::out_of_range("PowerMap::set");
  values_[block] = watts;
}

double PowerMap::get(std::size_t block) const {
  if (block >= values_.size()) throw std::out_of_range("PowerMap::get");
  return values_[block];
}

void PowerMap::set(std::string_view name, double watts) {
  const auto idx = fp_->find(name);
  if (!idx) {
    throw std::invalid_argument("PowerMap::set: unknown block " +
                                std::string(name));
  }
  values_[*idx] = watts;
}

double PowerMap::get(std::string_view name) const {
  const auto idx = fp_->find(name);
  if (!idx) {
    throw std::invalid_argument("PowerMap::get: unknown block " +
                                std::string(name));
  }
  return values_[*idx];
}

void PowerMap::add(std::string_view name, double watts) {
  set(name, get(name) + watts);
}

double PowerMap::total() const noexcept {
  double acc = 0.0;
  for (const double v : values_) acc += v;
  return acc;
}

void PowerMap::scale(double factor) noexcept {
  for (double& v : values_) v *= factor;
}

void PowerMap::max_with(const PowerMap& other) {
  if (other.fp_ != fp_ || other.values_.size() != values_.size()) {
    throw std::invalid_argument("PowerMap::max_with: floorplan mismatch");
  }
  for (std::size_t i = 0; i < values_.size(); ++i) {
    values_[i] = std::max(values_[i], other.values_[i]);
  }
}

}  // namespace oftec::power
