#include "power/dynamic.h"

#include <stdexcept>

namespace oftec::power {

DynamicPowerModel::DynamicPowerModel(const floorplan::Floorplan& fp,
                                     std::vector<double> effective_capacitance,
                                     VfPoint nominal)
    : fp_(&fp), c_eff_(std::move(effective_capacitance)), nominal_(nominal) {
  if (c_eff_.size() != fp.block_count()) {
    throw std::invalid_argument("DynamicPowerModel: C_eff arity mismatch");
  }
  for (const double c : c_eff_) {
    if (c < 0.0) {
      throw std::invalid_argument("DynamicPowerModel: negative capacitance");
    }
  }
  if (nominal_.voltage <= 0.0 || nominal_.frequency_ghz <= 0.0) {
    throw std::invalid_argument("DynamicPowerModel: bad nominal V/f");
  }
}

DynamicPowerModel DynamicPowerModel::calibrate(const floorplan::Floorplan& fp,
                                               double total_watts,
                                               double core_density_ratio,
                                               VfPoint nominal) {
  if (total_watts <= 0.0 || core_density_ratio <= 0.0) {
    throw std::invalid_argument("DynamicPowerModel::calibrate: bad inputs");
  }
  std::vector<double> weights(fp.block_count());
  double weight_sum = 0.0;
  for (std::size_t b = 0; b < fp.block_count(); ++b) {
    const floorplan::Block& blk = fp.blocks()[b];
    const double density =
        blk.kind == floorplan::UnitKind::kCore ? core_density_ratio : 1.0;
    weights[b] = blk.area() * density;
    weight_sum += weights[b];
  }
  const double vf_factor =
      nominal.voltage * nominal.voltage * nominal.frequency_ghz;
  std::vector<double> c_eff(fp.block_count());
  for (std::size_t b = 0; b < fp.block_count(); ++b) {
    c_eff[b] = total_watts * weights[b] / (weight_sum * vf_factor);
  }
  return DynamicPowerModel(fp, std::move(c_eff), nominal);
}

PowerMap DynamicPowerModel::power(const std::vector<double>& activity,
                                  const VfPoint& vf) const {
  if (activity.size() != c_eff_.size()) {
    throw std::invalid_argument("DynamicPowerModel::power: activity arity");
  }
  if (vf.voltage <= 0.0 || vf.frequency_ghz <= 0.0) {
    throw std::invalid_argument("DynamicPowerModel::power: bad V/f point");
  }
  const double vf_factor = vf.voltage * vf.voltage * vf.frequency_ghz;
  PowerMap map(*fp_);
  for (std::size_t b = 0; b < c_eff_.size(); ++b) {
    if (activity[b] < 0.0 || activity[b] > 1.0) {
      throw std::invalid_argument(
          "DynamicPowerModel::power: activity must be in [0, 1]");
    }
    map.set(b, activity[b] * c_eff_[b] * vf_factor);
  }
  return map;
}

PowerMap DynamicPowerModel::power(const std::vector<double>& activity) const {
  return power(activity, nominal_);
}

double DynamicPowerModel::scale_of(const VfPoint& vf) const noexcept {
  const double v_ratio = vf.voltage / nominal_.voltage;
  return v_ratio * v_ratio * (vf.frequency_ghz / nominal_.frequency_ghz);
}

}  // namespace oftec::power
