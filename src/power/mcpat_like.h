// McPAT-substitute leakage characterizer.
//
// The paper uses McPAT to estimate the Alpha 21264 leakage at the 22 nm node
// and then fits Eq. (4). McPAT itself is not available here; this module
// plays its role: given a process description it produces the per-block
// leakage-at-reference values that seed LeakageModel. Per-area leakage
// densities differ by unit type (SRAM arrays leak less per area than hot
// datapath logic at matched activity), with magnitudes chosen so the total
// chip leakage at ambient matches a published-scale figure for a ~2.5 cm²
// high-performance die at 22 nm.
#pragma once

#include "floorplan/floorplan.h"
#include "power/leakage.h"

namespace oftec::power {

/// Process/technology description consumed by the characterizer.
struct ProcessConfig {
  double node_nm = 22.0;            ///< feature size (affects β and density)
  double t0 = 318.15;               ///< reference temperature [K] (45 °C)
  double total_leakage_at_t0 = 6.0; ///< calibration target [W] for the die
  /// Per-area leakage density weight of cache arrays relative to core logic.
  double cache_density_ratio = 0.35;
};

/// Exponential temperature sensitivity β [1/K] for the node. Follows the
/// "leakage doubles every Δ₂ kelvin" rule of thumb with Δ₂ shrinking at
/// finer nodes (Liu et al., DATE'07 scale).
[[nodiscard]] double leakage_beta_for_node(double node_nm);

/// Build the per-block leakage model for `fp` under `process`. Block leakage
/// is proportional to block area times the kind-dependent density weight and
/// normalized so the die total at t0 equals total_leakage_at_t0.
[[nodiscard]] LeakageModel characterize_leakage(const floorplan::Floorplan& fp,
                                                const ProcessConfig& process);

}  // namespace oftec::power
