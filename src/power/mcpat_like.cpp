#include "power/mcpat_like.h"

#include <cmath>
#include <stdexcept>

namespace oftec::power {

double leakage_beta_for_node(double node_nm) {
  if (node_nm <= 0.0) {
    throw std::invalid_argument("leakage_beta_for_node: node must be > 0");
  }
  // Doubling interval Δ₂ shrinks with the node: ~32 K at 65 nm down to
  // ~23 K at 22 nm. β = ln(2)/Δ₂.
  const double delta2 = 12.0 + 5.6 * std::log2(node_nm / 5.6);
  return std::log(2.0) / delta2;
}

LeakageModel characterize_leakage(const floorplan::Floorplan& fp,
                                  const ProcessConfig& process) {
  if (process.total_leakage_at_t0 <= 0.0) {
    throw std::invalid_argument(
        "characterize_leakage: total leakage must be positive");
  }
  if (process.cache_density_ratio <= 0.0) {
    throw std::invalid_argument(
        "characterize_leakage: cache density ratio must be positive");
  }

  // Unnormalized per-block weights: area × kind density.
  std::vector<double> weights(fp.block_count(), 0.0);
  double weight_sum = 0.0;
  for (std::size_t b = 0; b < fp.block_count(); ++b) {
    const floorplan::Block& blk = fp.blocks()[b];
    const double density =
        blk.kind == floorplan::UnitKind::kCache ? process.cache_density_ratio
                                                : 1.0;
    weights[b] = blk.area() * density;
    weight_sum += weights[b];
  }

  std::vector<double> p0(fp.block_count(), 0.0);
  for (std::size_t b = 0; b < fp.block_count(); ++b) {
    p0[b] = process.total_leakage_at_t0 * weights[b] / weight_sum;
  }

  return LeakageModel(fp, std::move(p0), leakage_beta_for_node(process.node_nm),
                      process.t0);
}

}  // namespace oftec::power
