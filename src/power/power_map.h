// Per-functional-unit power vector bound to a floorplan.
//
// This is the hand-off format between the workload substrate (PTscalar
// replacement) and OFTEC: one watt value per floorplan block.
#pragma once

#include <string_view>
#include <vector>

#include "floorplan/floorplan.h"

namespace oftec::power {

class PowerMap {
 public:
  /// Zero power for every block of `fp`. The floorplan must outlive the map.
  explicit PowerMap(const floorplan::Floorplan& fp);

  [[nodiscard]] const floorplan::Floorplan& floorplan() const noexcept {
    return *fp_;
  }

  /// Set/get by block index.
  void set(std::size_t block, double watts);
  [[nodiscard]] double get(std::size_t block) const;

  /// Set/get by block name; throws std::invalid_argument on unknown names.
  void set(std::string_view name, double watts);
  [[nodiscard]] double get(std::string_view name) const;

  /// Add `watts` to a named block.
  void add(std::string_view name, double watts);

  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

  [[nodiscard]] double total() const noexcept;

  /// Multiply every entry by `factor`.
  void scale(double factor) noexcept;

  /// Element-wise max with another map over the same floorplan (used to
  /// extract the max-power vector from a trace, Sec. 6.1).
  void max_with(const PowerMap& other);

 private:
  const floorplan::Floorplan* fp_;
  std::vector<double> values_;
};

}  // namespace oftec::power
