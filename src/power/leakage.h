// Temperature-dependent leakage power.
//
// Ground truth in the library is the standard exponential model
//   p_leak(T) = p0 · exp(β · (T − T0))                        (per block)
// and the thermal solver uses the paper's Taylor linearization (Eq. 4)
//   p_leak(T) ≈ a · (T − Tref) + b
// whose coefficients are obtained exactly the way Sec. 6.1 describes:
// evaluate the model at 10 temperatures evenly spread over [300 K, 390 K]
// and fit a line by least squares.
#pragma once

#include <cstddef>
#include <vector>

#include "floorplan/floorplan.h"

namespace oftec::power {

/// One exponential leakage term p(T) = p0 · exp(β(T − T0)). The thermal
/// solver carries one of these per grid cell (block leakage distributed by
/// overlap area).
struct ExponentialTerm {
  double p0 = 0.0;   ///< leakage at T0 [W]
  double beta = 0.0; ///< exponential sensitivity [1/K]
  double t0 = 0.0;   ///< reference temperature [K]

  [[nodiscard]] double evaluate(double temperature) const noexcept;
};

/// Linearized leakage for one element: p ≈ a(T − Tref) + b.
struct TaylorCoefficients {
  double a = 0.0;     ///< slope [W/K]
  double b = 0.0;     ///< value at Tref [W]
  double t_ref = 0.0; ///< expansion point [K]

  [[nodiscard]] double evaluate(double temperature) const noexcept {
    return a * (temperature - t_ref) + b;
  }
};

/// Exponential leakage model for all blocks of a floorplan.
class LeakageModel {
 public:
  /// `p0` holds per-block leakage [W] at reference temperature `t0` [K];
  /// `beta` [1/K] is the exponential sensitivity (shared by all blocks —
  /// it is a process property, not a floorplan property).
  LeakageModel(const floorplan::Floorplan& fp, std::vector<double> p0,
               double beta, double t0);

  [[nodiscard]] const floorplan::Floorplan& floorplan() const noexcept {
    return *fp_;
  }
  [[nodiscard]] double beta() const noexcept { return beta_; }
  [[nodiscard]] double t0() const noexcept { return t0_; }
  [[nodiscard]] const std::vector<double>& p0() const noexcept { return p0_; }

  /// Exact per-block leakage at temperature T [K].
  [[nodiscard]] double block_leakage(std::size_t block, double t) const;

  /// Total chip leakage with every block at a uniform temperature.
  [[nodiscard]] double total_leakage(double t) const;

  /// Paper's calibration flow: sample the exponential at `samples`
  /// temperatures evenly covering [t_lo, t_hi], least-squares a line, and
  /// re-center it at `t_ref`. Defaults are the paper's 10 points over
  /// [300 K, 390 K].
  [[nodiscard]] TaylorCoefficients linearize_block(std::size_t block,
                                                   double t_ref,
                                                   double t_lo = 300.0,
                                                   double t_hi = 390.0,
                                                   std::size_t samples = 10) const;

  /// Tangent linearization at t_ref (exact first-order Taylor), provided for
  /// the model-fidelity ablation bench.
  [[nodiscard]] TaylorCoefficients tangent_block(std::size_t block,
                                                 double t_ref) const;

  /// Linearize every block at the same reference temperature.
  [[nodiscard]] std::vector<TaylorCoefficients> linearize_all(
      double t_ref, double t_lo = 300.0, double t_hi = 390.0,
      std::size_t samples = 10) const;

 private:
  const floorplan::Floorplan* fp_;
  std::vector<double> p0_;
  double beta_;
  double t0_;
};

/// Chord linearization of an exponential term: sample at `samples` points
/// evenly covering [t_lo, t_hi], least-squares a line, re-center at t_ref.
/// This is the paper's Sec. 6.1 calibration applied to one element.
[[nodiscard]] TaylorCoefficients chord_linearize(const ExponentialTerm& term,
                                                 double t_ref,
                                                 double t_lo = 300.0,
                                                 double t_hi = 390.0,
                                                 std::size_t samples = 10);

/// Exact tangent linearization at t_ref (first-order Taylor); used by the
/// Newton outer loop of the steady-state solver.
[[nodiscard]] TaylorCoefficients tangent_linearize(const ExponentialTerm& term,
                                                   double t_ref) noexcept;

}  // namespace oftec::power
