#include "power/leakage.h"

#include <cmath>
#include <stdexcept>

#include "la/regression.h"

namespace oftec::power {

double ExponentialTerm::evaluate(double temperature) const noexcept {
  return p0 * std::exp(beta * (temperature - t0));
}

TaylorCoefficients chord_linearize(const ExponentialTerm& term, double t_ref,
                                   double t_lo, double t_hi,
                                   std::size_t samples) {
  if (samples < 2 || t_hi <= t_lo) {
    throw std::invalid_argument("chord_linearize: bad sample range");
  }
  la::Vector ts(samples), ps(samples);
  const double step = (t_hi - t_lo) / static_cast<double>(samples - 1);
  for (std::size_t i = 0; i < samples; ++i) {
    ts[i] = t_lo + step * static_cast<double>(i);
    ps[i] = term.evaluate(ts[i]);
  }
  const la::LinearFit fit = la::fit_line(ts, ps);
  TaylorCoefficients coeffs;
  coeffs.a = fit.slope;
  coeffs.b = fit.slope * t_ref + fit.intercept;
  coeffs.t_ref = t_ref;
  return coeffs;
}

TaylorCoefficients tangent_linearize(const ExponentialTerm& term,
                                     double t_ref) noexcept {
  TaylorCoefficients coeffs;
  const double p = term.evaluate(t_ref);
  coeffs.a = term.beta * p;
  coeffs.b = p;
  coeffs.t_ref = t_ref;
  return coeffs;
}

LeakageModel::LeakageModel(const floorplan::Floorplan& fp,
                           std::vector<double> p0, double beta, double t0)
    : fp_(&fp), p0_(std::move(p0)), beta_(beta), t0_(t0) {
  if (p0_.size() != fp.block_count()) {
    throw std::invalid_argument("LeakageModel: p0 arity mismatch");
  }
  if (beta_ <= 0.0) {
    throw std::invalid_argument("LeakageModel: beta must be positive");
  }
  for (const double v : p0_) {
    if (v < 0.0) {
      throw std::invalid_argument("LeakageModel: negative block leakage");
    }
  }
}

double LeakageModel::block_leakage(std::size_t block, double t) const {
  if (block >= p0_.size()) {
    throw std::out_of_range("LeakageModel::block_leakage");
  }
  return p0_[block] * std::exp(beta_ * (t - t0_));
}

double LeakageModel::total_leakage(double t) const {
  double acc = 0.0;
  for (std::size_t b = 0; b < p0_.size(); ++b) acc += block_leakage(b, t);
  return acc;
}

TaylorCoefficients LeakageModel::linearize_block(std::size_t block,
                                                 double t_ref, double t_lo,
                                                 double t_hi,
                                                 std::size_t samples) const {
  if (samples < 2 || t_hi <= t_lo) {
    throw std::invalid_argument("LeakageModel::linearize_block: bad range");
  }
  la::Vector ts(samples), ps(samples);
  const double step = (t_hi - t_lo) / static_cast<double>(samples - 1);
  for (std::size_t i = 0; i < samples; ++i) {
    ts[i] = t_lo + step * static_cast<double>(i);
    ps[i] = block_leakage(block, ts[i]);
  }
  const la::LinearFit fit = la::fit_line(ts, ps);
  // p ≈ slope·T + intercept  →  a = slope, b = slope·Tref + intercept.
  TaylorCoefficients coeffs;
  coeffs.a = fit.slope;
  coeffs.b = fit.slope * t_ref + fit.intercept;
  coeffs.t_ref = t_ref;
  return coeffs;
}

TaylorCoefficients LeakageModel::tangent_block(std::size_t block,
                                               double t_ref) const {
  TaylorCoefficients coeffs;
  const double p = block_leakage(block, t_ref);
  coeffs.a = beta_ * p;  // d/dT of p0·exp(β(T−T0)) at T = Tref
  coeffs.b = p;
  coeffs.t_ref = t_ref;
  return coeffs;
}

std::vector<TaylorCoefficients> LeakageModel::linearize_all(
    double t_ref, double t_lo, double t_hi, std::size_t samples) const {
  std::vector<TaylorCoefficients> out;
  out.reserve(p0_.size());
  for (std::size_t b = 0; b < p0_.size(); ++b) {
    out.push_back(linearize_block(b, t_ref, t_lo, t_hi, samples));
  }
  return out;
}

}  // namespace oftec::power
