// Activity-based dynamic power model (the front half of the PTscalar
// substitute).
//
// Dynamic power of a CMOS unit follows P = a · C_eff · V² · f: an activity
// factor per unit, an effective switched capacitance per unit, and the
// chip-wide voltage/frequency point. This module maps (activity vector,
// V/f state) → per-unit PowerMap, giving the throttling fallback a physical
// meaning (f scaling → linear; V-f scaling → cubic) and letting users
// derive workloads from microarchitectural activity instead of raw watts.
#pragma once

#include <string_view>
#include <vector>

#include "floorplan/floorplan.h"
#include "power/power_map.h"

namespace oftec::power {

/// Chip-wide voltage/frequency operating point.
struct VfPoint {
  double voltage = 1.0;        ///< [V]
  double frequency_ghz = 3.0;  ///< [GHz]
};

class DynamicPowerModel {
 public:
  /// `effective_capacitance` holds C_eff per block [nF equivalent — any
  /// consistent unit]; power comes out in watts when C_eff is chosen so that
  /// a·C·V²·f(GHz) is in watts (i.e. C_eff in nanofarads).
  DynamicPowerModel(const floorplan::Floorplan& fp,
                    std::vector<double> effective_capacitance,
                    VfPoint nominal = {});

  /// Calibration helper: choose per-block C_eff proportional to block area
  /// (denser switching in core logic via `core_density_ratio`) such that an
  /// all-ones activity vector at the nominal V/f point draws `total_watts`.
  [[nodiscard]] static DynamicPowerModel calibrate(
      const floorplan::Floorplan& fp, double total_watts,
      double core_density_ratio = 2.0, VfPoint nominal = {});

  [[nodiscard]] const floorplan::Floorplan& floorplan() const noexcept {
    return *fp_;
  }
  [[nodiscard]] const VfPoint& nominal() const noexcept { return nominal_; }

  /// Per-unit power for an activity vector (one factor in [0, 1] per block)
  /// at the given V/f point.
  [[nodiscard]] PowerMap power(const std::vector<double>& activity,
                               const VfPoint& vf) const;

  /// Same at the nominal point.
  [[nodiscard]] PowerMap power(const std::vector<double>& activity) const;

  /// Power scale factor of `vf` relative to nominal: (V/V₀)²·(f/f₀).
  [[nodiscard]] double scale_of(const VfPoint& vf) const noexcept;

 private:
  const floorplan::Floorplan* fp_;
  std::vector<double> c_eff_;
  VfPoint nominal_;
};

}  // namespace oftec::power
