#include "serve/protocol.h"

#include <cmath>
#include <limits>
#include <utility>

namespace oftec::serve {

namespace json = util::json;

namespace {

[[noreturn]] void bad(const std::string& message) {
  throw ProtocolError(kErrBadRequest, message);
}

// --- field extraction helpers (decode side) --------------------------------

const json::Value& require(const json::Value& obj, std::string_view key) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) bad("missing field \"" + std::string(key) + "\"");
  return *v;
}

double require_number(const json::Value& obj, std::string_view key) {
  const json::Value& v = require(obj, key);
  if (!v.is_number()) bad("field \"" + std::string(key) + "\" must be a number");
  return v.as_number();
}

double number_or(const json::Value& obj, std::string_view key,
                 double fallback) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    bad("field \"" + std::string(key) + "\" must be a number");
  }
  return v->as_number();
}

bool bool_or(const json::Value& obj, std::string_view key, bool fallback) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) bad("field \"" + std::string(key) + "\" must be a bool");
  return v->as_bool();
}

std::string string_or(const json::Value& obj, std::string_view key,
                      std::string fallback) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_string()) {
    bad("field \"" + std::string(key) + "\" must be a string");
  }
  return v->as_string();
}

std::uint64_t require_uint(const json::Value& obj, std::string_view key) {
  const double v = require_number(obj, key);
  if (!(v >= 0.0) || v != std::floor(v) || v > 9.007199254740992e15) {
    bad("field \"" + std::string(key) + "\" must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(v);
}

std::size_t size_or(const json::Value& obj, std::string_view key,
                    std::size_t fallback) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) return fallback;
  const double d = v->is_number() ? v->as_number() : -1.0;
  if (!(d >= 0.0) || d != std::floor(d)) {
    bad("field \"" + std::string(key) + "\" must be a non-negative integer");
  }
  return static_cast<std::size_t>(d);
}

std::vector<double> number_array_or(const json::Value& obj,
                                    std::string_view key) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) return {};
  if (!v->is_array()) {
    bad("field \"" + std::string(key) + "\" must be an array");
  }
  std::vector<double> out;
  out.reserve(v->as_array().size());
  for (const json::Value& e : v->as_array()) {
    if (!e.is_number()) {
      bad("field \"" + std::string(key) + "\" must contain only numbers");
    }
    out.push_back(e.as_number());
  }
  return out;
}

std::vector<std::string> string_array_or(const json::Value& obj,
                                         std::string_view key) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) return {};
  if (!v->is_array()) {
    bad("field \"" + std::string(key) + "\" must be an array");
  }
  std::vector<std::string> out;
  out.reserve(v->as_array().size());
  for (const json::Value& e : v->as_array()) {
    if (!e.is_string()) {
      bad("field \"" + std::string(key) + "\" must contain only strings");
    }
    out.push_back(e.as_string());
  }
  return out;
}

// --- params codecs ---------------------------------------------------------

json::Value bind_params_json(const BindParams& p) {
  json::Value o = json::Value::object();
  if (!p.benchmark.empty()) o["benchmark"] = p.benchmark;
  if (!p.power_w.empty()) {
    json::Value arr = json::Value::array();
    for (const double w : p.power_w) arr.push_back(w);
    o["power_w"] = std::move(arr);
  }
  o["grid_nx"] = p.grid_nx;
  o["grid_ny"] = p.grid_ny;
  if (p.t_max_c != 0.0) o["t_max_c"] = p.t_max_c;
  o["with_tec"] = p.with_tec;
  if (p.direct_solve) o["direct_solve"] = true;
  if (!p.lut_training.empty()) {
    json::Value arr = json::Value::array();
    for (const std::string& b : p.lut_training) arr.push_back(b);
    o["lut_training"] = std::move(arr);
  }
  return o;
}

BindParams parse_bind_params(const json::Value& o) {
  BindParams p;
  p.benchmark = string_or(o, "benchmark", "");
  p.power_w = number_array_or(o, "power_w");
  p.grid_nx = size_or(o, "grid_nx", 10);
  p.grid_ny = size_or(o, "grid_ny", 10);
  p.t_max_c = number_or(o, "t_max_c", 0.0);
  p.with_tec = bool_or(o, "with_tec", true);
  p.direct_solve = bool_or(o, "direct_solve", false);
  p.lut_training = string_array_or(o, "lut_training");
  if (p.benchmark.empty() == p.power_w.empty()) {
    bad("bind requires exactly one of \"benchmark\" or \"power_w\"");
  }
  if (p.grid_nx < 2 || p.grid_ny < 2 || p.grid_nx > 64 || p.grid_ny > 64) {
    bad("bind grid dimensions must be in [2, 64]");
  }
  return p;
}

json::Value solve_params_json(const SolveParams& p) {
  json::Value o = json::Value::object();
  o["session"] = p.session;
  o["omega"] = p.omega;
  o["current"] = p.current;
  return o;
}

SolveParams parse_solve_params(const json::Value& o) {
  SolveParams p;
  p.session = require_uint(o, "session");
  p.omega = require_number(o, "omega");
  p.current = require_number(o, "current");
  if (!std::isfinite(p.omega) || !std::isfinite(p.current)) {
    bad("solve omega/current must be finite");
  }
  return p;
}

json::Value control_params_json(const ControlParams& p) {
  json::Value o = json::Value::object();
  o["session"] = p.session;
  o["objective"] = p.objective;
  return o;
}

ControlParams parse_control_params(const json::Value& o) {
  ControlParams p;
  p.session = require_uint(o, "session");
  p.objective = string_or(o, "objective", "oftec");
  if (p.objective != "oftec" && p.objective != "min_temperature") {
    bad("control objective must be \"oftec\" or \"min_temperature\"");
  }
  return p;
}

json::Value lut_params_json(const LutParams& p) {
  json::Value o = json::Value::object();
  o["session"] = p.session;
  json::Value arr = json::Value::array();
  for (const double w : p.power_w) arr.push_back(w);
  o["power_w"] = std::move(arr);
  return o;
}

LutParams parse_lut_params(const json::Value& o) {
  LutParams p;
  p.session = require_uint(o, "session");
  p.power_w = number_array_or(o, "power_w");
  if (p.power_w.empty()) bad("lut requires a non-empty \"power_w\"");
  return p;
}

json::Value transient_params_json(const TransientParams& p) {
  json::Value o = json::Value::object();
  o["session"] = p.session;
  o["omega"] = p.omega;
  o["current"] = p.current;
  o["duration_s"] = p.duration_s;
  o["time_step_s"] = p.time_step_s;
  if (p.reset) o["reset"] = true;
  return o;
}

TransientParams parse_transient_params(const json::Value& o) {
  TransientParams p;
  p.session = require_uint(o, "session");
  p.omega = require_number(o, "omega");
  p.current = require_number(o, "current");
  p.duration_s = require_number(o, "duration_s");
  p.time_step_s = number_or(o, "time_step_s", 1e-3);
  p.reset = bool_or(o, "reset", false);
  if (!(p.duration_s > 0.0) || !(p.time_step_s > 0.0)) {
    bad("transient duration_s and time_step_s must be positive");
  }
  if (p.duration_s / p.time_step_s > 1e6) {
    bad("transient step count exceeds 1e6");
  }
  return p;
}

json::Value session_params_json(const SessionParams& p) {
  json::Value o = json::Value::object();
  o["session"] = p.session;
  return o;
}

SessionParams parse_session_params(const json::Value& o, bool required) {
  SessionParams p;
  if (required) {
    p.session = require_uint(o, "session");
  } else if (o.find("session") != nullptr) {
    p.session = require_uint(o, "session");
  }
  return p;
}

json::Value stats_params_json(const StatsParams& p) {
  json::Value o = json::Value::object();
  if (p.session != 0) o["session"] = p.session;
  if (p.view != "snapshot") o["view"] = p.view;
  if (p.cursor != 0) o["cursor"] = p.cursor;
  if (p.format != "json") o["format"] = p.format;
  return o;
}

StatsParams parse_stats_params(const json::Value& o) {
  StatsParams p;
  // Every field optional: a pre-PR-7 peer sending {"session":n} (or nothing)
  // still decodes, and unknown future keys are ignored.
  if (o.find("session") != nullptr) p.session = require_uint(o, "session");
  p.view = string_or(o, "view", "snapshot");
  if (p.view != "snapshot" && p.view != "delta") {
    bad("stats view must be \"snapshot\" or \"delta\"");
  }
  if (o.find("cursor") != nullptr) p.cursor = require_uint(o, "cursor");
  p.format = string_or(o, "format", "json");
  if (p.format != "json" && p.format != "prometheus") {
    bad("stats format must be \"json\" or \"prometheus\"");
  }
  return p;
}

json::Value trace_params_json(const TraceParams& p) {
  json::Value o = json::Value::object();
  if (!p.trace_id.empty()) o["trace_id"] = p.trace_id;
  if (p.limit != 0) o["limit"] = p.limit;
  return o;
}

TraceParams parse_trace_params(const json::Value& o) {
  TraceParams p;
  p.trace_id = string_or(o, "trace_id", "");
  if (p.trace_id.size() > 128) bad("trace_id exceeds 128 bytes");
  if (o.find("limit") != nullptr) p.limit = require_uint(o, "limit");
  return p;
}

/// Decode an optional trace-context string off the request envelope.
std::string trace_string_or_empty(const json::Value& o, std::string_view key) {
  std::string s = string_or(o, key, "");
  if (s.size() > 128) {
    bad("field \"" + std::string(key) + "\" exceeds 128 bytes");
  }
  return s;
}

json::Value sleep_params_json(const SleepParams& p) {
  json::Value o = json::Value::object();
  o["ms"] = p.ms;
  return o;
}

SleepParams parse_sleep_params(const json::Value& o) {
  SleepParams p;
  p.ms = require_number(o, "ms");
  if (!(p.ms >= 0.0) || p.ms > 60000.0) bad("sleep ms must be in [0, 60000]");
  return p;
}

void decode_request_body(const json::Value& doc, Request& req);

}  // namespace

const char* request_type_name(RequestType t) noexcept {
  switch (t) {
    case RequestType::kPing: return "ping";
    case RequestType::kBind: return "bind";
    case RequestType::kUnbind: return "unbind";
    case RequestType::kSolve: return "solve";
    case RequestType::kControl: return "control";
    case RequestType::kLut: return "lut";
    case RequestType::kTransient: return "transient";
    case RequestType::kStats: return "stats";
    case RequestType::kHealth: return "health";
    case RequestType::kTrace: return "trace";
    case RequestType::kSleep: return "sleep";
  }
  return "?";
}

std::optional<RequestType> request_type_by_name(std::string_view name) noexcept {
  for (const RequestType t :
       {RequestType::kPing, RequestType::kBind, RequestType::kUnbind,
        RequestType::kSolve, RequestType::kControl, RequestType::kLut,
        RequestType::kTransient, RequestType::kStats, RequestType::kHealth,
        RequestType::kTrace, RequestType::kSleep}) {
    if (name == request_type_name(t)) return t;
  }
  return std::nullopt;
}

util::json::ParseOptions wire_parse_options(
    std::size_t max_input_bytes) noexcept {
  json::ParseOptions opts;
  opts.max_depth = 16;  // envelope + params + one nested array is depth 4
  opts.max_input_bytes = max_input_bytes;
  opts.duplicate_keys = json::DuplicateKeyPolicy::kError;
  return opts;
}

std::string encode_request(const Request& request) {
  json::Value o = json::Value::object();
  o["v"] = kProtocolVersion;
  o["id"] = request.id;
  o["type"] = request_type_name(request.type);
  if (request.deadline_ms > 0.0) o["deadline_ms"] = request.deadline_ms;
  if (!request.trace_id.empty()) o["trace_id"] = request.trace_id;
  if (!request.parent_span.empty()) o["parent_span"] = request.parent_span;
  switch (request.type) {
    case RequestType::kPing:
    case RequestType::kHealth:
      break;
    case RequestType::kBind:
      o["params"] = bind_params_json(std::get<BindParams>(request.params));
      break;
    case RequestType::kSolve:
      o["params"] = solve_params_json(std::get<SolveParams>(request.params));
      break;
    case RequestType::kControl:
      o["params"] =
          control_params_json(std::get<ControlParams>(request.params));
      break;
    case RequestType::kLut:
      o["params"] = lut_params_json(std::get<LutParams>(request.params));
      break;
    case RequestType::kTransient:
      o["params"] =
          transient_params_json(std::get<TransientParams>(request.params));
      break;
    case RequestType::kUnbind:
      o["params"] =
          session_params_json(std::get<SessionParams>(request.params));
      break;
    case RequestType::kStats:
      o["params"] = stats_params_json(std::get<StatsParams>(request.params));
      break;
    case RequestType::kTrace:
      o["params"] = trace_params_json(std::get<TraceParams>(request.params));
      break;
    case RequestType::kSleep:
      o["params"] = sleep_params_json(std::get<SleepParams>(request.params));
      break;
  }
  return o.dump();
}

Request decode_request(std::string_view payload,
                       std::size_t max_input_bytes) {
  json::Value doc;
  try {
    doc = json::parse(payload, wire_parse_options(max_input_bytes));
  } catch (const std::runtime_error& e) {
    bad(e.what());
  }
  if (!doc.is_object()) bad("request must be a JSON object");
  const std::uint64_t v = require_uint(doc, "v");
  if (v != static_cast<std::uint64_t>(kProtocolVersion)) {
    bad("unsupported protocol version " + std::to_string(v));
  }
  Request req;
  req.id = require_uint(doc, "id");
  try {
    decode_request_body(doc, req);
  } catch (ProtocolError& e) {
    // The id is known at this point — attach it so the server can correlate
    // the error response instead of replying with id 0.
    e.set_id(req.id);
    throw;
  }
  return req;
}

namespace {

void decode_request_body(const json::Value& doc, Request& req) {
  const json::Value& type_field = require(doc, "type");
  if (!type_field.is_string()) bad("field \"type\" must be a string");
  const std::string& type_name = type_field.as_string();
  const std::optional<RequestType> type = request_type_by_name(type_name);
  if (!type) {
    throw ProtocolError(kErrUnknownType,
                        "unknown request type \"" + type_name + "\"");
  }
  req.type = *type;
  req.trace_id = trace_string_or_empty(doc, "trace_id");
  req.parent_span = trace_string_or_empty(doc, "parent_span");
  req.deadline_ms = number_or(doc, "deadline_ms", 0.0);
  if (!(req.deadline_ms >= 0.0 && req.deadline_ms <= kMaxDeadlineMs)) {
    // Also rejects NaN/inf (the JSON parser accepts e.g. 1e999 as +inf),
    // which would make the server's deadline arithmetic overflow.
    bad("deadline_ms must be a finite number in [0, 1e9]");
  }

  const json::Value* params = doc.find("params");
  static const json::Value kEmpty = json::Value::object();
  const json::Value& p = params != nullptr ? *params : kEmpty;
  if (params != nullptr && !params->is_object()) {
    bad("field \"params\" must be an object");
  }
  switch (req.type) {
    case RequestType::kPing: break;
    case RequestType::kHealth: break;
    case RequestType::kBind: req.params = parse_bind_params(p); break;
    case RequestType::kSolve: req.params = parse_solve_params(p); break;
    case RequestType::kControl: req.params = parse_control_params(p); break;
    case RequestType::kLut: req.params = parse_lut_params(p); break;
    case RequestType::kTransient:
      req.params = parse_transient_params(p);
      break;
    case RequestType::kUnbind:
      req.params = parse_session_params(p, /*required=*/true);
      break;
    case RequestType::kStats: req.params = parse_stats_params(p); break;
    case RequestType::kTrace: req.params = parse_trace_params(p); break;
    case RequestType::kSleep: req.params = parse_sleep_params(p); break;
  }
}

}  // namespace

std::string encode_response(const Response& response) {
  json::Value o = json::Value::object();
  o["v"] = kProtocolVersion;
  o["id"] = response.id;
  o["ok"] = response.ok;
  if (!response.trace_id.empty()) o["trace_id"] = response.trace_id;
  if (response.timing.is_object()) o["timing"] = response.timing;
  if (response.ok) {
    o["result"] = response.result;
  } else {
    json::Value err = json::Value::object();
    err["code"] = response.error.code;
    err["message"] = response.error.message;
    if (response.error.retry_after_ms > 0.0) {
      err["retry_after_ms"] = response.error.retry_after_ms;
    }
    o["error"] = std::move(err);
  }
  return o.dump();
}

Response decode_response(std::string_view payload,
                         std::size_t max_input_bytes) {
  json::Value doc;
  try {
    doc = json::parse(payload, wire_parse_options(max_input_bytes));
  } catch (const std::runtime_error& e) {
    bad(e.what());
  }
  if (!doc.is_object()) bad("response must be a JSON object");
  if (require_uint(doc, "v") != static_cast<std::uint64_t>(kProtocolVersion)) {
    bad("unsupported protocol version in response");
  }
  Response resp;
  resp.id = require_uint(doc, "id");
  resp.trace_id = string_or(doc, "trace_id", "");
  if (const json::Value* t = doc.find("timing");
      t != nullptr && t->is_object()) {
    resp.timing = *t;
  }
  const json::Value& ok = require(doc, "ok");
  if (!ok.is_bool()) bad("field \"ok\" must be a bool");
  resp.ok = ok.as_bool();
  if (resp.ok) {
    resp.result = require(doc, "result");
    if (!resp.result.is_object()) bad("field \"result\" must be an object");
  } else {
    const json::Value& err = require(doc, "error");
    if (!err.is_object()) bad("field \"error\" must be an object");
    resp.error.code = string_or(err, "code", kErrInternal);
    resp.error.message = string_or(err, "message", "");
    resp.error.retry_after_ms = number_or(err, "retry_after_ms", 0.0);
  }
  return resp;
}

Response make_error_response(std::uint64_t id, std::string code,
                             std::string message, double retry_after_ms) {
  Response r;
  r.id = id;
  r.ok = false;
  r.error.code = std::move(code);
  r.error.message = std::move(message);
  r.error.retry_after_ms = retry_after_ms;
  return r;
}

Response make_ok_response(std::uint64_t id, util::json::Value result) {
  Response r;
  r.id = id;
  r.ok = true;
  r.result = std::move(result);
  return r;
}

util::json::Value timing_json(const TimingInfo& t) {
  json::Value o = json::Value::object();
  o["decode_us"] = t.decode_us;
  o["queue_us"] = t.queue_us;
  o["batch_us"] = t.batch_us;
  o["solve_us"] = t.solve_us;
  o["total_us"] = t.total_us;
  return o;
}

TimingInfo parse_timing(const util::json::Value& v) {
  TimingInfo t;
  if (!v.is_object()) return t;
  t.decode_us = number_or(v, "decode_us", 0.0);
  t.queue_us = number_or(v, "queue_us", 0.0);
  t.batch_us = number_or(v, "batch_us", 0.0);
  t.solve_us = number_or(v, "solve_us", 0.0);
  t.total_us = number_or(v, "total_us", 0.0);
  t.present = true;
  return t;
}

TimingInfo timing_of(const Response& response) noexcept {
  try {
    return parse_timing(response.timing);
  } catch (...) {
    return {};  // advisory block: malformed numbers read as absent
  }
}

// --- result payloads -------------------------------------------------------

util::json::Value bind_result_json(const BindReply& r) {
  json::Value o = json::Value::object();
  o["session"] = r.session;
  o["t_max_k"] = r.t_max_k;
  o["ambient_k"] = r.ambient_k;
  o["omega_max"] = r.omega_max;
  o["current_max"] = r.current_max;
  o["has_tec"] = r.has_tec;
  json::Value blocks = json::Value::array();
  for (const std::string& b : r.blocks) blocks.push_back(b);
  o["blocks"] = std::move(blocks);
  return o;
}

BindReply parse_bind_reply(const util::json::Value& v) {
  BindReply r;
  r.session = require_uint(v, "session");
  r.t_max_k = require_number(v, "t_max_k");
  r.ambient_k = require_number(v, "ambient_k");
  r.omega_max = require_number(v, "omega_max");
  r.current_max = require_number(v, "current_max");
  r.has_tec = bool_or(v, "has_tec", false);
  r.blocks = string_array_or(v, "blocks");
  return r;
}

util::json::Value solve_result_json(const SolveReply& r) {
  json::Value o = json::Value::object();
  o["runaway"] = r.runaway;
  o["t_max_chip_k"] = r.max_chip_temperature_k;
  o["leakage_w"] = r.leakage_w;
  o["tec_w"] = r.tec_w;
  o["fan_w"] = r.fan_w;
  o["iterations"] = r.iterations;
  return o;
}

SolveReply parse_solve_reply(const util::json::Value& v) {
  SolveReply r;
  r.runaway = bool_or(v, "runaway", false);
  // +inf serializes as null (JSON has no inf); recover it on runaway.
  const json::Value* t = v.find("t_max_chip_k");
  if (t != nullptr && t->is_number()) {
    r.max_chip_temperature_k = t->as_number();
  } else if (r.runaway) {
    r.max_chip_temperature_k = std::numeric_limits<double>::infinity();
  } else {
    bad("solve reply missing t_max_chip_k");
  }
  r.leakage_w = number_or(v, "leakage_w", 0.0);
  r.tec_w = number_or(v, "tec_w", 0.0);
  r.fan_w = number_or(v, "fan_w", 0.0);
  r.iterations = require_uint(v, "iterations");
  return r;
}

util::json::Value control_result_json(const ControlReply& r) {
  json::Value o = json::Value::object();
  o["objective"] = r.objective;
  o["success"] = r.success;
  o["used_opt2"] = r.used_opt2;
  o["omega"] = r.omega;
  o["current"] = r.current;
  o["t_max_chip_k"] = r.max_chip_temperature_k;
  o["leakage_w"] = r.leakage_w;
  o["tec_w"] = r.tec_w;
  o["fan_w"] = r.fan_w;
  o["runtime_ms"] = r.runtime_ms;
  o["thermal_solves"] = r.thermal_solves;
  return o;
}

ControlReply parse_control_reply(const util::json::Value& v) {
  ControlReply r;
  r.objective = string_or(v, "objective", "oftec");
  r.success = bool_or(v, "success", false);
  r.used_opt2 = bool_or(v, "used_opt2", false);
  r.omega = require_number(v, "omega");
  r.current = require_number(v, "current");
  const json::Value* t = v.find("t_max_chip_k");
  r.max_chip_temperature_k =
      (t != nullptr && t->is_number())
          ? t->as_number()
          : std::numeric_limits<double>::infinity();
  r.leakage_w = number_or(v, "leakage_w", 0.0);
  r.tec_w = number_or(v, "tec_w", 0.0);
  r.fan_w = number_or(v, "fan_w", 0.0);
  r.runtime_ms = number_or(v, "runtime_ms", 0.0);
  r.thermal_solves = require_uint(v, "thermal_solves");
  return r;
}

util::json::Value lut_result_json(const LutReply& r) {
  json::Value o = json::Value::object();
  o["omega"] = r.omega;
  o["current"] = r.current;
  o["feasible"] = r.feasible;
  o["entry_index"] = r.entry_index;
  o["feature_distance"] = r.feature_distance;
  return o;
}

LutReply parse_lut_reply(const util::json::Value& v) {
  LutReply r;
  r.omega = require_number(v, "omega");
  r.current = require_number(v, "current");
  r.feasible = bool_or(v, "feasible", false);
  r.entry_index = require_uint(v, "entry_index");
  r.feature_distance = number_or(v, "feature_distance", 0.0);
  return r;
}

util::json::Value transient_result_json(const TransientReply& r) {
  json::Value o = json::Value::object();
  o["runaway"] = r.runaway;
  o["t_final_k"] = r.final_max_chip_temperature_k;
  o["t_peak_k"] = r.peak_max_chip_temperature_k;
  o["steps"] = r.steps;
  o["time_s"] = r.time_s;
  return o;
}

TransientReply parse_transient_reply(const util::json::Value& v) {
  TransientReply r;
  r.runaway = bool_or(v, "runaway", false);
  const json::Value* tf = v.find("t_final_k");
  r.final_max_chip_temperature_k =
      (tf != nullptr && tf->is_number())
          ? tf->as_number()
          : std::numeric_limits<double>::infinity();
  const json::Value* tp = v.find("t_peak_k");
  r.peak_max_chip_temperature_k =
      (tp != nullptr && tp->is_number())
          ? tp->as_number()
          : std::numeric_limits<double>::infinity();
  r.steps = require_uint(v, "steps");
  r.time_s = number_or(v, "time_s", 0.0);
  return r;
}

util::json::Value health_result_json(const HealthReply& r) {
  json::Value o = json::Value::object();
  o["healthy"] = r.healthy;
  o["accepting"] = r.accepting;
  o["sessions"] = r.sessions;
  o["active_sessions"] = r.active_sessions;
  o["queue_depth"] = r.queue_depth;
  o["queue_capacity"] = r.queue_capacity;
  o["uptime_ms"] = r.uptime_ms;
  return o;
}

HealthReply parse_health_reply(const util::json::Value& v) {
  HealthReply r;
  r.healthy = bool_or(v, "healthy", false);
  r.accepting = bool_or(v, "accepting", false);
  r.sessions = require_uint(v, "sessions");
  r.queue_depth = require_uint(v, "queue_depth");
  r.queue_capacity = require_uint(v, "queue_capacity");
  // Load fields added for the cluster prober: optional for v1 interop with
  // servers that predate them.
  if (v.find("active_sessions") != nullptr) {
    r.active_sessions = require_uint(v, "active_sessions");
  }
  r.uptime_ms = number_or(v, "uptime_ms", 0.0);
  return r;
}

}  // namespace oftec::serve
