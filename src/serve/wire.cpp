#include "serve/wire.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace oftec::serve {

namespace {

using Clock = std::chrono::steady_clock;

// Every send in this file already passes MSG_NOSIGNAL, but third-party code
// sharing the process (or a future write path) may not: a worker process
// dying mid-write must never escalate to SIGPIPE killing router or peer.
// Installed once at first socket/listener setup; never overrides a handler
// the embedding application installed itself.
void ignore_sigpipe_once() noexcept {
  static std::once_flag flag;
  std::call_once(flag, [] {
    struct sigaction cur {};
    if (::sigaction(SIGPIPE, nullptr, &cur) == 0 &&
        cur.sa_handler == SIG_DFL) {
      struct sigaction ign {};
      ign.sa_handler = SIG_IGN;
      ::sigaction(SIGPIPE, &ign, nullptr);
    }
  });
}

/// recv() exactly `n` bytes, optionally bounded by `deadline`. 1 = ok,
/// 0 = clean EOF before any byte, -1 = EOF mid-read (peer closed with a
/// partial frame), -2 = socket error, -3 = deadline expired.
int recv_exact(int fd, char* buf, std::size_t n,
               const Clock::time_point* deadline = nullptr) {
  std::size_t got = 0;
  while (got < n) {
    if (deadline != nullptr) {
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                                 *deadline - Clock::now())
                                 .count();
      if (remaining <= 0) return -3;
      pollfd p{};
      p.fd = fd;
      p.events = POLLIN;
      const int pr = ::poll(
          &p, 1,
          static_cast<int>(std::min<long long>(
              remaining, std::numeric_limits<int>::max())));
      if (pr == 0) return -3;
      if (pr < 0) {
        if (errno == EINTR) continue;
        return -2;
      }
      // Readable (or HUP/ERR — recv() below reports which).
    }
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) return got == 0 ? 0 : -1;  // EOF
    if (errno == EINTR) continue;
    return -2;
  }
  return 1;
}

bool send_all(int fd, const char* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r > 0) {
      sent += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Socket::shutdown_read() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket Socket::connect_loopback(std::uint16_t port) {
  ignore_sigpipe_once();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Socket();
  const sockaddr_in addr = loopback_addr(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return Socket();
  }
  // Control messages are small; never trade latency for coalescing.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
}

Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(std::exchange(other.port_, 0)) {}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

Listener Listener::listen_loopback(std::uint16_t port, int backlog) {
  ignore_sigpipe_once();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("serve: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw std::runtime_error("serve: bind() to loopback port " +
                             std::to_string(port) +
                             " failed: " + std::strerror(errno));
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    throw std::runtime_error(std::string("serve: listen() failed: ") +
                             std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    throw std::runtime_error("serve: getsockname() failed");
  }
  Listener l;
  l.fd_ = fd;
  l.port_ = ntohs(addr.sin_port);
  return l;
}

Socket Listener::accept() const {
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Socket();  // listener shut down (or fatal error): signal exit
  }
}

void Listener::shutdown() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

namespace {

ReadStatus read_frame_impl(int fd, std::string& payload,
                           std::size_t max_payload_bytes,
                           const Clock::time_point* deadline) {
  unsigned char prefix[4];
  const int pr =
      recv_exact(fd, reinterpret_cast<char*>(prefix), 4, deadline);
  if (pr == 0) return ReadStatus::kClosed;
  if (pr == -1) return ReadStatus::kTruncated;
  if (pr == -3) return ReadStatus::kTimeout;
  if (pr < 0) return ReadStatus::kError;
  const std::uint32_t n = (static_cast<std::uint32_t>(prefix[0]) << 24) |
                          (static_cast<std::uint32_t>(prefix[1]) << 16) |
                          (static_cast<std::uint32_t>(prefix[2]) << 8) |
                          static_cast<std::uint32_t>(prefix[3]);
  if (n > max_payload_bytes) return ReadStatus::kTooLarge;
  payload.resize(n);
  if (n == 0) return ReadStatus::kOk;
  const int br = recv_exact(fd, payload.data(), n, deadline);
  if (br == 1) return ReadStatus::kOk;
  if (br == -3) return ReadStatus::kTimeout;
  // EOF anywhere inside a promised payload is a truncated frame; only a
  // genuine socket error reports kError.
  return br == -2 ? ReadStatus::kError : ReadStatus::kTruncated;
}

}  // namespace

ReadStatus read_frame(int fd, std::string& payload,
                      std::size_t max_payload_bytes) {
  return read_frame_impl(fd, payload, max_payload_bytes, nullptr);
}

ReadStatus read_frame_for(int fd, std::string& payload,
                          std::size_t max_payload_bytes, long timeout_ms) {
  if (timeout_ms <= 0) {
    return read_frame_impl(fd, payload, max_payload_bytes, nullptr);
  }
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  return read_frame_impl(fd, payload, max_payload_bytes, &deadline);
}

bool write_frame(int fd, std::string_view payload) {
  if (payload.size() > 0xffffffffu) return false;
  const auto n = static_cast<std::uint32_t>(payload.size());
  const unsigned char prefix[4] = {static_cast<unsigned char>(n >> 24),
                                   static_cast<unsigned char>(n >> 16),
                                   static_cast<unsigned char>(n >> 8),
                                   static_cast<unsigned char>(n)};
  if (!send_all(fd, reinterpret_cast<const char*>(prefix), 4)) return false;
  return send_all(fd, payload.data(), payload.size());
}

}  // namespace oftec::serve
