// oftec-serve server core: TCP acceptor, per-connection reader/writer
// threads, a central bounded admission queue, and a micro-batcher that
// coalesces concurrent solve requests into SolveEngine batches.
//
// Pipeline (one box per thread):
//
//   acceptor ──► reader (per conn) ──► BoundedQueue ──► batcher ──► writer
//                  │ decode, admit        │ admission      │ coalesce   (per
//                  │ inline: ping/stats/  │ control:       │ + execute  conn)
//                  │ unbind + shed        │ try_push       │ on the
//                  │ replies              │ or shed        │ engine pool
//
// Batching: consecutive solve requests are popped until max_batch_size or
// max_delay_us elapses, grouped by session, deduplicated on identical
// (ω, I), and fanned through SolveEngine::solve_batch — concurrent clients
// share factorization-cache hits and the engine's thread pool. Every other
// request type executes singly in arrival order. Because the engine is
// deterministic from a fixed initial guess, a batched response is
// bit-identical to a direct CoolingSystem call.
//
// Admission control & degradation: the central queue is bounded; when full,
// requests are refused immediately with a structured kErrOverloaded response
// carrying retry_after_ms — clients never hang on an overloaded server.
// Each request may carry a relative deadline; requests that expire while
// queued get kErrDeadlineExceeded instead of being executed. stop() drains:
// admitted work completes, readers are unblocked, writers flush, and every
// thread is joined before stop() returns.
//
// Observability: queue depth gauge, batch-size and end-to-end latency
// histograms, per-stage attribution histograms (serve.queue_wait_us /
// serve.batch_wait_us / serve.solve_us / serve.write_us), per-type request
// counters, shed/deadline/dedup counters and spans, all under the "serve."
// prefix in the oftec::obs registry. Every queued response carries a
// `timing` block with the same breakdown, kStats exposes the registry live
// (JSON snapshot/delta-since-cursor or Prometheus text), and requests
// slower than OFTEC_SLOW_REQ_US land in the exemplar ring, dumpable via
// kTrace as Chrome trace JSON. See docs/observability.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "serve/queue.h"
#include "serve/session.h"
#include "serve/wire.h"
#include "util/json.h"
#include "util/obs.h"

namespace oftec::serve {

struct ServerOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral loopback port (see Server::port)
  /// Micro-batcher: flush a solve batch at this many requests ...
  std::size_t max_batch_size = 16;
  /// ... or when the oldest popped request has waited this long [µs].
  std::uint64_t max_delay_us = 2000;
  /// Central queue bound — the admission-control knob.
  std::size_t max_queue_depth = 256;
  /// Frame payload cap for untrusted input.
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  std::size_t max_sessions = 64;
  /// Backpressure hint sent with kErrOverloaded replies [ms].
  double shed_retry_after_ms = 5.0;
  /// Accept the test-only "sleep" request (deterministic overload tests).
  bool enable_test_requests = false;
  /// Readiness handshake for process supervision: when >= 0, start() writes
  /// "PORT <bound>\n" to this descriptor and closes it once the listener is
  /// live. A parent that forked us can block on the pipe instead of polling
  /// the port (see cluster::ProcessWorker).
  int ready_fd = -1;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();  ///< implies stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the listener and launch the pipeline threads. Throws
  /// std::runtime_error if the port cannot be bound.
  void start();

  /// Graceful drain: refuse new work, complete admitted work, flush
  /// responses, join every thread. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }

  /// Monotonic pipeline counters (snapshot; also mirrored into oftec::obs).
  struct Counters {
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;          ///< decoded requests, all types
    std::uint64_t admitted = 0;          ///< entered the central queue
    std::uint64_t completed = 0;         ///< responses sent for queued work
    std::uint64_t shed = 0;              ///< kErrOverloaded replies
    std::uint64_t deadline_expired = 0;  ///< kErrDeadlineExceeded replies
    std::uint64_t protocol_errors = 0;   ///< bad frames/messages
    std::uint64_t batches = 0;           ///< solve batches executed
    std::uint64_t batched_points = 0;    ///< solve requests inside batches
    std::uint64_t dedup_hits = 0;        ///< solves answered by a batchmate
  };
  [[nodiscard]] Counters counters() const;

  /// True while the batcher is executing work (used by tests to line up
  /// deterministic overload scenarios).
  [[nodiscard]] bool executing() const noexcept {
    return executing_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t queue_depth() const { return queue_->size(); }

 private:
  struct Connection;

  /// One admitted request. The extra time points are stage stamps for the
  /// response `timing` block; a default-constructed time_point means "stage
  /// never reached" and the stage reads as 0 in the breakdown.
  struct Pending {
    Request request;
    std::shared_ptr<Connection> connection;
    double decode_us = 0.0;  ///< frame decode + request parse duration
    std::chrono::steady_clock::time_point arrival{};
    std::chrono::steady_clock::time_point deadline{};     ///< max() = none
    std::chrono::steady_clock::time_point queue_out{};    ///< batcher pop
    std::chrono::steady_clock::time_point exec_start{};   ///< batch formed
    std::chrono::steady_clock::time_point solve_start{};  ///< handler enter
    std::chrono::steady_clock::time_point solve_end{};    ///< handler exit
  };

  void acceptor_loop();
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void writer_loop(const std::shared_ptr<Connection>& conn);
  void batcher_loop();

  /// Handle the request types the reader answers without queueing.
  [[nodiscard]] bool handle_inline(const Request& request,
                                   const std::shared_ptr<Connection>& conn);
  [[nodiscard]] util::json::Value stats_json(std::uint64_t session_id) const;
  [[nodiscard]] Response handle_stats(const Request& request);
  [[nodiscard]] Response handle_trace(const Request& request);

  void execute_solve_batch(std::vector<Pending>& batch);
  void execute_single(Pending& item);
  void respond(const Pending& item, Response response);
  [[nodiscard]] static bool expired(const Pending& item);

  ServerOptions options_;
  Listener listener_;
  std::uint16_t port_ = 0;
  std::chrono::steady_clock::time_point started_at_{};  ///< stamped by start()
  SessionRegistry registry_;
  std::unique_ptr<BoundedQueue<Pending>> queue_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> executing_{false};

  std::thread acceptor_;
  std::thread batcher_;
  std::mutex stop_mutex_;  ///< serializes stop() (it joins threads)
  std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;

  /// Delta-scrape state: cursor token → the obs snapshot taken when that
  /// token was handed out. Bounded (kMaxStatsCursors, oldest evicted) so a
  /// scraper that never reuses cursors cannot grow server memory.
  static constexpr std::size_t kMaxStatsCursors = 16;
  mutable std::mutex stats_mutex_;
  std::map<std::uint64_t, obs::Snapshot> stats_cursors_;
  std::uint64_t next_stats_cursor_ = 1;

  // Counters (relaxed increments; counters() takes a consistent-enough
  // snapshot of independently updated fields).
  std::atomic<std::uint64_t> n_connections_{0};
  std::atomic<std::uint64_t> n_requests_{0};
  std::atomic<std::uint64_t> n_admitted_{0};
  std::atomic<std::uint64_t> n_completed_{0};
  std::atomic<std::uint64_t> n_shed_{0};
  std::atomic<std::uint64_t> n_deadline_{0};
  std::atomic<std::uint64_t> n_protocol_errors_{0};
  std::atomic<std::uint64_t> n_batches_{0};
  std::atomic<std::uint64_t> n_batched_points_{0};
  std::atomic<std::uint64_t> n_dedup_hits_{0};
};

}  // namespace oftec::serve
