// Self-healing oftec-serve client: retries with exponential backoff and
// deterministic jitter, per-RPC receive timeouts, a circuit breaker, and
// automatic session re-binding after a server restart.
//
// The plain Client is a thin connection wrapper — any transport hiccup
// throws and the connection is dead. ResilientClient layers the recovery
// policy on top:
//
//   * Transport failures (connect/send/recv/timeout) close the connection
//     and retry on a fresh one with exponential backoff. Jitter is derived
//     from a caller-provided seed, so a retry schedule is reproducible.
//   * Structured kErrOverloaded / kErrShuttingDown responses are retried
//     too, honoring the server's retry_after_ms backpressure hint (the
//     sleep is max(backoff, retry_after_ms)).
//   * kErrUnknownSession after a reconnect means the server lost its state
//     (restart): the client re-issues the remembered bind and retries with
//     the fresh session id. Because solves are pure functions of the bound
//     workload and operating point, results across a restart are
//     bit-identical.
//   * A circuit breaker opens after `failure_threshold` consecutive
//     transport failures: new RPCs fail fast with TransportError(kConnect)
//     until `open_ms` has passed, then a single half-open probe decides
//     whether to close it again. An RPC already inside its retry loop waits
//     out the cool-down instead of failing.
//
// Retry safety: connect/send failures cannot have executed, so everything
// is retried after them. After a recv/timeout failure the RPC's fate is
// unknown; pure requests (solve/control/lut/health/ping/bind) are retried
// anyway, but `transient` mutates session state, so it is only retried
// after failures that provably did not execute — otherwise the error
// propagates and the caller decides.
//
// Like Client, a ResilientClient is NOT thread-safe; use one per thread.
#pragma once

#include <cstdint>
#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "serve/client.h"
#include "serve/protocol.h"

namespace oftec::serve {

struct RetryPolicy {
  int max_attempts = 5;             ///< total tries per RPC (first + retries)
  double initial_backoff_ms = 5.0;  ///< sleep before the first retry
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 250.0;
  /// Each sleep is scaled by (1 - jitter_fraction * u), u ∈ [0, 1) drawn
  /// from a SplitMix64 stream seeded below — deterministic decorrelation.
  double jitter_fraction = 0.25;
  std::uint64_t jitter_seed = 1;
};

struct BreakerPolicy {
  int failure_threshold = 3;  ///< consecutive transport failures to open
  double open_ms = 100.0;     ///< cool-down before the half-open probe
};

class ResilientClient {
 public:
  struct Options {
    Client::Options client;  ///< frame cap, deadline, recv timeout
    RetryPolicy retry;
    BreakerPolicy breaker;
    /// Generate a trace id per RPC ("<trace_prefix>-<n>", deterministic
    /// counter per client) when the caller did not set one — every attempt
    /// of one RPC carries the same id, so server-side exemplars and logs
    /// stitch retries together.
    bool trace = false;
    std::string trace_prefix = "oftec";
  };

  /// Remembers the target; connects lazily on the first RPC.
  explicit ResilientClient(std::uint16_t port, Options options);
  explicit ResilientClient(std::uint16_t port)
      : ResilientClient(port, Options()) {}

  ResilientClient(ResilientClient&&) noexcept = default;
  ResilientClient& operator=(ResilientClient&&) noexcept = default;

  // --- RPCs (throw TransportError once retries are exhausted or the ------
  // --- breaker is open; ProtocolError for non-retryable server errors) ----

  /// Bind (or re-bind) the session this client tracks. The params are
  /// remembered for automatic re-binding after a server restart.
  BindReply bind(const BindParams& params);

  void ping();
  [[nodiscard]] HealthReply health();
  [[nodiscard]] SolveReply solve(double omega, double current);
  [[nodiscard]] ControlReply control(const std::string& objective = "oftec");
  [[nodiscard]] LutReply lut(const std::vector<double>& power_w);
  /// Stateful: only retried after failures that provably did not execute
  /// (see header comment). params.session is overwritten with the tracked
  /// session.
  [[nodiscard]] TransientReply transient(TransientParams params);
  /// Raw resilient RPC over an arbitrary decoded request — the cluster
  /// router's proxy path. The request is forwarded as-is (the underlying
  /// Client assigns a fresh id; an already-set trace_id survives). When
  /// `retry_after_recv` is false the RPC is only retried after failures
  /// that provably did not execute (the `transient` rule). NOTE: unlike the
  /// typed RPCs, no session rewriting or automatic re-bind happens here —
  /// the caller owns session placement.
  [[nodiscard]] util::json::Value call(Request request,
                                       bool retry_after_recv = true);

  /// Raw stats payload (see Server::handle_stats). session 0 → server only.
  [[nodiscard]] util::json::Value raw_stats(std::uint64_t session = 0);
  /// Full stats RPC (snapshot/delta cursor views, JSON or Prometheus).
  [[nodiscard]] util::json::Value raw_stats(const StatsParams& params);
  /// Slow-request exemplar dump (Chrome trace JSON in result["trace"]).
  [[nodiscard]] util::json::Value raw_trace(const TraceParams& params);
  /// True when the session existed server-side.
  bool unbind(std::uint64_t session);

  /// Set the trace id attached to the next RPC (all of its retry attempts).
  /// Overrides Options::trace generation for that one RPC.
  void set_next_trace_id(std::string trace_id) {
    next_trace_id_ = std::move(trace_id);
  }

  /// Server timing block from the last completed RPC attempt ({present:
  /// false} when the server sent none or no RPC has completed yet).
  [[nodiscard]] const TimingInfo& last_timing() const noexcept {
    return last_timing_;
  }
  /// trace_id the last completed RPC carried (generated or caller-set).
  [[nodiscard]] const std::string& last_trace_id() const noexcept {
    return last_trace_id_;
  }

  /// Session id currently tracked (changes after an automatic re-bind).
  [[nodiscard]] std::uint64_t session() const noexcept { return session_; }
  [[nodiscard]] bool bound() const noexcept { return session_ != 0; }

  /// Attach to an existing server-side session (e.g. one bound by another
  /// connection). Automatic re-binding stays off until bind() is called —
  /// without the original params there is nothing to re-issue.
  void set_session(std::uint64_t session) noexcept { session_ = session; }

  /// Recovery counters — how hard the client had to work.
  struct Stats {
    std::uint64_t attempts = 0;        ///< RPC attempts, including firsts
    std::uint64_t retries = 0;         ///< attempts after a failure
    std::uint64_t reconnects = 0;      ///< fresh connections established
    std::uint64_t rebinds = 0;         ///< automatic session re-binds
    std::uint64_t breaker_opens = 0;   ///< closed→open transitions
    std::uint64_t breaker_rejects = 0; ///< RPCs failed fast while open
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// The one retry loop every RPC funnels through (defined in the .cpp).
  template <typename Fn>
  auto with_retry(bool retry_after_recv, Fn&& rpc)
      -> decltype(rpc(std::declval<Client&>()));

  Client& ensure_connected();
  void drop_connection() noexcept;
  void rebind_session();
  [[nodiscard]] double next_backoff_ms(int attempt);
  void record_transport_failure();
  /// The trace id for the RPC entering with_retry (caller-set one-shot id,
  /// a generated "<prefix>-<n>" when Options::trace is on, else "").
  [[nodiscard]] std::string take_trace_id();

  std::uint16_t port_;
  Options options_;
  std::optional<Client> client_;
  std::uint64_t session_ = 0;
  std::optional<BindParams> bind_params_;

  std::uint64_t jitter_state_ = 0;
  int consecutive_failures_ = 0;
  Clock::time_point open_until_{};  ///< breaker closed when in the past
  Stats stats_;

  std::string next_trace_id_;      ///< one-shot caller override
  std::uint64_t trace_counter_ = 0;
  TimingInfo last_timing_;
  std::string last_trace_id_;
};

}  // namespace oftec::serve
