// Transport for oftec-serve: loopback/TCP sockets plus length-prefixed
// framing.
//
// A frame is a 4-byte big-endian unsigned payload length followed by that
// many bytes of UTF-8 JSON. The prefix makes message boundaries explicit on
// a byte stream and lets the reader reject oversized payloads *before*
// buffering them — the first line of defense for untrusted network input
// (the JSON parser's own ParseOptions limits are the second).
//
// Framing errors (truncated prefix, oversized declaration, mid-frame EOF)
// are unrecoverable for the connection: once the stream position is
// ambiguous, the only safe move is to drop the peer. Semantic errors inside
// a well-framed payload get structured error responses instead (see
// protocol.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace oftec::serve {

/// Default cap on a single frame payload (1 MiB) — far above any legitimate
/// oftec-serve message, far below anything that could stress the host.
inline constexpr std::size_t kDefaultMaxFrameBytes = std::size_t{1} << 20;

/// RAII wrapper for a connected socket descriptor. Move-only.
class Socket {
 public:
  Socket() noexcept = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Disallow further sends and/or receives without releasing the fd —
  /// unblocks any thread parked in recv()/send() on this socket. Safe to
  /// call from a thread other than the one doing I/O.
  void shutdown_read() noexcept;
  void shutdown_both() noexcept;

  void close() noexcept;

  /// Connect to 127.0.0.1:port. Invalid socket on failure.
  [[nodiscard]] static Socket connect_loopback(std::uint16_t port);

 private:
  int fd_ = -1;
};

/// RAII listening socket bound to the loopback interface.
class Listener {
 public:
  Listener() noexcept = default;
  ~Listener();

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Bind and listen on 127.0.0.1:port (0 → ephemeral port chosen by the
  /// kernel, readable via port()). Throws std::runtime_error on failure.
  [[nodiscard]] static Listener listen_loopback(std::uint16_t port,
                                                int backlog = 64);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Block for the next connection. Invalid socket once the listener has
  /// been shut down (the acceptor thread's exit signal).
  [[nodiscard]] Socket accept() const;

  /// Unblock accept() and refuse new connections.
  void shutdown() noexcept;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Outcome of read_frame().
enum class ReadStatus {
  kOk,         ///< a complete frame was read into `payload`
  kClosed,     ///< clean EOF on a frame boundary (peer finished)
  kTruncated,  ///< EOF mid-prefix or mid-payload
  kTooLarge,   ///< declared length exceeds `max_payload_bytes`
  kError,      ///< socket error
  kTimeout,    ///< no complete frame within the deadline (timed variant)
};

/// Read one length-prefixed frame. Blocks until a full frame, EOF, or error.
[[nodiscard]] ReadStatus read_frame(int fd, std::string& payload,
                                    std::size_t max_payload_bytes);

/// Timed variant: kTimeout once `timeout_ms` elapses without a complete
/// frame (the stream position is then ambiguous — treat the connection as
/// dead, like a framing error). timeout_ms <= 0 blocks forever.
[[nodiscard]] ReadStatus read_frame_for(int fd, std::string& payload,
                                        std::size_t max_payload_bytes,
                                        long timeout_ms);

/// Write one length-prefixed frame (handles short writes; SIGPIPE is
/// suppressed). False on any send failure.
[[nodiscard]] bool write_frame(int fd, std::string_view payload);

}  // namespace oftec::serve
