#include "serve/resilient_client.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <utility>

namespace oftec::serve {

namespace {

using MsDouble = std::chrono::duration<double, std::milli>;

std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

[[nodiscard]] bool retryable_error_code(const std::string& code) {
  return code == kErrOverloaded || code == kErrShuttingDown;
}

}  // namespace

ResilientClient::ResilientClient(std::uint16_t port, Options options)
    : port_(port),
      options_(options),
      jitter_state_(options.retry.jitter_seed) {}

Client& ResilientClient::ensure_connected() {
  if (!client_.has_value()) {
    client_.emplace(Client::connect(port_, options_.client));
    ++stats_.reconnects;
  }
  return *client_;
}

void ResilientClient::drop_connection() noexcept { client_.reset(); }

double ResilientClient::next_backoff_ms(int attempt) {
  const RetryPolicy& r = options_.retry;
  double base =
      r.initial_backoff_ms * std::pow(r.backoff_multiplier, attempt);
  base = std::min(base, r.max_backoff_ms);
  // u in [0, 1): top 53 bits of a SplitMix64 draw.
  const double u =
      static_cast<double>(splitmix64_next(jitter_state_) >> 11) * 0x1.0p-53;
  return base * (1.0 - r.jitter_fraction * u);
}

void ResilientClient::record_transport_failure() {
  ++consecutive_failures_;
  if (consecutive_failures_ >= options_.breaker.failure_threshold) {
    const Clock::time_point now = Clock::now();
    if (now >= open_until_) ++stats_.breaker_opens;
    open_until_ =
        now + std::chrono::duration_cast<Clock::duration>(
                  MsDouble(options_.breaker.open_ms));
  }
}

std::string ResilientClient::take_trace_id() {
  if (!next_trace_id_.empty()) {
    std::string id = std::move(next_trace_id_);
    next_trace_id_.clear();
    return id;
  }
  if (!options_.trace) return {};
  return options_.trace_prefix + "-" + std::to_string(++trace_counter_);
}

template <typename Fn>
auto ResilientClient::with_retry(bool retry_after_recv, Fn&& rpc)
    -> decltype(rpc(std::declval<Client&>())) {
  if (Clock::now() < open_until_) {
    ++stats_.breaker_rejects;
    throw TransportError(TransportError::Kind::kConnect,
                         "oftec-serve: circuit breaker open");
  }
  // One trace id per RPC, reapplied on every attempt so retries of the same
  // logical request stitch together server-side.
  const std::string trace_id = take_trace_id();
  const int max_attempts = std::max(1, options_.retry.max_attempts);
  for (int attempt = 0;; ++attempt) {
    // An RPC already committed to its retry loop waits out a breaker that
    // opened mid-flight instead of failing fast (only *new* RPCs do that).
    const Clock::time_point now = Clock::now();
    if (now < open_until_) std::this_thread::sleep_until(open_until_);

    ++stats_.attempts;
    if (attempt > 0) ++stats_.retries;
    try {
      Client& client = ensure_connected();
      if (!trace_id.empty()) client.set_next_trace_id(trace_id);
      auto result = rpc(client);
      consecutive_failures_ = 0;  // half-open probe succeeded (or no fault)
      last_timing_ = client.last_timing();
      last_trace_id_ = client.last_trace_id();
      return result;
    } catch (const TransportError& e) {
      drop_connection();
      record_transport_failure();
      // connect/send cannot have executed; recv/timeout leave the RPC's
      // fate unknown — only retry those when the request is pure.
      const bool maybe_executed =
          e.kind() == TransportError::Kind::kRecv ||
          e.kind() == TransportError::Kind::kTimeout;
      if ((maybe_executed && !retry_after_recv) ||
          attempt + 1 >= max_attempts) {
        throw;
      }
      std::this_thread::sleep_for(MsDouble(next_backoff_ms(attempt)));
    } catch (const ProtocolError& e) {
      if (client_.has_value()) {
        // The error response may still carry server timing — surface it.
        last_timing_ = client_->last_timing();
        last_trace_id_ = client_->last_trace_id();
      }
      if (e.code() == kErrUnknownSession && bind_params_.has_value() &&
          attempt + 1 < max_attempts) {
        // The server lost its sessions (restart): re-issue the remembered
        // bind and retry immediately — the server is demonstrably alive.
        rebind_session();
        continue;
      }
      if (!retryable_error_code(e.code()) || attempt + 1 >= max_attempts) {
        throw;
      }
      std::this_thread::sleep_for(
          MsDouble(std::max(next_backoff_ms(attempt), e.retry_after_ms())));
    }
  }
}

void ResilientClient::rebind_session() {
  ++stats_.rebinds;
  const BindParams params = *bind_params_;
  const BindReply reply =
      with_retry(true, [&](Client& c) { return c.bind(params); });
  session_ = reply.session;
}

BindReply ResilientClient::bind(const BindParams& params) {
  bind_params_ = params;
  BindReply reply = with_retry(true, [&](Client& c) { return c.bind(params); });
  session_ = reply.session;
  return reply;
}

void ResilientClient::ping() {
  with_retry(true, [](Client& c) {
    c.ping();
    return 0;
  });
}

HealthReply ResilientClient::health() {
  return with_retry(true, [](Client& c) { return c.health(); });
}

SolveReply ResilientClient::solve(double omega, double current) {
  return with_retry(
      true, [&](Client& c) { return c.solve(session_, omega, current); });
}

ControlReply ResilientClient::control(const std::string& objective) {
  return with_retry(
      true, [&](Client& c) { return c.control(session_, objective); });
}

LutReply ResilientClient::lut(const std::vector<double>& power_w) {
  return with_retry(true, [&](Client& c) { return c.lut(session_, power_w); });
}

TransientReply ResilientClient::transient(TransientParams params) {
  return with_retry(/*retry_after_recv=*/false, [&](Client& c) {
    params.session = session_;
    return c.transient(params);
  });
}

util::json::Value ResilientClient::call(Request request,
                                        bool retry_after_recv) {
  return with_retry(retry_after_recv, [&](Client& c) {
    return c.call(request);  // copy per attempt: send() mutates id/trace
  });
}

util::json::Value ResilientClient::raw_stats(std::uint64_t session) {
  return with_retry(true, [&](Client& c) { return c.stats(session); });
}

util::json::Value ResilientClient::raw_stats(const StatsParams& params) {
  return with_retry(true, [&](Client& c) { return c.stats(params); });
}

util::json::Value ResilientClient::raw_trace(const TraceParams& params) {
  return with_retry(true, [&](Client& c) { return c.trace(params); });
}

bool ResilientClient::unbind(std::uint64_t session) {
  return with_retry(true, [&](Client& c) { return c.unbind(session); });
}

}  // namespace oftec::serve
