// oftec-serve wire protocol v1: versioned JSON messages inside the length-
// prefixed frames of wire.h. See docs/serving.md for the full specification.
//
// Request envelope:
//   {"v":1, "id":<n>, "type":"<name>", "deadline_ms":<n>?,
//    "trace_id":"..."?, "parent_span":"..."?, "params":{...}}
// Response envelope:
//   {"v":1, "id":<n>, "ok":true,  "result":{...},
//    "trace_id":"..."?, "timing":{...}?}
//   {"v":1, "id":<n>, "ok":false, "error":{"code":"...", "message":"...",
//                                          "retry_after_ms":<n>?}}
//
// `trace_id`/`parent_span` are optional opaque strings (≤ 128 bytes) the
// client attaches for distributed tracing; the server echoes `trace_id` on
// the response and stamps a `timing` object (per-stage µs breakdown, see
// TimingInfo). Peers that predate these fields interoperate unchanged:
// extractors on both ends ignore unknown keys, and all four fields are
// omitted from the wire when empty/absent.
//
// Responses are correlated by `id` (client-chosen, unique per connection)
// and may arrive out of request order — the server coalesces concurrent
// solve requests into batches. Numbers are IEEE doubles printed with %.17g,
// so every temperature/power value round-trips bit-exactly: a served solve
// equals a direct library call bit-for-bit.
//
// Decoding is hardened for untrusted input: frames are size-capped by the
// transport, then parsed with util::json::ParseOptions{max_depth,
// max_input_bytes, DuplicateKeyPolicy::kError}. Anything malformed throws
// ProtocolError, which the server turns into a structured error response
// (or a connection drop when the frame itself is unparseable).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/json.h"

namespace oftec::serve {

inline constexpr int kProtocolVersion = 1;

/// Upper bound on a request's `deadline_ms` (~11.5 days). Keeps
/// peer-controlled deadlines small enough that converting to microseconds
/// and adding to a steady_clock time_point can never overflow.
inline constexpr double kMaxDeadlineMs = 1e9;

// Error codes (stable strings on the wire).
inline constexpr const char* kErrBadRequest = "bad_request";
inline constexpr const char* kErrUnknownType = "unknown_type";
inline constexpr const char* kErrUnknownSession = "unknown_session";
inline constexpr const char* kErrOverloaded = "overloaded";
inline constexpr const char* kErrDeadlineExceeded = "deadline_exceeded";
inline constexpr const char* kErrShuttingDown = "shutting_down";
inline constexpr const char* kErrInternal = "internal";

/// Raised by the codec on malformed/unsupported messages and by the client
/// when the server returns an error response.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(std::string code, std::string message)
      : std::runtime_error(code + ": " + message),
        code_(std::move(code)),
        message_(std::move(message)) {}

  [[nodiscard]] const std::string& code() const noexcept { return code_; }
  /// The human-readable part only (what() prepends the code).
  [[nodiscard]] const std::string& message() const noexcept {
    return message_;
  }
  /// Request id to correlate an error response with, when the decoder got
  /// far enough to learn it; 0 otherwise.
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  void set_id(std::uint64_t id) noexcept { id_ = id; }

  /// Backpressure hint carried by the error response, when the server sent
  /// one (kErrOverloaded / kErrShuttingDown); 0 otherwise.
  [[nodiscard]] double retry_after_ms() const noexcept {
    return retry_after_ms_;
  }
  void set_retry_after_ms(double ms) noexcept { retry_after_ms_ = ms; }

 private:
  std::string code_;
  std::string message_;
  std::uint64_t id_ = 0;
  double retry_after_ms_ = 0.0;
};

enum class RequestType {
  kPing,       ///< liveness check, handled inline by the reader
  kBind,       ///< create a chip session (queued — builds a thermal model)
  kUnbind,     ///< drop a session (inline)
  kSolve,      ///< steady-state 𝒯/𝒫 at (ω, I) — the batchable request
  kControl,    ///< OFTEC decision (Opt 1) or min-temperature (Opt 2)
  kLut,        ///< nearest-neighbor LUT control lookup
  kTransient,  ///< advance the session's transient state under fixed (ω, I)
  kStats,      ///< obs registry snapshot/delta + server counters (inline)
  kHealth,     ///< health/readiness probe, handled inline by the reader
  kTrace,      ///< dump slow-request exemplars as Chrome trace JSON (inline)
  kSleep,      ///< test-only: occupy the executor for a fixed time
};

[[nodiscard]] const char* request_type_name(RequestType t) noexcept;
[[nodiscard]] std::optional<RequestType> request_type_by_name(
    std::string_view name) noexcept;

// ---------------------------------------------------------------------------
// Request parameter payloads
// ---------------------------------------------------------------------------

/// Session creation. The workload comes either from a named benchmark
/// profile or from an explicit per-block power vector (floorplan block
/// order); exactly one of the two must be provided.
struct BindParams {
  std::string benchmark;        ///< workload::benchmark_by_name() key
  std::vector<double> power_w;  ///< explicit per-block dynamic power [W]
  std::size_t grid_nx = 10;
  std::size_t grid_ny = 10;
  double t_max_c = 0.0;  ///< thermal threshold override [°C]; 0 → default
  bool with_tec = true;
  /// Force every solve through the cached direct factorization path
  /// (EngineOptions::use_iterative = false) — surfaces the factor cache.
  bool direct_solve = false;
  /// Benchmark names to pre-train a LUT controller on (one OFTEC run each
  /// at bind time); empty → session has no LUT and lut requests fail.
  std::vector<std::string> lut_training;
};

struct SolveParams {
  std::uint64_t session = 0;
  double omega = 0.0;    ///< fan speed [rad/s]
  double current = 0.0;  ///< TEC current [A]
};

struct ControlParams {
  std::uint64_t session = 0;
  /// "oftec" (Algorithm 1 / Optimization 1) or "min_temperature"
  /// (Optimization 2 to convergence).
  std::string objective = "oftec";
};

struct LutParams {
  std::uint64_t session = 0;
  std::vector<double> power_w;  ///< query per-block power [W], floorplan order
};

struct TransientParams {
  std::uint64_t session = 0;
  double omega = 0.0;
  double current = 0.0;
  double duration_s = 0.0;
  double time_step_s = 1e-3;
  bool reset = false;  ///< restart from the all-ambient state first
};

struct SessionParams {
  std::uint64_t session = 0;  ///< unbind
};

/// Live stats scrape. `view` selects a full registry snapshot or a delta
/// since the snapshot stored under `cursor` (a token returned by a previous
/// stats response; unknown/stale cursors degrade to a full snapshot with
/// "delta": false so scrapers self-heal). `format` is "json" (structured
/// obs snapshot) or "prometheus" (text exposition in result["text"]).
struct StatsParams {
  std::uint64_t session = 0;  ///< optional: include this session's detail
  std::string view = "snapshot";  ///< "snapshot" | "delta"
  std::uint64_t cursor = 0;       ///< delta base token; 0 = none
  std::string format = "json";    ///< "json" | "prometheus"
};

/// Exemplar dump. Returns captured slow-request exemplars as Chrome
/// trace_event JSON, optionally filtered to one trace id.
struct TraceParams {
  std::string trace_id;      ///< empty = all exemplars in the ring
  std::uint64_t limit = 0;   ///< max exemplars returned; 0 = server default
};

struct SleepParams {
  double ms = 0.0;
};

struct Request {
  std::uint64_t id = 0;
  RequestType type = RequestType::kPing;
  /// Relative deadline [ms] from server-side arrival; 0 = none. Expired
  /// requests get kErrDeadlineExceeded instead of being executed.
  double deadline_ms = 0.0;
  /// Optional distributed-tracing context (opaque, ≤ 128 bytes each; empty =
  /// absent on the wire). The server echoes trace_id on the response and
  /// tags slow-request exemplars with it.
  std::string trace_id;
  std::string parent_span;
  std::variant<std::monostate, BindParams, SolveParams, ControlParams,
               LutParams, TransientParams, SessionParams, SleepParams,
               StatsParams, TraceParams>
      params;
};

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

struct ErrorInfo {
  std::string code;
  std::string message;
  double retry_after_ms = 0.0;  ///< backpressure hint; meaningful for
                                ///< kErrOverloaded / kErrShuttingDown
};

struct Response {
  std::uint64_t id = 0;
  bool ok = false;
  util::json::Value result;  ///< object payload when ok
  ErrorInfo error;           ///< populated when !ok
  std::string trace_id;      ///< echo of the request's trace_id (may be "")
  /// Server-side per-stage timing breakdown (object; see timing_json), or
  /// null when the server did not stamp one. Kept as raw JSON so unknown
  /// future stages pass through; use timing_of() for the typed view.
  util::json::Value timing;
};

/// Typed view of the response `timing` block. All values are microseconds
/// measured on the server's monotonic clock. queue/batch/solve are disjoint
/// stages of total (decode → write handoff), so their sum is ≤ total_us;
/// the remainder is envelope decode/encode and scheduling slack.
struct TimingInfo {
  double decode_us = 0.0;  ///< frame decode + request parse
  double queue_us = 0.0;   ///< admission queue wait (arrival → dequeue)
  double batch_us = 0.0;   ///< batch formation wait (dequeue → execute)
  double solve_us = 0.0;   ///< handler / engine execution
  double total_us = 0.0;   ///< arrival → response handoff to the writer
  bool present = false;    ///< false when the response carried no timing
};

[[nodiscard]] util::json::Value timing_json(const TimingInfo& t);
[[nodiscard]] TimingInfo parse_timing(const util::json::Value& v);
/// Extract the timing block from a decoded response ({present:false} when
/// absent or malformed — timing is advisory, never a protocol error).
[[nodiscard]] TimingInfo timing_of(const Response& response) noexcept;

/// Typed views of response payloads (client-side convenience; the server
/// encodes with the matching *_result() builders below so both ends share
/// one schema).
struct BindReply {
  std::uint64_t session = 0;
  double t_max_k = 0.0;
  double ambient_k = 0.0;
  double omega_max = 0.0;    ///< [rad/s]
  double current_max = 0.0;  ///< [A]
  bool has_tec = false;
  std::vector<std::string> blocks;  ///< floorplan block order for power_w
};

struct SolveReply {
  bool runaway = false;
  double max_chip_temperature_k = 0.0;
  double leakage_w = 0.0;
  double tec_w = 0.0;
  double fan_w = 0.0;
  std::uint64_t iterations = 0;
};

struct ControlReply {
  std::string objective;
  bool success = false;
  bool used_opt2 = false;
  double omega = 0.0;
  double current = 0.0;
  double max_chip_temperature_k = 0.0;
  double leakage_w = 0.0;
  double tec_w = 0.0;
  double fan_w = 0.0;
  double runtime_ms = 0.0;
  std::uint64_t thermal_solves = 0;
};

struct LutReply {
  double omega = 0.0;
  double current = 0.0;
  bool feasible = false;
  std::uint64_t entry_index = 0;
  double feature_distance = 0.0;
};

struct TransientReply {
  bool runaway = false;
  double final_max_chip_temperature_k = 0.0;
  double peak_max_chip_temperature_k = 0.0;
  std::uint64_t steps = 0;
  double time_s = 0.0;  ///< session transient clock after this step
};

/// Health/readiness probe. `healthy` means the server's threads are up and
/// the reader answered at all; `accepting` distinguishes readiness — false
/// once a shutdown has begun or the admission queue is saturated, signaling
/// clients to back off before they are shed.
///
/// The reply also carries placement-relevant load data so a cluster router's
/// prober learns everything it needs in one inline round trip (no separate
/// kStats scrape): `active_sessions` counts sessions that have served at
/// least one request, `queue_depth`/`queue_capacity` describe admission
/// headroom, and `uptime_ms` distinguishes a long-lived worker from one that
/// just restarted (and therefore lost its sessions). The three new fields
/// are optional on the wire — a v1 peer that predates them parses as 0.
struct HealthReply {
  bool healthy = false;
  bool accepting = false;
  std::uint64_t sessions = 0;
  std::uint64_t active_sessions = 0;  ///< sessions with ≥ 1 served request
  std::uint64_t queue_depth = 0;
  std::uint64_t queue_capacity = 0;
  double uptime_ms = 0.0;  ///< ms since the server's start()
};

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

/// ParseOptions used for every network-facing decode.
[[nodiscard]] util::json::ParseOptions wire_parse_options(
    std::size_t max_input_bytes) noexcept;

[[nodiscard]] std::string encode_request(const Request& request);
/// Throws ProtocolError (code kErrBadRequest / kErrUnknownType) on anything
/// malformed, unknown, or out of spec.
[[nodiscard]] Request decode_request(std::string_view payload,
                                     std::size_t max_input_bytes);

[[nodiscard]] std::string encode_response(const Response& response);
[[nodiscard]] Response decode_response(std::string_view payload,
                                       std::size_t max_input_bytes);

[[nodiscard]] Response make_error_response(std::uint64_t id, std::string code,
                                           std::string message,
                                           double retry_after_ms = 0.0);
[[nodiscard]] Response make_ok_response(std::uint64_t id,
                                        util::json::Value result);

// Result-object builders (server) and parsers (client). Parsers throw
// ProtocolError on schema mismatches.
[[nodiscard]] util::json::Value bind_result_json(const BindReply& r);
[[nodiscard]] BindReply parse_bind_reply(const util::json::Value& v);
[[nodiscard]] util::json::Value solve_result_json(const SolveReply& r);
[[nodiscard]] SolveReply parse_solve_reply(const util::json::Value& v);
[[nodiscard]] util::json::Value control_result_json(const ControlReply& r);
[[nodiscard]] ControlReply parse_control_reply(const util::json::Value& v);
[[nodiscard]] util::json::Value lut_result_json(const LutReply& r);
[[nodiscard]] LutReply parse_lut_reply(const util::json::Value& v);
[[nodiscard]] util::json::Value transient_result_json(const TransientReply& r);
[[nodiscard]] TransientReply parse_transient_reply(const util::json::Value& v);
[[nodiscard]] util::json::Value health_result_json(const HealthReply& r);
[[nodiscard]] HealthReply parse_health_reply(const util::json::Value& v);

}  // namespace oftec::serve
