#include "serve/session.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "floorplan/ev6.h"
#include "power/mcpat_like.h"
#include "thermal/transient.h"
#include "util/units.h"
#include "workload/benchmarks.h"

namespace oftec::serve {

namespace {

[[nodiscard]] power::PowerMap workload_map(const floorplan::Floorplan& fp,
                                           const std::string& benchmark) {
  const std::optional<workload::Benchmark> b =
      workload::benchmark_by_name(benchmark);
  if (!b) {
    throw ProtocolError(kErrBadRequest,
                        "unknown benchmark \"" + benchmark + "\"");
  }
  return workload::peak_power_map(workload::profile_for(*b), fp);
}

[[nodiscard]] core::CoolingSystem::Config session_config(
    const BindParams& params) {
  core::CoolingSystem::Config cfg;
  cfg.grid_nx = params.grid_nx;
  cfg.grid_ny = params.grid_ny;
  if (!params.with_tec) cfg.package = cfg.package.without_tecs();
  if (params.t_max_c != 0.0) {
    cfg.package.t_max = units::celsius_to_kelvin(params.t_max_c);
  }
  cfg.engine.use_iterative = !params.direct_solve;
  return cfg;
}

}  // namespace

Session::Session(std::uint64_t id, const BindParams& params)
    : id_(id),
      floorplan_(floorplan::make_ev6_floorplan()),
      leakage_(power::characterize_leakage(floorplan_,
                                           power::ProcessConfig{})) {
  power::PowerMap workload(floorplan_);
  if (!params.benchmark.empty()) {
    workload = workload_map(floorplan_, params.benchmark);
  } else {
    if (params.power_w.size() != floorplan_.block_count()) {
      throw ProtocolError(
          kErrBadRequest,
          "power_w has " + std::to_string(params.power_w.size()) +
              " entries, floorplan has " +
              std::to_string(floorplan_.block_count()) + " blocks");
    }
    for (std::size_t i = 0; i < params.power_w.size(); ++i) {
      const double w = params.power_w[i];
      if (!(w >= 0.0) || w > 1e4) {
        throw ProtocolError(kErrBadRequest,
                            "power_w entries must be in [0, 1e4] W");
      }
      workload.set(i, w);
    }
  }

  const core::CoolingSystem::Config cfg = session_config(params);
  system_ = std::make_unique<core::CoolingSystem>(floorplan_, workload,
                                                  leakage_, cfg);

  if (!params.lut_training.empty()) {
    std::vector<power::PowerMap> training;
    training.reserve(params.lut_training.size());
    for (const std::string& name : params.lut_training) {
      training.push_back(workload_map(floorplan_, name));
    }
    lut_ = std::make_unique<core::LutController>(
        core::LutController::build(training, floorplan_, leakage_, cfg));
  }
}

bool Session::point_in_range(double omega, double current) const {
  const core::CoolingSystem& sys = *system_;
  if (!(omega >= 0.0) || omega > sys.omega_max() * (1.0 + 1e-9)) return false;
  if (!(current >= 0.0) || current > sys.current_max() * (1.0 + 1e-9)) {
    return false;
  }
  if (!sys.has_tec() && current != 0.0) return false;
  return true;
}

TransientReply Session::transient_step(const TransientParams& params) {
  if (!point_in_range(params.omega, params.current)) {
    throw ProtocolError(kErrBadRequest,
                        "transient operating point out of range");
  }
  thermal::TransientOptions opts;
  opts.time_step = params.time_step_s;
  opts.duration = params.duration_s;
  opts.record_stride = 1;

  const std::lock_guard<std::mutex> lock(transient_mutex_);
  if (!transient_engine_) {
    transient_engine_ = std::make_unique<thermal::TransientEngine>(
        system_->thermal_model(), system_->cell_dynamic_power(),
        system_->cell_leakage());
  }
  if (params.reset || transient_state_.empty()) {
    transient_state_ = transient_engine_->ambient_state();
    transient_time_ = 0.0;
  }
  const thermal::ControlSetting setting{params.omega, params.current};
  const thermal::TransientResult result = transient_engine_->run(
      [setting](double) { return setting; }, transient_state_, opts);

  TransientReply reply;
  reply.runaway = result.runaway;
  reply.steps = result.steps;
  double peak = 0.0;
  double final_t = 0.0;
  for (const thermal::TransientSample& s : result.samples) {
    peak = std::max(peak, s.max_chip_temperature);
    final_t = s.max_chip_temperature;
  }
  if (result.runaway) {
    reply.final_max_chip_temperature_k =
        std::numeric_limits<double>::infinity();
    reply.peak_max_chip_temperature_k =
        std::numeric_limits<double>::infinity();
    transient_state_.clear();  // state is meaningless past runaway
    transient_time_ = 0.0;
  } else {
    reply.final_max_chip_temperature_k = final_t;
    reply.peak_max_chip_temperature_k = peak;
    transient_state_ = result.final_temperatures;
    transient_time_ += params.duration_s;
  }
  reply.time_s = transient_time_;
  return reply;
}

BindReply Session::describe() const {
  BindReply r;
  r.session = id_;
  r.t_max_k = system_->t_max();
  r.ambient_k = system_->ambient();
  r.omega_max = system_->omega_max();
  r.current_max = system_->current_max();
  r.has_tec = system_->has_tec();
  r.blocks.reserve(floorplan_.block_count());
  for (const floorplan::Block& b : floorplan_.blocks()) {
    r.blocks.push_back(b.name);
  }
  return r;
}

std::shared_ptr<Session> SessionRegistry::create(const BindParams& params) {
  std::uint64_t id = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (sessions_.size() >= max_sessions_) {
      throw ProtocolError(kErrOverloaded,
                          "session limit of " +
                              std::to_string(max_sessions_) + " reached");
    }
    id = next_id_++;
  }
  // Build outside the lock — model assembly and LUT training are the slow
  // part, and concurrent binds are independent.
  auto session = std::make_shared<Session>(id, params);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (sessions_.size() >= max_sessions_) {
    throw ProtocolError(kErrOverloaded, "session limit reached");
  }
  sessions_.emplace(id, session);
  return session;
}

std::shared_ptr<Session> SessionRegistry::find(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

bool SessionRegistry::erase(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.erase(id) != 0;
}

std::size_t SessionRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

std::size_t SessionRegistry::active_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t active = 0;
  for (const auto& [id, session] : sessions_) {
    const Session::Activity& a = session->activity();
    const std::uint64_t total =
        a.solves.load(std::memory_order_relaxed) +
        a.controls.load(std::memory_order_relaxed) +
        a.luts.load(std::memory_order_relaxed) +
        a.transients.load(std::memory_order_relaxed);
    if (total > 0) ++active;
  }
  return active;
}

}  // namespace oftec::serve
