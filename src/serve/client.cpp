#include "serve/client.h"

#include <stdexcept>
#include <utility>

#include "util/fault.h"

namespace oftec::serve {

namespace {

// Client-side fault sites: a send that hits a dead socket, and a receive
// that sees the connection break mid-response. Exercised by the resilient
// client's retry/rebind machinery.
const fault::Site g_fault_send = fault::site("client.send_fail");
const fault::Site g_fault_recv = fault::site("client.recv_fail");

[[noreturn]] void throw_read_failure(ReadStatus status) {
  if (status == ReadStatus::kTimeout) {
    throw TransportError(TransportError::Kind::kTimeout,
                         "oftec-serve: receive timed out");
  }
  throw TransportError(TransportError::Kind::kRecv,
                       "oftec-serve: connection closed by server");
}

}  // namespace

Client Client::connect(std::uint16_t port, Options options) {
  Socket socket = Socket::connect_loopback(port);
  if (!socket.valid()) {
    throw TransportError(TransportError::Kind::kConnect,
                         "oftec-serve: cannot connect to 127.0.0.1:" +
                             std::to_string(port));
  }
  return Client(std::move(socket), options);
}

std::uint64_t Client::send(Request request) {
  request.id = next_id_++;
  if (request.deadline_ms == 0.0) request.deadline_ms = options_.deadline_ms;
  if (request.trace_id.empty() && !next_trace_id_.empty()) {
    request.trace_id = std::move(next_trace_id_);
  }
  next_trace_id_.clear();
  if (g_fault_send.should_fail()) {
    // Make the failure real, not just reported: a later recv() on this
    // connection must not return data for a request we claimed was lost.
    socket_.shutdown_both();
    throw TransportError(TransportError::Kind::kSend,
                         "oftec-serve: injected send failure");
  }
  if (!write_frame(socket_.fd(), encode_request(request))) {
    throw TransportError(TransportError::Kind::kSend,
                         "oftec-serve: send failed (connection lost)");
  }
  return request.id;
}

std::uint64_t Client::send_solve(std::uint64_t session, double omega,
                                 double current) {
  Request req;
  req.type = RequestType::kSolve;
  req.params = SolveParams{session, omega, current};
  return send(std::move(req));
}

std::uint64_t Client::send_sleep(double ms) {
  Request req;
  req.type = RequestType::kSleep;
  req.params = SleepParams{ms};
  return send(std::move(req));
}

Response Client::recv() {
  if (!strays_.empty()) {
    auto it = strays_.begin();
    Response r = std::move(it->second);
    strays_.erase(it);
    return r;
  }
  std::string payload;
  const ReadStatus status = read_frame_for(
      socket_.fd(), payload, options_.max_frame_bytes,
      options_.recv_timeout_ms);
  if (status != ReadStatus::kOk || g_fault_recv.should_fail()) {
    socket_.shutdown_both();
    throw_read_failure(status);
  }
  return decode_response(payload, options_.max_frame_bytes);
}

Response Client::recv_for(std::uint64_t id) {
  const auto it = strays_.find(id);
  if (it != strays_.end()) {
    Response r = std::move(it->second);
    strays_.erase(it);
    return r;
  }
  while (true) {
    std::string payload;
    const ReadStatus status = read_frame_for(
        socket_.fd(), payload, options_.max_frame_bytes,
        options_.recv_timeout_ms);
    if (status != ReadStatus::kOk || g_fault_recv.should_fail()) {
      socket_.shutdown_both();
      throw_read_failure(status);
    }
    Response r = decode_response(payload, options_.max_frame_bytes);
    if (r.id == id) return r;
    strays_.emplace(r.id, std::move(r));
  }
}

util::json::Value Client::call(Request request) {
  const std::uint64_t id = send(std::move(request));
  Response response = recv_for(id);
  last_timing_ = timing_of(response);
  last_trace_id_ = response.trace_id;
  if (!response.ok) {
    ProtocolError err(response.error.code, response.error.message);
    err.set_id(response.id);
    err.set_retry_after_ms(response.error.retry_after_ms);
    throw err;
  }
  return std::move(response.result);
}

void Client::ping() {
  Request req;
  req.type = RequestType::kPing;
  (void)call(std::move(req));
}

HealthReply Client::health() {
  Request req;
  req.type = RequestType::kHealth;
  return parse_health_reply(call(std::move(req)));
}

BindReply Client::bind(const BindParams& params) {
  Request req;
  req.type = RequestType::kBind;
  req.params = params;
  return parse_bind_reply(call(std::move(req)));
}

bool Client::unbind(std::uint64_t session) {
  Request req;
  req.type = RequestType::kUnbind;
  req.params = SessionParams{session};
  const util::json::Value result = call(std::move(req));
  const util::json::Value* removed = result.find("removed");
  return removed != nullptr && removed->is_bool() && removed->as_bool();
}

SolveReply Client::solve(std::uint64_t session, double omega, double current) {
  Request req;
  req.type = RequestType::kSolve;
  req.params = SolveParams{session, omega, current};
  return parse_solve_reply(call(std::move(req)));
}

ControlReply Client::control(std::uint64_t session,
                             const std::string& objective) {
  Request req;
  req.type = RequestType::kControl;
  req.params = ControlParams{session, objective};
  return parse_control_reply(call(std::move(req)));
}

LutReply Client::lut(std::uint64_t session,
                     const std::vector<double>& power_w) {
  Request req;
  req.type = RequestType::kLut;
  req.params = LutParams{session, power_w};
  return parse_lut_reply(call(std::move(req)));
}

TransientReply Client::transient(const TransientParams& params) {
  Request req;
  req.type = RequestType::kTransient;
  req.params = params;
  return parse_transient_reply(call(std::move(req)));
}

util::json::Value Client::stats(std::uint64_t session) {
  StatsParams params;
  params.session = session;
  return stats(params);
}

util::json::Value Client::stats(const StatsParams& params) {
  Request req;
  req.type = RequestType::kStats;
  req.params = params;
  return call(std::move(req));
}

util::json::Value Client::trace(const TraceParams& params) {
  Request req;
  req.type = RequestType::kTrace;
  req.params = params;
  return call(std::move(req));
}

}  // namespace oftec::serve
