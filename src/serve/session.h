// Chip sessions: the server-side state a client binds once and then drives
// with cheap per-request control queries.
//
// A Session owns the full evaluation stack for one workload-on-package
// binding — floorplan, leakage model, CoolingSystem (thermal model + batched
// SolveEngine), optionally a pre-trained LUT controller and a transient
// integrator state. Binding is the expensive step (model assembly, and LUT
// training runs OFTEC once per training workload); everything afterwards
// reuses the session's caches, which is what makes request coalescing pay:
// concurrent solves against one session share the engine's factorization
// cache and thread pool.
//
// Thread-safety: solve/control/lut paths only touch the internally
// synchronized CoolingSystem/SolveEngine and are safe from any thread.
// The transient state is serialized by a per-session mutex (it is a
// stateful integration — concurrent steps would be meaningless).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/cooling_system.h"
#include "core/lut_controller.h"
#include "floorplan/floorplan.h"
#include "power/leakage.h"
#include "serve/protocol.h"
#include "thermal/transient_engine.h"

namespace oftec::serve {

class Session {
 public:
  /// Builds the full stack for `params`. Throws ProtocolError(kErrBadRequest)
  /// on unknown benchmark names, power vectors of the wrong length, etc.
  Session(std::uint64_t id, const BindParams& params);

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] const core::CoolingSystem& system() const noexcept {
    return *system_;
  }
  /// nullptr when the bind requested no LUT training.
  [[nodiscard]] const core::LutController* lut() const noexcept {
    return lut_.get();
  }
  [[nodiscard]] const floorplan::Floorplan& floorplan() const noexcept {
    return floorplan_;
  }

  /// Range-check a requested operating point (mirrors
  /// CoolingSystem::evaluate's preconditions without throwing
  /// std::invalid_argument across the protocol boundary).
  [[nodiscard]] bool point_in_range(double omega, double current) const;

  /// Advance the session's transient state by params.duration_s under a
  /// constant (ω, I). Serialized per session.
  [[nodiscard]] TransientReply transient_step(const TransientParams& params);

  /// The bind response payload.
  [[nodiscard]] BindReply describe() const;

  /// Per-session request counters, surfaced through the kStats session
  /// block. Plain atomics on the session object (NOT dynamic obs metric
  /// names: the obs registry is process-lifetime, so per-session names
  /// would be unbounded cardinality on a long-lived server).
  struct Activity {
    std::atomic<std::uint64_t> solves{0};
    std::atomic<std::uint64_t> controls{0};
    std::atomic<std::uint64_t> luts{0};
    std::atomic<std::uint64_t> transients{0};
  };
  [[nodiscard]] Activity& activity() noexcept { return activity_; }
  [[nodiscard]] const Activity& activity() const noexcept {
    return activity_;
  }

 private:
  Activity activity_;
  std::uint64_t id_;
  floorplan::Floorplan floorplan_;
  power::LeakageModel leakage_;
  std::unique_ptr<core::CoolingSystem> system_;
  std::unique_ptr<core::LutController> lut_;

  std::mutex transient_mutex_;
  /// Lazy fast path for transient_step: the engine's warm factor cache makes
  /// repeated steps at a held (ω, I, dt) reuse one banded factorization
  /// across requests (bit-identical to the reference solver).
  std::unique_ptr<thermal::TransientEngine> transient_engine_;
  la::Vector transient_state_;  ///< node temperatures; empty = start fresh
  double transient_time_ = 0.0;
};

/// Server-global id → session map. All methods are thread-safe.
class SessionRegistry {
 public:
  explicit SessionRegistry(std::size_t max_sessions)
      : max_sessions_(max_sessions) {}

  /// Create a session. Throws ProtocolError(kErrOverloaded) at the session
  /// cap, or whatever Session's constructor throws.
  [[nodiscard]] std::shared_ptr<Session> create(const BindParams& params);

  /// nullptr when the id is unknown.
  [[nodiscard]] std::shared_ptr<Session> find(std::uint64_t id) const;

  bool erase(std::uint64_t id);

  [[nodiscard]] std::size_t size() const;

  /// Sessions that have served at least one request (any type) — the
  /// "active" load signal the extended kHealth reply carries so a cluster
  /// prober can tell hot workers from ones merely holding idle binds.
  [[nodiscard]] std::size_t active_count() const;

 private:
  const std::size_t max_sessions_;
  mutable std::mutex mutex_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions_;
};

}  // namespace oftec::serve
