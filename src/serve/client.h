// oftec-serve client: a small synchronous library over the wire protocol,
// with explicit pipelining for throughput-sensitive callers.
//
// Two usage styles:
//
//   Blocking RPC — one call, one matched response, errors become
//   ProtocolError (the server's structured code/message survives the throw):
//     Client c = Client::connect(port);
//     BindReply chip = c.bind(params);
//     SolveReply r = c.solve(chip.session, omega, current);
//
//   Pipelined — queue many requests on the socket, then collect responses in
//   whatever order the server's batcher finishes them (this is what lets the
//   micro-batcher coalesce one client's burst into a single engine batch):
//     std::vector<std::uint64_t> ids;
//     for (...) ids.push_back(c.send_solve(session, w, i));
//     for (...) { Response r = c.recv(); ... }
//
// A Client owns one connection and is NOT thread-safe; use one per thread
// (sessions are server-side and freely shared across connections).
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "serve/wire.h"
#include "util/json.h"

namespace oftec::serve {

/// Transport-level failure: the connection itself broke (or timed out)
/// before a structured response arrived. Distinct from ProtocolError, which
/// carries a server-side error *response* — a TransportError means the RPC's
/// fate is unknown and the connection must be abandoned. The kind tells
/// retry logic what is safe: kConnect/kSend failures cannot have executed,
/// kRecv/kTimeout may have (idempotent requests can still be retried).
class TransportError : public std::runtime_error {
 public:
  enum class Kind { kConnect, kSend, kRecv, kTimeout };

  TransportError(Kind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

[[nodiscard]] constexpr const char* to_string(TransportError::Kind k) noexcept {
  switch (k) {
    case TransportError::Kind::kConnect: return "connect";
    case TransportError::Kind::kSend: return "send";
    case TransportError::Kind::kRecv: return "recv";
    case TransportError::Kind::kTimeout: return "timeout";
  }
  return "?";
}

class Client {
 public:
  struct Options {
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Deadline attached to every request [ms]; 0 = none.
    double deadline_ms = 0.0;
    /// Per-receive timeout [ms]; 0 = block forever. On expiry recv()/
    /// recv_for() throw TransportError(kTimeout) and the connection must be
    /// treated as dead (the stream position is ambiguous).
    long recv_timeout_ms = 0;
  };

  /// Connect to an oftec-serve instance on 127.0.0.1:port. Throws
  /// TransportError(kConnect) when the connection is refused.
  [[nodiscard]] static Client connect(std::uint16_t port, Options options);
  [[nodiscard]] static Client connect(std::uint16_t port) {
    return connect(port, Options());
  }

  Client(Client&&) noexcept = default;
  Client& operator=(Client&&) noexcept = default;

  // --- blocking RPC (throws ProtocolError on server-side errors, ---------
  // --- TransportError on transport failure) -------------------------------

  void ping();
  /// Health/readiness probe (answered inline by the server's reader thread,
  /// so it works even while the executor is saturated).
  [[nodiscard]] HealthReply health();
  [[nodiscard]] BindReply bind(const BindParams& params);
  /// True when the session existed.
  bool unbind(std::uint64_t session);
  [[nodiscard]] SolveReply solve(std::uint64_t session, double omega,
                                 double current);
  [[nodiscard]] ControlReply control(std::uint64_t session,
                                     const std::string& objective = "oftec");
  [[nodiscard]] LutReply lut(std::uint64_t session,
                             const std::vector<double>& power_w);
  [[nodiscard]] TransientReply transient(const TransientParams& params);
  /// Raw stats payload (see Server::handle_stats). session 0 → server only.
  [[nodiscard]] util::json::Value stats(std::uint64_t session = 0);
  /// Full stats RPC: snapshot/delta-since-cursor views, JSON or Prometheus.
  [[nodiscard]] util::json::Value stats(const StatsParams& params);
  /// Slow-request exemplar dump (Chrome trace JSON under result["trace"]).
  [[nodiscard]] util::json::Value trace(const TraceParams& params);

  // --- trace context & server timing --------------------------------------

  /// Attach `trace_id` to the next request sent (one-shot; a request that
  /// already carries a trace_id wins). The server echoes it and tags any
  /// exemplar it captures for that request.
  void set_next_trace_id(std::string trace_id) {
    next_trace_id_ = std::move(trace_id);
  }

  /// Server timing block from the most recent blocking RPC that completed
  /// (ok or error); {present:false} when the server sent none.
  [[nodiscard]] const TimingInfo& last_timing() const noexcept {
    return last_timing_;
  }
  /// trace_id echoed on the most recent blocking RPC's response.
  [[nodiscard]] const std::string& last_trace_id() const noexcept {
    return last_trace_id_;
  }

  // --- pipelining ---------------------------------------------------------

  /// Queue a request on the socket without waiting; returns its id.
  std::uint64_t send_solve(std::uint64_t session, double omega,
                           double current);
  std::uint64_t send_sleep(double ms);
  std::uint64_t send(Request request);  ///< any request; id is assigned here

  /// Next response in arrival order (earlier recv_for(id) strays first).
  /// Throws TransportError when the connection drops or the receive times
  /// out.
  [[nodiscard]] Response recv();

  /// The response for a specific id, buffering out-of-order arrivals.
  [[nodiscard]] Response recv_for(std::uint64_t id);

  /// Raw blocking RPC: send() + recv_for() + unwrap. Returns the result
  /// payload of an ok response, or throws ProtocolError built from the
  /// error response (retry_after_ms and id preserved). The typed RPC
  /// methods above are sugar over this; the cluster router uses it directly
  /// to proxy arbitrary decoded requests bit-identically.
  util::json::Value call(Request request);

 private:
  Client(Socket socket, Options options)
      : socket_(std::move(socket)), options_(options) {}

  Socket socket_;
  Options options_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Response> strays_;
  std::string next_trace_id_;  ///< applied to the next send(), then cleared
  TimingInfo last_timing_;
  std::string last_trace_id_;
};

}  // namespace oftec::serve
