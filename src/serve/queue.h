// Bounded MPMC queue — the admission-control point of the serving pipeline.
//
// Readers admit requests with try_push(): a full queue fails *immediately*
// so the connection thread can send a structured shed response instead of
// blocking (clients see deterministic backpressure, never head-of-line
// hangs). close() flips the queue into drain mode: pushes fail from that
// point on, but pop() keeps returning the items already admitted until the
// queue is empty — exactly the semantics a graceful server shutdown needs
// (admitted work completes, new work is refused).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace oftec::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Admit one item; false when full or closed (never blocks).
  bool try_push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking push; false only when the queue is (or becomes) closed.
  bool push(T item) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_full_.wait(lock,
                     [&] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Block for the next item. nullopt once closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    return take(lock);
  }

  /// pop() with a timeout: nullopt on timeout or on closed-and-drained.
  std::optional<T> pop_for(std::chrono::microseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait_for(lock, timeout,
                        [&] { return closed_ || !items_.empty(); });
    return take(lock);
  }

  /// Refuse new items; items already admitted remain poppable.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::optional<T> take(std::unique_lock<std::mutex>& lock) {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace oftec::serve
