#include "serve/server.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstddef>
#include <map>
#include <stdexcept>
#include <utility>

#include "core/oftec.h"
#include "util/fault.h"
#include "util/log.h"
#include "util/obs.h"

namespace oftec::serve {

namespace {

using Clock = std::chrono::steady_clock;

const obs::Counter g_obs_requests = obs::counter("serve.requests");
const obs::Counter g_obs_shed = obs::counter("serve.shed");
const obs::Counter g_obs_deadline = obs::counter("serve.deadline_expired");
const obs::Counter g_obs_dedup = obs::counter("serve.dedup_hits");
const obs::Counter g_obs_batches = obs::counter("serve.batches");
const obs::Counter g_obs_protocol_errors =
    obs::counter("serve.protocol_errors");
const obs::Gauge g_obs_queue_depth = obs::gauge("serve.queue_depth");
const obs::Histogram g_obs_batch_size = obs::histogram(
    "serve.batch_size_points", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
const obs::Histogram g_obs_latency = obs::histogram(
    "serve.e2e_latency_us", obs::exponential_bounds(10.0, 4.0, 12));

// Stage-attribution histograms: the e2e latency of every queued request is
// decomposed into admission-queue wait, batch-formation wait, and handler
// execution; writer flush time is attributed per frame. Stable names — the
// cluster router (ROADMAP) aggregates these across workers.
const obs::Histogram g_obs_queue_wait = obs::histogram(
    "serve.queue_wait_us", obs::exponential_bounds(1.0, 4.0, 14));
const obs::Histogram g_obs_batch_wait = obs::histogram(
    "serve.batch_wait_us", obs::exponential_bounds(1.0, 4.0, 14));
const obs::Histogram g_obs_solve = obs::histogram(
    "serve.solve_us", obs::exponential_bounds(10.0, 4.0, 12));
const obs::Histogram g_obs_write = obs::histogram(
    "serve.write_us", obs::exponential_bounds(1.0, 4.0, 14));

// Per-type request counters for the executed (queued) request types.
const obs::Counter g_obs_req_solve = obs::counter("serve.requests.solve");
const obs::Counter g_obs_req_bind = obs::counter("serve.requests.bind");
const obs::Counter g_obs_req_control = obs::counter("serve.requests.control");
const obs::Counter g_obs_req_lut = obs::counter("serve.requests.lut");
const obs::Counter g_obs_req_transient =
    obs::counter("serve.requests.transient");

// Fault-injection sites (inert unless armed via OFTEC_FAULT / fault::arm).
// Each one exercises a degradation path that real infrastructure hits:
// transient accept() failures, socket-level read/write errors, a saturated
// admission queue, an executor that throws, and a writer that stalls.
const fault::Site g_fault_accept = fault::site("serve.accept_fail");
const fault::Site g_fault_read = fault::site("serve.read_error");
const fault::Site g_fault_write = fault::site("serve.write_error");
const fault::Site g_fault_queue_full = fault::site("serve.queue_full");
const fault::Site g_fault_exec = fault::site("serve.exec_fault");
const fault::Site g_fault_slow_writer = fault::site("serve.slow_writer");
const fault::Site g_fault_stats = fault::site("serve.stats_rpc");

/// Microseconds between two stage stamps; 0 when either stage was never
/// reached (default-constructed time_point) or the clock stepped backwards.
[[nodiscard]] double stage_us(Clock::time_point from,
                              Clock::time_point to) noexcept {
  if (from == Clock::time_point{} || to == Clock::time_point{} || to < from) {
    return 0.0;
  }
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
                 .count()) /
         1000.0;
}

}  // namespace

/// Per-connection state. The reader thread decodes and admits requests; the
/// writer thread drains `outbound` so a slow client never blocks the
/// batcher's caller for long. `inflight` counts requests admitted to the
/// central queue whose responses have not been enqueued yet: the outbound
/// queue closes (letting the writer exit) only once the reader is done AND
/// no in-flight response can still arrive.
struct Server::Connection {
  explicit Connection(std::size_t outbound_capacity)
      : outbound(outbound_capacity) {}

  Socket socket;
  BoundedQueue<std::string> outbound;
  std::thread reader;
  std::thread writer;

  std::mutex mutex;
  std::size_t inflight = 0;
  bool reader_done = false;

  void begin_request() {
    const std::lock_guard<std::mutex> lock(mutex);
    ++inflight;
  }

  void end_request() {
    bool close_now = false;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      --inflight;
      close_now = reader_done && inflight == 0;
    }
    if (close_now) outbound.close();
  }

  void mark_reader_done() {
    bool close_now = false;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      reader_done = true;
      close_now = inflight == 0;
    }
    if (close_now) outbound.close();
  }

  void send(const Response& response) {
    (void)outbound.push(encode_response(response));
  }
};

Server::Server(ServerOptions options)
    : options_(options),
      registry_(options.max_sessions),
      queue_(std::make_unique<BoundedQueue<Pending>>(
          options.max_queue_depth)) {}

Server::~Server() { stop(); }

void Server::start() {
  listener_ = Listener::listen_loopback(options_.port);
  port_ = listener_.port();
  started_at_ = Clock::now();
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { acceptor_loop(); });
  batcher_ = std::thread([this] { batcher_loop(); });
  if (options_.ready_fd >= 0) {
    // Readiness handshake: the supervising parent blocks on this pipe; the
    // closed fd doubles as a liveness signal (EOF without PORT = bad start).
    const std::string line = "PORT " + std::to_string(port_) + "\n";
    ssize_t r;
    do {
      r = ::write(options_.ready_fd, line.data(), line.size());
    } while (r < 0 && errno == EINTR);
    ::close(options_.ready_fd);
    options_.ready_fd = -1;
  }
  log::info("serve: listening on 127.0.0.1:", port_,
            " (batch<=", options_.max_batch_size,
            ", delay<=", options_.max_delay_us,
            "us, queue<=", options_.max_queue_depth, ")");
}

void Server::stop() {
  const std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);

  // 1. No new connections.
  listener_.shutdown();
  if (acceptor_.joinable()) acceptor_.join();

  // 2. Unblock every reader; in-socket bytes may be discarded, but nothing
  //    admitted to the queue is lost.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    conns = connections_;
  }
  for (const auto& c : conns) c->socket.shutdown_read();
  for (const auto& c : conns) {
    if (c->reader.joinable()) c->reader.join();
  }

  // 3. Drain: pushes now fail (readers are gone anyway); the batcher keeps
  //    popping until the queue is empty, answering everything admitted.
  queue_->close();
  if (batcher_.joinable()) batcher_.join();

  // 4. Writers exit once their outbound queues close-and-drain (triggered
  //    by reader_done + last end_request above).
  for (const auto& c : conns) {
    if (c->writer.joinable()) c->writer.join();
  }
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.clear();
  }
  running_.store(false, std::memory_order_release);
  log::info("serve: stopped (completed=", n_completed_.load(),
            ", shed=", n_shed_.load(), ")");
}

Server::Counters Server::counters() const {
  Counters c;
  c.connections = n_connections_.load(std::memory_order_relaxed);
  c.requests = n_requests_.load(std::memory_order_relaxed);
  c.admitted = n_admitted_.load(std::memory_order_relaxed);
  c.completed = n_completed_.load(std::memory_order_relaxed);
  c.shed = n_shed_.load(std::memory_order_relaxed);
  c.deadline_expired = n_deadline_.load(std::memory_order_relaxed);
  c.protocol_errors = n_protocol_errors_.load(std::memory_order_relaxed);
  c.batches = n_batches_.load(std::memory_order_relaxed);
  c.batched_points = n_batched_points_.load(std::memory_order_relaxed);
  c.dedup_hits = n_dedup_hits_.load(std::memory_order_relaxed);
  return c;
}

void Server::acceptor_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Socket sock = listener_.accept();
    if (!sock.valid()) break;  // listener shut down
    if (g_fault_accept.should_fail()) {
      // A transient accept()-level failure (EMFILE, aborted handshake) must
      // cost one connection, never the acceptor thread.
      log::warn("serve: injected accept failure, refusing one connection");
      sock.close();
      continue;
    }
    auto conn = std::make_shared<Connection>(options_.max_queue_depth + 64);
    conn->socket = std::move(sock);
    {
      const std::lock_guard<std::mutex> lock(connections_mutex_);
      if (stopping_.load(std::memory_order_acquire)) {
        // Raced with stop(): it already snapshotted `connections_`, so this
        // connection would never be joined — refuse it instead.
        conn->socket.close();
        break;
      }
      connections_.push_back(conn);
    }
    n_connections_.fetch_add(1, std::memory_order_relaxed);
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
    conn->writer = std::thread([this, conn] { writer_loop(conn); });
  }
}

void Server::reader_loop(const std::shared_ptr<Connection>& conn) {
  std::string payload;
  while (true) {
    ReadStatus status =
        read_frame(conn->socket.fd(), payload, options_.max_frame_bytes);
    if (status == ReadStatus::kOk && g_fault_read.should_fail()) {
      status = ReadStatus::kError;  // as if recv() itself had failed
    }
    if (status == ReadStatus::kClosed) break;
    if (status != ReadStatus::kOk) {
      // Framing is broken (truncated/oversized/error): the stream position
      // is ambiguous, so drop the connection.
      n_protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      g_obs_protocol_errors.add();
      log::debug("serve: dropping connection on framing error");
      break;
    }

    n_requests_.fetch_add(1, std::memory_order_relaxed);
    g_obs_requests.add();

    const Clock::time_point decode_start = Clock::now();
    Request request;
    try {
      request = decode_request(payload, options_.max_frame_bytes);
    } catch (const ProtocolError& e) {
      n_protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      g_obs_protocol_errors.add();
      conn->send(make_error_response(e.id(), e.code(), e.message()));
      continue;
    }
    const Clock::time_point decode_end = Clock::now();

    if (handle_inline(request, conn)) continue;

    if (!options_.enable_test_requests &&
        request.type == RequestType::kSleep) {
      conn->send(make_error_response(request.id, kErrUnknownType,
                                     "sleep requests are disabled"));
      continue;
    }

    Pending item;
    item.request = std::move(request);
    item.connection = conn;
    item.decode_us = stage_us(decode_start, decode_end);
    item.arrival = decode_end;
    item.deadline =
        item.request.deadline_ms > 0.0
            ? item.arrival + std::chrono::microseconds(static_cast<long long>(
                                 item.request.deadline_ms * 1000.0))
            : Clock::time_point::max();

    const std::uint64_t id = item.request.id;
    conn->begin_request();
    const bool forced_shed = g_fault_queue_full.should_fail();
    if (!forced_shed && queue_->try_push(std::move(item))) {
      n_admitted_.fetch_add(1, std::memory_order_relaxed);
      g_obs_queue_depth.set(static_cast<double>(queue_->size()));
      continue;
    }
    conn->end_request();
    const bool closing = queue_->closed();
    n_shed_.fetch_add(1, std::memory_order_relaxed);
    g_obs_shed.add();
    conn->send(make_error_response(
        id, closing ? kErrShuttingDown : kErrOverloaded,
        closing ? "server is shutting down" : "admission queue is full",
        options_.shed_retry_after_ms));
  }
  conn->mark_reader_done();
}

void Server::writer_loop(const std::shared_ptr<Connection>& conn) {
  while (auto message = conn->outbound.pop()) {
    if (g_fault_slow_writer.should_fail()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    bool write_ok;
    if (g_fault_write.should_fail()) {
      write_ok = false;
    } else if (obs::enabled()) {
      const Clock::time_point t0 = Clock::now();
      write_ok = write_frame(conn->socket.fd(), *message);
      g_obs_write.observe(stage_us(t0, Clock::now()));
    } else {
      write_ok = write_frame(conn->socket.fd(), *message);
    }
    if (!write_ok) {
      // Peer is gone. Close the outbound queue immediately so every
      // blocked or future send() fails fast instead of waiting for queue
      // space that will never free up — otherwise a crashed client with a
      // backlog of undeliverable replies wedges the batcher (and a reader
      // parked in an inline-reply push) forever. Then discard whatever was
      // already queued so end_request's close-on-last-response still finds
      // the queue drained.
      conn->outbound.close();
      while (conn->outbound.pop().has_value()) {
      }
      break;
    }
  }
  // FIN the peer once every response is flushed (or undeliverable) — clients
  // of a dropped connection see EOF instead of hanging. Also unblocks a
  // reader still parked in recv() after a framing error on our side.
  conn->socket.shutdown_both();
}

bool Server::handle_inline(const Request& request,
                           const std::shared_ptr<Connection>& conn) {
  Response response;
  switch (request.type) {
    case RequestType::kPing:
      response = make_ok_response(request.id, util::json::Value::object());
      break;
    case RequestType::kStats:
      response = handle_stats(request);
      break;
    case RequestType::kTrace:
      response = handle_trace(request);
      break;
    case RequestType::kUnbind: {
      const auto& params = std::get<SessionParams>(request.params);
      const bool removed = registry_.erase(params.session);
      util::json::Value result = util::json::Value::object();
      result["removed"] = removed;
      response = make_ok_response(request.id, std::move(result));
      break;
    }
    case RequestType::kHealth: {
      HealthReply reply;
      reply.healthy = true;  // the reader answered, so the pipeline is up
      const std::size_t depth = queue_->size();
      reply.accepting = !stopping_.load(std::memory_order_acquire) &&
                        !queue_->closed() && depth < queue_->capacity();
      reply.sessions = registry_.size();
      reply.active_sessions = registry_.active_count();
      reply.queue_depth = depth;
      reply.queue_capacity = queue_->capacity();
      reply.uptime_ms = stage_us(started_at_, Clock::now()) / 1000.0;
      response = make_ok_response(request.id, health_result_json(reply));
      break;
    }
    default:
      return false;
  }
  response.trace_id = request.trace_id;
  conn->send(response);
  return true;
}

Response Server::handle_stats(const Request& request) {
  namespace json = util::json;
  const auto& params = std::get<StatsParams>(request.params);
  if (g_fault_stats.should_fail()) {
    // The scrape path must be allowed to fail without touching anything the
    // solve pipeline reads — chaos tests assert solves stay bit-identical.
    return make_error_response(request.id, kErrInternal,
                               "injected stats failure");
  }

  obs::Snapshot now_snap = obs::snapshot();
  obs::Snapshot view;
  bool is_delta = false;
  if (params.view == "delta" && params.cursor != 0) {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    const auto it = stats_cursors_.find(params.cursor);
    // Same epoch required: a reset_stats() between the two scrapes makes a
    // subtraction meaningless, so degrade to a full snapshot (delta:false)
    // and let the scraper re-baseline on the fresh cursor.
    if (it != stats_cursors_.end() && it->second.epoch == now_snap.epoch) {
      view = obs::delta(it->second, now_snap);
      is_delta = true;
    }
  }
  if (!is_delta) view = now_snap;

  std::uint64_t cursor = 0;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    cursor = next_stats_cursor_++;
    stats_cursors_[cursor] = std::move(now_snap);
    while (stats_cursors_.size() > kMaxStatsCursors) {
      stats_cursors_.erase(stats_cursors_.begin());  // evict oldest token
    }
  }

  if (params.format == "prometheus") {
    json::Value result = json::Value::object();
    result["format"] = json::Value("prometheus");
    result["content_type"] = json::Value("text/plain; version=0.0.4");
    result["text"] = json::Value(obs::prometheus_text(view));
    result["cursor"] = cursor;
    result["delta"] = is_delta;
    return make_ok_response(request.id, std::move(result));
  }
  json::Value root = stats_json(params.session);
  root["obs"] = obs::snapshot_json(view);
  root["cursor"] = cursor;
  root["delta"] = is_delta;
  return make_ok_response(request.id, std::move(root));
}

Response Server::handle_trace(const Request& request) {
  namespace json = util::json;
  const auto& params = std::get<TraceParams>(request.params);
  constexpr std::uint64_t kMaxTraceLimit = 256;
  const std::uint64_t limit =
      params.limit == 0 ? kMaxTraceLimit
                        : std::min(params.limit, kMaxTraceLimit);

  std::vector<obs::Exemplar> filtered;
  for (obs::Exemplar& e : obs::exemplars()) {
    if (!params.trace_id.empty() && e.trace_id != params.trace_id) continue;
    filtered.push_back(std::move(e));
  }
  if (filtered.size() > limit) {
    // Keep the newest (exemplars() returns oldest first).
    filtered.erase(filtered.begin(),
                   filtered.end() - static_cast<std::ptrdiff_t>(limit));
  }

  const obs::ExemplarRingStats rs = obs::exemplar_ring_stats();
  json::Value ring = json::Value::object();
  ring["captured"] = rs.captured;
  ring["dropped"] = rs.dropped;
  ring["capacity"] = rs.capacity;

  json::Value result = json::Value::object();
  result["count"] = static_cast<std::uint64_t>(filtered.size());
  result["ring"] = std::move(ring);
  result["trace"] = obs::exemplar_trace_json(filtered);
  return make_ok_response(request.id, std::move(result));
}

util::json::Value Server::stats_json(std::uint64_t session_id) const {
  namespace json = util::json;
  json::Value server = json::Value::object();
  const Counters c = counters();
  server["connections"] = c.connections;
  server["requests"] = c.requests;
  server["admitted"] = c.admitted;
  server["completed"] = c.completed;
  server["shed"] = c.shed;
  server["deadline_expired"] = c.deadline_expired;
  server["protocol_errors"] = c.protocol_errors;
  server["batches"] = c.batches;
  server["batched_points"] = c.batched_points;
  server["dedup_hits"] = c.dedup_hits;
  server["queue_depth"] = queue_->size();
  server["sessions"] = registry_.size();
  server["executing"] = executing();

  json::Value root = json::Value::object();
  root["server"] = std::move(server);

  if (session_id != 0) {
    const std::shared_ptr<Session> session = registry_.find(session_id);
    if (session != nullptr) {
      const thermal::EngineStats es = session->system().engine().stats();
      json::Value engine = json::Value::object();
      engine["points"] = es.points;
      engine["linear_solves"] = es.linear_solves;
      engine["cg_iterations"] = es.cg_iterations;
      engine["factorizations"] = es.factorizations;
      engine["factor_hits"] = es.factor_hits;
      engine["direct_fallbacks"] = es.direct_fallbacks;
      json::Value sess = json::Value::object();
      sess["id"] = session->id();
      sess["engine"] = std::move(engine);
      sess["evaluations"] = session->system().evaluation_count();
      sess["eval_cache_hits"] = session->system().cache_hits();
      const Session::Activity& act = session->activity();
      json::Value requests = json::Value::object();
      requests["solve"] = act.solves.load(std::memory_order_relaxed);
      requests["control"] = act.controls.load(std::memory_order_relaxed);
      requests["lut"] = act.luts.load(std::memory_order_relaxed);
      requests["transient"] = act.transients.load(std::memory_order_relaxed);
      sess["requests"] = std::move(requests);
      root["session"] = std::move(sess);
    }
  }
  return root;
}

void Server::batcher_loop() {
  std::optional<Pending> carry;
  while (true) {
    std::optional<Pending> first =
        carry.has_value() ? std::move(carry) : queue_->pop();
    carry.reset();
    if (!first.has_value()) break;  // closed and drained
    g_obs_queue_depth.set(static_cast<double>(queue_->size()));
    // queue_out: end of admission-queue wait. A carried item keeps the
    // stamp from the pop that actually dequeued it.
    if (first->queue_out == Clock::time_point{}) {
      first->queue_out = Clock::now();
    }

    if (first->request.type == RequestType::kSolve) {
      std::vector<Pending> batch;
      batch.push_back(std::move(*first));
      const Clock::time_point flush_at =
          Clock::now() + std::chrono::microseconds(options_.max_delay_us);
      while (batch.size() < options_.max_batch_size) {
        const Clock::time_point now = Clock::now();
        if (now >= flush_at) break;
        std::optional<Pending> next =
            queue_->pop_for(std::chrono::duration_cast<std::chrono::microseconds>(
                flush_at - now));
        if (!next.has_value()) break;  // flush window elapsed (or draining)
        next->queue_out = Clock::now();
        if (next->request.type == RequestType::kSolve) {
          batch.push_back(std::move(*next));
        } else {
          carry = std::move(next);  // execute after this batch, in order
          break;
        }
      }
      const Clock::time_point formed = Clock::now();
      for (Pending& item : batch) item.exec_start = formed;
      executing_.store(true, std::memory_order_release);
      execute_solve_batch(batch);
      executing_.store(false, std::memory_order_release);
    } else {
      first->exec_start = Clock::now();
      executing_.store(true, std::memory_order_release);
      execute_single(*first);
      executing_.store(false, std::memory_order_release);
    }
  }
}

bool Server::expired(const Pending& item) {
  return Clock::now() > item.deadline;
}

void Server::respond(const Pending& item, Response response) {
  response.id = item.request.id;
  response.trace_id = item.request.trace_id;

  const Clock::time_point now = Clock::now();
  TimingInfo t;
  t.present = true;
  t.decode_us = item.decode_us;
  t.queue_us = stage_us(item.arrival, item.queue_out);
  t.batch_us = stage_us(item.queue_out, item.exec_start);
  // An item answered mid-handler (error paths) has no solve_end stamp yet;
  // close the stage at the response instead so time is never lost.
  t.solve_us = stage_us(item.solve_start,
                        item.solve_end == Clock::time_point{}
                            ? now
                            : item.solve_end);
  t.total_us = stage_us(item.arrival, now);
  response.timing = timing_json(t);

  // Record observability BEFORE handing the reply to the writer: once a
  // client holds a response, a kStats/kTrace scrape must already see this
  // request's stage observations and exemplar. The cost ahead of send() is
  // a few relaxed atomics plus (when capturing) one try-lock.
  g_obs_latency.observe(t.total_us);
  g_obs_queue_wait.observe(t.queue_us);
  g_obs_solve.observe(t.solve_us);
  if (item.request.type == RequestType::kSolve) {
    g_obs_batch_wait.observe(t.batch_us);
  }
  if (obs::exemplars_active() && obs::should_capture_exemplar(t.total_us)) {
    obs::Exemplar ex;
    ex.trace_id = item.request.trace_id;
    ex.name = request_type_name(item.request.type);
    ex.start_us = obs::exemplar_now_us() - t.total_us;
    ex.total_us = t.total_us;
    ex.stages.push_back({"queue", 0.0, t.queue_us});
    ex.stages.push_back({"batch", t.queue_us, t.batch_us});
    ex.stages.push_back({"solve", t.queue_us + t.batch_us, t.solve_us});
    (void)obs::record_exemplar(std::move(ex));
  }

  item.connection->send(response);
  item.connection->end_request();
  n_completed_.fetch_add(1, std::memory_order_relaxed);
}

void Server::execute_solve_batch(std::vector<Pending>& batch) {
  OBS_SPAN("serve.batch");
  n_batches_.fetch_add(1, std::memory_order_relaxed);
  g_obs_batches.add();
  n_batched_points_.fetch_add(batch.size(), std::memory_order_relaxed);
  g_obs_batch_size.observe(static_cast<double>(batch.size()));

  // Group by session, answering expired/invalid requests immediately.
  std::map<std::uint64_t, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (expired(batch[i])) {
      n_deadline_.fetch_add(1, std::memory_order_relaxed);
      g_obs_deadline.add();
      respond(batch[i],
              make_error_response(0, kErrDeadlineExceeded,
                                  "deadline expired while queued"));
      continue;
    }
    groups[std::get<SolveParams>(batch[i].request.params).session].push_back(
        i);
  }

  for (auto& [session_id, indices] : groups) {
    const std::shared_ptr<Session> session = registry_.find(session_id);
    if (session == nullptr) {
      for (const std::size_t i : indices) {
        respond(batch[i], make_error_response(0, kErrUnknownSession,
                                              "unknown session " +
                                                  std::to_string(session_id)));
      }
      continue;
    }

    // Deduplicate identical operating points: concurrent clients asking the
    // same question get one solve, everyone gets the (bit-identical) answer.
    std::vector<bool> answered(indices.size(), false);
    try {
      if (g_fault_exec.should_fail()) {
        throw std::runtime_error("injected executor fault");
      }
      std::vector<thermal::OperatingPoint> points;
      std::map<std::pair<double, double>, std::size_t> point_index;
      std::vector<std::size_t> result_of(indices.size());
      for (std::size_t k = 0; k < indices.size(); ++k) {
        const auto& params =
            std::get<SolveParams>(batch[indices[k]].request.params);
        if (!session->point_in_range(params.omega, params.current)) {
          respond(batch[indices[k]],
                  make_error_response(0, kErrBadRequest,
                                      "operating point out of range"));
          answered[k] = true;
          continue;
        }
        const auto key = std::make_pair(params.omega, params.current);
        const auto [it, inserted] =
            point_index.emplace(key, points.size());
        if (inserted) {
          points.push_back({params.omega, params.current});
        } else {
          n_dedup_hits_.fetch_add(1, std::memory_order_relaxed);
          g_obs_dedup.add();
        }
        result_of[k] = it->second;
      }

      if (points.empty()) continue;
      g_obs_req_solve.add(points.size());
      session->activity().solves.fetch_add(indices.size(),
                                           std::memory_order_relaxed);
      const Clock::time_point solve_start = Clock::now();
      const std::vector<thermal::SteadyResult> results =
          session->system().engine().solve_batch(points);
      const Clock::time_point solve_end = Clock::now();
      for (const std::size_t i : indices) {
        batch[i].solve_start = solve_start;
        batch[i].solve_end = solve_end;
      }

      for (std::size_t k = 0; k < indices.size(); ++k) {
        if (answered[k]) continue;
        const Pending& item = batch[indices[k]];
        const thermal::SteadyResult& sr = results[result_of[k]];
        const auto& params = std::get<SolveParams>(item.request.params);
        const core::Evaluation ev = core::make_evaluation(
            session->system().thermal_model(), sr, params.omega);
        SolveReply reply;
        reply.runaway = ev.runaway;
        reply.max_chip_temperature_k = ev.max_chip_temperature;
        reply.leakage_w = ev.power.leakage;
        reply.tec_w = ev.power.tec;
        reply.fan_w = ev.power.fan;
        reply.iterations = ev.solver_iterations;
        answered[k] = true;
        respond(item, make_ok_response(0, solve_result_json(reply)));
      }
    } catch (const std::exception& e) {
      // Mirror execute_single: a throwing solve (solve_engine throw sites,
      // bad_alloc on large grids) must not escape batcher_loop — answer the
      // group's unanswered items and move on to the next group.
      for (std::size_t k = 0; k < indices.size(); ++k) {
        if (answered[k]) continue;
        answered[k] = true;
        respond(batch[indices[k]],
                make_error_response(0, kErrInternal, e.what()));
      }
    }
  }
}

void Server::execute_single(Pending& item) {
  OBS_SPAN("serve.single");
  if (expired(item)) {
    n_deadline_.fetch_add(1, std::memory_order_relaxed);
    g_obs_deadline.add();
    respond(item, make_error_response(0, kErrDeadlineExceeded,
                                      "deadline expired while queued"));
    return;
  }
  item.solve_start = Clock::now();
  try {
    if (g_fault_exec.should_fail()) {
      throw std::runtime_error("injected executor fault");
    }
    switch (item.request.type) {
      case RequestType::kBind: {
        const auto& params = std::get<BindParams>(item.request.params);
        const std::shared_ptr<Session> session = registry_.create(params);
        g_obs_req_bind.add();
        item.solve_end = Clock::now();
        respond(item,
                make_ok_response(0, bind_result_json(session->describe())));
        return;
      }
      case RequestType::kControl: {
        const auto& params = std::get<ControlParams>(item.request.params);
        const std::shared_ptr<Session> session =
            registry_.find(params.session);
        if (session == nullptr) {
          respond(item, make_error_response(0, kErrUnknownSession,
                                            "unknown session"));
          return;
        }
        g_obs_req_control.add();
        session->activity().controls.fetch_add(1, std::memory_order_relaxed);
        ControlReply reply;
        reply.objective = params.objective;
        if (params.objective == "min_temperature") {
          const core::MinTemperatureResult r =
              core::run_min_temperature(session->system());
          reply.success = r.finite;
          reply.omega = r.omega;
          reply.current = r.current;
          reply.max_chip_temperature_k = r.max_chip_temperature;
          reply.leakage_w = r.power.leakage;
          reply.tec_w = r.power.tec;
          reply.fan_w = r.power.fan;
          reply.runtime_ms = r.runtime_ms;
          reply.thermal_solves = r.thermal_solves;
        } else {
          const core::OftecResult r = core::run_oftec(session->system());
          reply.success = r.success;
          reply.used_opt2 = r.used_opt2;
          reply.omega = r.omega;
          reply.current = r.current;
          reply.max_chip_temperature_k = r.max_chip_temperature;
          reply.leakage_w = r.power.leakage;
          reply.tec_w = r.power.tec;
          reply.fan_w = r.power.fan;
          reply.runtime_ms = r.runtime_ms;
          reply.thermal_solves = r.thermal_solves;
        }
        item.solve_end = Clock::now();
        respond(item, make_ok_response(0, control_result_json(reply)));
        return;
      }
      case RequestType::kLut: {
        const auto& params = std::get<LutParams>(item.request.params);
        const std::shared_ptr<Session> session =
            registry_.find(params.session);
        if (session == nullptr) {
          respond(item, make_error_response(0, kErrUnknownSession,
                                            "unknown session"));
          return;
        }
        if (session->lut() == nullptr) {
          respond(item,
                  make_error_response(0, kErrBadRequest,
                                      "session was bound without a LUT"));
          return;
        }
        const floorplan::Floorplan& fp = session->floorplan();
        if (params.power_w.size() != fp.block_count()) {
          respond(item, make_error_response(
                            0, kErrBadRequest,
                            "power_w length does not match floorplan"));
          return;
        }
        power::PowerMap query(fp);
        for (std::size_t i = 0; i < params.power_w.size(); ++i) {
          query.set(i, params.power_w[i]);
        }
        g_obs_req_lut.add();
        session->activity().luts.fetch_add(1, std::memory_order_relaxed);
        const core::LutController::LookupResult r =
            session->lut()->lookup(query);
        LutReply reply;
        reply.omega = r.omega;
        reply.current = r.current;
        reply.feasible = r.feasible;
        reply.entry_index = r.entry_index;
        reply.feature_distance = r.feature_distance;
        item.solve_end = Clock::now();
        respond(item, make_ok_response(0, lut_result_json(reply)));
        return;
      }
      case RequestType::kTransient: {
        const auto& params = std::get<TransientParams>(item.request.params);
        const std::shared_ptr<Session> session =
            registry_.find(params.session);
        if (session == nullptr) {
          respond(item, make_error_response(0, kErrUnknownSession,
                                            "unknown session"));
          return;
        }
        g_obs_req_transient.add();
        session->activity().transients.fetch_add(1,
                                                 std::memory_order_relaxed);
        const TransientReply reply = session->transient_step(params);
        item.solve_end = Clock::now();
        respond(item, make_ok_response(0, transient_result_json(reply)));
        return;
      }
      case RequestType::kSleep: {
        const auto& params = std::get<SleepParams>(item.request.params);
        std::this_thread::sleep_for(std::chrono::microseconds(
            static_cast<long long>(params.ms * 1000.0)));
        respond(item,
                make_ok_response(0, util::json::Value::object()));
        return;
      }
      default:
        respond(item, make_error_response(0, kErrInternal,
                                          "request type cannot be queued"));
        return;
    }
  } catch (const ProtocolError& e) {
    respond(item, make_error_response(0, e.code(), e.message()));
  } catch (const std::exception& e) {
    respond(item, make_error_response(0, kErrInternal, e.what()));
  }
}

}  // namespace oftec::serve
