// Trust-region method on the ℓ1 exact-penalty function (comparator).
//
// Third of the paper's Sec. 5.2 trio. Minimizes
//   P(x) = f(x) + ρ·Σ max(0, g_i(x))
// with a quadratic model from finite differences inside an adaptive
// trust radius, steps projected into the box. ρ is raised until the ℓ1
// penalty is exact (feasible minimizers coincide).
#pragma once

#include "opt/problem.h"

namespace oftec::opt {

struct TrustRegionOptions {
  double initial_radius_fraction = 0.1;  ///< of the box diagonal
  double min_radius_fraction = 1e-6;
  std::size_t max_iterations = 120;
  double penalty = 50.0;        ///< ρ
  double penalty_growth = 4.0;  ///< applied when iterates stall infeasible
  double eta_accept = 0.05;     ///< ratio threshold to accept a step
  double finite_diff_step = 1e-4;
};

[[nodiscard]] OptResult solve_trust_region(
    const Problem& problem, const la::Vector& x0,
    const TrustRegionOptions& options = {});

}  // namespace oftec::opt
