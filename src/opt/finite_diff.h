// Finite-difference derivatives robust to +inf function values and bounds.
//
// The OFTEC objective is only available through the thermal simulator
// (paper Sec. 5.2: "the objective function 𝒫 can only be determined
// numerically"), so all solvers differentiate numerically. Steps are scaled
// per coordinate, kept inside the box, and fall back to one-sided
// differences when the opposite sample lands in the runaway region.
#pragma once

#include <functional>

#include "la/dense_matrix.h"
#include "la/vector_ops.h"
#include "opt/problem.h"

namespace oftec::opt {

using ScalarFn = std::function<double(const la::Vector&)>;

struct FiniteDiffOptions {
  /// Relative step: h_i = step_rel · max(|x_i|, scale_floor_i).
  double step_rel = 1e-4;
  /// Per-coordinate floor for the step scale; defaults to the box width.
  la::Vector scale_floor;
};

/// Central-difference gradient with one-sided fallback near bounds or +inf
/// samples. Returns +inf entries when no finite difference is computable.
[[nodiscard]] la::Vector gradient(const ScalarFn& f, const la::Vector& x,
                                  const Bounds& bounds,
                                  const FiniteDiffOptions& options,
                                  std::size_t* eval_count = nullptr);

/// Dense finite-difference Hessian via gradient differencing (forward).
/// Symmetrized. Used by the interior-point and trust-region comparators.
[[nodiscard]] la::DenseMatrix hessian(const ScalarFn& f, const la::Vector& x,
                                      const Bounds& bounds,
                                      const FiniteDiffOptions& options,
                                      std::size_t* eval_count = nullptr);

}  // namespace oftec::opt
