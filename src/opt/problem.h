// Constrained nonlinear program interface.
//
// OFTEC's two formulations (Optimizations 1 and 2) are CNLPs over
// x = (ω, I_TEC) whose objective and constraints are evaluated numerically
// by the thermal simulator — they can return +infinity inside the thermal
// runaway region, and every solver in this module must treat +inf as
// "reject and back off", exactly as the paper's Fig. 6(a,b) surfaces demand.
#pragma once

#include <cstddef>
#include <limits>

#include "la/vector_ops.h"
#include "util/status.h"

namespace oftec::opt {

/// Box bounds for the decision vector.
struct Bounds {
  la::Vector lower;
  la::Vector upper;
};

/// Minimize objective(x) subject to constraints(x) <= 0 (component-wise) and
/// bounds. Implementations must be deterministic for a given x.
class Problem {
 public:
  virtual ~Problem() = default;

  [[nodiscard]] virtual std::size_t dimension() const = 0;
  [[nodiscard]] virtual std::size_t constraint_count() const = 0;
  [[nodiscard]] virtual const Bounds& bounds() const = 0;

  /// Objective value; may be +inf (e.g. thermal runaway).
  [[nodiscard]] virtual double objective(const la::Vector& x) const = 0;

  /// Constraint values g(x); feasible iff every entry <= 0. Entries may be
  /// +inf in the runaway region.
  [[nodiscard]] virtual la::Vector constraints(const la::Vector& x) const = 0;
};

/// Solution report shared by all solvers.
struct OptResult {
  la::Vector x;
  double objective = std::numeric_limits<double>::infinity();
  bool feasible = false;     ///< constraints satisfied within tolerance
  bool converged = false;    ///< solver's own stopping test fired
  /// Structured outcome: kOk when converged, kNotConverged on an exhausted
  /// budget, kRunaway when the search never escaped the +inf region. Layered
  /// fallback (core::run_oftec, core::dtm_loop) branches on this.
  SolveStatus status = SolveStatus::kNotConverged;
  std::size_t iterations = 0;
  std::size_t evaluations = 0;  ///< objective+constraint evaluations
};

/// Clamp a point into the problem's box.
[[nodiscard]] inline la::Vector clamp_to_bounds(const la::Vector& x,
                                                const Bounds& b) {
  la::Vector out = x;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = std::min(std::max(out[i], b.lower[i]), b.upper[i]);
  }
  return out;
}

}  // namespace oftec::opt
