// Active-set sequential quadratic programming (paper Sec. 5.2).
//
// Solves min f(x) s.t. g(x) ≤ 0, lb ≤ x ≤ ub where f and g come from the
// thermal simulator (derivative-free, possibly +inf). Each iteration:
//   1. finite-difference gradients of f and g,
//   2. convex QP subproblem (damped-BFGS Hessian, linearized constraints,
//      box handled as linear rows) solved exactly by active-set enumeration,
//   3. ℓ1-merit backtracking line search (rejects +inf samples),
//   4. damped (Powell) BFGS update of the Lagrangian Hessian.
// An optional early-stop predicate implements Algorithm 1 line 3: "stop the
// optimization whenever 𝒯(ω, I) < T_max".
#pragma once

#include <functional>

#include "opt/problem.h"

namespace oftec::opt {

struct SqpOptions {
  std::size_t max_iterations = 60;
  double step_tolerance = 1e-5;     ///< ‖d‖∞ relative to box width
  double constraint_tolerance = 1e-6;
  double merit_penalty_margin = 10.0;  ///< μ ≥ margin·max λ
  std::size_t max_line_search_steps = 12;
  double finite_diff_step = 1e-4;
};

/// Early-stop predicate: return true to accept the current iterate and stop.
using StopPredicate =
    std::function<bool(const la::Vector& x, double objective)>;

/// Run active-set SQP from `x0` (clamped into bounds). The start does not
/// need to satisfy the nonlinear constraints — the ℓ1 merit drives toward
/// feasibility — but it must have a finite objective.
[[nodiscard]] OptResult solve_sqp(const Problem& problem, const la::Vector& x0,
                                  const SqpOptions& options = {},
                                  const StopPredicate& stop = nullptr);

}  // namespace oftec::opt
