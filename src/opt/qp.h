// Small dense convex quadratic program solver.
//
// The SQP subproblem at each iterate is
//     min_d  ½ dᵀH d + gᵀd    s.t.  A d ≤ b,
// with H positive definite (damped BFGS), dimension 2 and a handful of rows
// (linearized temperature constraint + box bounds). At this size the exact
// approach is active-set *enumeration*: solve the equality-constrained KKT
// system for every candidate active set (|S| ≤ n), keep the candidates whose
// multipliers are nonnegative and that satisfy the inactive rows, and return
// the best. This is exact for convex QPs and has no cycling/degeneracy
// corner cases — the property the paper leans on when it argues the
// active-set method "produces high quality results very quickly".
#pragma once

#include <cstddef>
#include <vector>

#include "la/dense_matrix.h"
#include "la/vector_ops.h"

namespace oftec::opt {

struct QpResult {
  la::Vector d;            ///< minimizer
  la::Vector multipliers;  ///< λ ≥ 0 per constraint row (0 if inactive)
  bool feasible = false;   ///< a feasible KKT point was found
  double objective = 0.0;  ///< ½dᵀHd + gᵀd at d
};

/// Solve min ½dᵀHd + gᵀd s.t. rows of (a, rhs): aᵀd ≤ rhs.
/// H must be symmetric positive definite. If the constraint set is
/// infeasible (possible when the outer SQP iterate violates a linearized
/// constraint badly), returns feasible=false and `d` minimizing the largest
/// violation along the unconstrained direction — callers treat that as an
/// elastic fallback step.
[[nodiscard]] QpResult solve_qp(const la::DenseMatrix& h, const la::Vector& g,
                                const la::DenseMatrix& a, const la::Vector& rhs);

}  // namespace oftec::opt
