// Log-barrier interior-point method (comparator, paper Sec. 5.2).
//
// The paper reports experimenting with interior-point, trust-region, and
// active-set SQP, picking SQP for quality × speed. This module provides the
// interior-point comparator: minimize
//   f(x) − μ·[ Σ log(−g_i(x)) + Σ log(x−lb) + Σ log(ub−x) ]
// by damped Newton (finite-difference Hessian) with a decreasing barrier
// parameter. Requires a strictly feasible start.
#pragma once

#include "opt/problem.h"

namespace oftec::opt {

struct InteriorPointOptions {
  double mu_initial = 1.0;
  double mu_factor = 0.2;        ///< μ ← factor·μ per outer iteration
  double mu_min = 1e-6;
  std::size_t max_outer = 12;
  std::size_t max_inner = 25;    ///< Newton steps per barrier value
  double gradient_tolerance = 1e-5;
  double finite_diff_step = 1e-4;
};

/// Minimize from a strictly feasible x0 (clamped slightly inside the box).
/// If x0 violates a nonlinear constraint, returns infeasible immediately —
/// pair with Optimization 2 to find a strictly feasible start, exactly as
/// OFTEC does for SQP.
[[nodiscard]] OptResult solve_interior_point(
    const Problem& problem, const la::Vector& x0,
    const InteriorPointOptions& options = {});

}  // namespace oftec::opt
