#include "opt/finite_diff.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace oftec::opt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

[[nodiscard]] double step_for(const la::Vector& x, const Bounds& bounds,
                              const FiniteDiffOptions& options,
                              std::size_t i) {
  double floor_i = bounds.upper[i] - bounds.lower[i];
  if (!options.scale_floor.empty()) floor_i = options.scale_floor[i];
  return options.step_rel * std::max(std::abs(x[i]), floor_i);
}

}  // namespace

la::Vector gradient(const ScalarFn& f, const la::Vector& x,
                    const Bounds& bounds, const FiniteDiffOptions& options,
                    std::size_t* eval_count) {
  const std::size_t n = x.size();
  la::Vector grad(n, 0.0);
  const double f0_lazy = kInf;  // computed on demand for one-sided falls
  double f0 = f0_lazy;
  bool have_f0 = false;
  auto eval = [&](const la::Vector& p) {
    if (eval_count != nullptr) ++(*eval_count);
    return f(p);
  };
  auto get_f0 = [&]() {
    if (!have_f0) {
      f0 = eval(x);
      have_f0 = true;
    }
    return f0;
  };

  for (std::size_t i = 0; i < n; ++i) {
    const double h = step_for(x, bounds, options, i);
    if (h <= 0.0) {
      throw std::invalid_argument("gradient: degenerate step");
    }

    la::Vector xp = x;
    la::Vector xm = x;
    xp[i] = std::min(x[i] + h, bounds.upper[i]);
    xm[i] = std::max(x[i] - h, bounds.lower[i]);
    const double hp = xp[i] - x[i];
    const double hm = x[i] - xm[i];

    double fp = hp > 0.0 ? eval(xp) : kInf;
    double fm = hm > 0.0 ? eval(xm) : kInf;

    if (std::isfinite(fp) && std::isfinite(fm)) {
      grad[i] = (fp - fm) / (hp + hm);
    } else if (std::isfinite(fp)) {
      grad[i] = (fp - get_f0()) / hp;  // one-sided forward
    } else if (std::isfinite(fm)) {
      grad[i] = (get_f0() - fm) / hm;  // one-sided backward
    } else {
      grad[i] = kInf;  // surrounded by runaway — caller must handle
    }
    if (!std::isfinite(get_f0())) grad[i] = kInf;
  }
  return grad;
}

la::DenseMatrix hessian(const ScalarFn& f, const la::Vector& x,
                        const Bounds& bounds, const FiniteDiffOptions& options,
                        std::size_t* eval_count) {
  const std::size_t n = x.size();
  la::DenseMatrix h_matrix(n, n);
  const la::Vector g0 = gradient(f, x, bounds, options, eval_count);

  for (std::size_t j = 0; j < n; ++j) {
    const double h = step_for(x, bounds, options, j);
    la::Vector xj = x;
    // Step toward the interior so the perturbed gradient stays in-box.
    const bool forward = x[j] + h <= bounds.upper[j];
    xj[j] = forward ? x[j] + h : std::max(x[j] - h, bounds.lower[j]);
    const double hj = xj[j] - x[j];
    if (hj == 0.0) continue;
    const la::Vector gj = gradient(f, xj, bounds, options, eval_count);
    for (std::size_t i = 0; i < n; ++i) {
      const double d = (gj[i] - g0[i]) / hj;
      h_matrix(i, j) = std::isfinite(d) ? d : 0.0;
    }
  }
  // Symmetrize.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double avg = 0.5 * (h_matrix(i, j) + h_matrix(j, i));
      h_matrix(i, j) = avg;
      h_matrix(j, i) = avg;
    }
  }
  return h_matrix;
}

}  // namespace oftec::opt
