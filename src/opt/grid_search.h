// Exhaustive grid-search oracle.
//
// Not part of OFTEC itself — this is the ground-truth instrument used to
// (a) verify that the active-set SQP lands near the global optimum despite
// the "minor non-convexities" of Fig. 6(a,b), and (b) regenerate those
// surface figures.
#pragma once

#include <functional>
#include <vector>

#include "opt/problem.h"

namespace oftec::opt {

struct GridSearchOptions {
  std::size_t points_per_dimension = 41;
  /// Worker threads to fan grid evaluations across; 1 → serial reference
  /// path, 0 → OFTEC_THREADS env / hardware concurrency. Parallel runs
  /// require problem evaluations to be thread-safe (CoolingProblem is) and
  /// return the same winner as the serial path: candidates are reduced in
  /// grid-index order after evaluation.
  std::size_t threads = 1;
};

/// Evaluate the problem on a regular grid over the box and return the best
/// feasible point (objective +inf / infeasible cells skipped).
[[nodiscard]] OptResult solve_grid_search(
    const Problem& problem, const GridSearchOptions& options = {});

/// One sampled cell of an objective surface sweep.
struct SurfaceSample {
  la::Vector x;
  double objective = 0.0;   ///< +inf inside the runaway region
  double max_constraint = 0.0;
};

/// Full sweep (for the Fig. 6(a,b) benches): every grid cell with objective
/// and worst constraint value.
[[nodiscard]] std::vector<SurfaceSample> sweep_surface(
    const Problem& problem, const GridSearchOptions& options = {});

}  // namespace oftec::opt
