#include "opt/sqp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "la/dense_matrix.h"
#include "opt/finite_diff.h"
#include "opt/qp.h"
#include "util/log.h"
#include "util/obs.h"

namespace oftec::opt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

const obs::Counter g_obs_runs = obs::counter("opt.sqp.runs");
const obs::Counter g_obs_backtracks =
    obs::counter("opt.sqp.line_search_backtracks");
const obs::Histogram g_obs_iterations = obs::histogram(
    "opt.sqp.iterations", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});

/// ℓ1 merit: f + μ·Σ max(0, g_i). +inf propagates.
[[nodiscard]] double merit(double f, const la::Vector& g, double mu) {
  if (!std::isfinite(f)) return kInf;
  double penalty = 0.0;
  for (const double gi : g) {
    if (!std::isfinite(gi)) return kInf;
    penalty += std::max(0.0, gi);
  }
  return f + mu * penalty;
}

[[nodiscard]] double violation(const la::Vector& g) {
  double v = 0.0;
  for (const double gi : g) {
    if (!std::isfinite(gi)) return kInf;
    v = std::max(v, gi);
  }
  return v;
}

}  // namespace

OptResult solve_sqp(const Problem& problem, const la::Vector& x0,
                    const SqpOptions& options, const StopPredicate& stop) {
  OBS_SPAN("opt.sqp");
  g_obs_runs.add();
  const std::size_t n = problem.dimension();
  const std::size_t m = problem.constraint_count();
  const Bounds& bounds = problem.bounds();
  if (x0.size() != n) {
    throw std::invalid_argument("solve_sqp: start dimension mismatch");
  }

  OptResult result;
  la::Vector x = clamp_to_bounds(x0, bounds);

  FiniteDiffOptions fd;
  fd.step_rel = options.finite_diff_step;

  auto eval_f = [&](const la::Vector& p) {
    ++result.evaluations;
    return problem.objective(p);
  };
  auto eval_g = [&](const la::Vector& p) {
    ++result.evaluations;
    return problem.constraints(p);
  };

  double f = eval_f(x);
  la::Vector g = eval_g(x);
  if (!std::isfinite(f)) {
    // Runaway start: nothing sensible to do from here.
    result.x = x;
    result.objective = f;
    result.status = SolveStatus::kRunaway;
    return result;
  }

  la::DenseMatrix hess = la::DenseMatrix::identity(n);
  // Scale the initial Hessian so unit steps are a fraction of the box.
  for (std::size_t i = 0; i < n; ++i) {
    const double width = bounds.upper[i] - bounds.lower[i];
    hess(i, i) = width > 0.0 ? 1.0 / (width * width) : 1.0;
  }

  double mu = 1.0;
  std::size_t consecutive_failures = 0;

  for (std::size_t iter = 1; iter <= options.max_iterations; ++iter) {
    result.iterations = iter;

    // Gradients of objective and constraints.
    const la::Vector grad_f = gradient(
        [&](const la::Vector& p) { return eval_f(p); }, x, bounds, fd);
    bool grad_ok = true;
    for (const double gi : grad_f) grad_ok = grad_ok && std::isfinite(gi);
    if (!grad_ok) break;  // boxed in by runaway; accept current iterate

    std::vector<la::Vector> grad_g(m);
    for (std::size_t c = 0; c < m; ++c) {
      grad_g[c] = gradient(
          [&](const la::Vector& p) {
            const la::Vector gc = eval_g(p);
            return gc[c];
          },
          x, bounds, fd);
      for (double& entry : grad_g[c]) {
        if (!std::isfinite(entry)) entry = 0.0;  // flat fallback
      }
    }

    // QP rows: linearized constraints then box bounds.
    const std::size_t rows = m + 2 * n;
    la::DenseMatrix a(rows, n);
    la::Vector rhs(rows, 0.0);
    for (std::size_t c = 0; c < m; ++c) {
      for (std::size_t j = 0; j < n; ++j) a(c, j) = grad_g[c][j];
      rhs[c] = std::isfinite(g[c]) ? -g[c] : 0.0;
    }
    for (std::size_t j = 0; j < n; ++j) {
      a(m + j, j) = 1.0;                 // d_j ≤ ub_j − x_j
      rhs[m + j] = bounds.upper[j] - x[j];
      a(m + n + j, j) = -1.0;            // −d_j ≤ x_j − lb_j
      rhs[m + n + j] = x[j] - bounds.lower[j];
    }

    const QpResult qp = solve_qp(hess, grad_f, a, rhs);
    const la::Vector& d = qp.d;

    // Convergence: step small relative to the box.
    double step_rel = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double width = bounds.upper[j] - bounds.lower[j];
      step_rel = std::max(step_rel, std::abs(d[j]) / std::max(width, 1e-300));
    }
    if (step_rel < options.step_tolerance &&
        violation(g) <= options.constraint_tolerance) {
      result.converged = true;
      break;
    }

    // Penalty update: μ must dominate the multipliers for the ℓ1 merit to be
    // exact.
    double max_lambda = 0.0;
    for (std::size_t c = 0; c < m; ++c) {
      max_lambda = std::max(max_lambda, qp.multipliers[c]);
    }
    mu = std::max(mu, options.merit_penalty_margin * max_lambda + 1.0);

    // Backtracking line search on the ℓ1 merit.
    const double merit0 = merit(f, g, mu);
    // Directional derivative model: ∇fᵀd − μ·Σ max(0, g_i).
    double pred_decrease = la::dot(grad_f, d);
    for (std::size_t c = 0; c < m; ++c) {
      if (std::isfinite(g[c])) pred_decrease -= mu * std::max(0.0, g[c]);
    }
    // Require some predicted decrease; if the model predicts ascent the QP
    // step is unreliable — shrink aggressively.
    double alpha = 1.0;
    bool accepted = false;
    la::Vector x_new;
    double f_new = kInf;
    la::Vector g_new;
    for (std::size_t ls = 0; ls < options.max_line_search_steps; ++ls) {
      x_new = x;
      la::axpy(alpha, d, x_new);
      x_new = clamp_to_bounds(x_new, bounds);
      f_new = eval_f(x_new);
      if (std::isfinite(f_new)) {
        g_new = eval_g(x_new);
        const double merit_new = merit(f_new, g_new, mu);
        const double required =
            merit0 + 1e-4 * alpha * std::min(pred_decrease, 0.0);
        if (merit_new <= required) {
          accepted = true;
          break;
        }
      }
      alpha *= 0.5;
      g_obs_backtracks.add();
    }
    if (log::enabled(log::Level::kDebug)) {
      log::debug("sqp iter ", iter, ": f=", f, " viol=", violation(g),
                 " |d|=", la::norm2(d), " alpha=", alpha,
                 " accepted=", accepted, " x0=", x[0],
                 n > 1 ? " x1=" : "", n > 1 ? std::to_string(x[1]) : "");
    }
    if (!accepted) {
      // No merit progress along d. Inflate the model curvature (shorter QP
      // steps next round, trust-region style) and retry before giving up —
      // near-active constraints often reject the first full QP step.
      ++consecutive_failures;
      if (consecutive_failures >= 3) {
        result.converged = true;
        break;
      }
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) hess(i, j) *= 4.0;
      }
      continue;
    }
    consecutive_failures = 0;

    // Damped BFGS update with the Lagrangian gradient difference.
    const la::Vector grad_f_new = gradient(
        [&](const la::Vector& p) { return eval_f(p); }, x_new, bounds, fd);
    bool new_grad_ok = true;
    for (const double v : grad_f_new) new_grad_ok = new_grad_ok && std::isfinite(v);

    if (new_grad_ok) {
      la::Vector s = x_new;
      la::axpy(-1.0, x, s);
      la::Vector y = grad_f_new;
      la::axpy(-1.0, grad_f, y);
      // Include constraint curvature via multipliers (gradients reused from
      // the old point — adequate for the mild nonconvexity at hand).
      const double sy = la::dot(s, y);
      const la::Vector hs = hess.multiply(s);
      const double shs = la::dot(s, hs);
      if (shs > 0.0 && la::norm2(s) > 0.0) {
        // Powell damping keeps the update positive definite.
        double theta = 1.0;
        if (sy < 0.2 * shs) {
          theta = 0.8 * shs / (shs - sy);
        }
        la::Vector y_bar = y;
        la::scale(theta, y_bar);
        la::Vector hs_scaled = hs;
        la::scale(1.0 - theta, hs_scaled);
        la::axpy(1.0, hs_scaled, y_bar);
        const double s_ybar = la::dot(s, y_bar);
        if (s_ybar > 1e-14) {
          for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
              hess(i, j) += y_bar[i] * y_bar[j] / s_ybar -
                            hs[i] * hs[j] / shs;
            }
          }
        }
      }
    }

    x = std::move(x_new);
    f = f_new;
    g = std::move(g_new);

    if (stop && stop(x, f)) {
      result.converged = true;
      break;
    }
  }

  result.x = x;
  result.objective = f;
  result.feasible = violation(g) <= options.constraint_tolerance;
  result.status =
      result.converged ? SolveStatus::kOk : SolveStatus::kNotConverged;
  if (obs::enabled()) {
    g_obs_iterations.observe(static_cast<double>(result.iterations));
  }
  return result;
}

}  // namespace oftec::opt
