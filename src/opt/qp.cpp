#include "opt/qp.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "la/dense_lu.h"
#include "util/obs.h"

namespace oftec::opt {

namespace {

constexpr double kFeasTol = 1e-9;

const obs::Counter g_obs_solves = obs::counter("opt.qp.solves");
const obs::Histogram g_obs_active_set_size =
    obs::histogram("opt.qp.active_set_size", {0.0, 1.0, 2.0, 3.0, 4.0});

/// Solve the equality-constrained QP with active set S via the KKT system
///   [H  A_Sᵀ][d]   [−g ]
///   [A_S  0 ][λ] = [b_S].
/// Returns false if the KKT matrix is singular (degenerate active set).
bool solve_kkt(const la::DenseMatrix& h, const la::Vector& g,
               const la::DenseMatrix& a, const la::Vector& rhs,
               const std::vector<std::size_t>& active, la::Vector& d,
               la::Vector& lambda) {
  const std::size_t n = g.size();
  const std::size_t m = active.size();
  la::DenseMatrix kkt(n + m, n + m);
  la::Vector b(n + m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) kkt(i, j) = h(i, j);
    b[i] = -g[i];
  }
  for (std::size_t k = 0; k < m; ++k) {
    const std::size_t row = active[k];
    for (std::size_t j = 0; j < n; ++j) {
      kkt(n + k, j) = a(row, j);
      kkt(j, n + k) = a(row, j);
    }
    b[n + k] = rhs[row];
  }
  la::Vector sol;
  try {
    sol = la::solve_dense(kkt, b);
  } catch (const std::runtime_error&) {
    return false;
  }
  d.assign(sol.begin(), sol.begin() + static_cast<std::ptrdiff_t>(n));
  lambda.assign(sol.begin() + static_cast<std::ptrdiff_t>(n), sol.end());
  return true;
}

[[nodiscard]] double qp_objective(const la::DenseMatrix& h, const la::Vector& g,
                                  const la::Vector& d) {
  const la::Vector hd = h.multiply(d);
  return 0.5 * la::dot(d, hd) + la::dot(g, d);
}

[[nodiscard]] double max_violation(const la::DenseMatrix& a,
                                   const la::Vector& rhs, const la::Vector& d) {
  double v = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double ad = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) ad += a(r, j) * d[j];
    v = std::max(v, ad - rhs[r]);
  }
  return v;
}

/// Enumerate subsets of {0..m−1} of size ≤ n (n ≤ 3 in this library).
void enumerate_subsets(std::size_t m, std::size_t max_size,
                       std::vector<std::vector<std::size_t>>& out) {
  out.push_back({});
  std::vector<std::size_t> current;
  auto rec = [&](auto&& self, std::size_t start) -> void {
    if (current.size() == max_size) return;
    for (std::size_t i = start; i < m; ++i) {
      current.push_back(i);
      out.push_back(current);
      self(self, i + 1);
      current.pop_back();
    }
  };
  rec(rec, 0);
}

}  // namespace

QpResult solve_qp(const la::DenseMatrix& h, const la::Vector& g,
                  const la::DenseMatrix& a, const la::Vector& rhs) {
  const std::size_t n = g.size();
  const std::size_t m = a.rows();
  if (h.rows() != n || h.cols() != n || (m != 0 && a.cols() != n) ||
      rhs.size() != m) {
    throw std::invalid_argument("solve_qp: shape mismatch");
  }
  if (n > 4) {
    throw std::invalid_argument(
        "solve_qp: enumeration solver is intended for tiny QPs (n <= 4)");
  }

  g_obs_solves.add();

  std::vector<std::vector<std::size_t>> subsets;
  enumerate_subsets(m, n, subsets);

  QpResult best;
  best.objective = std::numeric_limits<double>::infinity();
  double best_violation = std::numeric_limits<double>::infinity();
  la::Vector best_violation_d(n, 0.0);
  std::size_t best_active_size = 0;

  for (const auto& active : subsets) {
    la::Vector d, lambda;
    if (!solve_kkt(h, g, a, rhs, active, d, lambda)) continue;

    bool lambda_ok = true;
    for (const double l : lambda) {
      if (l < -kFeasTol) {
        lambda_ok = false;
        break;
      }
    }
    const double viol = max_violation(a, rhs, d);
    if (lambda_ok && viol <= kFeasTol) {
      const double obj = qp_objective(h, g, d);
      if (obj < best.objective) {
        best.d = d;
        best.objective = obj;
        best.feasible = true;
        best.multipliers.assign(m, 0.0);
        for (std::size_t k = 0; k < active.size(); ++k) {
          best.multipliers[active[k]] = std::max(0.0, lambda[k]);
        }
        best_active_size = active.size();
      }
    }
    if (viol < best_violation) {
      best_violation = viol;
      best_violation_d = d;
    }
  }

  if (!best.feasible) {
    // Elastic fallback: the least-violating KKT candidate.
    best.d = best_violation_d;
    best.multipliers.assign(m, 0.0);
    best.objective = qp_objective(h, g, best.d);
  } else if (obs::enabled()) {
    g_obs_active_set_size.observe(static_cast<double>(best_active_size));
  }
  return best;
}

}  // namespace oftec::opt
