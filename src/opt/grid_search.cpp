#include "opt/grid_search.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/obs.h"
#include "util/thread_pool.h"

namespace oftec::opt {

namespace {

const obs::Counter g_obs_runs = obs::counter("opt.grid.runs");
const obs::Counter g_obs_points = obs::counter("opt.grid.points");

/// Iterate all points of the nd-grid, invoking fn(x).
void for_each_grid_point(const Bounds& bounds, std::size_t points,
                         const std::function<void(const la::Vector&)>& fn) {
  const std::size_t n = bounds.lower.size();
  std::vector<std::size_t> idx(n, 0);
  la::Vector x(n);
  while (true) {
    for (std::size_t i = 0; i < n; ++i) {
      const double t = points == 1
                           ? 0.0
                           : static_cast<double>(idx[i]) /
                                 static_cast<double>(points - 1);
      x[i] = bounds.lower[i] + t * (bounds.upper[i] - bounds.lower[i]);
    }
    fn(x);
    // Odometer increment.
    std::size_t dim = 0;
    while (dim < n && ++idx[dim] == points) {
      idx[dim] = 0;
      ++dim;
    }
    if (dim == n) break;
  }
}

/// Materialize the grid in odometer order (index order == visit order of
/// for_each_grid_point, which the parallel reductions rely on).
[[nodiscard]] std::vector<la::Vector> collect_grid_points(
    const Bounds& bounds, std::size_t points) {
  std::vector<la::Vector> grid;
  for_each_grid_point(bounds, points,
                      [&](const la::Vector& x) { grid.push_back(x); });
  return grid;
}

}  // namespace

OptResult solve_grid_search(const Problem& problem,
                            const GridSearchOptions& options) {
  if (options.points_per_dimension < 2) {
    throw std::invalid_argument("solve_grid_search: need >= 2 points");
  }
  OBS_SPAN("opt.grid_search");
  g_obs_runs.add();
  OptResult result;
  result.objective = std::numeric_limits<double>::infinity();

  if (options.threads == 1) {
    // Serial reference path: constraints are only evaluated for candidates
    // that improve the running best.
    for_each_grid_point(
        problem.bounds(), options.points_per_dimension,
        [&](const la::Vector& x) {
          ++result.iterations;
          const double f = problem.objective(x);
          ++result.evaluations;
          if (!std::isfinite(f) || f >= result.objective) return;
          const la::Vector g = problem.constraints(x);
          ++result.evaluations;
          for (const double gi : g) {
            if (!(gi <= 0.0)) return;
          }
          result.objective = f;
          result.x = x;
          result.feasible = true;
        });
    g_obs_points.add(result.iterations);
    result.converged = result.feasible;
    result.status =
        result.feasible ? SolveStatus::kOk : SolveStatus::kRunaway;
    return result;
  }

  // Parallel path: evaluate everything up front, then reduce in grid-index
  // order with the serial skip logic — the winner (the first point to beat
  // every earlier one) is identical to the serial path's.
  const std::vector<la::Vector> grid =
      collect_grid_points(problem.bounds(), options.points_per_dimension);
  std::vector<double> objective(grid.size());
  std::vector<la::Vector> constraints(grid.size());
  util::ThreadPool pool(options.threads);
  pool.parallel_for(grid.size(), [&](std::size_t i) {
    objective[i] = problem.objective(grid[i]);
    constraints[i] = problem.constraints(grid[i]);
  });
  result.iterations = grid.size();
  result.evaluations = 2 * grid.size();
  g_obs_points.add(grid.size());

  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double f = objective[i];
    if (!std::isfinite(f) || f >= result.objective) continue;
    bool feasible = true;
    for (const double gi : constraints[i]) {
      if (!(gi <= 0.0)) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;
    result.objective = f;
    result.x = grid[i];
    result.feasible = true;
  }
  result.converged = result.feasible;
  // An exhaustive grid with no feasible point is a definitive "no feasible
  // operating point at this resolution" finding, not a numerical failure.
  result.status = result.feasible ? SolveStatus::kOk : SolveStatus::kRunaway;
  return result;
}

std::vector<SurfaceSample> sweep_surface(const Problem& problem,
                                         const GridSearchOptions& options) {
  const std::vector<la::Vector> grid =
      collect_grid_points(problem.bounds(), options.points_per_dimension);
  std::vector<SurfaceSample> samples(grid.size());
  const auto sample_one = [&](std::size_t i) {
    SurfaceSample& s = samples[i];
    s.x = grid[i];
    s.objective = problem.objective(grid[i]);
    const la::Vector g = problem.constraints(grid[i]);
    s.max_constraint = -std::numeric_limits<double>::infinity();
    for (const double gi : g) {
      s.max_constraint = std::max(s.max_constraint, gi);
    }
  };
  if (options.threads == 1) {
    for (std::size_t i = 0; i < grid.size(); ++i) sample_one(i);
  } else {
    util::ThreadPool pool(options.threads);
    pool.parallel_for(grid.size(), sample_one);
  }
  return samples;
}

}  // namespace oftec::opt
