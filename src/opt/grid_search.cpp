#include "opt/grid_search.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace oftec::opt {

namespace {

/// Iterate all points of the nd-grid, invoking fn(x).
void for_each_grid_point(const Bounds& bounds, std::size_t points,
                         const std::function<void(const la::Vector&)>& fn) {
  const std::size_t n = bounds.lower.size();
  std::vector<std::size_t> idx(n, 0);
  la::Vector x(n);
  while (true) {
    for (std::size_t i = 0; i < n; ++i) {
      const double t = points == 1
                           ? 0.0
                           : static_cast<double>(idx[i]) /
                                 static_cast<double>(points - 1);
      x[i] = bounds.lower[i] + t * (bounds.upper[i] - bounds.lower[i]);
    }
    fn(x);
    // Odometer increment.
    std::size_t dim = 0;
    while (dim < n && ++idx[dim] == points) {
      idx[dim] = 0;
      ++dim;
    }
    if (dim == n) break;
  }
}

}  // namespace

OptResult solve_grid_search(const Problem& problem,
                            const GridSearchOptions& options) {
  if (options.points_per_dimension < 2) {
    throw std::invalid_argument("solve_grid_search: need >= 2 points");
  }
  OptResult result;
  result.objective = std::numeric_limits<double>::infinity();

  for_each_grid_point(
      problem.bounds(), options.points_per_dimension,
      [&](const la::Vector& x) {
        ++result.iterations;
        const double f = problem.objective(x);
        ++result.evaluations;
        if (!std::isfinite(f) || f >= result.objective) return;
        const la::Vector g = problem.constraints(x);
        ++result.evaluations;
        for (const double gi : g) {
          if (!(gi <= 0.0)) return;
        }
        result.objective = f;
        result.x = x;
        result.feasible = true;
      });

  result.converged = result.feasible;
  return result;
}

std::vector<SurfaceSample> sweep_surface(const Problem& problem,
                                         const GridSearchOptions& options) {
  std::vector<SurfaceSample> samples;
  for_each_grid_point(problem.bounds(), options.points_per_dimension,
                      [&](const la::Vector& x) {
                        SurfaceSample s;
                        s.x = x;
                        s.objective = problem.objective(x);
                        const la::Vector g = problem.constraints(x);
                        s.max_constraint =
                            -std::numeric_limits<double>::infinity();
                        for (const double gi : g) {
                          s.max_constraint = std::max(s.max_constraint, gi);
                        }
                        samples.push_back(std::move(s));
                      });
  return samples;
}

}  // namespace oftec::opt
