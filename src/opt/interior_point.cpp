#include "opt/interior_point.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "la/dense_lu.h"
#include "opt/finite_diff.h"
#include "util/obs.h"

namespace oftec::opt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

const obs::Counter g_obs_runs = obs::counter("opt.ipm.runs");
const obs::Counter g_obs_infeasible_starts =
    obs::counter("opt.ipm.infeasible_starts");
const obs::Histogram g_obs_iterations = obs::histogram(
    "opt.ipm.iterations", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0});

}  // namespace

OptResult solve_interior_point(const Problem& problem, const la::Vector& x0,
                               const InteriorPointOptions& options) {
  OBS_SPAN("opt.interior_point");
  g_obs_runs.add();
  const std::size_t n = problem.dimension();
  const Bounds& bounds = problem.bounds();

  OptResult result;

  // Clamp strictly inside the box.
  la::Vector x = x0;
  for (std::size_t i = 0; i < n; ++i) {
    const double width = bounds.upper[i] - bounds.lower[i];
    const double margin = 1e-6 * width;
    x[i] = std::min(std::max(x[i], bounds.lower[i] + margin),
                    bounds.upper[i] - margin);
  }

  auto barrier = [&](const la::Vector& p, double mu) -> double {
    // Box membership first: problems may refuse to evaluate outside it.
    double box_terms = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double lo = p[i] - bounds.lower[i];
      const double hi = bounds.upper[i] - p[i];
      if (!(lo > 0.0) || !(hi > 0.0)) return kInf;
      box_terms -= mu * (std::log(lo) + std::log(hi));
    }
    ++result.evaluations;
    const double f = problem.objective(p);
    if (!std::isfinite(f)) return kInf;
    ++result.evaluations;
    const la::Vector g = problem.constraints(p);
    double total = f + box_terms;
    for (const double gi : g) {
      if (!(gi < 0.0)) return kInf;  // infeasible or on the boundary
      total -= mu * std::log(-gi);
    }
    return total;
  };

  // Verify strict feasibility of the start.
  {
    const la::Vector g0 = problem.constraints(x);
    ++result.evaluations;
    for (const double gi : g0) {
      if (!(gi < 0.0)) {
        g_obs_infeasible_starts.add();
        result.x = x;
        result.objective = problem.objective(x);
        ++result.evaluations;
        return result;  // infeasible start — caller must bootstrap
      }
    }
  }

  FiniteDiffOptions fd;
  fd.step_rel = options.finite_diff_step;

  double mu = options.mu_initial;
  for (std::size_t outer = 0; outer < options.max_outer && mu >= options.mu_min;
       ++outer) {
    auto phi = [&](const la::Vector& p) { return barrier(p, mu); };

    for (std::size_t inner = 0; inner < options.max_inner; ++inner) {
      ++result.iterations;
      const la::Vector grad = gradient(phi, x, bounds, fd);
      bool ok = true;
      for (const double v : grad) ok = ok && std::isfinite(v);
      if (!ok) break;
      if (la::norm_inf(grad) < options.gradient_tolerance / mu) break;

      la::DenseMatrix hess = hessian(phi, x, bounds, fd);
      // Newton direction with Levenberg fallback when the Hessian is not PD.
      la::Vector d;
      double damping = 0.0;
      for (int attempt = 0; attempt < 6; ++attempt) {
        la::DenseMatrix h_mod = hess;
        for (std::size_t i = 0; i < n; ++i) h_mod(i, i) += damping;
        try {
          d = la::solve_dense(h_mod, grad);
          // Descent check.
          if (la::dot(d, grad) > 0.0) break;
        } catch (const std::runtime_error&) {
        }
        damping = damping == 0.0 ? 1e-6 : damping * 100.0;
        d.clear();
      }
      if (d.empty()) {
        d = grad;  // steepest descent fallback
      }

      // Backtracking line search on the barrier (handles +inf naturally).
      const double phi0 = phi(x);
      double alpha = 1.0;
      bool moved = false;
      for (int ls = 0; ls < 30; ++ls) {
        la::Vector x_new = x;
        la::axpy(-alpha, d, x_new);
        const double phi_new = phi(x_new);
        if (std::isfinite(phi_new) && phi_new < phi0) {
          x = std::move(x_new);
          moved = true;
          break;
        }
        alpha *= 0.5;
      }
      if (!moved) break;
    }
    mu *= options.mu_factor;
  }

  result.x = x;
  result.objective = problem.objective(x);
  ++result.evaluations;
  const la::Vector g = problem.constraints(x);
  ++result.evaluations;
  result.feasible = true;
  for (const double gi : g) result.feasible = result.feasible && gi <= 1e-6;
  result.converged = true;
  result.status =
      result.feasible ? SolveStatus::kOk : SolveStatus::kNotConverged;
  if (obs::enabled()) {
    g_obs_iterations.observe(static_cast<double>(result.iterations));
  }
  return result;
}

}  // namespace oftec::opt
