#include "opt/trust_region.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "la/dense_lu.h"
#include "opt/finite_diff.h"

namespace oftec::opt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

OptResult solve_trust_region(const Problem& problem, const la::Vector& x0,
                             const TrustRegionOptions& options) {
  const std::size_t n = problem.dimension();
  const Bounds& bounds = problem.bounds();

  OptResult result;
  la::Vector x = clamp_to_bounds(x0, bounds);
  double rho = options.penalty;

  auto penalized = [&](const la::Vector& p) -> double {
    ++result.evaluations;
    const double f = problem.objective(p);
    if (!std::isfinite(f)) return kInf;
    ++result.evaluations;
    const la::Vector g = problem.constraints(p);
    double total = f;
    for (const double gi : g) {
      if (!std::isfinite(gi)) return kInf;
      total += rho * std::max(0.0, gi);
    }
    return total;
  };

  double box_diag = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = bounds.upper[i] - bounds.lower[i];
    box_diag += w * w;
  }
  box_diag = std::sqrt(box_diag);
  double radius = options.initial_radius_fraction * box_diag;
  const double min_radius = options.min_radius_fraction * box_diag;

  FiniteDiffOptions fd;
  fd.step_rel = options.finite_diff_step;

  double p_current = penalized(x);
  if (!std::isfinite(p_current)) {
    result.x = x;
    result.objective = problem.objective(x);
    result.status = SolveStatus::kRunaway;
    return result;
  }

  std::size_t stall_count = 0;
  for (std::size_t iter = 1; iter <= options.max_iterations; ++iter) {
    result.iterations = iter;
    if (radius < min_radius) {
      result.converged = true;
      break;
    }

    const la::Vector grad = gradient(penalized, x, bounds, fd);
    bool grad_ok = true;
    for (const double v : grad) grad_ok = grad_ok && std::isfinite(v);
    if (!grad_ok) break;

    la::DenseMatrix hess = hessian(penalized, x, bounds, fd);

    // Solve the model min gᵀd + ½dᵀHd, ‖d‖ ≤ radius (Levenberg iteration).
    la::Vector d;
    double damping = 0.0;
    for (int attempt = 0; attempt < 20; ++attempt) {
      la::DenseMatrix h_mod = hess;
      for (std::size_t i = 0; i < n; ++i) h_mod(i, i) += damping;
      bool solved = true;
      try {
        d = la::solve_dense(h_mod, grad);
      } catch (const std::runtime_error&) {
        solved = false;
      }
      if (solved) {
        la::scale(-1.0, d);
        if (la::norm2(d) <= radius && la::dot(d, grad) < 0.0) break;
      }
      damping = damping == 0.0 ? la::norm_inf(grad) / radius + 1e-8
                               : damping * 2.0;
      d.clear();
    }
    if (d.empty() || la::dot(d, grad) >= 0.0) {
      // Cauchy fallback: steepest descent clipped to the radius.
      d = grad;
      la::scale(-radius / std::max(la::norm2(grad), 1e-300), d);
    }
    if (la::norm2(d) > radius) {
      la::scale(radius / la::norm2(d), d);
    }

    la::Vector x_trial = x;
    la::axpy(1.0, d, x_trial);
    x_trial = clamp_to_bounds(x_trial, bounds);

    const double p_trial = penalized(x_trial);
    const la::Vector hd = hess.multiply(d);
    const double model_decrease = -(la::dot(grad, d) + 0.5 * la::dot(d, hd));
    const double actual_decrease =
        std::isfinite(p_trial) ? p_current - p_trial : -kInf;

    const double ratio = model_decrease > 0.0
                             ? actual_decrease / model_decrease
                             : (actual_decrease > 0.0 ? 1.0 : -1.0);

    if (ratio >= options.eta_accept && actual_decrease > 0.0) {
      x = std::move(x_trial);
      p_current = p_trial;
      if (ratio > 0.75) radius = std::min(2.0 * radius, box_diag);
      stall_count = 0;
    } else {
      radius *= 0.5;
      ++stall_count;
    }

    // If stuck and infeasible, make the penalty harder.
    if (stall_count >= 8) {
      ++result.evaluations;
      const la::Vector g = problem.constraints(x);
      double viol = 0.0;
      for (const double gi : g) viol = std::max(viol, gi);
      if (viol > 1e-6) {
        rho *= options.penalty_growth;
        p_current = penalized(x);
      }
      stall_count = 0;
    }
  }

  result.x = x;
  ++result.evaluations;
  result.objective = problem.objective(x);
  ++result.evaluations;
  const la::Vector g = problem.constraints(x);
  result.feasible = true;
  for (const double gi : g) result.feasible = result.feasible && gi <= 1e-6;
  result.status =
      result.converged ? SolveStatus::kOk : SolveStatus::kNotConverged;
  return result;
}

}  // namespace oftec::opt
