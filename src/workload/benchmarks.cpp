#include "workload/benchmarks.h"

#include <stdexcept>

#include "util/strings.h"

namespace oftec::workload {

const std::array<Benchmark, kBenchmarkCount>& all_benchmarks() {
  static const std::array<Benchmark, kBenchmarkCount> order = {
      Benchmark::kBasicmath, Benchmark::kBitCount,     Benchmark::kCrc32,
      Benchmark::kDijkstra,  Benchmark::kFft,          Benchmark::kQuicksort,
      Benchmark::kStringsearch, Benchmark::kSusan,
  };
  return order;
}

std::string benchmark_name(Benchmark b) {
  switch (b) {
    case Benchmark::kBasicmath: return "Basicmath";
    case Benchmark::kBitCount: return "BitCount";
    case Benchmark::kCrc32: return "CRC32";
    case Benchmark::kDijkstra: return "Dijkstra";
    case Benchmark::kFft: return "FFT";
    case Benchmark::kQuicksort: return "Quicksort";
    case Benchmark::kStringsearch: return "Stringsearch";
    case Benchmark::kSusan: return "Susan";
  }
  throw std::invalid_argument("benchmark_name: unknown benchmark");
}

std::optional<Benchmark> benchmark_by_name(std::string_view name) {
  const std::string lower = util::to_lower(name);
  for (const Benchmark b : all_benchmarks()) {
    if (util::to_lower(benchmark_name(b)) == lower) return b;
  }
  return std::nullopt;
}

namespace {

/// Baseline distribution of dynamic power over the EV6 units for a generic
/// integer workload; each profile below perturbs it toward its character.
std::vector<UnitWeight> generic_weights() {
  return {
      {"L2", 0.120},     {"L2_left", 0.020}, {"L2_right", 0.020},
      {"Icache", 0.090}, {"Dcache", 0.100},  {"Bpred", 0.040},
      {"ITB", 0.020},    {"DTB", 0.025},     {"LdStQ", 0.070},
      {"IntMap", 0.040}, {"IntQ", 0.045},    {"IntReg", 0.115},
      {"IntExec", 0.150},{"FPMap", 0.010},   {"FPQ", 0.015},
      {"FPReg", 0.030},  {"FPAdd", 0.040},   {"FPMul", 0.050},
  };
}

void bump(std::vector<UnitWeight>& weights, const char* unit, double delta) {
  for (UnitWeight& w : weights) {
    if (std::string_view(w.unit) == unit) {
      w.weight += delta;
      return;
    }
  }
  throw std::logic_error("bump: unknown unit");
}

BenchmarkProfile make_profile(Benchmark id, double peak_total,
                              std::vector<UnitWeight> weights,
                              std::size_t phases, double depth,
                              double noise) {
  BenchmarkProfile p;
  p.id = id;
  p.name = benchmark_name(id);
  p.peak_total_power = peak_total;
  p.weights = std::move(weights);
  p.phase_count = phases;
  p.phase_depth = depth;
  p.noise_sigma = noise;
  return p;
}

std::vector<BenchmarkProfile> build_profiles() {
  std::vector<BenchmarkProfile> out;

  // Mixed int/FP math kernels; moderate total → fan-only feasible.
  {
    auto w = generic_weights();
    bump(w, "FPAdd", 0.030);
    bump(w, "FPMul", 0.030);
    bump(w, "FPReg", 0.015);
    bump(w, "IntExec", -0.020);
    out.push_back(make_profile(Benchmark::kBasicmath, 31.0, std::move(w), 4,
                               0.20, 0.04));
  }
  // Tight integer loop hammering the ALUs → hottest integer cluster.
  {
    auto w = generic_weights();
    bump(w, "IntExec", 0.070);
    bump(w, "IntReg", 0.035);
    bump(w, "Bpred", 0.020);
    bump(w, "L2", -0.050);
    bump(w, "Dcache", -0.030);
    out.push_back(make_profile(Benchmark::kBitCount, 43.5, std::move(w), 2,
                               0.10, 0.03));
  }
  // Byte-stream checksum: memory streaming, lightest total.
  {
    auto w = generic_weights();
    bump(w, "Dcache", 0.040);
    bump(w, "LdStQ", 0.030);
    bump(w, "IntExec", -0.050);
    bump(w, "IntReg", -0.020);
    out.push_back(make_profile(Benchmark::kCrc32, 28.0, std::move(w), 2, 0.08,
                               0.03));
  }
  // Graph search: pointer chasing — load/store and address-generation units
  // run hot while the FP cluster idles.
  {
    auto w = generic_weights();
    bump(w, "L2", 0.020);
    bump(w, "Dcache", 0.010);
    bump(w, "LdStQ", 0.050);
    bump(w, "DTB", 0.015);
    bump(w, "IntQ", 0.015);
    bump(w, "FPMul", -0.030);
    bump(w, "FPAdd", -0.020);
    out.push_back(make_profile(Benchmark::kDijkstra, 42.0, std::move(w), 5,
                               0.30, 0.05));
  }
  // Floating-point transform: FP cluster dominates.
  {
    auto w = generic_weights();
    bump(w, "FPMul", 0.070);
    bump(w, "FPAdd", 0.060);
    bump(w, "FPReg", 0.030);
    bump(w, "FPQ", 0.010);
    bump(w, "IntExec", -0.060);
    bump(w, "IntReg", -0.030);
    out.push_back(make_profile(Benchmark::kFft, 40.0, std::move(w), 3, 0.25,
                               0.05));
  }
  // Sort: heaviest — branches, integer datapath, load/store queue.
  {
    auto w = generic_weights();
    bump(w, "IntExec", 0.040);
    bump(w, "IntReg", 0.025);
    bump(w, "LdStQ", 0.020);
    bump(w, "Bpred", 0.030);
    bump(w, "FPMul", -0.030);
    out.push_back(make_profile(Benchmark::kQuicksort, 44.5, std::move(w), 4,
                               0.30, 0.06));
  }
  // Text search: light integer workload with branches.
  {
    auto w = generic_weights();
    bump(w, "Bpred", 0.020);
    bump(w, "Icache", 0.020);
    bump(w, "FPMul", -0.030);
    bump(w, "FPAdd", -0.010);
    out.push_back(make_profile(Benchmark::kStringsearch, 32.0, std::move(w), 3,
                               0.15, 0.04));
  }
  // Image recognition: mixed int/FP, datapath-heavy.
  {
    auto w = generic_weights();
    bump(w, "IntExec", 0.035);
    bump(w, "FPMul", 0.030);
    bump(w, "FPAdd", 0.020);
    bump(w, "IntQ", 0.015);
    bump(w, "L2", -0.030);
    out.push_back(make_profile(Benchmark::kSusan, 43.0, std::move(w), 6, 0.35,
                               0.06));
  }
  return out;
}

}  // namespace

const BenchmarkProfile& profile_for(Benchmark b) {
  static const std::vector<BenchmarkProfile> profiles = build_profiles();
  for (const BenchmarkProfile& p : profiles) {
    if (p.id == b) return p;
  }
  throw std::invalid_argument("profile_for: unknown benchmark");
}

power::PowerMap peak_power_map(const BenchmarkProfile& profile,
                               const floorplan::Floorplan& fp) {
  double weight_sum = 0.0;
  for (const UnitWeight& w : profile.weights) {
    if (w.weight <= 0.0) {
      throw std::invalid_argument("peak_power_map: non-positive weight for " +
                                  std::string(w.unit));
    }
    weight_sum += w.weight;
  }
  power::PowerMap map(fp);
  for (const UnitWeight& w : profile.weights) {
    map.set(w.unit, profile.peak_total_power * w.weight / weight_sum);
  }
  return map;
}

}  // namespace oftec::workload
