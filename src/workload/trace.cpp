#include "workload/trace.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace oftec::workload {

PowerTrace generate_trace(const BenchmarkProfile& profile,
                          const floorplan::Floorplan& fp,
                          const TraceOptions& options) {
  if (options.sample_count == 0 || options.sample_interval <= 0.0) {
    throw std::invalid_argument("generate_trace: bad options");
  }
  const power::PowerMap peak = peak_power_map(profile, fp);
  util::Rng rng(options.seed ^
                (static_cast<std::uint64_t>(profile.id) * 0x9E3779B9ULL));

  // Random per-phase activity levels in [1 − depth, 1], with at least one
  // full-power phase so the envelope reaches the peak map.
  const std::size_t phases = std::max<std::size_t>(1, profile.phase_count);
  std::vector<double> phase_level(phases);
  for (double& level : phase_level) {
    level = 1.0 - profile.phase_depth * rng.uniform();
  }
  const std::size_t full_power_phase = rng.uniform_index(phases);
  phase_level[full_power_phase] = 1.0;

  // Per-phase *character*: program phases do not scale all units equally —
  // an integer-bound stretch parks the FP cluster and vice versa. Each
  // phase draws an emphasis factor per unit class (never above 1, so the
  // peak map stays the trace envelope); the full-power phase keeps every
  // class at 1 so the envelope is reached.
  enum class UnitClass { kInt, kFp, kOther };
  auto classify = [](std::string_view name) {
    if (name.rfind("FP", 0) == 0) return UnitClass::kFp;
    if (name.rfind("Int", 0) == 0 || name == "LdStQ" || name == "DTB") {
      return UnitClass::kInt;
    }
    return UnitClass::kOther;
  };
  std::vector<std::array<double, 3>> phase_emphasis(phases);
  for (std::size_t p = 0; p < phases; ++p) {
    if (p == full_power_phase) {
      phase_emphasis[p] = {1.0, 1.0, 1.0};
      continue;
    }
    phase_emphasis[p] = {1.0 - profile.phase_depth * rng.uniform(),
                         1.0 - profile.phase_depth * rng.uniform(),
                         1.0};
  }

  const std::size_t samples_per_phase =
      std::max<std::size_t>(1, options.sample_count / phases);

  PowerTrace trace;
  trace.sample_interval = options.sample_interval;
  trace.samples.reserve(options.sample_count);

  for (std::size_t s = 0; s < options.sample_count; ++s) {
    const std::size_t phase = std::min(phases - 1, s / samples_per_phase);
    power::PowerMap sample(fp);
    for (std::size_t b = 0; b < fp.block_count(); ++b) {
      const double emphasis =
          phase_emphasis[phase][static_cast<std::size_t>(
              classify(fp.blocks()[b].name))];
      // Multiplicative noise, clamped so a sample never exceeds the peak
      // (the peak map is by definition the trace maximum).
      const double noise =
          std::clamp(1.0 + rng.normal(0.0, profile.noise_sigma), 0.0, 1.0);
      sample.set(b, peak.get(b) * phase_level[phase] * emphasis * noise);
    }
    trace.samples.push_back(std::move(sample));
  }

  // Guarantee the documented invariant max_power_map(trace) == peak: pin one
  // sample inside the full-power phase to the exact peak map.
  const std::size_t pin = std::min(options.sample_count - 1,
                                   full_power_phase * samples_per_phase);
  trace.samples[pin] = peak;

  return trace;
}

power::PowerMap max_power_map(const PowerTrace& trace,
                              const floorplan::Floorplan& fp) {
  if (trace.samples.empty()) {
    throw std::invalid_argument("max_power_map: empty trace");
  }
  power::PowerMap out(fp);
  for (const power::PowerMap& sample : trace.samples) {
    out.max_with(sample);
  }
  return out;
}

power::PowerMap mean_power_map(const PowerTrace& trace,
                               const floorplan::Floorplan& fp) {
  if (trace.samples.empty()) {
    throw std::invalid_argument("mean_power_map: empty trace");
  }
  power::PowerMap out(fp);
  for (const power::PowerMap& sample : trace.samples) {
    for (std::size_t b = 0; b < fp.block_count(); ++b) {
      out.set(b, out.get(b) + sample.get(b));
    }
  }
  out.scale(1.0 / static_cast<double>(trace.samples.size()));
  return out;
}

}  // namespace oftec::workload
