// Dynamic-power trace synthesis (the PTscalar box of the paper's Fig. 5).
//
// A trace is a time series of per-unit power maps. The generator produces a
// phase-structured, noisy trace whose per-unit envelope reaches the profile's
// peak map — so `max_power_map(trace)` recovers (up to sampling noise) the
// vector the paper passes to OFTEC. Traces are deterministic per
// (benchmark, seed) via the library's own RNG.
#pragma once

#include <cstddef>
#include <vector>

#include "floorplan/floorplan.h"
#include "power/power_map.h"
#include "workload/benchmarks.h"

namespace oftec::workload {

/// One trace: equally spaced samples of per-unit dynamic power.
struct PowerTrace {
  double sample_interval = 0.0;        ///< [s]
  std::vector<power::PowerMap> samples;

  [[nodiscard]] std::size_t size() const noexcept { return samples.size(); }
  [[nodiscard]] double duration() const noexcept {
    return sample_interval * static_cast<double>(samples.size());
  }
};

struct TraceOptions {
  std::size_t sample_count = 200;
  double sample_interval = 0.01;  ///< [s]
  std::uint64_t seed = 42;
};

/// Synthesize a trace for `profile`: program phases modulate total power
/// between (1 − depth) and 1.0 of peak; per-sample multiplicative noise is
/// applied per unit; every unit touches its peak at least once.
[[nodiscard]] PowerTrace generate_trace(const BenchmarkProfile& profile,
                                        const floorplan::Floorplan& fp,
                                        const TraceOptions& options = {});

/// Per-unit maximum over the trace (Sec. 6.1 reduction).
[[nodiscard]] power::PowerMap max_power_map(const PowerTrace& trace,
                                            const floorplan::Floorplan& fp);

/// Per-unit mean over the trace.
[[nodiscard]] power::PowerMap mean_power_map(const PowerTrace& trace,
                                             const floorplan::Floorplan& fp);

}  // namespace oftec::workload
