// MiBench benchmark power profiles (PTscalar substitute).
//
// The paper drives OFTEC with the per-functional-unit *maximum dynamic
// power* extracted from PTscalar traces of eight MiBench programs on an
// Alpha 21264 (Sec. 6.1, Fig. 5). Neither PTscalar nor the authors' traces
// are available, so each benchmark here carries a characteristic per-unit
// power distribution (integer-heavy, FP-heavy, memory-bound, …) and a peak
// total calibrated so the *decision structure* of the paper's evaluation is
// reproduced: Basicmath, CRC32 and Stringsearch are coolable by a fan alone,
// the other five are not (Fig. 6c/e); peak ordering follows Table 2's I*.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "floorplan/floorplan.h"
#include "power/power_map.h"

namespace oftec::workload {

/// The eight MiBench programs of Table 2 (paper's spelling kept for
/// "Djkstra" / "Baiscmath" is normalized).
enum class Benchmark {
  kBasicmath,
  kBitCount,
  kCrc32,
  kDijkstra,
  kFft,
  kQuicksort,
  kStringsearch,
  kSusan,
};

inline constexpr std::size_t kBenchmarkCount = 8;

/// All benchmarks in Table 2 order.
[[nodiscard]] const std::array<Benchmark, kBenchmarkCount>& all_benchmarks();

/// Display name (Table 2 row label).
[[nodiscard]] std::string benchmark_name(Benchmark b);

/// Case-insensitive reverse lookup; std::nullopt for unknown names.
[[nodiscard]] std::optional<Benchmark> benchmark_by_name(
    std::string_view name);

/// One (unit-name, relative-weight) entry of a power distribution.
struct UnitWeight {
  const char* unit;
  double weight;
};

/// Static description of a benchmark's power behaviour.
struct BenchmarkProfile {
  Benchmark id = Benchmark::kBasicmath;
  std::string name;
  /// Peak total dynamic power [W] over the trace.
  double peak_total_power = 0.0;
  /// Per-unit relative weights (normalized internally).
  std::vector<UnitWeight> weights;
  /// Trace shape parameters consumed by TraceGenerator.
  std::size_t phase_count = 3;       ///< program phases
  double phase_depth = 0.25;         ///< fractional power swing between phases
  double noise_sigma = 0.04;         ///< per-sample multiplicative noise
};

/// Profile for one benchmark.
[[nodiscard]] const BenchmarkProfile& profile_for(Benchmark b);

/// The per-unit peak dynamic power map — the exact input OFTEC receives in
/// the paper's flow ("the maximum power consumption for each element ... is
/// selected to be passed to OFTEC").
[[nodiscard]] power::PowerMap peak_power_map(const BenchmarkProfile& profile,
                                             const floorplan::Floorplan& fp);

}  // namespace oftec::workload
